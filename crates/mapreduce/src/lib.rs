//! # cb-mapreduce — the baseline MapReduce engine
//!
//! A compact multi-threaded MapReduce (map → hash-partition → shuffle →
//! group → reduce) with an optional combiner, implementing the programming
//! model the paper's generalized-reduction API is contrasted against in
//! §III-A / Fig. 1. Instrumented with intermediate-pair and peak-buffer
//! counters so the API comparison can be measured, not asserted.

#![deny(unsafe_code)]

pub mod engine;

pub use engine::{run_mapreduce, MRConfig, MRStats, MapReduce};
