//! A multi-threaded MapReduce engine with optional combiner.
//!
//! This is the *baseline* the paper's generalized-reduction API is argued
//! against (§III-A, Fig. 1): map tasks emit `(key, value)` pairs, pairs are
//! hash-partitioned and shuffled to reducers, reducers group by key and
//! reduce. With the combiner enabled, each mapper's buffer is pre-reduced on
//! flush — cutting shuffle volume but, as the paper stresses, still
//! materializing intermediate pairs on the map side.
//!
//! The engine counts emitted pairs, shuffled pairs, and the peak number of
//! pairs buffered at any moment, so the API-comparison benchmark can show
//! the intermediate-memory argument quantitatively, not rhetorically.

use std::collections::hash_map::DefaultHasher;
use std::collections::BTreeMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};

/// A MapReduce job definition.
pub trait MapReduce: Send + Sync + 'static {
    /// One map task's input (a split).
    type Input: Send;
    /// Intermediate key.
    type Key: Ord + Hash + Clone + Send;
    /// Intermediate value.
    type Value: Send;
    /// One reduce invocation's output.
    type Output: Send;

    /// Emit intermediate pairs for one input split.
    fn map(&self, input: &Self::Input, emit: &mut dyn FnMut(Self::Key, Self::Value));

    /// Merge all values of one key into outputs (typically one).
    fn reduce(&self, key: &Self::Key, values: Vec<Self::Value>) -> Self::Output;

    /// Pre-reduce a group of same-key values on the map side. The default
    /// is the identity (no combining). Must satisfy
    /// `reduce(k, combine(k, v)) == reduce(k, v)`.
    fn combine(&self, _key: &Self::Key, values: Vec<Self::Value>) -> Vec<Self::Value> {
        values
    }
}

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct MRConfig {
    /// Mapper threads.
    pub mappers: usize,
    /// Reducer partitions (and reducer threads).
    pub reducers: usize,
    /// Run the job's combiner on mapper buffers.
    pub use_combiner: bool,
    /// Combine (and count peak) every time a mapper has buffered this many
    /// pairs — the paper's "when this buffer is flushed periodically".
    pub flush_threshold: usize,
}

impl Default for MRConfig {
    fn default() -> Self {
        MRConfig {
            mappers: 4,
            reducers: 4,
            use_combiner: false,
            flush_threshold: 64 * 1024,
        }
    }
}

/// Execution counters for the API-comparison experiments.
#[derive(Debug, Clone, Default)]
pub struct MRStats {
    /// Pairs emitted by map functions.
    pub pairs_emitted: u64,
    /// Pairs that crossed the shuffle (after combining).
    pub pairs_shuffled: u64,
    /// Peak pairs simultaneously buffered across all mappers — the
    /// intermediate-memory footprint the generalized-reduction API avoids.
    pub peak_buffered_pairs: u64,
    /// Distinct keys reduced.
    pub keys_reduced: u64,
}

/// Per-mapper, per-reducer intermediate buckets.
type Buckets<J> = Vec<Vec<(<J as MapReduce>::Key, <J as MapReduce>::Value)>>;

fn bucket_of<K: Hash>(key: &K, reducers: usize) -> usize {
    let mut h = DefaultHasher::new();
    key.hash(&mut h);
    (h.finish() % reducers as u64) as usize
}

/// Run `job` over `inputs`. Outputs are returned grouped by reducer
/// partition, each partition in ascending key order — a deterministic total
/// order given a fixed config.
pub fn run_mapreduce<J: MapReduce>(
    job: &J,
    inputs: Vec<J::Input>,
    cfg: &MRConfig,
) -> (Vec<J::Output>, MRStats) {
    assert!(
        cfg.mappers > 0 && cfg.reducers > 0,
        "need at least one mapper and reducer"
    );
    assert!(cfg.flush_threshold > 0, "flush threshold must be positive");

    let emitted = AtomicU64::new(0);
    let shuffled = AtomicU64::new(0);
    let cur_buffered = AtomicU64::new(0);
    let peak_buffered = AtomicU64::new(0);

    // ---- Map phase -------------------------------------------------------
    // Round-robin inputs across mapper threads; each mapper fills
    // per-reducer buckets, combining on flush when enabled.
    let n_mappers = cfg.mappers.min(inputs.len()).max(1);
    let mut mapper_inputs: Vec<Vec<J::Input>> = (0..n_mappers).map(|_| Vec::new()).collect();
    for (i, input) in inputs.into_iter().enumerate() {
        mapper_inputs[i % n_mappers].push(input);
    }

    let track_peak = |cur: &AtomicU64, peak: &AtomicU64, delta: i64| {
        let now = if delta >= 0 {
            cur.fetch_add(delta as u64, Ordering::Relaxed) + delta as u64
        } else {
            cur.fetch_sub((-delta) as u64, Ordering::Relaxed) - (-delta) as u64
        };
        peak.fetch_max(now, Ordering::Relaxed);
    };

    let mapper_outputs: Vec<Buckets<J>> = std::thread::scope(|scope| {
        let handles: Vec<_> = mapper_inputs
            .into_iter()
            .map(|splits| {
                let emitted = &emitted;
                let cur_buffered = &cur_buffered;
                let peak_buffered = &peak_buffered;
                scope.spawn(move || {
                    let mut buckets: Buckets<J> = (0..cfg.reducers).map(|_| Vec::new()).collect();
                    let mut since_flush = 0usize;
                    for split in &splits {
                        // The flush check lives inside the emit path so a
                        // single huge split still combines periodically —
                        // "when this buffer is flushed periodically, all
                        // grouped pairs are immediately reduced".
                        job.map(split, &mut |k, v| {
                            emitted.fetch_add(1, Ordering::Relaxed);
                            track_peak(cur_buffered, peak_buffered, 1);
                            let b = bucket_of(&k, cfg.reducers);
                            buckets[b].push((k, v));
                            since_flush += 1;
                            if cfg.use_combiner && since_flush >= cfg.flush_threshold {
                                combine_buckets(job, &mut buckets, cur_buffered);
                                since_flush = 0;
                            }
                        });
                    }
                    if cfg.use_combiner {
                        combine_buckets(job, &mut buckets, cur_buffered);
                    }
                    buckets
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("mapper panicked"))
            .collect()
    });

    // ---- Shuffle ---------------------------------------------------------
    // Gather each reducer's pairs from every mapper.
    let mut reducer_inputs: Vec<Vec<(J::Key, J::Value)>> =
        (0..cfg.reducers).map(|_| Vec::new()).collect();
    for mapper in mapper_outputs {
        for (r, bucket) in mapper.into_iter().enumerate() {
            shuffled.fetch_add(bucket.len() as u64, Ordering::Relaxed);
            reducer_inputs[r].extend(bucket);
        }
    }

    // ---- Reduce phase ----------------------------------------------------
    let keys_reduced = AtomicU64::new(0);
    let mut partitioned: Vec<Vec<J::Output>> = std::thread::scope(|scope| {
        let handles: Vec<_> = reducer_inputs
            .into_iter()
            .map(|pairs| {
                let keys_reduced = &keys_reduced;
                scope.spawn(move || {
                    // Group by key (sorted => deterministic output order).
                    let mut groups: BTreeMap<J::Key, Vec<J::Value>> = BTreeMap::new();
                    for (k, v) in pairs {
                        groups.entry(k).or_default().push(v);
                    }
                    keys_reduced.fetch_add(groups.len() as u64, Ordering::Relaxed);
                    groups
                        .into_iter()
                        .map(|(k, vs)| job.reduce(&k, vs))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("reducer panicked"))
            .collect()
    });

    let outputs: Vec<J::Output> = partitioned.drain(..).flatten().collect();
    let stats = MRStats {
        pairs_emitted: emitted.load(Ordering::Relaxed),
        pairs_shuffled: shuffled.load(Ordering::Relaxed),
        peak_buffered_pairs: peak_buffered.load(Ordering::Relaxed),
        keys_reduced: keys_reduced.load(Ordering::Relaxed),
    };
    (outputs, stats)
}

/// Apply the job's combiner to every bucket of one mapper, shrinking the
/// buffered-pair gauge by however many pairs combining eliminated.
fn combine_buckets<J: MapReduce>(
    job: &J,
    buckets: &mut [Vec<(J::Key, J::Value)>],
    cur_buffered: &AtomicU64,
) {
    for bucket in buckets {
        if bucket.is_empty() {
            continue;
        }
        let before = bucket.len();
        let mut groups: BTreeMap<J::Key, Vec<J::Value>> = BTreeMap::new();
        for (k, v) in bucket.drain(..) {
            groups.entry(k).or_default().push(v);
        }
        for (k, vs) in groups {
            for v in job.combine(&k, vs) {
                bucket.push((k.clone(), v));
            }
        }
        let after = bucket.len();
        cur_buffered.fetch_sub((before - after) as u64, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Word count: inputs are word vectors, combiner sums counts.
    struct WC;

    impl MapReduce for WC {
        type Input = Vec<u64>;
        type Key = u64;
        type Value = u64;
        type Output = (u64, u64);

        fn map(&self, input: &Vec<u64>, emit: &mut dyn FnMut(u64, u64)) {
            for &w in input {
                emit(w, 1);
            }
        }
        fn reduce(&self, key: &u64, values: Vec<u64>) -> (u64, u64) {
            (*key, values.into_iter().sum())
        }
        fn combine(&self, _key: &u64, values: Vec<u64>) -> Vec<u64> {
            vec![values.into_iter().sum()]
        }
    }

    fn splits() -> Vec<Vec<u64>> {
        vec![
            vec![1, 2, 3, 1, 1],
            vec![2, 2, 4],
            vec![1, 4, 4, 4],
            vec![5],
        ]
    }

    fn counts_of(outputs: Vec<(u64, u64)>) -> BTreeMap<u64, u64> {
        outputs.into_iter().collect()
    }

    #[test]
    fn wordcount_without_combiner() {
        let (out, stats) = run_mapreduce(&WC, splits(), &MRConfig::default());
        let m = counts_of(out);
        assert_eq!(m[&1], 4);
        assert_eq!(m[&2], 3);
        assert_eq!(m[&3], 1);
        assert_eq!(m[&4], 4);
        assert_eq!(m[&5], 1);
        assert_eq!(stats.pairs_emitted, 13);
        assert_eq!(stats.pairs_shuffled, 13, "no combiner: all pairs cross");
        assert_eq!(stats.keys_reduced, 5);
    }

    #[test]
    fn combiner_reduces_shuffle_volume_not_results() {
        let cfg = MRConfig {
            use_combiner: true,
            flush_threshold: 2,
            ..Default::default()
        };
        let (out, stats) = run_mapreduce(&WC, splits(), &cfg);
        let (out2, stats2) = run_mapreduce(&WC, splits(), &MRConfig::default());
        assert_eq!(counts_of(out), counts_of(out2));
        assert_eq!(stats.pairs_emitted, stats2.pairs_emitted);
        assert!(
            stats.pairs_shuffled < stats2.pairs_shuffled,
            "combiner must shrink shuffle: {} vs {}",
            stats.pairs_shuffled,
            stats2.pairs_shuffled
        );
    }

    #[test]
    fn single_mapper_single_reducer() {
        let cfg = MRConfig {
            mappers: 1,
            reducers: 1,
            ..Default::default()
        };
        let (out, _) = run_mapreduce(&WC, splits(), &cfg);
        let m = counts_of(out);
        assert_eq!(m[&1], 4);
        assert_eq!(m.len(), 5);
    }

    #[test]
    fn many_partitions_each_key_reduced_once() {
        let cfg = MRConfig {
            mappers: 3,
            reducers: 7,
            ..Default::default()
        };
        let (out, stats) = run_mapreduce(&WC, splits(), &cfg);
        assert_eq!(out.len(), 5, "five distinct keys, five outputs");
        assert_eq!(stats.keys_reduced, 5);
    }

    #[test]
    fn empty_input() {
        let (out, stats) = run_mapreduce(&WC, vec![], &MRConfig::default());
        assert!(out.is_empty());
        assert_eq!(stats.pairs_emitted, 0);
    }

    #[test]
    fn peak_buffering_tracked_and_lower_with_combiner() {
        // One big skewed split: every word identical.
        let big: Vec<Vec<u64>> = vec![(0..10_000).map(|_| 7u64).collect()];
        let no_comb = run_mapreduce(&WC, big.clone(), &MRConfig::default()).1;
        let comb = run_mapreduce(
            &WC,
            big,
            &MRConfig {
                use_combiner: true,
                flush_threshold: 100,
                ..Default::default()
            },
        )
        .1;
        assert_eq!(no_comb.peak_buffered_pairs, 10_000);
        assert!(
            comb.peak_buffered_pairs <= 200,
            "combiner caps buffering near the flush threshold, got {}",
            comb.peak_buffered_pairs
        );
        assert_eq!(comb.pairs_shuffled, 1, "one key fully pre-combined");
    }

    #[test]
    fn deterministic_output_order() {
        let cfg = MRConfig {
            mappers: 2,
            reducers: 3,
            ..Default::default()
        };
        let (a, _) = run_mapreduce(&WC, splits(), &cfg);
        let (b, _) = run_mapreduce(&WC, splits(), &cfg);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_reducers_rejected() {
        let cfg = MRConfig {
            reducers: 0,
            ..Default::default()
        };
        run_mapreduce(&WC, splits(), &cfg);
    }
}
