//! # cb-bench — benchmark harness library
//!
//! Shared pieces of the `repro` binary and the Criterion benches: the Fig. 1
//! API-comparison experiment (which needs real execution, not the simulator)
//! and table-formatting helpers.

#![deny(unsafe_code)]

pub mod fig1;
pub mod fmt;
