//! `repro` — regenerate every table and figure of the paper's evaluation.
//!
//! ```text
//! cargo run -p cb-bench --release --bin repro -- all
//! cargo run -p cb-bench --release --bin repro -- fig3a
//! ```
//!
//! Pass `--json <dir>` after the experiment name to additionally write the
//! selected experiments' rows as JSON files into `<dir>`.
//!
//! Experiments: `fig1`, `fig3a`, `fig3b`, `fig3c`, `table1`, `table2`,
//! `fig4a`, `fig4b`, `fig4c`, `headline`, `ablate-consecutive`,
//! `ablate-contention`, `ablate-stealing`, `ablate-retrieval`,
//! `ablate-jitter`, `ablate-prefetch`, `ablate-overlap`, `ablate-failures`,
//! `multicloud`, `sweep-wan`, `sweep-robj`, `seeds`, `timeline`, `all`.
//! `ablate-overlap --smoke` additionally verifies the ablation is
//! deterministic and that depth 1 beats the serial slave, exiting nonzero
//! otherwise (a CI guard). Figures 3–4 and the tables run on the calibrated
//! discrete-event simulator at full paper scale (120 GB / 960 jobs); fig1
//! runs real code on real data. Simulated numbers are printed next to the
//! paper's where the paper reports them.

use cb_bench::fig1;
use cb_bench::fmt::{pct, s2, table};
use cb_sim::calib::{self, App, NetConstants};
use cb_sim::experiments::{self, DEFAULT_SEED};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let what = args.first().map(String::as_str).unwrap_or("all");
    let json_dir = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .map(std::path::PathBuf::from);
    let net = NetConstants::default();

    let known: &[&str] = &[
        "fig1",
        "fig3a",
        "fig3b",
        "fig3c",
        "table1",
        "table2",
        "fig4a",
        "fig4b",
        "fig4c",
        "headline",
        "ablate-consecutive",
        "ablate-contention",
        "ablate-stealing",
        "ablate-retrieval",
        "ablate-jitter",
        "ablate-prefetch",
        "ablate-overlap",
        "ablate-failures",
        "multicloud",
        "sweep-wan",
        "sweep-robj",
        "seeds",
        "timeline",
        "all",
    ];
    if !known.contains(&what) {
        eprintln!("unknown experiment `{what}`; one of: {}", known.join(" "));
        std::process::exit(2);
    }

    let run = |name: &str| what == "all" || what == name;

    if run("fig1") {
        print_fig1();
    }
    for (name, app) in [
        ("fig3a", App::Knn),
        ("fig3b", App::KMeans),
        ("fig3c", App::PageRank),
    ] {
        if run(name) {
            print_fig3(name, app, &net);
        }
    }
    if run("table1") {
        print_table1(&net);
    }
    if run("table2") {
        print_table2(&net);
    }
    for (name, app) in [
        ("fig4a", App::Knn),
        ("fig4b", App::KMeans),
        ("fig4c", App::PageRank),
    ] {
        if run(name) {
            print_fig4(name, app, &net);
        }
    }
    if run("headline") {
        print_headline(&net);
    }
    if run("ablate-consecutive") {
        print_ablation(
            "ablate-consecutive — consecutive vs round-robin local grants (knn, env-local)",
            experiments::ablate_consecutive(&net, DEFAULT_SEED),
        );
    }
    if run("ablate-contention") {
        print_ablation(
            "ablate-contention — remote-file selection under contention (knn, env-17/83)",
            experiments::ablate_contention(&net, DEFAULT_SEED),
        );
    }
    if run("ablate-stealing") {
        print_ablation(
            "ablate-stealing — work stealing on/off (knn, env-17/83)",
            experiments::ablate_stealing(&net, DEFAULT_SEED),
        );
    }
    if run("ablate-retrieval") {
        print_ablation(
            "ablate-retrieval — parallel connections per S3 fetch (knn, env-cloud)",
            experiments::ablate_retrieval_streams(&net, DEFAULT_SEED),
        );
    }
    if run("ablate-prefetch") {
        print_ablation(
            "ablate-prefetch — master refill low-water mark under a stressed 1s head RTT (knn, env-cloud)",
            experiments::ablate_prefetch(&net, DEFAULT_SEED),
        );
    }
    if run("ablate-overlap") {
        let smoke = args.iter().any(|a| a == "--smoke");
        let rows = experiments::ablate_overlap(&net, DEFAULT_SEED);
        if smoke {
            let again = experiments::ablate_overlap(&net, DEFAULT_SEED);
            let mut ok = true;
            if rows != again {
                eprintln!("ablate-overlap smoke: rows differ between runs (non-deterministic)");
                ok = false;
            }
            if rows[1].total_s >= rows[0].total_s {
                eprintln!(
                    "ablate-overlap smoke: depth 1 ({:.2}s) does not beat serial ({:.2}s)",
                    rows[1].total_s, rows[0].total_s
                );
                ok = false;
            }
            if !ok {
                std::process::exit(1);
            }
            println!(
                "ablate-overlap smoke: deterministic; depth 1 beats serial ({:.2}s -> {:.2}s, {:.2}x)",
                rows[0].total_s,
                rows[1].total_s,
                rows[0].total_s / rows[1].total_s
            );
        }
        print_ablation(
            "ablate-overlap — slave prefetch pipeline: retrieval overlapped with compute (kmeans, env-cloud)",
            rows,
        );
    }
    if run("multicloud") {
        print_multicloud(&net);
    }
    if run("sweep-wan") {
        print_wan_sweep(&net);
    }
    if run("sweep-robj") {
        print_robj_sweep(&net);
    }
    if run("seeds") {
        print_seed_spread(&net);
    }
    if run("timeline") {
        print_timeline(&net);
    }
    if run("ablate-jitter") {
        print_ablation(
            "ablate-jitter — EC2 variability under pool balancing (kmeans, env-50/50)",
            experiments::ablate_jitter(&net, DEFAULT_SEED),
        );
    }
    if run("ablate-failures") {
        print_failure_ablation(&net);
    }

    if let Some(dir) = json_dir {
        write_json(&dir, what, &net);
    }
}

/// Serialize the selected experiments' structured rows into `dir`.
fn write_json(dir: &std::path::Path, what: &str, net: &NetConstants) {
    std::fs::create_dir_all(dir).expect("create json output dir");
    let run = |name: &str| what == "all" || what == name;
    let write = |name: &str, value: serde_json::Value| {
        let path = dir.join(format!("{name}.json"));
        std::fs::write(&path, serde_json::to_string_pretty(&value).unwrap())
            .unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
        println!("wrote {}", path.display());
    };
    for (name, app) in [
        ("fig3a", App::Knn),
        ("fig3b", App::KMeans),
        ("fig3c", App::PageRank),
    ] {
        if run(name) {
            let rows = experiments::run_fig3(app, net, DEFAULT_SEED);
            write(name, serde_json::to_value(&rows).unwrap());
        }
    }
    for (name, app) in [
        ("fig4a", App::Knn),
        ("fig4b", App::KMeans),
        ("fig4c", App::PageRank),
    ] {
        if run(name) {
            let rows = experiments::run_fig4(app, net, DEFAULT_SEED);
            write(name, serde_json::to_value(&rows).unwrap());
        }
    }
    if run("table1") {
        let rows: Vec<_> = App::ALL
            .into_iter()
            .flat_map(|app| {
                let fig3 = experiments::run_fig3(app, net, DEFAULT_SEED);
                experiments::table1(app, &fig3)
            })
            .collect();
        write("table1", serde_json::to_value(&rows).unwrap());
    }
    if run("table2") {
        let rows: Vec<_> = App::ALL
            .into_iter()
            .flat_map(|app| {
                let fig3 = experiments::run_fig3(app, net, DEFAULT_SEED);
                experiments::table2(app, &fig3)
            })
            .collect();
        write("table2", serde_json::to_value(&rows).unwrap());
    }
    if run("sweep-wan") {
        let rows = experiments::sweep_wan(App::PageRank, net, DEFAULT_SEED);
        write("sweep-wan", serde_json::to_value(&rows).unwrap());
    }
    if run("sweep-robj") {
        let rows = experiments::sweep_robj(net, DEFAULT_SEED);
        write("sweep-robj", serde_json::to_value(&rows).unwrap());
    }
    if run("ablate-prefetch") {
        let rows = experiments::ablate_prefetch(net, DEFAULT_SEED);
        write("ablate-prefetch", serde_json::to_value(&rows).unwrap());
    }
    if run("ablate-overlap") {
        let rows = experiments::ablate_overlap(net, DEFAULT_SEED);
        write("ablate-overlap", serde_json::to_value(&rows).unwrap());
    }
    if run("multicloud") {
        let rows = experiments::run_multicloud(App::Knn, net, DEFAULT_SEED);
        write("multicloud", serde_json::to_value(&rows).unwrap());
    }
    if run("ablate-failures") {
        let rows = experiments::ablate_failures(net, DEFAULT_SEED);
        write("ablate-failures", serde_json::to_value(&rows).unwrap());
    }
}

fn banner(title: &str) {
    println!("\n== {title} ==");
}

fn print_fig1() {
    banner("fig1 — API comparison (real execution, 3 APIs × 2 workloads)");
    let mut rows = fig1::wordcount_comparison(2_000_000, 16);
    rows.extend(fig1::kmeans_comparison(400_000, 4, 64, 16));
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.workload.to_string(),
                r.api.to_string(),
                format!("{:.3}", r.wall_s),
                r.shuffled_pairs.to_string(),
                r.peak_pairs.to_string(),
                r.state_bytes.to_string(),
            ]
        })
        .collect();
    print!(
        "{}",
        table(
            &[
                "workload",
                "api",
                "wall(s)",
                "shuffled pairs",
                "peak buffered",
                "state bytes"
            ],
            &table_rows
        )
    );
    println!("paper's claim: combine cuts shuffle volume but still buffers pairs; GR has no intermediate pairs at all.");
}

fn print_fig3(name: &str, app: App, net: &NetConstants) {
    banner(&format!(
        "{name} — Fig. 3 ({}) execution over the five environments [simulated at 120 GB scale]",
        app.name()
    ));
    let rows = experiments::run_fig3(app, net, DEFAULT_SEED);
    let base = rows[0].report.total_s;
    let t: Vec<Vec<String>> = rows
        .iter()
        .flat_map(|r| {
            r.report.clusters.iter().map(move |c| {
                vec![
                    r.env.clone(),
                    format!("({},{})", r.local_cores, r.cloud_cores),
                    c.name.clone(),
                    s2(c.processing_s),
                    s2(c.retrieval_s),
                    s2(c.sync_s),
                    s2(r.report.total_s),
                    pct((r.report.total_s - base) / base),
                ]
            })
        })
        .collect();
    print!(
        "{}",
        table(
            &["env", "cores", "cluster", "proc(s)", "retr(s)", "sync(s)", "total(s)", "vs local"],
            &t
        )
    );
}

fn print_table1(net: &NetConstants) {
    banner("table1 — job assignment per application [simulated | paper]");
    let mut rows = Vec::new();
    for app in App::ALL {
        let fig3 = experiments::run_fig3(app, net, DEFAULT_SEED);
        let ours = experiments::table1(app, &fig3);
        let paper: &[(&str, u64, u64, u64)] = match app {
            App::Knn => &calib::paper::TABLE1_KNN,
            App::KMeans => &calib::paper::TABLE1_KMEANS,
            App::PageRank => &calib::paper::TABLE1_PAGERANK,
        };
        for (o, p) in ours.iter().zip(paper) {
            rows.push(vec![
                o.app.clone(),
                o.env.clone(),
                format!("{} | {}", o.ec2_jobs, p.1),
                format!("{} | {}", o.local_jobs, p.2),
                format!("{} | {}", o.local_stolen, p.3),
            ]);
        }
    }
    print!(
        "{}",
        table(
            &[
                "app",
                "env",
                "EC2 jobs (sim|paper)",
                "local jobs (sim|paper)",
                "stolen (sim|paper)"
            ],
            &rows
        )
    );
}

fn print_table2(net: &NetConstants) {
    banner("table2 — overheads and slowdowns [simulated | paper]");
    let mut rows = Vec::new();
    for app in App::ALL {
        let fig3 = experiments::run_fig3(app, net, DEFAULT_SEED);
        let ours = experiments::table2(app, &fig3);
        let paper: &[(&str, f64, f64, f64, f64)] = match app {
            App::Knn => &calib::paper::TABLE2_KNN,
            App::KMeans => &calib::paper::TABLE2_KMEANS,
            App::PageRank => &calib::paper::TABLE2_PAGERANK,
        };
        for (o, p) in ours.iter().zip(paper) {
            rows.push(vec![
                o.app.clone(),
                o.env.clone(),
                format!("{} | {}", s2(o.global_reduction_s), p.1),
                format!("{} | {}", s2(o.idle_local_s), p.2),
                format!("{} | {}", s2(o.idle_ec2_s), p.3),
                format!("{} | {}", s2(o.total_slowdown_s), p.4),
                pct(o.slowdown_ratio),
            ]);
        }
    }
    print!(
        "{}",
        table(
            &[
                "app",
                "env",
                "glob.red (sim|paper)",
                "idle local",
                "idle EC2",
                "slowdown(s)",
                "ratio"
            ],
            &rows
        )
    );
}

fn print_fig4(name: &str, app: App, net: &NetConstants) {
    banner(&format!(
        "{name} — Fig. 4 ({}) scalability, all data in S3 [simulated | paper speedups]",
        app.name()
    ));
    let rows = experiments::run_fig4(app, net, DEFAULT_SEED);
    let paper: &[f64; 3] = match app {
        App::Knn => &calib::paper::FIG4_SPEEDUPS_KNN,
        App::KMeans => &calib::paper::FIG4_SPEEDUPS_KMEANS,
        App::PageRank => &calib::paper::FIG4_SPEEDUPS_PAGERANK,
    };
    let t: Vec<Vec<String>> = rows
        .iter()
        .enumerate()
        .map(|(i, r)| {
            let local = r.report.cluster("local");
            let ec2 = r.report.cluster("EC2");
            vec![
                format!("({m},{m})", m = r.cores_each),
                s2(r.report.total_s),
                local.map(|c| s2(c.retrieval_s)).unwrap_or_default(),
                ec2.map(|c| s2(c.retrieval_s)).unwrap_or_default(),
                r.speedup_pct
                    .map(|s| format!("{s:.1}%"))
                    .unwrap_or_else(|| "-".into()),
                if i > 0 {
                    format!("{:.1}%", paper[i - 1])
                } else {
                    "-".into()
                },
            ]
        })
        .collect();
    print!(
        "{}",
        table(
            &[
                "cores",
                "total(s)",
                "retr local(s)",
                "retr EC2(s)",
                "speedup sim",
                "speedup paper"
            ],
            &t
        )
    );
}

fn print_headline(net: &NetConstants) {
    banner("headline — abstract's summary numbers [simulated | paper]");
    let slow = experiments::average_slowdown_pct(net, DEFAULT_SEED);
    let speed = experiments::average_speedup_pct(net, DEFAULT_SEED);
    println!(
        "average hybrid slowdown: {:.2}% | paper {:.2}%",
        slow,
        calib::paper::AVG_SLOWDOWN_PCT
    );
    println!(
        "average speedup per core doubling: {:.1}% | paper {:.1}%",
        speed,
        calib::paper::AVG_SPEEDUP_PCT
    );
}

fn print_ablation(title: &str, rows: Vec<experiments::AblationRow>) {
    banner(title);
    let t: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.variant.clone(),
                s2(r.total_s),
                s2(r.retrieval_local_s),
                s2(r.retrieval_ec2_s),
                s2(r.idle_max_s),
                r.stolen_jobs.to_string(),
            ]
        })
        .collect();
    print!(
        "{}",
        table(
            &[
                "variant",
                "total(s)",
                "retr local(s)",
                "retr EC2(s)",
                "max idle(s)",
                "stolen"
            ],
            &t
        )
    );
}

fn print_failure_ablation(net: &NetConstants) {
    banner("ablate-failures — recovery cost under escalating fault schedules (knn, env-50/50)");
    let rows = experiments::ablate_failures(net, DEFAULT_SEED);
    let t: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.variant.clone(),
                s2(r.total_s),
                format!("{:.1}%", r.penalty_pct),
                r.fetch_failures.to_string(),
                r.jobs_reenqueued.to_string(),
                r.slaves_killed.to_string(),
                r.local_stolen.to_string(),
            ]
        })
        .collect();
    print!(
        "{}",
        table(
            &[
                "fault schedule",
                "total(s)",
                "penalty",
                "fetch fails",
                "re-enqueued",
                "killed",
                "local stolen"
            ],
            &t
        )
    );
    println!("the GR recovery model in action: failures cost re-execution time, never results.");
}

fn print_multicloud(net: &NetConstants) {
    banner("multicloud — extension: local + two cloud providers (knn, 16 cores/site)");
    let rows = experiments::run_multicloud(App::Knn, net, DEFAULT_SEED);
    let t: Vec<Vec<String>> = rows
        .iter()
        .flat_map(|r| {
            r.report.clusters.iter().map(move |c| {
                vec![
                    format!("{:.0}% local", r.frac_local * 100.0),
                    c.name.clone(),
                    c.jobs_processed.to_string(),
                    c.jobs_stolen.to_string(),
                    s2(c.retrieval_s),
                    s2(r.report.total_s),
                ]
            })
        })
        .collect();
    print!(
        "{}",
        table(
            &[
                "data split",
                "cluster",
                "jobs",
                "stolen",
                "retr(s)",
                "total(s)"
            ],
            &t
        )
    );
    println!("the middleware is provider-count agnostic: three sites, one job pool.");
}

fn print_wan_sweep(net: &NetConstants) {
    banner(
        "sweep-wan — dedicated high-speed WAN collapses the bursting penalty (pagerank, env-17/83)",
    );
    let rows = experiments::sweep_wan(App::PageRank, net, DEFAULT_SEED);
    let t: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{:.0}x", r.wan_multiplier),
                s2(r.total_s),
                format!("{:.1}%", r.slowdown_pct),
                s2(r.global_reduction_s),
            ]
        })
        .collect();
    print!(
        "{}",
        table(
            &[
                "WAN capacity",
                "total(s)",
                "slowdown vs env-local",
                "global red(s)"
            ],
            &t
        )
    );
}

fn print_robj_sweep(net: &NetConstants) {
    banner(
        "sweep-robj — reduction-object size vs bursting feasibility (pagerank profile, env-50/50)",
    );
    let rows = experiments::sweep_robj(net, DEFAULT_SEED);
    let t: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{:.1} MB", r.robj_mb),
                s2(r.total_s),
                s2(r.global_reduction_s),
                pct(r.global_fraction),
                format!("{:.1}%", r.slowdown_pct),
            ]
        })
        .collect();
    print!(
        "{}",
        table(
            &[
                "robj size",
                "total(s)",
                "global red(s)",
                "share of run",
                "slowdown vs env-local"
            ],
            &t
        )
    );
    println!(
        "the paper's conclusion quantified: bursting stays cheap until the robj rivals the data."
    );
}

fn print_seed_spread(net: &NetConstants) {
    banner(
        "seeds — run-to-run spread under EC2 jitter (knn, 5 seeds per env; paper kept best of >=3)",
    );
    let rows = experiments::seed_sensitivity(App::Knn, net, 5);
    let t: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.env.clone(),
                s2(r.min_s),
                s2(r.mean_s),
                s2(r.max_s),
                format!("{:.2}%", r.cv_pct),
            ]
        })
        .collect();
    print!(
        "{}",
        table(&["env", "min(s)", "mean(s)", "max(s)", "cv"], &t)
    );
    println!("pool-based balancing keeps the spread tight even with jittery instances.");
}

fn print_timeline(net: &NetConstants) {
    banner("timeline — per-slave activity, knn env-33/67 (█ process, ▒ fetch, ◆ robj)");
    let (report, trace) = experiments::run_timeline(App::Knn, net, DEFAULT_SEED);
    print!("{}", trace.render_gantt(100));
    for (ci, c) in report.clusters.iter().enumerate() {
        println!(
            "{:<6} mean slave utilization {:.1}%",
            c.name,
            trace.cluster_utilization(ci) * 100.0
        );
    }
}
