//! The Fig. 1 experiment: the same computation expressed three ways —
//! MapReduce, MapReduce + combiner, and generalized reduction — measured on
//! real data for wall time, shuffle volume, and peak intermediate pairs.
//!
//! This is the paper's §III-A argument made quantitative: the combiner cuts
//! *communication* but still materializes intermediate `(k,v)` pairs on the
//! map side; generalized reduction folds directly into the reduction object
//! and has no intermediate pairs at all.

use cb_apps::kmeans::{Centroids, KMeansApp};
use cb_apps::mr_adapters::{KMeansMR, WordCountMR};
use cb_apps::wordcount::WordCountApp;
use cb_mapreduce::{run_mapreduce, MRConfig};
use cb_simnet::DetRng;
use cloudburst_core::api::{reduce_units, GRApp, ReductionObject};
use std::time::Instant;

/// One row of the comparison.
#[derive(Debug, Clone)]
pub struct Fig1Row {
    pub workload: &'static str,
    pub api: &'static str,
    pub wall_s: f64,
    /// Intermediate pairs that crossed the shuffle (0 for GR — there is no
    /// shuffle).
    pub shuffled_pairs: u64,
    /// Peak simultaneously-buffered intermediate pairs (GR: 0).
    pub peak_pairs: u64,
    /// Bytes of reduction state per worker (GR robj / reducer groups).
    pub state_bytes: u64,
}

/// Generate `n` words with a skewed distribution.
fn words(n: usize, vocab: u64, seed: u64) -> Vec<u64> {
    let mut rng = DetRng::new(seed);
    (0..n)
        .map(|_| {
            let u = rng.uniform();
            ((u * u * u) * vocab as f64) as u64 % vocab
        })
        .collect()
}

/// Generate `n` points in `dim` dimensions.
fn points(n: usize, dim: usize, seed: u64) -> Vec<Vec<f32>> {
    let mut rng = DetRng::new(seed);
    (0..n)
        .map(|_| (0..dim).map(|_| (rng.uniform() * 10.0) as f32).collect())
        .collect()
}

/// Run the wordcount comparison over `n_words` words in `splits` splits.
pub fn wordcount_comparison(n_words: usize, splits: usize) -> Vec<Fig1Row> {
    let all = words(n_words, 50_000, 42);
    let split_vecs: Vec<Vec<u64>> = all
        .chunks(n_words.div_ceil(splits))
        .map(|c| c.to_vec())
        .collect();
    let mut rows = Vec::new();

    // MapReduce, no combiner.
    let t = Instant::now();
    let (_, stats) = run_mapreduce(&WordCountMR, split_vecs.clone(), &MRConfig::default());
    rows.push(Fig1Row {
        workload: "wordcount",
        api: "MapReduce",
        wall_s: t.elapsed().as_secs_f64(),
        shuffled_pairs: stats.pairs_shuffled,
        peak_pairs: stats.peak_buffered_pairs,
        state_bytes: stats.keys_reduced * 16,
    });

    // MapReduce + combiner.
    let t = Instant::now();
    let (_, stats) = run_mapreduce(
        &WordCountMR,
        split_vecs.clone(),
        &MRConfig {
            use_combiner: true,
            flush_threshold: 16 * 1024,
            ..Default::default()
        },
    );
    rows.push(Fig1Row {
        workload: "wordcount",
        api: "MR + combine",
        wall_s: t.elapsed().as_secs_f64(),
        shuffled_pairs: stats.pairs_shuffled,
        peak_pairs: stats.peak_buffered_pairs,
        state_bytes: stats.keys_reduced * 16,
    });

    // Generalized reduction: fold every split into a robj, merge.
    let t = Instant::now();
    let app = WordCountApp;
    let mut robjs: Vec<_> = split_vecs
        .iter()
        .map(|split| {
            let mut r = app.init(&());
            for w in split {
                app.local_reduce(&(), &mut r, w);
            }
            r
        })
        .collect();
    let mut acc = robjs.remove(0);
    for r in robjs {
        acc.merge(r);
    }
    rows.push(Fig1Row {
        workload: "wordcount",
        api: "GenReduction",
        wall_s: t.elapsed().as_secs_f64(),
        shuffled_pairs: 0,
        peak_pairs: 0,
        state_bytes: acc.size_bytes() as u64,
    });
    rows
}

/// Run the k-means (one pass) comparison.
pub fn kmeans_comparison(n_points: usize, dim: usize, k: usize, splits: usize) -> Vec<Fig1Row> {
    let pts = points(n_points, dim, 7);
    let centroids = Centroids::new(
        dim,
        points(k, dim, 8)
            .into_iter()
            .flatten()
            .map(|x| x as f64)
            .collect(),
    );
    let split_vecs: Vec<Vec<Vec<f32>>> = pts
        .chunks(n_points.div_ceil(splits))
        .map(|c| c.to_vec())
        .collect();
    let mut rows = Vec::new();

    let job = KMeansMR::new(centroids.clone());
    let t = Instant::now();
    let (_, stats) = run_mapreduce(&job, split_vecs.clone(), &MRConfig::default());
    rows.push(Fig1Row {
        workload: "kmeans",
        api: "MapReduce",
        wall_s: t.elapsed().as_secs_f64(),
        shuffled_pairs: stats.pairs_shuffled,
        peak_pairs: stats.peak_buffered_pairs,
        state_bytes: stats.keys_reduced * (dim as u64 * 8 + 8),
    });

    let t = Instant::now();
    let (_, stats) = run_mapreduce(
        &job,
        split_vecs.clone(),
        &MRConfig {
            use_combiner: true,
            flush_threshold: 4096,
            ..Default::default()
        },
    );
    rows.push(Fig1Row {
        workload: "kmeans",
        api: "MR + combine",
        wall_s: t.elapsed().as_secs_f64(),
        shuffled_pairs: stats.pairs_shuffled,
        peak_pairs: stats.peak_buffered_pairs,
        state_bytes: stats.keys_reduced * (dim as u64 * 8 + 8),
    });

    let app = KMeansApp::new(dim, k);
    let t = Instant::now();
    let mut robjs: Vec<_> = split_vecs
        .iter()
        .map(|split| {
            let mut r = app.init(&centroids);
            reduce_units(&app, &centroids, &mut r, split);
            r
        })
        .collect();
    let mut acc = robjs.remove(0);
    for r in robjs {
        acc.merge(r);
    }
    rows.push(Fig1Row {
        workload: "kmeans",
        api: "GenReduction",
        wall_s: t.elapsed().as_secs_f64(),
        shuffled_pairs: 0,
        peak_pairs: 0,
        state_bytes: acc.size_bytes() as u64,
    });
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wordcount_rows_show_the_fig1_ordering() {
        let rows = wordcount_comparison(200_000, 8);
        assert_eq!(rows.len(), 3);
        let mr = &rows[0];
        let mrc = &rows[1];
        let gr = &rows[2];
        assert!(mrc.shuffled_pairs < mr.shuffled_pairs);
        assert_eq!(gr.shuffled_pairs, 0);
        assert_eq!(gr.peak_pairs, 0);
        assert!(mrc.peak_pairs < mr.peak_pairs);
    }

    #[test]
    fn kmeans_rows_show_the_fig1_ordering() {
        let rows = kmeans_comparison(50_000, 4, 16, 8);
        let mr = &rows[0];
        let mrc = &rows[1];
        let gr = &rows[2];
        assert!(mrc.shuffled_pairs < mr.shuffled_pairs / 10);
        assert_eq!(gr.shuffled_pairs, 0);
        assert!(gr.state_bytes > 0);
    }
}
