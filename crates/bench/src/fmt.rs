//! Plain-text table rendering for the `repro` harness.

/// Render rows as an aligned table. `header` and every row must have the
/// same arity.
pub fn table(header: &[&str], rows: &[Vec<String>]) -> String {
    let cols = header.len();
    let mut width = vec![0usize; cols];
    for (i, h) in header.iter().enumerate() {
        width[i] = h.len();
    }
    for r in rows {
        assert_eq!(r.len(), cols, "ragged table row");
        for (i, cell) in r.iter().enumerate() {
            width[i] = width[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: Vec<String>, width: &[usize]| -> String {
        let mut line = String::new();
        for (i, c) in cells.iter().enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            line.push_str(&format!("{:>w$}", c, w = width[i]));
        }
        line.push('\n');
        line
    };
    out.push_str(&fmt_row(
        header.iter().map(|s| s.to_string()).collect(),
        &width,
    ));
    let total: usize = width.iter().sum::<usize>() + 2 * (cols - 1);
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for r in rows {
        out.push_str(&fmt_row(r.clone(), &width));
    }
    out
}

/// `123.456` → `"123.46"`.
pub fn s2(x: f64) -> String {
    format!("{x:.2}")
}

/// `0.1234` → `"12.3%"`.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aligns_columns() {
        let t = table(
            &["name", "value"],
            &[
                vec!["a".into(), "1".into()],
                vec!["long-name".into(), "42".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[3].ends_with("42"));
        // All data lines have the same width.
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_rejected() {
        table(&["a", "b"], &[vec!["only-one".into()]]);
    }

    #[test]
    fn formatters() {
        assert_eq!(s2(1.2345), "1.23");
        assert_eq!(pct(0.155), "15.5%");
    }
}
