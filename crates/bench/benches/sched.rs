//! Scheduler microbenchmarks: the head's job pool at paper scale
//! (960 jobs), under both assignment policies, plus master-queue ops.

use cb_storage::layout::{LocationId, Placement};
use cb_storage::organizer::organize_even;
use cloudburst_core::sched::master::MasterPool;
use cloudburst_core::sched::pool::{JobPool, PoolConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

const L: LocationId = LocationId(0);
const C: LocationId = LocationId(1);

/// Drain a 960-job pool with two alternating clusters.
fn drain_pool(cfg: &PoolConfig) -> u64 {
    let layout = organize_even(32, 30 * 64, 64, 8).unwrap();
    let placement = Placement::split_fraction(32, 0.33, L, C);
    let mut pool = JobPool::new(&layout, &placement, cfg.clone());
    let mut held = Vec::new();
    let mut completed = 0u64;
    let mut turn = false;
    while !pool.all_done() {
        turn = !turn;
        let loc = if turn { L } else { C };
        let g = pool.request(loc);
        if g.is_empty() {
            // Complete everything held and loop again.
            for (loc, j) in held.drain(..) {
                pool.complete(loc, j);
                completed += 1;
            }
            continue;
        }
        for j in g.jobs {
            held.push((loc, j));
        }
    }
    completed
}

fn bench_pool(c: &mut Criterion) {
    let mut g = c.benchmark_group("job_pool_drain_960");
    for (name, cfg) in [
        ("consecutive", PoolConfig::default()),
        (
            "round_robin",
            PoolConfig {
                consecutive: false,
                ..Default::default()
            },
        ),
        (
            "no_stealing",
            PoolConfig {
                allow_stealing: false,
                ..Default::default()
            },
        ),
    ] {
        g.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| black_box(drain_pool(&cfg)))
        });
    }
    g.finish();
}

fn bench_master_pool(c: &mut Criterion) {
    c.bench_function("master_pool_grant_take_1k", |b| {
        b.iter(|| {
            let mut mp = MasterPool::new(4);
            let mut taken = 0usize;
            for batch in 0..100u32 {
                mp.mark_requested();
                mp.on_grant(
                    (0..10).map(|i| cb_storage::layout::ChunkId(batch * 10 + i)),
                    batch % 2 == 0,
                );
                while let Some(j) = mp.take() {
                    taken += black_box(j.chunk.0 as usize) & 1;
                }
            }
            taken
        })
    });
}

criterion_group!(benches, bench_pool, bench_master_pool);
criterion_main!(benches);
