//! Substrate benchmarks: event-queue and DES-engine throughput, and the
//! fair-share link under churn — the costs that bound how fast the
//! simulator can regenerate a figure.

use cb_simnet::engine::{Ctx, Engine, World};
use cb_simnet::event::EventQueue;
use cb_simnet::link::FairShareLink;
use cb_simnet::time::{SimDur, SimTime};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

fn bench_event_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("event_queue");
    let n = 10_000u64;
    g.throughput(Throughput::Elements(n));
    g.bench_function("push_pop_10k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..n {
                // Pseudo-shuffled timestamps exercise heap reordering.
                q.push(SimTime((i * 2_654_435_761) % 1_000_000), i);
            }
            let mut acc = 0u64;
            while let Some((_, e)) = q.pop() {
                acc ^= e;
            }
            black_box(acc)
        })
    });
    g.finish();
}

/// A self-perpetuating event chain: measures pure engine dispatch.
struct Chain {
    remaining: u64,
}

impl World for Chain {
    type Event = ();
    fn handle(&mut self, ctx: &mut Ctx<'_, ()>, _ev: ()) {
        if self.remaining > 0 {
            self.remaining -= 1;
            ctx.schedule_after(SimDur::from_nanos(1), ());
        }
    }
}

fn bench_engine(c: &mut Criterion) {
    let mut g = c.benchmark_group("des_engine");
    let n = 100_000u64;
    g.throughput(Throughput::Elements(n));
    g.bench_function("dispatch_100k_events", |b| {
        b.iter(|| {
            let mut eng = Engine::new(Chain { remaining: n });
            eng.schedule(SimTime::ZERO, ());
            black_box(eng.run())
        })
    });
    g.finish();
}

fn bench_link(c: &mut Criterion) {
    let mut g = c.benchmark_group("fair_share_link");
    for flows in [8usize, 64, 256] {
        g.bench_function(format!("churn_{flows}_flows"), |b| {
            b.iter(|| {
                let mut link = FairShareLink::with_capacity(1.0e9);
                let mut now = SimTime::ZERO;
                // Start a staggered population, then drain it.
                for i in 0..flows {
                    link.start_flow(now, 1_000_000 + i as u64, i as u64);
                    now += SimDur::from_micros(100);
                }
                let mut done = 0;
                while let Some(t) = link.next_completion() {
                    done += link.poll_completed(t).len();
                }
                black_box(done)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_event_queue, bench_engine, bench_link);
criterion_main!(benches);
