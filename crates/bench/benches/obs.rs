//! Observability overhead: the no-subscriber fast path.
//!
//! The contract (docs/OBSERVABILITY.md) is that a disabled
//! [`SinkHandle`] costs one `Option` branch per emission point — cheap
//! enough to leave the hooks compiled into every hot loop. This bench
//! measures an emission-heavy workload with the sink disabled against the
//! same workload with no emit calls at all, and *asserts* the relative
//! overhead stays under 2% (with an absolute floor: sub-nanosecond
//! per-emit deltas pass regardless, since at that scale the measurement is
//! dominated by noise). A third case records every event, to show what a
//! live subscriber costs for comparison.
//!
//! [`SinkHandle`]: cloudburst_core::obs::SinkHandle

use cloudburst_core::obs::{EventKind, RecordingSink, SinkHandle};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

/// The workload each variant folds: enough arithmetic per "job" that the
/// ratio reflects a realistic emission density (one emit per job), not an
/// empty loop.
const JOBS: u64 = 20_000;

fn fold_job(i: u64) -> u64 {
    // A serial multiply-add chain (~250 dependent ops), standing in for
    // decode + local_reduce of a chunk — still far *lighter* than a real
    // job, so the measured emit ratio is a conservative upper bound.
    let mut acc = i | 1;
    for k in 0..250 {
        acc = black_box(acc)
            .wrapping_mul(6364136223846793005)
            .wrapping_add(k);
    }
    acc
}

fn workload(sink: Option<&SinkHandle>) -> u64 {
    let mut acc = 0u64;
    for i in 0..JOBS {
        acc ^= fold_job(black_box(i));
        if let Some(s) = sink {
            s.emit(
                Some(0),
                Some(0),
                EventKind::ProcessEnd {
                    chunk: i,
                    units: 64,
                    ns: acc & 0xffff,
                    stolen: false,
                },
            );
        }
    }
    acc
}

/// Time `f` over `reps` repetitions, best-of-3 to shed scheduler noise.
fn time_it<F: FnMut() -> u64>(mut f: F, reps: u32) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let t = Instant::now();
        let mut sink = 0u64;
        for _ in 0..reps {
            sink ^= f();
        }
        black_box(sink);
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

fn bench_emit(c: &mut Criterion) {
    let mut g = c.benchmark_group("obs_emit_per_job");
    g.bench_function("no_hooks", |b| b.iter(|| workload(None)));
    let disabled = SinkHandle::disabled();
    g.bench_function("sink_disabled", |b| b.iter(|| workload(Some(&disabled))));
    let rec = RecordingSink::new();
    let live = SinkHandle::new(Arc::clone(&rec) as _);
    g.bench_function("sink_recording", |b| {
        b.iter(|| {
            let acc = workload(Some(&live));
            rec.take();
            acc
        })
    });
    g.finish();

    // The hard gate: disabled-sink overhead < 2% of the baseline, or below
    // an absolute floor of 1ns per emission (where the delta is noise).
    let base = time_it(|| workload(None), 5);
    let gated = time_it(|| workload(Some(&disabled)), 5);
    let overhead = (gated - base) / base;
    let per_emit_ns = (gated - base) / (5.0 * JOBS as f64) * 1e9;
    println!(
        "disabled-sink overhead: {:.2}% ({:.3} ns/emit)",
        overhead * 100.0,
        per_emit_ns
    );
    assert!(
        overhead < 0.02 || per_emit_ns < 1.0,
        "no-subscriber fast path too slow: {:.2}% overhead, {:.3} ns/emit",
        overhead * 100.0,
        per_emit_ns
    );
}

criterion_group!(benches, bench_emit);
criterion_main!(benches);
