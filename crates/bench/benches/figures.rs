//! Figure-regeneration benchmarks: how long the calibrated simulator takes
//! to reproduce one paper environment or sweep. (Each "iteration" is a
//! complete 120 GB / 960-job experiment in virtual time.)

use cb_sim::calib::{self, App, NetConstants};
use cb_sim::experiments::{run_fig3, run_fig4, DEFAULT_SEED};
use cb_sim::model::simulate;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_single_env(c: &mut Criterion) {
    let net = NetConstants::default();
    let mut g = c.benchmark_group("simulate_one_env");
    for app in App::ALL {
        let env = &calib::fig3_envs(app)[4]; // env-17/83: most events
        g.bench_function(BenchmarkId::from_parameter(app.name()), |b| {
            b.iter(|| {
                let params = calib::build_params(app, env, &net, DEFAULT_SEED);
                black_box(simulate(params).unwrap().total_s)
            })
        });
    }
    g.finish();
}

fn bench_full_figures(c: &mut Criterion) {
    let net = NetConstants::default();
    let mut g = c.benchmark_group("regenerate_figure");
    g.sample_size(10);
    g.bench_function("fig3_knn_all_envs", |b| {
        b.iter(|| black_box(run_fig3(App::Knn, &net, DEFAULT_SEED).len()))
    });
    g.bench_function("fig4_pagerank_sweep", |b| {
        b.iter(|| black_box(run_fig4(App::PageRank, &net, DEFAULT_SEED).len()))
    });
    g.finish();
}

criterion_group!(benches, bench_single_env, bench_full_figures);
criterion_main!(benches);
