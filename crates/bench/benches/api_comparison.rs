//! Fig. 1 as a benchmark: the same workload on MapReduce, MapReduce with
//! combiner, and generalized reduction. Criterion gives the wall-time side
//! of the comparison; `repro fig1` prints the memory/shuffle side.

use cb_apps::mr_adapters::WordCountMR;
use cb_apps::wordcount::WordCountApp;
use cb_mapreduce::{run_mapreduce, MRConfig};
use cb_simnet::DetRng;
use cloudburst_core::api::{GRApp, ReductionObject};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

const WORDS: usize = 500_000;
const SPLITS: usize = 16;

fn make_splits() -> Vec<Vec<u64>> {
    let mut rng = DetRng::new(77);
    let all: Vec<u64> = (0..WORDS)
        .map(|_| {
            let u = rng.uniform();
            ((u * u * u) * 20_000.0) as u64 % 20_000
        })
        .collect();
    all.chunks(WORDS / SPLITS).map(|c| c.to_vec()).collect()
}

fn bench_apis(c: &mut Criterion) {
    let splits = make_splits();
    let mut g = c.benchmark_group("wordcount_500k");
    g.throughput(Throughput::Elements(WORDS as u64));
    g.sample_size(20);

    g.bench_function(BenchmarkId::from_parameter("mapreduce"), |b| {
        b.iter(|| {
            let (out, _) = run_mapreduce(&WordCountMR, splits.clone(), &MRConfig::default());
            black_box(out.len())
        })
    });

    g.bench_function(BenchmarkId::from_parameter("mapreduce_combine"), |b| {
        let cfg = MRConfig {
            use_combiner: true,
            flush_threshold: 8192,
            ..Default::default()
        };
        b.iter(|| {
            let (out, _) = run_mapreduce(&WordCountMR, splits.clone(), &cfg);
            black_box(out.len())
        })
    });

    g.bench_function(BenchmarkId::from_parameter("generalized_reduction"), |b| {
        let app = WordCountApp;
        let app = &app;
        b.iter(|| {
            // Parallel folding, then merge — same thread count as the MR
            // engine's default mappers.
            let robjs: Vec<_> = std::thread::scope(|scope| {
                let handles: Vec<_> = splits
                    .chunks(splits.len().div_ceil(4))
                    .map(|group| {
                        scope.spawn(move || {
                            let mut r = app.init(&());
                            for split in group {
                                for w in split {
                                    app.local_reduce(&(), &mut r, w);
                                }
                            }
                            r
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            });
            let mut acc = app.init(&());
            for r in robjs {
                acc.merge(r);
            }
            black_box(acc.len())
        })
    });
    g.finish();
}

criterion_group!(benches, bench_apis);
criterion_main!(benches);
