//! Reduction benchmarks: local-reduce rates of the three evaluation
//! applications and merge throughput of the combiner library — the costs
//! the simulator's `ns_per_unit` / `merge_bps` parameters abstract.

use cb_apps::gen::{GraphSpec, PointMode, PointsSpec};
use cb_apps::kmeans::{Centroids, KMeansApp};
use cb_apps::knn::{KnnApp, KnnQuery};
use cb_apps::pagerank::{PageRankApp, RankParams};
use cb_simnet::DetRng;
use cloudburst_core::api::{reduce_units, GRApp, ReductionObject};
use cloudburst_core::combine::{KeyedSum, TopK, VecSum};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use std::sync::Arc;

fn bench_local_reduce(c: &mut Criterion) {
    let mut g = c.benchmark_group("local_reduce_per_unit");

    // knn: 20k 4-d points against a k=1000 TopK.
    let spec = PointsSpec {
        n_files: 1,
        points_per_file: 20_000,
        points_per_chunk: 20_000,
        dim: 4,
        seed: 1,
        mode: PointMode::Uniform,
    };
    let layout = spec.layout();
    let knn = KnnApp::new(4, 1000);
    let query = KnnQuery {
        query: vec![0.5; 4],
    };
    let mut buf = vec![0u8; layout.chunks[0].len as usize];
    (spec.fill())(&layout.chunks[0], &mut buf);
    let units = knn.decode_chunk(&layout.chunks[0], &buf);
    g.throughput(Throughput::Elements(units.len() as u64));
    g.bench_function("knn_k1000", |b| {
        b.iter(|| {
            let mut robj = knn.init(&query);
            reduce_units(&knn, &query, &mut robj, &units);
            black_box(robj.len())
        })
    });

    // kmeans: same points against k=100 centroids.
    let km = KMeansApp::new(4, 100);
    let mut rng = DetRng::new(2);
    let centroids = Centroids::new(4, (0..400).map(|_| rng.uniform() * 10.0).collect());
    let km_units = km.decode_chunk(&layout.chunks[0], &buf);
    g.bench_function("kmeans_k100", |b| {
        b.iter(|| {
            let mut robj = km.init(&centroids);
            reduce_units(&km, &centroids, &mut robj, &km_units);
            black_box(robj.values()[0])
        })
    });

    // pagerank: 20k edges against a 100k-page rank vector.
    let gspec = GraphSpec {
        n_pages: 100_000,
        n_files: 1,
        edges_per_file: 20_000,
        edges_per_chunk: 20_000,
        seed: 3,
    };
    let glayout = gspec.layout();
    let pr = PageRankApp::new(gspec.n_pages);
    let params = RankParams::uniform(Arc::new({
        let mut d = gspec.out_degrees(&glayout);
        // Avoid zero-degree sources in the bench inner loop.
        for x in d.iter_mut() {
            *x = (*x).max(1);
        }
        d
    }));
    let mut gbuf = vec![0u8; glayout.chunks[0].len as usize];
    (gspec.fill())(&glayout.chunks[0], &mut gbuf);
    let edges = pr.decode_chunk(&glayout.chunks[0], &gbuf);
    g.bench_function("pagerank_100k_pages", |b| {
        b.iter(|| {
            let mut robj = pr.init(&params);
            reduce_units(&pr, &params, &mut robj, &edges);
            black_box(robj.values()[0])
        })
    });
    g.finish();
}

fn bench_merges(c: &mut Criterion) {
    let mut g = c.benchmark_group("robj_merge");

    // VecSum at pagerank scale (the 300 MB robj, scaled to 8 MB).
    let n = 1_000_000;
    let a = VecSum::from_vec(vec![1.0; n]);
    let b2 = VecSum::from_vec(vec![2.0; n]);
    g.throughput(Throughput::Bytes((n * 8) as u64));
    g.bench_function("vecsum_1M_f64", |bch| {
        bch.iter(|| {
            let mut x = a.clone();
            x.merge(b2.clone());
            black_box(x.values()[0])
        })
    });

    // TopK merge (knn's global reduction).
    let mut rng = DetRng::new(9);
    let mk = |rng: &mut DetRng| {
        let mut t = TopK::new(1000);
        for i in 0..10_000u64 {
            t.offer(rng.uniform(), i);
        }
        t
    };
    let t1 = mk(&mut rng);
    let t2 = mk(&mut rng);
    g.bench_function("topk_1000_merge", |bch| {
        bch.iter(|| {
            let mut x = t1.clone();
            x.merge(t2.clone());
            black_box(x.len())
        })
    });

    // KeyedSum merge (wordcount global reduction).
    let mk_ks = |salt: u64| {
        let mut k = KeyedSum::new();
        let mut rng = DetRng::new(salt);
        for _ in 0..50_000 {
            k.add(rng.index(10_000) as u64, 1.0);
        }
        k
    };
    let k1 = mk_ks(1);
    let k2 = mk_ks(2);
    g.bench_function("keyedsum_10k_keys_merge", |bch| {
        bch.iter(|| {
            let mut x = k1.clone();
            x.merge(k2.clone());
            black_box(x.len())
        })
    });
    g.finish();
}

criterion_group!(benches, bench_local_reduce, bench_merges);
criterion_main!(benches);
