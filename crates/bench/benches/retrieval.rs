//! Retrieval benchmarks: multi-threaded ranged GETs against a
//! wall-clock-throttled remote store (the §III-B "multiple retrieval
//! threads" optimization), plus raw store throughput.

use bytes::Bytes;
use cb_storage::retrieve::Retriever;
use cb_storage::s3sim::{RemoteProfile, RemoteStore};
use cb_storage::store::{MemStore, ObjectStore};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Duration;

const OBJ: usize = 4 << 20; // 4 MiB object
const FETCH: u64 = 2 << 20; // 2 MiB fetched per iteration

fn backing() -> Arc<MemStore> {
    let s = Arc::new(MemStore::new("backing"));
    s.put("obj", Bytes::from(vec![0xAB; OBJ])).unwrap();
    s
}

/// Throttled like a fast-ish remote: per-connection cap makes parallel
/// streams pay off, as on real S3.
fn remote() -> RemoteStore {
    RemoteStore::new(
        "bench-remote",
        backing(),
        RemoteProfile {
            request_latency: Duration::from_micros(500),
            aggregate_bps: 4.0e9,
            per_conn_bps: 400.0e6,
        },
    )
}

fn bench_parallel_retrieval(c: &mut Criterion) {
    let store = remote();
    let mut g = c.benchmark_group("remote_fetch_2MiB");
    g.throughput(Throughput::Bytes(FETCH));
    g.sample_size(20);
    for threads in [1usize, 2, 4, 8] {
        let r = Retriever::new(threads).with_min_split(1);
        g.bench_function(BenchmarkId::from_parameter(threads), |b| {
            b.iter(|| black_box(r.fetch(&store, "obj", 0, FETCH).unwrap()))
        });
    }
    g.finish();
}

fn bench_memstore(c: &mut Criterion) {
    let store = backing();
    let mut g = c.benchmark_group("memstore_get_range");
    g.throughput(Throughput::Bytes(FETCH));
    g.bench_function("2MiB", |b| {
        b.iter(|| black_box(store.get_range("obj", 0, FETCH).unwrap()))
    });
    g.finish();
}

fn bench_index_roundtrip(c: &mut Criterion) {
    let layout = cb_storage::organizer::organize_even(32, 30 * 4096, 4096, 8).unwrap();
    let encoded = cb_storage::index::encode(&layout);
    let mut g = c.benchmark_group("index_960_jobs");
    g.bench_function("encode", |b| {
        b.iter(|| black_box(cb_storage::index::encode(&layout)))
    });
    g.bench_function("decode_validate", |b| {
        b.iter(|| black_box(cb_storage::index::decode(&encoded).unwrap()))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_parallel_retrieval,
    bench_memstore,
    bench_index_roundtrip
);
criterion_main!(benches);
