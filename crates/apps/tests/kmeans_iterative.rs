//! Iterative k-means through the runtime's pass cache: the second and
//! later passes of an iterative run re-read exactly the chunks the first
//! pass fetched, so with `cache_bytes` set they must be served from the
//! per-location [`CachedStore`] — visible as cache hits in the report —
//! without changing the computed centroids.

use cb_apps::kmeans::{centroid_shift, next_centroids, Centroids, KMeansApp};
use cb_apps::points;
use cb_storage::builder::{materialize, StoreMap};
use cb_storage::layout::{ChunkMeta, LocationId, Placement};
use cb_storage::organizer::organize_even;
use cb_storage::store::{MemStore, ObjectStore};
use cloudburst_core::config::RuntimeConfig;
use cloudburst_core::deploy::{ClusterSpec, DataFabric, Deployment};
use cloudburst_core::iterate::{run_iterative, Step};
use std::collections::BTreeMap;
use std::sync::Arc;

const DIM: usize = 2;

/// Two tight blobs around (1, 1) and (8, 8), deterministic per chunk.
fn fill(chunk: &ChunkMeta, buf: &mut [u8]) {
    let mut pts = Vec::with_capacity(chunk.units as usize * DIM);
    for i in 0..chunk.units {
        let jitter = ((chunk.id.0 as u64 + i) % 7) as f32 * 0.01;
        if (chunk.id.0 as u64 + i).is_multiple_of(2) {
            pts.extend_from_slice(&[1.0 + jitter, 1.0 - jitter]);
        } else {
            pts.extend_from_slice(&[8.0 - jitter, 8.0 + jitter]);
        }
    }
    points::encode_into(&pts, DIM, buf);
}

fn env() -> (cb_storage::layout::DatasetLayout, Placement, Deployment) {
    let unit = points::unit_bytes(DIM);
    let layout = organize_even(2, 64 * unit, 16 * unit, unit).unwrap();
    let placement = Placement::all_at(2, LocationId(0));
    let mut stores: StoreMap = BTreeMap::new();
    stores.insert(
        LocationId(0),
        Arc::new(MemStore::new("m")) as Arc<dyn ObjectStore>,
    );
    materialize(&layout, &placement, &stores, fill).unwrap();
    let deployment = Deployment::new(
        vec![ClusterSpec::new("local", LocationId(0), 2)],
        DataFabric::direct(&stores),
    );
    (layout, placement, deployment)
}

fn three_passes(cfg: &RuntimeConfig) -> cloudburst_core::iterate::IterativeOutcome<Centroids> {
    let (layout, placement, deployment) = env();
    let app = KMeansApp::new(DIM, 2);
    let initial = Centroids::new(DIM, vec![0.0, 0.0, 10.0, 10.0]);
    run_iterative(
        &app,
        initial,
        &layout,
        &placement,
        &deployment,
        cfg,
        3,
        |_i, robj, prev| Step::Continue(next_centroids(&app, &robj, prev)),
    )
    .unwrap()
}

#[test]
fn second_pass_hits_the_cache_and_centroids_are_unchanged() {
    let cached = three_passes(&RuntimeConfig {
        cache_bytes: 1 << 20, // the whole dataset fits
        ..Default::default()
    });
    assert_eq!(cached.iterations, 3);
    assert!(
        cached.reports[0].cache_misses > 0,
        "the first pass fetches every chunk cold: {:?}",
        cached.reports[0]
    );
    assert_eq!(cached.reports[0].cache_hits, 0);
    for r in &cached.reports[1..] {
        assert!(r.cache_hits > 0, "later passes must hit the cache: {r:?}");
        assert_eq!(r.cache_misses, 0, "nothing should be refetched: {r:?}");
    }

    // The cache is a transport detail: same centroid trajectory (up to
    // float merge-order noise across runs of the threaded runtime).
    let uncached = three_passes(&RuntimeConfig::default());
    assert!(
        centroid_shift(&cached.params, &uncached.params) < 1e-6,
        "caching changed the computation: {:?} vs {:?}",
        cached.params,
        uncached.params
    );
    for r in &uncached.reports {
        assert_eq!((r.cache_hits, r.cache_misses), (0, 0));
    }
    // Both runs should have landed on the blob centres.
    assert!((cached.params.centroid(0)[0] - 1.0).abs() < 0.1);
    assert!((cached.params.centroid(1)[0] - 8.0).abs() < 0.1);
}
