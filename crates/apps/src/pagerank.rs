//! PageRank (paper §IV-A: low-medium computation, high I/O, and a **very
//! large reduction object** — ~300 MB for the 50M-page graph — which is what
//! stresses the inter-cluster global reduction in the paper's evaluation).
//!
//! One pass streams the edge list: each edge `(src, dst)` contributes
//! `rank[src] / out_degree[src]` to `dst`'s accumulator. The reduction
//! object is a dense [`VecSum`] over all pages — deliberately proportional
//! to the graph, reproducing the paper's robj-transfer bottleneck. The
//! driver applies damping and dangling-mass redistribution between passes.

use cb_storage::layout::ChunkMeta;
use cloudburst_core::api::GRApp;
use cloudburst_core::combine::VecSum;
use std::sync::Arc;

/// Broadcast parameters of one PageRank pass.
#[derive(Debug, Clone)]
pub struct RankParams {
    /// Current rank of every page (sums to 1).
    pub ranks: Arc<Vec<f64>>,
    /// Out-degree of every page.
    pub out_degree: Arc<Vec<u32>>,
}

impl RankParams {
    pub fn n_pages(&self) -> usize {
        self.ranks.len()
    }

    /// Uniform initial ranks.
    pub fn uniform(out_degree: Arc<Vec<u32>>) -> Self {
        let n = out_degree.len();
        RankParams {
            ranks: Arc::new(vec![1.0 / n as f64; n]),
            out_degree,
        }
    }
}

/// The PageRank application.
#[derive(Debug, Clone)]
pub struct PageRankApp {
    pub n_pages: u32,
}

impl PageRankApp {
    pub fn new(n_pages: u32) -> Self {
        assert!(n_pages > 0);
        PageRankApp { n_pages }
    }
}

impl GRApp for PageRankApp {
    /// A directed edge `(src, dst)`.
    type Unit = (u32, u32);
    type RObj = VecSum;
    type Params = RankParams;

    fn decode_chunk(&self, meta: &ChunkMeta, bytes: &[u8]) -> Vec<(u32, u32)> {
        assert_eq!(bytes.len() % 8, 0, "chunk not a whole number of edges");
        let edges: Vec<(u32, u32)> = bytes
            .chunks_exact(8)
            .map(|rec| {
                (
                    u32::from_le_bytes(rec[..4].try_into().unwrap()),
                    u32::from_le_bytes(rec[4..].try_into().unwrap()),
                )
            })
            .collect();
        assert_eq!(edges.len() as u64, meta.units, "unit count mismatch");
        edges
    }

    fn init(&self, params: &RankParams) -> VecSum {
        assert_eq!(params.n_pages(), self.n_pages as usize);
        VecSum::zeros(self.n_pages as usize)
    }

    fn local_reduce(&self, params: &RankParams, robj: &mut VecSum, unit: &(u32, u32)) {
        let (src, dst) = *unit;
        let deg = params.out_degree[src as usize];
        debug_assert!(deg > 0, "edge from page with recorded out-degree 0");
        robj.add_at(dst as usize, params.ranks[src as usize] / deg as f64);
    }
}

/// Damping factor used throughout (the standard 0.85).
pub const DAMPING: f64 = 0.85;

/// Produce the next rank vector from a pass's contribution accumulator:
/// `r' = (1-d)/N + d * (contrib + dangling_mass/N)` where dangling mass is
/// the rank held by pages with no outgoing links.
pub fn next_ranks(contrib: &VecSum, params: &RankParams) -> Vec<f64> {
    let n = params.n_pages();
    assert_eq!(contrib.len(), n);
    let dangling: f64 = params
        .ranks
        .iter()
        .zip(params.out_degree.iter())
        .filter(|(_, &d)| d == 0)
        .map(|(r, _)| r)
        .sum();
    let base = (1.0 - DAMPING) / n as f64;
    let dang_share = DAMPING * dangling / n as f64;
    contrib
        .values()
        .iter()
        .map(|c| base + DAMPING * c + dang_share)
        .collect()
}

/// L1 distance between two rank vectors (convergence metric).
pub fn rank_delta(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum()
}

/// Sequential reference: one full pass over `edges`.
pub fn pagerank_reference_pass(edges: &[(u32, u32)], params: &RankParams) -> Vec<f64> {
    let n = params.n_pages();
    let mut contrib = VecSum::zeros(n);
    for &(src, dst) in edges {
        let deg = params.out_degree[src as usize];
        contrib.add_at(dst as usize, params.ranks[src as usize] / deg as f64);
    }
    next_ranks(&contrib, params)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cb_storage::layout::{ChunkId, FileId};
    use cloudburst_core::api::{run_sequential, ReductionObject};

    fn encode(edges: &[(u32, u32)]) -> (ChunkMeta, Vec<u8>) {
        let mut buf = Vec::with_capacity(edges.len() * 8);
        for (s, d) in edges {
            buf.extend_from_slice(&s.to_le_bytes());
            buf.extend_from_slice(&d.to_le_bytes());
        }
        (
            ChunkMeta {
                id: ChunkId(0),
                file: FileId(0),
                offset: 0,
                len: buf.len() as u64,
                units: edges.len() as u64,
            },
            buf,
        )
    }

    fn degrees(n: usize, edges: &[(u32, u32)]) -> Arc<Vec<u32>> {
        let mut d = vec![0u32; n];
        for &(s, _) in edges {
            d[s as usize] += 1;
        }
        Arc::new(d)
    }

    #[test]
    fn ranks_sum_to_one_each_pass() {
        // 0 -> 1 -> 2 -> 0 plus a dangling page 3.
        let edges = vec![(0, 1), (1, 2), (2, 0)];
        let params = RankParams::uniform(degrees(4, &edges));
        let ranks = pagerank_reference_pass(&edges, &params);
        let total: f64 = ranks.iter().sum();
        assert!((total - 1.0).abs() < 1e-12, "mass not conserved: {total}");
    }

    #[test]
    fn framework_pass_matches_reference() {
        let edges = vec![(0, 1), (0, 2), (1, 2), (2, 0), (3, 2)];
        let app = PageRankApp::new(4);
        let params = RankParams::uniform(degrees(4, &edges));
        let (meta, bytes) = encode(&edges);
        let contrib = run_sequential(&app, &params, vec![(meta, bytes)]);
        let got = next_ranks(&contrib, &params);
        let expect = pagerank_reference_pass(&edges, &params);
        for (g, e) in got.iter().zip(&expect) {
            assert!((g - e).abs() < 1e-12);
        }
    }

    #[test]
    fn split_edge_list_merges_to_same_contrib() {
        let edges = vec![(0, 1), (1, 0), (2, 1), (0, 2), (1, 2), (2, 0)];
        let app = PageRankApp::new(3);
        let params = RankParams::uniform(degrees(3, &edges));
        let (m_all, b_all) = encode(&edges);
        let whole = run_sequential(&app, &params, vec![(m_all, b_all)]);

        let (m1, b1) = encode(&edges[..3]);
        let (m2, b2) = encode(&edges[3..]);
        let mut left = run_sequential(&app, &params, vec![(m1, b1)]);
        let right = run_sequential(&app, &params, vec![(m2, b2)]);
        left.merge(right);
        for (a, b) in left.values().iter().zip(whole.values()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn hub_accumulates_rank() {
        // Everyone links to page 0; page 0 links to page 1.
        let edges = vec![(1, 0), (2, 0), (3, 0), (0, 1)];
        let mut params = RankParams::uniform(degrees(4, &edges));
        for _ in 0..30 {
            let ranks = pagerank_reference_pass(&edges, &params);
            params = RankParams {
                ranks: Arc::new(ranks),
                out_degree: Arc::clone(&params.out_degree),
            };
        }
        let r = &params.ranks;
        assert!(r[0] > r[2] && r[0] > r[3], "hub should dominate: {r:?}");
        assert!(r[1] > r[2], "hub's sole target inherits rank");
    }

    #[test]
    fn robj_size_proportional_to_pages() {
        let app = PageRankApp::new(1000);
        let params = RankParams::uniform(Arc::new(vec![1; 1000]));
        let robj = app.init(&params);
        assert_eq!(robj.size_bytes(), 8000);
    }

    #[test]
    fn convergence_delta_shrinks() {
        let edges = vec![(0, 1), (1, 2), (2, 0), (2, 1)];
        let mut params = RankParams::uniform(degrees(3, &edges));
        let mut deltas = Vec::new();
        // Damped power iteration contracts at ~DAMPING per pass, so 60
        // passes give ~0.85^60 ≈ 6e-5 of the initial error.
        for _ in 0..60 {
            let ranks = pagerank_reference_pass(&edges, &params);
            deltas.push(rank_delta(&ranks, &params.ranks));
            params = RankParams {
                ranks: Arc::new(ranks),
                out_degree: Arc::clone(&params.out_degree),
            };
        }
        assert!(
            deltas.last().unwrap() < &deltas[0],
            "power iteration should contract: {deltas:?}"
        );
        assert!(deltas.last().unwrap() < &1e-3);
    }
}
