//! Selection (distributed grep): scan every record, keep the ids of those
//! matching a predicate — the classic "filter" workload from the
//! Map-Reduce paper, expressed as a generalized reduction with a
//! concatenating reduction object.
//!
//! Records are the same fixed-dimension points knn uses; the query selects
//! points inside an axis-aligned box. The reduction object is a
//! [`Concat`] of matching global ids, so — unlike knn's bounded top-k —
//! its size is data-dependent, exercising the framework with *growing*
//! reduction objects.

use crate::knn::KnnApp;
use crate::points;
use cb_storage::layout::ChunkMeta;
use cloudburst_core::api::GRApp;
use cloudburst_core::combine::Concat;

/// An axis-aligned box query: `lo[d] <= x[d] < hi[d]` for every dimension.
#[derive(Debug, Clone)]
pub struct BoxQuery {
    pub lo: Vec<f32>,
    pub hi: Vec<f32>,
}

impl BoxQuery {
    pub fn new(lo: Vec<f32>, hi: Vec<f32>) -> Self {
        assert_eq!(lo.len(), hi.len(), "box bounds of different dimension");
        assert!(
            lo.iter().zip(&hi).all(|(l, h)| l <= h),
            "box with lo > hi is empty by construction; reject it loudly"
        );
        BoxQuery { lo, hi }
    }

    pub fn contains(&self, p: &[f32]) -> bool {
        debug_assert_eq!(p.len(), self.lo.len());
        p.iter()
            .zip(self.lo.iter().zip(&self.hi))
            .all(|(x, (l, h))| l <= x && x < h)
    }
}

/// The selection application.
#[derive(Debug, Clone)]
pub struct SelectionApp {
    pub dim: usize,
}

impl SelectionApp {
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0);
        SelectionApp { dim }
    }
}

impl GRApp for SelectionApp {
    /// `(global id, coordinates)` — ids as in [`KnnApp::unit_id`].
    type Unit = (u64, Vec<f32>);
    type RObj = Concat<u64>;
    type Params = BoxQuery;

    fn decode_chunk(&self, meta: &ChunkMeta, bytes: &[u8]) -> Vec<(u64, Vec<f32>)> {
        let pts = points::decode(bytes, self.dim);
        assert_eq!(pts.len() as u64, meta.units, "unit count mismatch");
        pts.into_iter()
            .enumerate()
            .map(|(i, p)| (KnnApp::unit_id(meta, self.dim, i), p))
            .collect()
    }

    fn init(&self, params: &BoxQuery) -> Concat<u64> {
        assert_eq!(params.lo.len(), self.dim, "query dimension mismatch");
        Concat::new()
    }

    fn local_reduce(&self, params: &BoxQuery, robj: &mut Concat<u64>, unit: &(u64, Vec<f32>)) {
        if params.contains(&unit.1) {
            robj.push(unit.0);
        }
    }
}

/// Sequential reference: ids of all points inside the box, sorted.
pub fn selection_reference(points: &[(u64, Vec<f32>)], query: &BoxQuery) -> Vec<u64> {
    let mut ids: Vec<u64> = points
        .iter()
        .filter(|(_, p)| query.contains(p))
        .map(|(id, _)| *id)
        .collect();
    ids.sort_unstable();
    ids
}

#[cfg(test)]
mod tests {
    use super::*;
    use cb_storage::layout::{ChunkId, FileId};
    use cloudburst_core::api::{run_sequential, ReductionObject};

    fn chunk(vals: &[f32], dim: usize) -> (ChunkMeta, Vec<u8>) {
        let mut buf = vec![0u8; vals.len() * 4];
        points::encode_into(vals, dim, &mut buf);
        (
            ChunkMeta {
                id: ChunkId(0),
                file: FileId(0),
                offset: 0,
                len: buf.len() as u64,
                units: (vals.len() / dim) as u64,
            },
            buf,
        )
    }

    #[test]
    fn box_query_semantics() {
        let q = BoxQuery::new(vec![0.0, 0.0], vec![1.0, 1.0]);
        assert!(q.contains(&[0.0, 0.5]));
        assert!(q.contains(&[0.999, 0.0]));
        assert!(!q.contains(&[1.0, 0.5]), "hi is exclusive");
        assert!(!q.contains(&[-0.1, 0.5]));
    }

    #[test]
    #[should_panic(expected = "lo > hi")]
    fn inverted_box_rejected() {
        BoxQuery::new(vec![1.0], vec![0.0]);
    }

    #[test]
    fn selects_matching_ids() {
        let app = SelectionApp::new(2);
        let q = BoxQuery::new(vec![0.0, 0.0], vec![1.0, 1.0]);
        let (meta, bytes) = chunk(&[0.5, 0.5, 2.0, 2.0, 0.1, 0.9, 1.0, 0.0], 2);
        let robj = run_sequential(&app, &q, vec![(meta, bytes)]);
        assert_eq!(robj.into_sorted(), vec![0, 2]);
    }

    #[test]
    fn split_matches_reference() {
        let app = SelectionApp::new(1);
        let q = BoxQuery::new(vec![0.25], vec![0.75]);
        let vals: Vec<f32> = (0..40).map(|i| i as f32 / 40.0).collect();
        let (m_all, b_all) = chunk(&vals, 1);
        let whole = run_sequential(&app, &q, vec![(m_all, b_all)]);

        let (m1, b1) = chunk(&vals[..20], 1);
        let mut m2 = m_all;
        m2.id = ChunkId(1);
        m2.offset = 20 * 4;
        let mut buf2 = vec![0u8; 20 * 4];
        points::encode_into(&vals[20..], 1, &mut buf2);
        m2.len = buf2.len() as u64;
        m2.units = 20;

        let mut left = run_sequential(&app, &q, vec![(m1, b1)]);
        let right = run_sequential(&app, &q, vec![(m2, buf2)]);
        left.merge(right);
        assert_eq!(left.into_sorted(), whole.into_sorted());
    }

    #[test]
    fn reference_agrees() {
        let q = BoxQuery::new(vec![0.0, 0.0], vec![0.5, 0.5]);
        let pts = vec![
            (10u64, vec![0.1, 0.1]),
            (20, vec![0.6, 0.1]),
            (30, vec![0.4, 0.49]),
        ];
        assert_eq!(selection_reference(&pts, &q), vec![10, 30]);
    }
}
