//! The same workloads expressed on the baseline MapReduce API — the other
//! half of the paper's Fig. 1 comparison. Tests assert both programming
//! models compute identical results; the API-comparison benchmark measures
//! their intermediate-memory and shuffle-volume difference.

use crate::kmeans::Centroids;
use cb_mapreduce::MapReduce;

/// Word count on MapReduce: `map` emits `(word, 1)`, the combiner and the
/// reducer both sum.
#[derive(Debug, Clone, Default)]
pub struct WordCountMR;

impl MapReduce for WordCountMR {
    type Input = Vec<u64>;
    type Key = u64;
    type Value = u64;
    type Output = (u64, u64);

    fn map(&self, input: &Vec<u64>, emit: &mut dyn FnMut(u64, u64)) {
        for &w in input {
            emit(w, 1);
        }
    }

    fn reduce(&self, key: &u64, values: Vec<u64>) -> (u64, u64) {
        (*key, values.into_iter().sum())
    }

    fn combine(&self, _key: &u64, values: Vec<u64>) -> Vec<u64> {
        vec![values.into_iter().sum()]
    }
}

/// One k-means pass on MapReduce: `map` assigns each point to its nearest
/// centroid and emits `(cluster, (coordinate sums, count))`; the combiner
/// merges partial sums; `reduce` outputs the new centroid.
///
/// Unlike the GR version, the centroids ride inside the job (MapReduce has
/// no separate broadcast-params channel).
#[derive(Debug, Clone)]
pub struct KMeansMR {
    pub centroids: Centroids,
}

impl KMeansMR {
    pub fn new(centroids: Centroids) -> Self {
        KMeansMR { centroids }
    }
}

impl MapReduce for KMeansMR {
    /// One split: a vector of points.
    type Input = Vec<Vec<f32>>;
    type Key = u32;
    /// Partial `(coordinate sums, count)`.
    type Value = (Vec<f64>, u64);
    /// `(cluster, new centroid)`.
    type Output = (u32, Vec<f64>);

    fn map(&self, input: &Vec<Vec<f32>>, emit: &mut dyn FnMut(u32, (Vec<f64>, u64))) {
        for p in input {
            let c = self.centroids.nearest(p) as u32;
            emit(c, (p.iter().map(|&x| x as f64).collect(), 1));
        }
    }

    fn reduce(&self, key: &u32, values: Vec<(Vec<f64>, u64)>) -> (u32, Vec<f64>) {
        let (sums, count) = merge_partials(self.centroids.dim, values);
        let centroid = if count > 0 {
            sums.iter().map(|s| s / count as f64).collect()
        } else {
            self.centroids.centroid(*key as usize).to_vec()
        };
        (*key, centroid)
    }

    fn combine(&self, _key: &u32, values: Vec<(Vec<f64>, u64)>) -> Vec<(Vec<f64>, u64)> {
        vec![merge_partials(self.centroids.dim, values)]
    }
}

fn merge_partials(dim: usize, values: Vec<(Vec<f64>, u64)>) -> (Vec<f64>, u64) {
    let mut sums = vec![0.0; dim];
    let mut count = 0u64;
    for (s, c) in values {
        for (acc, x) in sums.iter_mut().zip(s) {
            *acc += x;
        }
        count += c;
    }
    (sums, count)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kmeans::{kmeans_reference_pass, Centroids};
    use crate::wordcount::wordcount_reference;
    use cb_mapreduce::{run_mapreduce, MRConfig};

    #[test]
    fn wordcount_mr_matches_reference() {
        let splits = vec![vec![1u64, 2, 2, 3], vec![3, 3, 3, 4], vec![1]];
        let all: Vec<u64> = splits.iter().flatten().copied().collect();
        let expect = wordcount_reference(&all);
        for use_combiner in [false, true] {
            let cfg = MRConfig {
                use_combiner,
                flush_threshold: 2,
                ..Default::default()
            };
            let (out, _) = run_mapreduce(&WordCountMR, splits.clone(), &cfg);
            let got: std::collections::BTreeMap<u64, u64> = out.into_iter().collect();
            assert_eq!(got, expect, "combiner={use_combiner}");
        }
    }

    #[test]
    fn kmeans_mr_matches_sequential_reference() {
        let pts: Vec<Vec<f32>> = vec![
            vec![0.0, 0.0],
            vec![1.0, 1.0],
            vec![0.5, 0.0],
            vec![9.0, 9.0],
            vec![10.0, 10.0],
        ];
        let params = Centroids::new(2, vec![0.0, 0.0, 10.0, 10.0]);
        let expect = kmeans_reference_pass(&pts, &params);

        let splits: Vec<Vec<Vec<f32>>> = pts.chunks(2).map(|c| c.to_vec()).collect();
        let job = KMeansMR::new(params.clone());
        let cfg = MRConfig {
            use_combiner: true,
            flush_threshold: 2,
            ..Default::default()
        };
        let (out, _) = run_mapreduce(&job, splits, &cfg);
        for (c, centroid) in out {
            let exp = expect.centroid(c as usize);
            for (g, e) in centroid.iter().zip(exp) {
                assert!(
                    (g - e).abs() < 1e-12,
                    "cluster {c}: {centroid:?} vs {exp:?}"
                );
            }
        }
    }

    #[test]
    fn kmeans_mr_combiner_shrinks_shuffle() {
        let pts: Vec<Vec<f32>> = (0..1000)
            .map(|i| vec![(i % 10) as f32, (i % 7) as f32])
            .collect();
        let params = Centroids::new(2, vec![0.0, 0.0, 9.0, 6.0]);
        let splits: Vec<Vec<Vec<f32>>> = pts.chunks(100).map(|c| c.to_vec()).collect();
        let job = KMeansMR::new(params);

        let plain = run_mapreduce(&job, splits.clone(), &MRConfig::default()).1;
        let combined = run_mapreduce(
            &job,
            splits,
            &MRConfig {
                use_combiner: true,
                flush_threshold: 50,
                ..Default::default()
            },
        )
        .1;
        assert_eq!(plain.pairs_emitted, 1000);
        assert_eq!(plain.pairs_shuffled, 1000);
        assert!(combined.pairs_shuffled < 100);
    }
}
