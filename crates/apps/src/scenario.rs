//! Ready-made hybrid-cloud environments at laptop scale.
//!
//! Builds the paper's experimental setups — a local cluster plus a cloud
//! cluster, data split between a local store and a simulated S3, optional
//! wall-clock throttling on the remote paths — so examples and integration
//! tests construct an environment in one call.

use cb_simnet::Throttle;
use cb_storage::builder::{materialize, StoreMap};
use cb_storage::layout::{ChunkMeta, DatasetLayout, LocationId, Placement};
use cb_storage::s3sim::{RemoteProfile, RemoteStore};
use cb_storage::store::{MemStore, ObjectStore};
use cloudburst_core::deploy::{ClusterSpec, DataFabric, Deployment};
use std::collections::BTreeMap;
use std::io;
use std::sync::Arc;
use std::time::Duration;

/// Site of the local cluster (and its storage node).
pub const LOCAL: LocationId = LocationId(0);
/// Site of the cloud cluster (and the S3-like store).
pub const CLOUD: LocationId = LocationId(1);

/// Wall-clock throttling profile of a hybrid environment.
#[derive(Debug, Clone, Copy)]
pub struct ThrottleOpts {
    /// How the cloud cluster reaches the S3-like store (intra-cloud).
    pub cloud_to_s3: RemoteProfile,
    /// How the local cluster reaches the S3-like store (across the WAN).
    pub local_to_s3: RemoteProfile,
    /// How the cloud cluster reaches the local storage node (across the WAN).
    pub cloud_to_local: RemoteProfile,
    /// Bandwidth for shipping the cloud cluster's reduction object to the
    /// head during global reduction, bytes/sec.
    pub robj_wan_bps: f64,
    /// Latency of that transfer.
    pub robj_wan_latency: Duration,
    /// Master↔head request round trip for the cloud cluster.
    pub head_rtt: Duration,
}

impl ThrottleOpts {
    /// A profile scaled so that laptop-sized tests finish in seconds while
    /// preserving the paper's orderings: local disk ≫ intra-cloud S3 ≫ WAN.
    pub fn scaled_default() -> Self {
        ThrottleOpts {
            cloud_to_s3: RemoteProfile {
                request_latency: Duration::from_millis(2),
                aggregate_bps: 400.0e6,
                per_conn_bps: 60.0e6,
            },
            local_to_s3: RemoteProfile {
                request_latency: Duration::from_millis(8),
                aggregate_bps: 120.0e6,
                per_conn_bps: 20.0e6,
            },
            cloud_to_local: RemoteProfile {
                request_latency: Duration::from_millis(8),
                aggregate_bps: 120.0e6,
                per_conn_bps: 20.0e6,
            },
            robj_wan_bps: 100.0e6,
            robj_wan_latency: Duration::from_millis(10),
            head_rtt: Duration::from_millis(4),
        }
    }
}

/// A fully wired hybrid environment.
pub struct HybridEnv {
    pub layout: DatasetLayout,
    pub placement: Placement,
    pub deployment: Deployment,
    /// The raw (unthrottled) backing stores, keyed by site — kept for
    /// inspection and sabotage in tests.
    pub backing: StoreMap,
}

/// Options for [`build_hybrid`].
#[derive(Debug, Clone, Copy)]
pub struct HybridOpts {
    /// Fraction of files homed at the local site (1.0 = env-local data,
    /// 0.0 = everything in S3).
    pub frac_local: f64,
    /// Worker cores in the local cluster (0 = no local cluster).
    pub local_cores: usize,
    /// Worker cores in the cloud cluster (0 = no cloud cluster).
    pub cloud_cores: usize,
    /// Wall-clock throttling; `None` = infinitely fast fabric (pure
    /// correctness testing).
    pub throttle: Option<ThrottleOpts>,
}

/// Materialize `layout` with `fill` into a two-site environment and wire the
/// deployment the paper's experiments use.
pub fn build_hybrid<F>(
    layout: DatasetLayout,
    mut fill: F,
    opts: HybridOpts,
) -> io::Result<HybridEnv>
where
    F: FnMut(&ChunkMeta, &mut [u8]),
{
    assert!(
        opts.local_cores + opts.cloud_cores > 0,
        "at least one cluster needs cores"
    );
    let placement = Placement::split_fraction(layout.files.len(), opts.frac_local, LOCAL, CLOUD);

    let local_store: Arc<dyn ObjectStore> = Arc::new(MemStore::new("local-store"));
    let cloud_store: Arc<dyn ObjectStore> = Arc::new(MemStore::new("s3-backing"));
    let mut backing: StoreMap = BTreeMap::new();
    backing.insert(LOCAL, Arc::clone(&local_store));
    backing.insert(CLOUD, Arc::clone(&cloud_store));
    materialize(&layout, &placement, &backing, &mut fill)?;

    let mut fabric = DataFabric::new();
    match opts.throttle {
        None => {
            fabric.set_path(LOCAL, LOCAL, Arc::clone(&local_store));
            fabric.set_path(LOCAL, CLOUD, Arc::clone(&cloud_store));
            fabric.set_path(CLOUD, CLOUD, Arc::clone(&cloud_store));
            fabric.set_path(CLOUD, LOCAL, Arc::clone(&local_store));
        }
        Some(t) => {
            fabric.set_path(LOCAL, LOCAL, Arc::clone(&local_store));
            fabric.set_path(
                LOCAL,
                CLOUD,
                Arc::new(RemoteStore::new(
                    "s3-via-wan",
                    Arc::clone(&cloud_store),
                    t.local_to_s3,
                )),
            );
            fabric.set_path(
                CLOUD,
                CLOUD,
                Arc::new(RemoteStore::new(
                    "s3-intra-cloud",
                    Arc::clone(&cloud_store),
                    t.cloud_to_s3,
                )),
            );
            fabric.set_path(
                CLOUD,
                LOCAL,
                Arc::new(RemoteStore::new(
                    "local-via-wan",
                    Arc::clone(&local_store),
                    t.cloud_to_local,
                )),
            );
        }
    }

    let mut clusters = Vec::new();
    if opts.local_cores > 0 {
        clusters.push(ClusterSpec::new("local", LOCAL, opts.local_cores));
    }
    if opts.cloud_cores > 0 {
        let mut spec = ClusterSpec::new("EC2", CLOUD, opts.cloud_cores);
        if let Some(t) = opts.throttle {
            spec = spec
                .with_wan(Arc::new(Throttle::new(t.robj_wan_bps, t.robj_wan_latency)))
                .with_head_rtt(t.head_rtt);
        }
        clusters.push(spec);
    }

    Ok(HybridEnv {
        deployment: Deployment::new(clusters, fabric),
        layout,
        placement,
        backing,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cb_storage::organizer::organize_even;

    fn tiny_layout() -> DatasetLayout {
        organize_even(4, 256, 64, 8).unwrap()
    }

    #[test]
    fn builds_two_clusters_with_full_fabric() {
        let env = build_hybrid(
            tiny_layout(),
            |_, buf| buf.fill(1),
            HybridOpts {
                frac_local: 0.5,
                local_cores: 2,
                cloud_cores: 3,
                throttle: None,
            },
        )
        .unwrap();
        assert_eq!(env.deployment.clusters.len(), 2);
        assert_eq!(env.deployment.total_cores(), 5);
        env.deployment.validate(&[LOCAL, CLOUD]).unwrap();
        assert_eq!(env.placement.files_at(LOCAL).count(), 2);
    }

    #[test]
    fn cloud_only_env() {
        let env = build_hybrid(
            tiny_layout(),
            |_, buf| buf.fill(0),
            HybridOpts {
                frac_local: 0.0,
                local_cores: 0,
                cloud_cores: 4,
                throttle: None,
            },
        )
        .unwrap();
        assert_eq!(env.deployment.clusters.len(), 1);
        assert_eq!(env.deployment.clusters[0].name, "EC2");
        // All files landed in the cloud store.
        assert_eq!(env.backing[&CLOUD].list().len(), 4);
        assert_eq!(env.backing[&LOCAL].list().len(), 0);
    }

    #[test]
    fn throttled_env_has_distinct_paths() {
        let env = build_hybrid(
            tiny_layout(),
            |_, buf| buf.fill(0),
            HybridOpts {
                frac_local: 0.5,
                local_cores: 1,
                cloud_cores: 1,
                throttle: Some(ThrottleOpts::scaled_default()),
            },
        )
        .unwrap();
        let f = &env.deployment.fabric;
        assert_eq!(f.store_for(LOCAL, CLOUD).unwrap().name(), "s3-via-wan");
        assert_eq!(f.store_for(CLOUD, CLOUD).unwrap().name(), "s3-intra-cloud");
        assert_eq!(f.store_for(CLOUD, LOCAL).unwrap().name(), "local-via-wan");
        assert_eq!(f.store_for(LOCAL, LOCAL).unwrap().name(), "local-store");
        assert!(env.deployment.clusters[1].wan_to_head.is_some());
        assert!(env.deployment.clusters[0].wan_to_head.is_none());
    }

    #[test]
    #[should_panic(expected = "at least one cluster")]
    fn zero_cores_rejected() {
        let _ = build_hybrid(
            tiny_layout(),
            |_, _| {},
            HybridOpts {
                frac_local: 0.5,
                local_cores: 0,
                cloud_cores: 0,
                throttle: None,
            },
        );
    }
}
