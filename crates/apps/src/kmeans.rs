//! k-Means clustering (paper §IV-A: heavy computation, low-medium I/O,
//! small reduction object; k = 1000 in the evaluation).
//!
//! One pass assigns every point to its nearest centroid and accumulates
//! per-centroid coordinate sums and counts in a [`VecSum`] of length
//! `k * (dim + 1)` — the classic generalized-reduction formulation. The
//! driver ([`next_centroids`]) recomputes centroids
//! between passes; iteration happens by re-running the framework with new
//! [`Centroids`] params.

use crate::points;
use cb_storage::layout::ChunkMeta;
use cloudburst_core::api::GRApp;
use cloudburst_core::combine::VecSum;

/// Broadcast parameters of one k-means pass: the current centroids,
/// flattened row-major (`k * dim`).
#[derive(Debug, Clone, PartialEq)]
pub struct Centroids {
    pub dim: usize,
    pub flat: Vec<f64>,
}

impl Centroids {
    pub fn new(dim: usize, flat: Vec<f64>) -> Self {
        assert!(dim > 0);
        assert_eq!(flat.len() % dim, 0, "ragged centroid array");
        Centroids { dim, flat }
    }

    pub fn k(&self) -> usize {
        self.flat.len() / self.dim
    }

    pub fn centroid(&self, c: usize) -> &[f64] {
        &self.flat[c * self.dim..(c + 1) * self.dim]
    }

    /// Index of the centroid nearest to `p`.
    pub fn nearest(&self, p: &[f32]) -> usize {
        let mut best = 0;
        let mut best_d = f64::INFINITY;
        for c in 0..self.k() {
            let cent = self.centroid(c);
            let mut d = 0.0;
            for (x, y) in p.iter().zip(cent) {
                let diff = *x as f64 - y;
                d += diff * diff;
            }
            if d < best_d {
                best_d = d;
                best = c;
            }
        }
        best
    }
}

/// The k-means application.
#[derive(Debug, Clone)]
pub struct KMeansApp {
    pub dim: usize,
    pub k: usize,
}

impl KMeansApp {
    pub fn new(dim: usize, k: usize) -> Self {
        assert!(dim > 0 && k > 0);
        KMeansApp { dim, k }
    }

    /// Reduction-object layout: for centroid `c`, slots
    /// `[c*(dim+1) .. c*(dim+1)+dim)` are coordinate sums and slot
    /// `c*(dim+1)+dim` is the point count.
    pub fn robj_len(&self) -> usize {
        self.k * (self.dim + 1)
    }
}

impl GRApp for KMeansApp {
    type Unit = Vec<f32>;
    type RObj = VecSum;
    type Params = Centroids;

    fn decode_chunk(&self, meta: &ChunkMeta, bytes: &[u8]) -> Vec<Vec<f32>> {
        let pts = points::decode(bytes, self.dim);
        assert_eq!(pts.len() as u64, meta.units, "unit count mismatch");
        pts
    }

    fn init(&self, params: &Centroids) -> VecSum {
        assert_eq!(params.k(), self.k, "params have wrong k");
        assert_eq!(params.dim, self.dim, "params have wrong dim");
        VecSum::zeros(self.robj_len())
    }

    fn local_reduce(&self, params: &Centroids, robj: &mut VecSum, unit: &Vec<f32>) {
        let c = params.nearest(unit);
        let base = c * (self.dim + 1);
        for (d, &x) in unit.iter().enumerate() {
            robj.add_at(base + d, x as f64);
        }
        robj.add_at(base + self.dim, 1.0);
    }
}

/// Compute the next centroids from a pass's reduction object. Centroids
/// that attracted no points keep their previous position (the standard
/// empty-cluster policy).
pub fn next_centroids(app: &KMeansApp, robj: &VecSum, prev: &Centroids) -> Centroids {
    assert_eq!(robj.len(), app.robj_len());
    let mut flat = Vec::with_capacity(app.k * app.dim);
    for c in 0..app.k {
        let base = c * (app.dim + 1);
        let count = robj.values()[base + app.dim];
        if count > 0.0 {
            for d in 0..app.dim {
                flat.push(robj.values()[base + d] / count);
            }
        } else {
            flat.extend_from_slice(prev.centroid(c));
        }
    }
    Centroids::new(app.dim, flat)
}

/// Maximum centroid displacement between two parameter sets (convergence
/// metric).
pub fn centroid_shift(a: &Centroids, b: &Centroids) -> f64 {
    assert_eq!(a.flat.len(), b.flat.len());
    (0..a.k())
        .map(|c| {
            a.centroid(c)
                .iter()
                .zip(b.centroid(c))
                .map(|(x, y)| (x - y) * (x - y))
                .sum::<f64>()
                .sqrt()
        })
        .fold(0.0, f64::max)
}

/// Sequential reference: one full assignment-and-update pass over `pts`.
pub fn kmeans_reference_pass(pts: &[Vec<f32>], params: &Centroids) -> Centroids {
    let dim = params.dim;
    let k = params.k();
    let mut sums = vec![0.0f64; k * dim];
    let mut counts = vec![0u64; k];
    for p in pts {
        let c = params.nearest(p);
        for (d, &x) in p.iter().enumerate() {
            sums[c * dim + d] += x as f64;
        }
        counts[c] += 1;
    }
    let mut flat = Vec::with_capacity(k * dim);
    for c in 0..k {
        if counts[c] > 0 {
            for d in 0..dim {
                flat.push(sums[c * dim + d] / counts[c] as f64);
            }
        } else {
            flat.extend_from_slice(params.centroid(c));
        }
    }
    Centroids::new(dim, flat)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cb_storage::layout::{ChunkId, FileId};
    use cloudburst_core::api::run_sequential;

    fn meta(id: u32, n: u64, dim: usize) -> ChunkMeta {
        ChunkMeta {
            id: ChunkId(id),
            file: FileId(0),
            offset: 0,
            len: n * points::unit_bytes(dim),
            units: n,
        }
    }

    fn encode(pts: &[f32]) -> Vec<u8> {
        let mut buf = vec![0u8; pts.len() * 4];
        points::encode_into(pts, 1, &mut buf); // dim irrelevant for raw encode
        buf
    }

    #[test]
    fn nearest_centroid() {
        let c = Centroids::new(2, vec![0.0, 0.0, 10.0, 10.0]);
        assert_eq!(c.nearest(&[1.0, 1.0]), 0);
        assert_eq!(c.nearest(&[9.0, 9.0]), 1);
        assert_eq!(c.k(), 2);
    }

    #[test]
    fn one_pass_matches_reference() {
        let app = KMeansApp::new(2, 2);
        let pts: Vec<Vec<f32>> = vec![
            vec![0.0, 0.0],
            vec![1.0, 1.0],
            vec![9.0, 9.0],
            vec![10.0, 10.0],
        ];
        let flat: Vec<f32> = pts.iter().flatten().copied().collect();
        let params = Centroids::new(2, vec![0.5, 0.5, 9.5, 9.5]);

        let robj = run_sequential(&app, &params, vec![(meta(0, 4, 2), encode(&flat))]);
        let got = next_centroids(&app, &robj, &params);
        let expect = kmeans_reference_pass(&pts, &params);
        assert_eq!(got, expect);
        assert_eq!(got.centroid(0), &[0.5, 0.5]);
        assert_eq!(got.centroid(1), &[9.5, 9.5]);
    }

    #[test]
    fn empty_cluster_keeps_previous_centroid() {
        let app = KMeansApp::new(1, 2);
        let params = Centroids::new(1, vec![0.0, 100.0]);
        let pts = vec![1.0f32, 2.0]; // all near centroid 0
        let robj = run_sequential(&app, &params, vec![(meta(0, 2, 1), encode(&pts))]);
        let next = next_centroids(&app, &robj, &params);
        assert_eq!(next.centroid(1), &[100.0], "empty cluster unchanged");
        assert!((next.centroid(0)[0] - 1.5).abs() < 1e-9);
    }

    #[test]
    fn centroid_shift_metric() {
        let a = Centroids::new(2, vec![0.0, 0.0, 1.0, 1.0]);
        let b = Centroids::new(2, vec![0.0, 0.0, 4.0, 5.0]);
        assert!((centroid_shift(&a, &b) - 5.0).abs() < 1e-12);
        assert_eq!(centroid_shift(&a, &a), 0.0);
    }

    #[test]
    fn iteration_converges_on_blobs() {
        // Two tight blobs; k-means should land on their means in a few passes.
        let mut pts = Vec::new();
        for i in 0..50 {
            let j = (i % 7) as f32 * 0.01;
            pts.push(vec![1.0 + j, 1.0 - j]);
            pts.push(vec![8.0 - j, 8.0 + j]);
        }
        let mut params = Centroids::new(2, vec![0.0, 0.0, 10.0, 10.0]);
        for _ in 0..10 {
            let next = kmeans_reference_pass(&pts, &params);
            if centroid_shift(&params, &next) < 1e-9 {
                params = next;
                break;
            }
            params = next;
        }
        assert!((params.centroid(0)[0] - 1.03).abs() < 0.05);
        assert!((params.centroid(1)[0] - 7.97).abs() < 0.05);
    }

    #[test]
    #[should_panic(expected = "wrong k")]
    fn mismatched_params_rejected() {
        let app = KMeansApp::new(2, 3);
        let params = Centroids::new(2, vec![0.0, 0.0]);
        app.init(&params);
    }
}
