//! Summary statistics over a stream of scalar readings — a small
//! application showing *composed* reduction objects: one pass accumulates a
//! `(Moments, Histogram, MinMax)` triple (component-wise merge comes from
//! the blanket tuple impl in `cloudburst_core::api`).
//!
//! Units are little-endian `f64` readings (sensor samples, latencies, ...).

use cb_storage::layout::ChunkMeta;
use cloudburst_core::api::GRApp;
use cloudburst_core::combine::{Histogram, MinMax, Moments};

/// Parameters: the histogram range (fixed per pass so per-worker histograms
/// are merge-compatible).
#[derive(Debug, Clone, Copy)]
pub struct StatsQuery {
    pub histogram_lo: f64,
    pub histogram_hi: f64,
    pub histogram_bins: usize,
}

/// The statistics application.
#[derive(Debug, Clone, Default)]
pub struct StatsApp;

impl GRApp for StatsApp {
    type Unit = f64;
    type RObj = (Moments, Histogram, MinMax);
    type Params = StatsQuery;

    fn decode_chunk(&self, meta: &ChunkMeta, bytes: &[u8]) -> Vec<f64> {
        assert_eq!(bytes.len() % 8, 0, "chunk not a whole number of readings");
        let units: Vec<f64> = bytes
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
            .collect();
        assert_eq!(units.len() as u64, meta.units, "unit count mismatch");
        units
    }

    fn init(&self, q: &StatsQuery) -> (Moments, Histogram, MinMax) {
        (
            Moments::new(),
            Histogram::new(q.histogram_lo, q.histogram_hi, q.histogram_bins),
            MinMax::default(),
        )
    }

    fn local_reduce(&self, _q: &StatsQuery, robj: &mut (Moments, Histogram, MinMax), unit: &f64) {
        robj.0.observe(*unit);
        robj.1.observe(*unit);
        // MinMax is integer-domain; readings are observed at millisecond
        // resolution (scaled), which is exact for the comparison purpose.
        robj.2.observe((*unit * 1000.0).round() as i64);
    }
}

/// Encode readings for materialization.
pub fn encode_readings(readings: &[f64], buf: &mut [u8]) {
    assert_eq!(buf.len(), readings.len() * 8);
    for (r, rec) in readings.iter().zip(buf.chunks_exact_mut(8)) {
        rec.copy_from_slice(&r.to_le_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cb_storage::layout::{ChunkId, FileId};
    use cloudburst_core::api::{run_sequential, ReductionObject};

    fn chunk(vals: &[f64]) -> (ChunkMeta, Vec<u8>) {
        let mut buf = vec![0u8; vals.len() * 8];
        encode_readings(vals, &mut buf);
        (
            ChunkMeta {
                id: ChunkId(0),
                file: FileId(0),
                offset: 0,
                len: buf.len() as u64,
                units: vals.len() as u64,
            },
            buf,
        )
    }

    fn query() -> StatsQuery {
        StatsQuery {
            histogram_lo: 0.0,
            histogram_hi: 10.0,
            histogram_bins: 10,
        }
    }

    #[test]
    fn one_pass_gets_all_three_statistics() {
        let vals = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let (meta, bytes) = chunk(&vals);
        let (moments, hist, minmax) = run_sequential(&StatsApp, &query(), vec![(meta, bytes)]);
        assert_eq!(moments.count(), 8);
        assert!((moments.mean() - 5.0).abs() < 1e-12);
        assert!((moments.variance() - 32.0 / 7.0).abs() < 1e-9);
        assert_eq!(hist.count(), 8);
        assert_eq!(hist.bins()[4], 3, "three readings of 4.0 in [4,5)");
        assert_eq!(hist.bins()[5], 2, "two readings of 5.0 in [5,6)");
        assert_eq!(minmax.min, Some(2_000));
        assert_eq!(minmax.max, Some(9_000));
    }

    #[test]
    fn split_merge_equals_whole() {
        let vals: Vec<f64> = (0..200).map(|i| (i % 10) as f64 + 0.25).collect();
        let (m_all, b_all) = chunk(&vals);
        let whole = run_sequential(&StatsApp, &query(), vec![(m_all, b_all)]);

        let (m1, b1) = chunk(&vals[..77]);
        let (m2, b2) = chunk(&vals[77..]);
        let mut left = run_sequential(&StatsApp, &query(), vec![(m1, b1)]);
        let right = run_sequential(&StatsApp, &query(), vec![(m2, b2)]);
        left.merge(right);

        assert_eq!(left.0.count(), whole.0.count());
        assert!((left.0.mean() - whole.0.mean()).abs() < 1e-9);
        assert!((left.0.variance() - whole.0.variance()).abs() < 1e-9);
        assert_eq!(left.1, whole.1);
        assert_eq!(left.2, whole.2);
    }

    #[test]
    fn robj_size_is_small_and_additive() {
        let q = query();
        let robj = StatsApp.init(&q);
        // Moments (24) + histogram (10*8 + 32) + minmax (16).
        assert_eq!(robj.size_bytes(), 24 + 112 + 16);
    }
}
