//! k-Nearest-Neighbors search (paper §IV-A: low computation, medium-high
//! I/O, small reduction object; k = 1000 in the evaluation).
//!
//! Each data unit is a point; the reduction object is a bounded [`TopK`]
//! keeping the k smallest squared distances to the query, so memory per
//! worker is O(k) regardless of dataset size — exactly the generalized-
//! reduction argument.

use crate::points;
use cb_storage::layout::ChunkMeta;
use cloudburst_core::api::GRApp;
use cloudburst_core::combine::TopK;

/// A point with its global id (payload returned in results).
#[derive(Debug, Clone)]
pub struct IdPoint {
    pub id: u64,
    pub coords: Vec<f32>,
}

/// Query parameters for one knn pass.
#[derive(Debug, Clone)]
pub struct KnnQuery {
    /// The query point.
    pub query: Vec<f32>,
}

/// The knn application.
#[derive(Debug, Clone)]
pub struct KnnApp {
    pub dim: usize,
    pub k: usize,
}

impl KnnApp {
    pub fn new(dim: usize, k: usize) -> Self {
        assert!(dim > 0 && k > 0);
        KnnApp { dim, k }
    }

    /// Globally unique id of unit `i` of `chunk`: file id in the high bits,
    /// record index within the file in the low bits.
    pub fn unit_id(chunk: &ChunkMeta, dim: usize, i: usize) -> u64 {
        let per_file_index = chunk.offset / points::unit_bytes(dim) + i as u64;
        ((chunk.file.0 as u64) << 40) | per_file_index
    }
}

impl GRApp for KnnApp {
    type Unit = IdPoint;
    type RObj = TopK;
    type Params = KnnQuery;

    fn decode_chunk(&self, meta: &ChunkMeta, bytes: &[u8]) -> Vec<IdPoint> {
        let pts = points::decode(bytes, self.dim);
        assert_eq!(pts.len() as u64, meta.units, "unit count mismatch");
        pts.into_iter()
            .enumerate()
            .map(|(i, coords)| IdPoint {
                id: Self::unit_id(meta, self.dim, i),
                coords,
            })
            .collect()
    }

    fn init(&self, _params: &KnnQuery) -> TopK {
        TopK::new(self.k)
    }

    fn local_reduce(&self, params: &KnnQuery, robj: &mut TopK, unit: &IdPoint) {
        let d2 = points::dist2(&unit.coords, &params.query);
        robj.offer(d2, unit.id);
    }
}

/// Batch k-NN: answer many queries in one pass over the data (how a knn
/// service actually amortizes its scan). The reduction object is one
/// bounded [`TopK`] per query, merged slot-wise; total state stays
/// `O(queries × k)` per worker.
#[derive(Debug, Clone)]
pub struct BatchKnnApp {
    pub dim: usize,
    pub k: usize,
}

/// Slot-wise mergeable set of per-query top-k heaps.
#[derive(Debug, Clone)]
pub struct TopKSet {
    heaps: Vec<TopK>,
}

impl TopKSet {
    pub fn new(queries: usize, k: usize) -> Self {
        TopKSet {
            heaps: (0..queries).map(|_| TopK::new(k)).collect(),
        }
    }

    pub fn queries(&self) -> usize {
        self.heaps.len()
    }

    /// Results per query, best-first.
    pub fn into_sorted(self) -> Vec<Vec<(f64, u64)>> {
        self.heaps.into_iter().map(TopK::into_sorted).collect()
    }
}

impl cloudburst_core::api::ReductionObject for TopKSet {
    fn merge(&mut self, other: Self) {
        assert_eq!(
            self.heaps.len(),
            other.heaps.len(),
            "merging TopKSet with different query counts"
        );
        for (a, b) in self.heaps.iter_mut().zip(other.heaps) {
            a.merge(b);
        }
    }
    fn size_bytes(&self) -> usize {
        self.heaps.iter().map(|h| h.size_bytes()).sum()
    }
}

/// Parameters of a batch pass: the query points.
#[derive(Debug, Clone)]
pub struct BatchQueries {
    pub queries: Vec<Vec<f32>>,
}

impl BatchKnnApp {
    pub fn new(dim: usize, k: usize) -> Self {
        assert!(dim > 0 && k > 0);
        BatchKnnApp { dim, k }
    }
}

impl GRApp for BatchKnnApp {
    type Unit = IdPoint;
    type RObj = TopKSet;
    type Params = BatchQueries;

    fn decode_chunk(&self, meta: &ChunkMeta, bytes: &[u8]) -> Vec<IdPoint> {
        KnnApp {
            dim: self.dim,
            k: self.k,
        }
        .decode_chunk(meta, bytes)
    }

    fn init(&self, params: &BatchQueries) -> TopKSet {
        assert!(!params.queries.is_empty(), "batch needs at least one query");
        for q in &params.queries {
            assert_eq!(q.len(), self.dim, "query dimension mismatch");
        }
        TopKSet::new(params.queries.len(), self.k)
    }

    fn local_reduce(&self, params: &BatchQueries, robj: &mut TopKSet, unit: &IdPoint) {
        for (q, heap) in params.queries.iter().zip(robj.heaps.iter_mut()) {
            heap.offer(points::dist2(&unit.coords, q), unit.id);
        }
    }
}

/// Brute-force reference: the k nearest of `points` (by index-as-id) to
/// `query`. Returns ascending `(dist2, id)`.
pub fn knn_reference(points: &[(u64, Vec<f32>)], query: &[f32], k: usize) -> Vec<(f64, u64)> {
    let mut all: Vec<(f64, u64)> = points
        .iter()
        .map(|(id, p)| (points::dist2(p, query), *id))
        .collect();
    all.sort_by(|a, b| a.partial_cmp(b).unwrap());
    all.truncate(k);
    all
}

#[cfg(test)]
mod tests {
    use super::*;
    use cb_storage::layout::{ChunkId, FileId};
    use cloudburst_core::api::{run_sequential, ReductionObject};

    fn chunk_meta(file: u32, id: u32, offset: u64, n: u64, dim: usize) -> ChunkMeta {
        ChunkMeta {
            id: ChunkId(id),
            file: FileId(file),
            offset,
            len: n * points::unit_bytes(dim),
            units: n,
        }
    }

    fn encode(pts: &[f32], dim: usize) -> Vec<u8> {
        let mut buf = vec![0u8; pts.len() * 4];
        points::encode_into(pts, dim, &mut buf);
        buf
    }

    #[test]
    fn finds_nearest_points() {
        let app = KnnApp::new(2, 2);
        let data = vec![
            0.0f32, 0.0, // id (0<<40)|0
            5.0, 5.0, //    id 1
            0.1, 0.1, //    id 2
            9.0, 9.0, //    id 3
        ];
        let meta = chunk_meta(0, 0, 0, 4, 2);
        let bytes = encode(&data, 2);
        let q = KnnQuery {
            query: vec![0.0, 0.0],
        };
        let robj = run_sequential(&app, &q, vec![(meta, bytes)]);
        let got = robj.into_sorted();
        assert_eq!(got[0].1, 0);
        assert_eq!(got[1].1, 2);
    }

    #[test]
    fn unit_ids_unique_across_chunks_of_a_file() {
        let dim = 2;
        let a = chunk_meta(0, 0, 0, 3, dim);
        let b = chunk_meta(0, 1, 3 * points::unit_bytes(dim), 3, dim);
        let ids_a: Vec<u64> = (0..3).map(|i| KnnApp::unit_id(&a, dim, i)).collect();
        let ids_b: Vec<u64> = (0..3).map(|i| KnnApp::unit_id(&b, dim, i)).collect();
        assert_eq!(ids_a, vec![0, 1, 2]);
        assert_eq!(ids_b, vec![3, 4, 5]);
    }

    #[test]
    fn unit_ids_distinct_across_files() {
        let dim = 2;
        let f0 = chunk_meta(0, 0, 0, 1, dim);
        let f1 = chunk_meta(1, 1, 0, 1, dim);
        assert_ne!(KnnApp::unit_id(&f0, dim, 0), KnnApp::unit_id(&f1, dim, 0));
    }

    #[test]
    fn split_processing_matches_reference() {
        let app = KnnApp::new(3, 5);
        let mut rng = cb_simnet::DetRng::new(1);
        let pts: Vec<f32> = (0..60).map(|_| rng.uniform() as f32).collect();
        let q = KnnQuery {
            query: vec![0.5, 0.5, 0.5],
        };

        // Two chunks of 10 points each.
        let m1 = chunk_meta(0, 0, 0, 10, 3);
        let m2 = chunk_meta(0, 1, 10 * 12, 10, 3);
        let b1 = encode(&pts[..30], 3);
        let b2 = encode(&pts[30..], 3);

        let mut left = run_sequential(&app, &q, vec![(m1, b1.clone())]);
        let right = run_sequential(&app, &q, vec![(m2, b2.clone())]);
        left.merge(right);

        let ref_pts: Vec<(u64, Vec<f32>)> = pts
            .chunks_exact(3)
            .enumerate()
            .map(|(i, p)| (i as u64, p.to_vec()))
            .collect();
        let expect = knn_reference(&ref_pts, &q.query, 5);

        let got = left.into_sorted();
        assert_eq!(got.len(), 5);
        for ((gd, gid), (ed, eid)) in got.iter().zip(&expect) {
            assert!((gd - ed).abs() < 1e-9);
            assert_eq!(gid, eid);
        }
    }

    #[test]
    fn batch_knn_answers_every_query_like_single_queries() {
        let dim = 2;
        let k = 4;
        let mut rng = cb_simnet::DetRng::new(3);
        let pts: Vec<f32> = (0..200).map(|_| rng.uniform() as f32).collect();
        let meta = chunk_meta(0, 0, 0, 100, dim);
        let bytes = encode(&pts, dim);

        let queries = vec![vec![0.1, 0.1], vec![0.9, 0.9], vec![0.5, 0.2]];
        let batch = BatchKnnApp::new(dim, k);
        let robj = run_sequential(
            &batch,
            &BatchQueries {
                queries: queries.clone(),
            },
            vec![(meta, bytes.clone())],
        );
        let batch_results = robj.into_sorted();

        let single = KnnApp::new(dim, k);
        for (qi, q) in queries.iter().enumerate() {
            let r = run_sequential(
                &single,
                &KnnQuery { query: q.clone() },
                vec![(meta, bytes.clone())],
            );
            assert_eq!(batch_results[qi], r.into_sorted(), "query {qi}");
        }
    }

    #[test]
    fn topkset_merge_is_slotwise() {
        let mut a = TopKSet::new(2, 2);
        let mut b = TopKSet::new(2, 2);
        let app = BatchKnnApp::new(1, 2);
        let params = BatchQueries {
            queries: vec![vec![0.0], vec![10.0]],
        };
        let unit = |id, x: f32| IdPoint {
            id,
            coords: vec![x],
        };
        app.local_reduce(&params, &mut a, &unit(1, 1.0));
        app.local_reduce(&params, &mut b, &unit(2, 9.0));
        use cloudburst_core::api::ReductionObject;
        a.merge(b);
        let res = a.into_sorted();
        assert_eq!(res[0][0].1, 1, "query at 0 is closest to point 1");
        assert_eq!(res[1][0].1, 2, "query at 10 is closest to point 9");
    }

    #[test]
    #[should_panic(expected = "different query counts")]
    fn topkset_query_count_mismatch_panics() {
        use cloudburst_core::api::ReductionObject;
        let mut a = TopKSet::new(2, 2);
        a.merge(TopKSet::new(3, 2));
    }

    #[test]
    fn robj_is_small() {
        let app = KnnApp::new(2, 100);
        let q = KnnQuery {
            query: vec![0.0, 0.0],
        };
        let robj = app.init(&q);
        assert!(robj.size_bytes() <= 100 * 16);
    }
}
