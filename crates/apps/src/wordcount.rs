//! Word count — the fourth application, used mainly to compare the
//! generalized-reduction API against the baseline MapReduce engine (Fig. 1):
//! the same keyed aggregation expressed both ways.
//!
//! Units are 8-byte word ids (a real system would hash tokens to ids during
//! ingestion); the reduction object is a [`KeyedSum`].

use cb_storage::layout::ChunkMeta;
use cloudburst_core::api::GRApp;
use cloudburst_core::combine::KeyedSum;

/// The wordcount application.
#[derive(Debug, Clone, Default)]
pub struct WordCountApp;

impl GRApp for WordCountApp {
    type Unit = u64;
    type RObj = KeyedSum;
    type Params = ();

    fn decode_chunk(&self, meta: &ChunkMeta, bytes: &[u8]) -> Vec<u64> {
        assert_eq!(bytes.len() % 8, 0, "chunk not a whole number of words");
        let words: Vec<u64> = bytes
            .chunks_exact(8)
            .map(|rec| u64::from_le_bytes(rec.try_into().unwrap()))
            .collect();
        assert_eq!(words.len() as u64, meta.units, "unit count mismatch");
        words
    }

    fn init(&self, _: &()) -> KeyedSum {
        KeyedSum::new()
    }

    fn local_reduce(&self, _: &(), robj: &mut KeyedSum, unit: &u64) {
        robj.add(*unit, 1.0);
    }
}

/// Sequential reference.
pub fn wordcount_reference(words: &[u64]) -> std::collections::BTreeMap<u64, u64> {
    let mut m = std::collections::BTreeMap::new();
    for &w in words {
        *m.entry(w).or_insert(0u64) += 1;
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use cb_storage::layout::{ChunkId, FileId};
    use cloudburst_core::api::run_sequential;

    fn encode(words: &[u64]) -> (ChunkMeta, Vec<u8>) {
        let bytes: Vec<u8> = words.iter().flat_map(|w| w.to_le_bytes()).collect();
        (
            ChunkMeta {
                id: ChunkId(0),
                file: FileId(0),
                offset: 0,
                len: bytes.len() as u64,
                units: words.len() as u64,
            },
            bytes,
        )
    }

    #[test]
    fn counts_match_reference() {
        let words = vec![3u64, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5];
        let (meta, bytes) = encode(&words);
        let robj = run_sequential(&WordCountApp, &(), vec![(meta, bytes)]);
        let expect = wordcount_reference(&words);
        assert_eq!(robj.len(), expect.len());
        for (w, n) in &expect {
            let (sum, cnt) = robj.get(*w).unwrap();
            assert_eq!(sum as u64, *n);
            assert_eq!(cnt, *n);
        }
    }

    #[test]
    fn empty_input() {
        let (meta, bytes) = encode(&[]);
        let robj = run_sequential(&WordCountApp, &(), vec![(meta, bytes)]);
        assert!(robj.is_empty());
    }
}
