//! Fixed-dimension point records: the on-disk format shared by knn and
//! k-means.
//!
//! A data unit is one point: `dim` little-endian `f32` coordinates
//! (`unit_bytes = 4 * dim`). Chunks hold whole points by construction of the
//! organizer.

/// Byte size of one point record.
pub fn unit_bytes(dim: usize) -> u64 {
    (dim * 4) as u64
}

/// Encode `points` (flattened row-major) into `buf`. Panics if sizes do not
/// line up — generation bugs should fail fast.
pub fn encode_into(points: &[f32], dim: usize, buf: &mut [u8]) {
    assert_eq!(points.len() % dim, 0, "ragged point array");
    assert_eq!(buf.len(), points.len() * 4, "buffer/points size mismatch");
    for (src, dst) in points.iter().zip(buf.chunks_exact_mut(4)) {
        dst.copy_from_slice(&src.to_le_bytes());
    }
}

/// Decode a chunk's bytes into owned points.
pub fn decode(bytes: &[u8], dim: usize) -> Vec<Vec<f32>> {
    assert_eq!(
        bytes.len() % (dim * 4),
        0,
        "chunk not a whole number of {dim}-d points"
    );
    bytes
        .chunks_exact(dim * 4)
        .map(|rec| {
            rec.chunks_exact(4)
                .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
                .collect()
        })
        .collect()
}

/// Squared Euclidean distance.
pub fn dist2(a: &[f32], b: &[f32]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(&x, &y)| {
            let d = x as f64 - y as f64;
            d * d
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_round_trip() {
        let pts = vec![1.0f32, 2.0, 3.0, -4.5, 0.25, 1e-7];
        let mut buf = vec![0u8; 24];
        encode_into(&pts, 3, &mut buf);
        let back = decode(&buf, 3);
        assert_eq!(back.len(), 2);
        assert_eq!(back[0], vec![1.0, 2.0, 3.0]);
        assert_eq!(back[1], vec![-4.5, 0.25, 1e-7]);
    }

    #[test]
    fn unit_bytes_matches_encoding() {
        assert_eq!(unit_bytes(3), 12);
        assert_eq!(unit_bytes(1), 4);
    }

    #[test]
    #[should_panic(expected = "whole number")]
    fn ragged_chunk_rejected() {
        decode(&[0u8; 10], 3);
    }

    #[test]
    fn dist2_basic() {
        assert_eq!(dist2(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        assert_eq!(dist2(&[1.0], &[1.0]), 0.0);
    }
}
