//! Deterministic synthetic dataset generators.
//!
//! The paper's 120 GB datasets (uniform/clustered points for knn and
//! k-means, a 50M-page web graph for pagerank) are not distributable; these
//! generators produce scaled-down datasets with the same *structure* (same
//! file/chunk organization, same record formats, matching statistical
//! profiles). Generation is a pure function of `(spec, chunk id)`, so the
//! fill closure used to materialize stores and the reference implementations
//! reading "the same" data cannot drift apart.

use crate::points;
use cb_simnet::DetRng;
use cb_storage::layout::{ChunkMeta, DatasetLayout};
use cb_storage::organizer::organize_even;

/// Shape of generated point clouds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PointMode {
    /// Uniform in `[0, 1)^dim` (the knn workload).
    Uniform,
    /// Gaussian blobs around `centers` well-separated centers (the k-means
    /// workload; `spread` is the blob standard deviation).
    Blobs { centers: usize, spread: f64 },
}

/// A synthetic point dataset.
#[derive(Debug, Clone)]
pub struct PointsSpec {
    pub n_files: usize,
    pub points_per_file: usize,
    pub points_per_chunk: usize,
    pub dim: usize,
    pub seed: u64,
    pub mode: PointMode,
}

impl PointsSpec {
    /// The dataset layout this spec materializes to.
    pub fn layout(&self) -> DatasetLayout {
        let unit = points::unit_bytes(self.dim);
        organize_even(
            self.n_files,
            self.points_per_file as u64 * unit,
            self.points_per_chunk as u64 * unit,
            unit,
        )
        .expect("points spec produces a valid layout")
    }

    /// Generate the points of one chunk (row-major flattened).
    pub fn chunk_points(&self, chunk: &ChunkMeta) -> Vec<f32> {
        let mut rng = DetRng::new(self.seed ^ 0x9E3779B9).fork(chunk.id.0 as u64);
        let n = chunk.units as usize;
        let mut out = Vec::with_capacity(n * self.dim);
        match self.mode {
            PointMode::Uniform => {
                for _ in 0..n * self.dim {
                    out.push(rng.uniform() as f32);
                }
            }
            PointMode::Blobs { centers, spread } => {
                for _ in 0..n {
                    let c = rng.index(centers);
                    let center = Self::blob_center(self.seed, c, self.dim);
                    for coord in &center {
                        out.push((coord + spread * rng.std_normal()) as f32);
                    }
                }
            }
        }
        out
    }

    /// The (deterministic) center of blob `c`.
    pub fn blob_center(seed: u64, c: usize, dim: usize) -> Vec<f64> {
        let mut rng = DetRng::new(seed ^ 0xB10B).fork(c as u64);
        (0..dim).map(|_| rng.uniform() * 10.0).collect()
    }

    /// Fill closure for [`cb_storage::builder::materialize`].
    pub fn fill(&self) -> impl FnMut(&ChunkMeta, &mut [u8]) + '_ {
        move |chunk, buf| {
            let pts = self.chunk_points(chunk);
            points::encode_into(&pts, self.dim, buf);
        }
    }

    /// Every point of the dataset, in chunk order — the reference
    /// implementations' view of "the same data".
    pub fn all_points(&self, layout: &DatasetLayout) -> Vec<Vec<f32>> {
        let mut out = Vec::with_capacity(layout.total_units() as usize);
        for chunk in &layout.chunks {
            let flat = self.chunk_points(chunk);
            for rec in flat.chunks_exact(self.dim) {
                out.push(rec.to_vec());
            }
        }
        out
    }
}

/// A synthetic directed graph in edge-list form (pagerank's workload):
/// units are `(src: u32, dst: u32)` pairs, 8 bytes each. Sources follow a
/// discrete power-law-ish distribution (hubs emit many links), destinations
/// are uniform.
#[derive(Debug, Clone)]
pub struct GraphSpec {
    pub n_pages: u32,
    pub n_files: usize,
    pub edges_per_file: usize,
    pub edges_per_chunk: usize,
    pub seed: u64,
}

impl GraphSpec {
    pub const UNIT_BYTES: u64 = 8;

    pub fn layout(&self) -> DatasetLayout {
        organize_even(
            self.n_files,
            self.edges_per_file as u64 * Self::UNIT_BYTES,
            self.edges_per_chunk as u64 * Self::UNIT_BYTES,
            Self::UNIT_BYTES,
        )
        .expect("graph spec produces a valid layout")
    }

    /// Total edges.
    pub fn n_edges(&self) -> u64 {
        (self.n_files * self.edges_per_file) as u64
    }

    /// Sample a power-law-ish page id: squaring a uniform biases mass
    /// toward low ids, giving a heavy-tailed out-degree profile without a
    /// Zipf sampler's cost.
    fn sample_src(rng: &mut DetRng, n_pages: u32) -> u32 {
        let u = rng.uniform();
        ((u * u) * n_pages as f64) as u32 % n_pages
    }

    /// Generate the edges of one chunk.
    pub fn chunk_edges(&self, chunk: &ChunkMeta) -> Vec<(u32, u32)> {
        let mut rng = DetRng::new(self.seed ^ 0xED6E5).fork(chunk.id.0 as u64);
        (0..chunk.units)
            .map(|_| {
                let src = Self::sample_src(&mut rng, self.n_pages);
                let dst = rng.index(self.n_pages as usize) as u32;
                (src, dst)
            })
            .collect()
    }

    /// Fill closure for materialization.
    pub fn fill(&self) -> impl FnMut(&ChunkMeta, &mut [u8]) + '_ {
        move |chunk, buf| {
            let edges = self.chunk_edges(chunk);
            for (e, rec) in edges.iter().zip(buf.chunks_exact_mut(8)) {
                rec[..4].copy_from_slice(&e.0.to_le_bytes());
                rec[4..].copy_from_slice(&e.1.to_le_bytes());
            }
        }
    }

    /// Every edge, in chunk order (reference view).
    pub fn all_edges(&self, layout: &DatasetLayout) -> Vec<(u32, u32)> {
        layout
            .chunks
            .iter()
            .flat_map(|c| self.chunk_edges(c))
            .collect()
    }

    /// Out-degree of every page (needed by the pagerank params).
    pub fn out_degrees(&self, layout: &DatasetLayout) -> Vec<u32> {
        let mut deg = vec![0u32; self.n_pages as usize];
        for (src, _) in self.all_edges(layout) {
            deg[src as usize] += 1;
        }
        deg
    }
}

/// A synthetic text corpus for wordcount: units are 8-byte word ids drawn
/// from a skewed (power-law-ish) vocabulary.
#[derive(Debug, Clone)]
pub struct WordsSpec {
    pub vocabulary: u64,
    pub n_files: usize,
    pub words_per_file: usize,
    pub words_per_chunk: usize,
    pub seed: u64,
}

impl WordsSpec {
    pub const UNIT_BYTES: u64 = 8;

    pub fn layout(&self) -> DatasetLayout {
        organize_even(
            self.n_files,
            self.words_per_file as u64 * Self::UNIT_BYTES,
            self.words_per_chunk as u64 * Self::UNIT_BYTES,
            Self::UNIT_BYTES,
        )
        .expect("words spec produces a valid layout")
    }

    pub fn chunk_words(&self, chunk: &ChunkMeta) -> Vec<u64> {
        let mut rng = DetRng::new(self.seed ^ 0x30D5).fork(chunk.id.0 as u64);
        (0..chunk.units)
            .map(|_| {
                let u = rng.uniform();
                ((u * u * u) * self.vocabulary as f64) as u64 % self.vocabulary
            })
            .collect()
    }

    pub fn fill(&self) -> impl FnMut(&ChunkMeta, &mut [u8]) + '_ {
        move |chunk, buf| {
            for (w, rec) in self.chunk_words(chunk).iter().zip(buf.chunks_exact_mut(8)) {
                rec.copy_from_slice(&w.to_le_bytes());
            }
        }
    }

    pub fn all_words(&self, layout: &DatasetLayout) -> Vec<u64> {
        layout
            .chunks
            .iter()
            .flat_map(|c| self.chunk_words(c))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pspec(mode: PointMode) -> PointsSpec {
        PointsSpec {
            n_files: 3,
            points_per_file: 120,
            points_per_chunk: 40,
            dim: 4,
            seed: 77,
            mode,
        }
    }

    #[test]
    fn points_layout_shape() {
        let spec = pspec(PointMode::Uniform);
        let layout = spec.layout();
        assert_eq!(layout.files.len(), 3);
        assert_eq!(layout.n_jobs(), 9);
        assert_eq!(layout.total_units(), 360);
        layout.validate().unwrap();
    }

    #[test]
    fn points_generation_is_deterministic_and_chunk_local() {
        let spec = pspec(PointMode::Uniform);
        let layout = spec.layout();
        let a = spec.chunk_points(&layout.chunks[2]);
        let b = spec.chunk_points(&layout.chunks[2]);
        assert_eq!(a, b);
        let c = spec.chunk_points(&layout.chunks[3]);
        assert_ne!(a, c, "different chunks get different data");
    }

    #[test]
    fn fill_and_all_points_agree() {
        let spec = pspec(PointMode::Blobs {
            centers: 3,
            spread: 0.1,
        });
        let layout = spec.layout();
        // Decode what fill() writes for chunk 0 and compare to all_points.
        let chunk = &layout.chunks[0];
        let mut buf = vec![0u8; chunk.len as usize];
        (spec.fill())(chunk, &mut buf);
        let decoded = points::decode(&buf, spec.dim);
        let all = spec.all_points(&layout);
        assert_eq!(&all[..decoded.len()], &decoded[..]);
    }

    #[test]
    fn blobs_cluster_around_centers() {
        let spec = pspec(PointMode::Blobs {
            centers: 2,
            spread: 0.01,
        });
        let layout = spec.layout();
        let centers: Vec<Vec<f64>> = (0..2)
            .map(|c| PointsSpec::blob_center(spec.seed, c, spec.dim))
            .collect();
        for p in spec.all_points(&layout) {
            let d = centers
                .iter()
                .map(|c| {
                    let cf: Vec<f32> = c.iter().map(|&x| x as f32).collect();
                    points::dist2(&p, &cf)
                })
                .fold(f64::INFINITY, f64::min);
            assert!(d < 1.0, "point far from every center: d2={d}");
        }
    }

    #[test]
    fn graph_edges_in_range_and_deterministic() {
        let spec = GraphSpec {
            n_pages: 50,
            n_files: 2,
            edges_per_file: 200,
            edges_per_chunk: 50,
            seed: 5,
        };
        let layout = spec.layout();
        assert_eq!(layout.n_jobs(), 8);
        let edges = spec.all_edges(&layout);
        assert_eq!(edges.len() as u64, spec.n_edges());
        assert!(edges.iter().all(|&(s, d)| s < 50 && d < 50));
        assert_eq!(edges, spec.all_edges(&layout));
    }

    #[test]
    fn graph_out_degrees_sum_to_edges() {
        let spec = GraphSpec {
            n_pages: 30,
            n_files: 2,
            edges_per_file: 100,
            edges_per_chunk: 25,
            seed: 9,
        };
        let layout = spec.layout();
        let deg = spec.out_degrees(&layout);
        assert_eq!(deg.iter().map(|&d| d as u64).sum::<u64>(), spec.n_edges());
    }

    #[test]
    fn graph_sources_are_skewed() {
        let spec = GraphSpec {
            n_pages: 1000,
            n_files: 1,
            edges_per_file: 10_000,
            edges_per_chunk: 10_000,
            seed: 13,
        };
        let layout = spec.layout();
        let deg = spec.out_degrees(&layout);
        // Low ids (hubs) should hold far more than their uniform share.
        let low: u64 = deg[..100].iter().map(|&d| d as u64).sum();
        assert!(
            low > 2_000,
            "first 10% of pages should emit >20% of edges, got {low}"
        );
    }

    #[test]
    fn words_skewed_and_in_vocab() {
        let spec = WordsSpec {
            vocabulary: 100,
            n_files: 1,
            words_per_file: 5000,
            words_per_chunk: 1000,
            seed: 3,
        };
        let layout = spec.layout();
        let words = spec.all_words(&layout);
        assert_eq!(words.len(), 5000);
        assert!(words.iter().all(|&w| w < 100));
        let zeros = words.iter().filter(|&&w| w == 0).count();
        assert!(zeros > 100, "word 0 should be very frequent, got {zeros}");
    }
}
