//! # cb-apps — the evaluation applications
//!
//! The three data-intensive applications of the paper's evaluation
//! (§IV-A), plus wordcount for the API-comparison experiments:
//!
//! * [`knn`] — k-Nearest-Neighbors search: low compute, medium-high I/O,
//!   small reduction object (a bounded top-k heap).
//! * [`kmeans`] — k-Means clustering: heavy compute, low-medium I/O, small
//!   reduction object (per-centroid sums and counts).
//! * [`pagerank`] — PageRank: low-medium compute, high I/O, **very large**
//!   reduction object (dense rank accumulator over all pages).
//! * [`wordcount`] — keyed counting, expressed on both the generalized-
//!   reduction API and the baseline MapReduce engine.
//! * [`selection`] — distributed grep over point records (data-dependent
//!   reduction-object size).
//! * [`sample`] — distributed uniform sampling (order-insensitive bottom-k
//!   sketch) and k-means++ seeding on the sample.
//!
//! Plus the substrate the examples/tests share:
//!
//! * [`points`] — the fixed-dimension point record format.
//! * [`gen`] — deterministic synthetic dataset generators (uniform points,
//!   Gaussian blobs, power-law web graphs, skewed word streams).
//! * [`scenario`] — one-call construction of the paper's hybrid
//!   local+cloud environments at laptop scale.

#![deny(unsafe_code)]

pub mod gen;
pub mod kmeans;
pub mod knn;
pub mod mr_adapters;
pub mod pagerank;
pub mod points;
pub mod sample;
pub mod scenario;
pub mod selection;
pub mod stats;
pub mod wordcount;
