//! Distributed uniform sampling and k-means++ initialization.
//!
//! Picking initial centroids requires a uniform sample of the dataset — but
//! reservoir sampling is order-*sensitive*, so it cannot be a reduction
//! object. The **bottom-k sketch** can: tag every record with a
//! deterministic pseudo-random key (a hash of its global id) and keep the k
//! records with the smallest keys. "Smallest k of a set" is
//! order-insensitive and merges exactly, and because the keys are uniform
//! the surviving records are a uniform sample. One framework pass yields the
//! sample; k-means++ then runs on it locally.

use crate::knn::KnnApp;
use crate::points;
use cb_simnet::DetRng;
use cb_storage::layout::ChunkMeta;
use cloudburst_core::api::{GRApp, ReductionObject};

/// Deterministic 64-bit mix of a record id (splitmix64 finalizer) — the
/// pseudo-random sampling key.
pub fn sample_key(id: u64, salt: u64) -> u64 {
    let mut z = id ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A bounded, mergeable uniform sample of points: the `k` records with the
/// smallest sampling keys seen so far.
#[derive(Debug, Clone)]
pub struct BottomKSample {
    k: usize,
    /// `(key, point)`, kept as a max-by-key binary heap via sort-on-insert
    /// batching: we keep a Vec and prune when it doubles — simpler than a
    /// heap of non-Ord payloads, same asymptotics for our sizes.
    entries: Vec<(u64, Vec<f32>)>,
}

impl BottomKSample {
    pub fn new(k: usize) -> Self {
        assert!(k > 0);
        BottomKSample {
            k,
            entries: Vec::with_capacity(2 * k),
        }
    }

    pub fn offer(&mut self, key: u64, point: Vec<f32>) {
        self.entries.push((key, point));
        if self.entries.len() >= 2 * self.k {
            self.prune();
        }
    }

    fn prune(&mut self) {
        self.entries.sort_by_key(|(k, _)| *k);
        self.entries.dedup_by_key(|(k, _)| *k);
        self.entries.truncate(self.k);
    }

    /// The sample, in ascending key order (canonical).
    pub fn into_points(mut self) -> Vec<Vec<f32>> {
        self.prune();
        self.entries.into_iter().map(|(_, p)| p).collect()
    }

    pub fn len_bound(&self) -> usize {
        self.entries.len().min(self.k)
    }
}

impl ReductionObject for BottomKSample {
    fn merge(&mut self, other: Self) {
        assert_eq!(self.k, other.k, "merging samples of different k");
        self.entries.extend(other.entries);
        self.prune();
    }
    fn size_bytes(&self) -> usize {
        self.entries
            .iter()
            .map(|(_, p)| 8 + p.len() * 4)
            .sum::<usize>()
            .min(self.k * 64)
    }
}

/// The sampling application: one pass yields a uniform sample of `k` points.
#[derive(Debug, Clone)]
pub struct SampleApp {
    pub dim: usize,
    pub k: usize,
    /// Salt for the sampling keys: different salts give independent samples.
    pub salt: u64,
}

impl SampleApp {
    pub fn new(dim: usize, k: usize, salt: u64) -> Self {
        assert!(dim > 0 && k > 0);
        SampleApp { dim, k, salt }
    }
}

impl GRApp for SampleApp {
    /// `(global id, coordinates)`.
    type Unit = (u64, Vec<f32>);
    type RObj = BottomKSample;
    type Params = ();

    fn decode_chunk(&self, meta: &ChunkMeta, bytes: &[u8]) -> Vec<(u64, Vec<f32>)> {
        points::decode(bytes, self.dim)
            .into_iter()
            .enumerate()
            .map(|(i, p)| (KnnApp::unit_id(meta, self.dim, i), p))
            .collect()
    }

    fn init(&self, _: &()) -> BottomKSample {
        BottomKSample::new(self.k)
    }

    fn local_reduce(&self, _: &(), robj: &mut BottomKSample, unit: &(u64, Vec<f32>)) {
        robj.offer(sample_key(unit.0, self.salt), unit.1.clone());
    }
}

/// k-means++ seeding over a (sampled) point set: the first centroid is
/// uniform, each further centroid is drawn proportionally to its squared
/// distance from the nearest already-chosen centroid.
pub fn kmeans_plus_plus(sample: &[Vec<f32>], k: usize, seed: u64) -> Vec<f64> {
    assert!(!sample.is_empty(), "cannot seed from an empty sample");
    assert!(k > 0);
    debug_assert!(
        sample.iter().all(|p| p.len() == sample[0].len()),
        "ragged sample"
    );
    let mut rng = DetRng::new(seed);
    let mut centers: Vec<&[f32]> = vec![&sample[rng.index(sample.len())]];
    let mut d2: Vec<f64> = sample
        .iter()
        .map(|p| points::dist2(p, centers[0]))
        .collect();
    while centers.len() < k {
        let total: f64 = d2.iter().sum();
        let next = if total <= 0.0 {
            // All remaining mass is on already-chosen points (duplicates):
            // fall back to uniform.
            rng.index(sample.len())
        } else {
            let mut target = rng.uniform() * total;
            let mut idx = 0;
            for (i, &w) in d2.iter().enumerate() {
                target -= w;
                if target <= 0.0 {
                    idx = i;
                    break;
                }
            }
            idx
        };
        centers.push(&sample[next]);
        let c = centers[centers.len() - 1];
        for (i, p) in sample.iter().enumerate() {
            d2[i] = d2[i].min(points::dist2(p, c));
        }
    }
    centers
        .into_iter()
        .flat_map(|c| c.iter().map(|&x| x as f64))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cb_storage::layout::{ChunkId, FileId};
    use cloudburst_core::api::run_sequential;

    #[test]
    fn sample_key_is_deterministic_and_spread() {
        assert_eq!(sample_key(7, 1), sample_key(7, 1));
        assert_ne!(sample_key(7, 1), sample_key(7, 2));
        assert_ne!(sample_key(7, 1), sample_key(8, 1));
        // Keys of consecutive ids should look uniform: check top-bit balance.
        let ones = (0..10_000u64)
            .filter(|&i| sample_key(i, 0) >> 63 == 1)
            .count();
        assert!((4_000..6_000).contains(&ones), "biased keys: {ones}");
    }

    #[test]
    fn bottom_k_merge_equals_whole() {
        let mk = |ids: std::ops::Range<u64>| {
            let mut s = BottomKSample::new(10);
            for id in ids {
                s.offer(sample_key(id, 5), vec![id as f32]);
            }
            s
        };
        let whole = mk(0..1000);
        let mut left = mk(0..431);
        left.merge(mk(431..1000));
        assert_eq!(whole.into_points(), left.into_points());
    }

    #[test]
    fn sample_is_roughly_uniform() {
        // Sample 200 of 10k points whose single coordinate is their index;
        // the sample mean should be near the population mean.
        let mut s = BottomKSample::new(200);
        for id in 0..10_000u64 {
            s.offer(sample_key(id, 9), vec![id as f32]);
        }
        let pts = s.into_points();
        assert_eq!(pts.len(), 200);
        let mean: f64 = pts.iter().map(|p| p[0] as f64).sum::<f64>() / 200.0;
        assert!(
            (3_500.0..6_500.0).contains(&mean),
            "sample not uniform: mean {mean}"
        );
    }

    #[test]
    fn sample_app_via_framework() {
        let dim = 2;
        let app = SampleApp::new(dim, 16, 3);
        let pts: Vec<f32> = (0..400).map(|i| (i % 37) as f32).collect();
        let mut buf = vec![0u8; pts.len() * 4];
        points::encode_into(&pts, dim, &mut buf);
        let meta = ChunkMeta {
            id: ChunkId(0),
            file: FileId(0),
            offset: 0,
            len: buf.len() as u64,
            units: 200,
        };
        let robj = run_sequential(&app, &(), vec![(meta, buf)]);
        let sample = robj.into_points();
        assert_eq!(sample.len(), 16);
        assert!(sample.iter().all(|p| p.len() == dim));
    }

    #[test]
    fn kmeans_pp_picks_spread_centers() {
        // Two tight far-apart blobs: k-means++ with k=2 must take one from
        // each (squared-distance weighting makes the other blob ~certain).
        let mut pts: Vec<Vec<f32>> = Vec::new();
        for i in 0..50 {
            pts.push(vec![0.0 + (i % 5) as f32 * 0.01, 0.0]);
            pts.push(vec![100.0 + (i % 5) as f32 * 0.01, 0.0]);
        }
        let flat = kmeans_plus_plus(&pts, 2, 7);
        let a = flat[0];
        let b = flat[2];
        assert!(
            (a - b).abs() > 50.0,
            "centers should span the blobs: {a} vs {b}"
        );
    }

    #[test]
    fn kmeans_pp_handles_duplicates() {
        let pts = vec![vec![1.0f32, 1.0]; 20];
        let flat = kmeans_plus_plus(&pts, 3, 1);
        assert_eq!(flat.len(), 6);
        assert!(flat.iter().all(|&x| (x - 1.0).abs() < 1e-6));
    }

    #[test]
    #[should_panic(expected = "different k")]
    fn mismatched_k_merge_panics() {
        let mut a = BottomKSample::new(2);
        a.merge(BottomKSample::new(3));
    }
}
