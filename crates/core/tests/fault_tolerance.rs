//! Fault-injection integration tests: exactly-once processing under flaky
//! stores, slave fail-stops, and whole-cluster loss.
//!
//! The invariant under test is the paper's §III-C recovery claim: because
//! generalized reduction only needs the reduction objects plus the set of
//! unprocessed chunks, any schedule of slave failures that leaves at least
//! one worker alive must produce a result identical to the failure-free run.

use cb_storage::builder::{materialize, StoreMap};
use cb_storage::faults::{FaultMode, FlakyStore};
use cb_storage::layout::{ChunkMeta, LocationId, Placement};
use cb_storage::organizer::organize_even;
use cb_storage::store::{MemStore, ObjectStore};
use cloudburst_core::api::{GRApp, ReductionObject};
use cloudburst_core::config::{RuntimeConfig, SlaveKill};
use cloudburst_core::deploy::{ClusterSpec, DataFabric, Deployment};
use cloudburst_core::runtime::run;
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::Arc;

const LOCAL: LocationId = LocationId(0);
const CLOUD: LocationId = LocationId(1);

/// Sums little-endian u64 units (order-independent, so any interleaving of
/// recovered jobs must reproduce the exact same value).
struct SumApp;

#[derive(Debug)]
struct Sum(u64);

impl ReductionObject for Sum {
    fn merge(&mut self, other: Self) {
        self.0 += other.0;
    }
    fn size_bytes(&self) -> usize {
        8
    }
}

impl GRApp for SumApp {
    type Unit = u64;
    type RObj = Sum;
    type Params = ();

    fn decode_chunk(&self, meta: &ChunkMeta, bytes: &[u8]) -> Vec<u64> {
        assert_eq!(bytes.len() as u64, meta.len, "short read");
        bytes
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
            .collect()
    }
    fn init(&self, _: &()) -> Sum {
        Sum(0)
    }
    fn local_reduce(&self, _: &(), robj: &mut Sum, unit: &u64) {
        robj.0 += unit;
    }
}

fn fill(chunk: &ChunkMeta, buf: &mut [u8]) {
    let v = (chunk.id.0 + 1) as u64;
    for u in buf.chunks_exact_mut(8) {
        u.copy_from_slice(&v.to_le_bytes());
    }
}

fn expected_sum(layout: &cb_storage::layout::DatasetLayout) -> u64 {
    layout
        .chunks
        .iter()
        .map(|c| (c.id.0 + 1) as u64 * c.units)
        .sum()
}

fn setup(
    n_files: usize,
    frac_local: f64,
) -> (cb_storage::layout::DatasetLayout, Placement, StoreMap) {
    let layout = organize_even(n_files, 4096, 512, 8).unwrap();
    let placement = Placement::split_fraction(n_files, frac_local, LOCAL, CLOUD);
    let mut stores: StoreMap = BTreeMap::new();
    stores.insert(
        LOCAL,
        Arc::new(MemStore::new("local-store")) as Arc<dyn ObjectStore>,
    );
    stores.insert(
        CLOUD,
        Arc::new(MemStore::new("cloud-store")) as Arc<dyn ObjectStore>,
    );
    materialize(&layout, &placement, &stores, fill).unwrap();
    (layout, placement, stores)
}

fn two_cluster_deployment(stores: &StoreMap, local_cores: usize, cloud_cores: usize) -> Deployment {
    let fabric = DataFabric::direct(stores);
    Deployment::new(
        vec![
            ClusterSpec::new("local", LOCAL, local_cores),
            ClusterSpec::new("EC2", CLOUD, cloud_cores),
        ],
        fabric,
    )
}

/// Regression for the silent-data-loss bug: a failed fetch used to be
/// reported as *completed*, so the pool drained with the chunk's data never
/// folded. With the storage layer's retries exhausted (zero retries against
/// a first-GET-always-fails store), every key's first fetch surfaces to the
/// slave; the run must still fold every chunk exactly once.
#[test]
fn exactly_once_when_retries_are_exhausted() {
    let (layout, placement, stores) = setup(8, 0.5);
    let mut deployment = two_cluster_deployment(&stores, 2, 2);
    for site in [LOCAL, CLOUD] {
        deployment.fabric.wrap_paths_to(site, |s| {
            Arc::new(FlakyStore::new(s, FaultMode::FirstNPerKey { n: 1 }, 0))
        });
    }
    let cfg = RuntimeConfig {
        retrieval_retries: 0, // storage layer absorbs nothing
        ..Default::default()
    };
    let out = run(&SumApp, &(), &layout, &placement, &deployment, &cfg).unwrap();
    assert_eq!(
        out.result.0,
        expected_sum(&layout),
        "no chunk lost or doubled"
    );
    assert_eq!(out.report.total_jobs(), layout.n_jobs() as u64);
    let rec = &out.report.recovery;
    assert!(
        rec.fetch_failures > 0,
        "failures must have surfaced: {rec:?}"
    );
    assert!(rec.jobs_reenqueued > 0, "failed jobs must have been re-run");
}

/// With retries enabled, the same fault schedule is absorbed entirely below
/// the scheduler: no job fails, but the retry count is still accounted.
#[test]
fn storage_retries_absorb_transient_faults_below_scheduler() {
    let (layout, placement, stores) = setup(4, 0.5);
    let mut deployment = two_cluster_deployment(&stores, 2, 2);
    deployment.fabric.wrap_paths_to(CLOUD, |s| {
        Arc::new(FlakyStore::new(s, FaultMode::FirstNPerKey { n: 1 }, 0))
    });
    let cfg = RuntimeConfig {
        retrieval_retries: 3,
        retrieval_backoff: std::time::Duration::ZERO,
        ..Default::default()
    };
    let out = run(&SumApp, &(), &layout, &placement, &deployment, &cfg).unwrap();
    assert_eq!(out.result.0, expected_sum(&layout));
    let rec = &out.report.recovery;
    assert_eq!(rec.fetch_failures, 0, "nothing should reach the scheduler");
    assert_eq!(rec.jobs_reenqueued, 0);
    assert!(rec.retries > 0, "the absorbed faults are still visible");
}

/// Killed slaves stop at a job boundary; their partial reduction objects
/// are valid checkpoints, so the result matches the failure-free run.
#[test]
fn killed_slaves_checkpoint_and_survivors_finish() {
    let (layout, placement, stores) = setup(8, 0.5);
    let deployment = two_cluster_deployment(&stores, 2, 2);
    let cfg = RuntimeConfig {
        kill_schedule: vec![
            SlaveKill {
                cluster: 0,
                slave: 0,
                after_jobs: 2,
            },
            SlaveKill {
                cluster: 1,
                slave: 1,
                after_jobs: 1,
            },
        ],
        ..Default::default()
    };
    let out = run(&SumApp, &(), &layout, &placement, &deployment, &cfg).unwrap();
    assert_eq!(
        out.result.0,
        expected_sum(&layout),
        "checkpointed robjs merged"
    );
    assert_eq!(out.report.total_jobs(), layout.n_jobs() as u64);
    assert_eq!(out.report.recovery.slaves_killed, 2);
}

/// Losing every node at one location must degrade, not hang or panic: the
/// dead cluster's master returns its leases and the survivor steals the
/// orphaned data.
#[test]
fn losing_every_node_at_one_location_is_survivable() {
    let (layout, placement, stores) = setup(6, 0.5);
    let deployment = two_cluster_deployment(&stores, 2, 2);
    let cfg = RuntimeConfig {
        kill_schedule: vec![
            SlaveKill {
                cluster: 1,
                slave: 0,
                after_jobs: 1,
            },
            SlaveKill {
                cluster: 1,
                slave: 1,
                after_jobs: 0,
            },
        ],
        ..Default::default()
    };
    let out = run(&SumApp, &(), &layout, &placement, &deployment, &cfg).unwrap();
    assert_eq!(out.result.0, expected_sum(&layout));
    assert_eq!(out.report.total_jobs(), layout.n_jobs() as u64);
    assert_eq!(out.report.recovery.slaves_killed, 2);
    let local = out.report.cluster("local").unwrap();
    assert!(
        local.jobs_stolen > 0,
        "the survivor must have taken over cloud-homed data"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any random kill schedule that leaves local slave 0 alive yields the
    /// exact failure-free result: every chunk folded exactly once.
    #[test]
    fn random_kill_schedules_uphold_exactly_once(
        kills in prop::collection::vec((0usize..2, 0usize..3, 0u64..5), 0..6)
    ) {
        let (layout, placement, stores) = setup(4, 0.5);
        let deployment = two_cluster_deployment(&stores, 3, 3);
        let kill_schedule: Vec<SlaveKill> = kills
            .iter()
            .filter(|&&(c, s, _)| !(c == 0 && s == 0)) // keep one survivor
            .map(|&(cluster, slave, after_jobs)| SlaveKill { cluster, slave, after_jobs })
            .collect();
        let cfg = RuntimeConfig { kill_schedule, ..Default::default() };
        let out = run(&SumApp, &(), &layout, &placement, &deployment, &cfg).unwrap();
        prop_assert_eq!(out.result.0, expected_sum(&layout));
        prop_assert_eq!(out.report.total_jobs(), layout.n_jobs() as u64);
    }
}
