//! End-to-end smoke tests of the threaded runtime on a toy sum application.

use cb_storage::builder::{materialize, StoreMap};
use cb_storage::layout::{ChunkMeta, LocationId, Placement};
use cb_storage::organizer::organize_even;
use cb_storage::store::{MemStore, ObjectStore};
use cloudburst_core::api::{GRApp, ReductionObject};
use cloudburst_core::config::RuntimeConfig;
use cloudburst_core::deploy::{ClusterSpec, DataFabric, Deployment};
use cloudburst_core::runtime::{run, RuntimeError};
use std::collections::BTreeMap;
use std::sync::Arc;

const LOCAL: LocationId = LocationId(0);
const CLOUD: LocationId = LocationId(1);

/// Sums little-endian u64 units.
struct SumApp;

#[derive(Debug)]
struct Sum(u64);

impl ReductionObject for Sum {
    fn merge(&mut self, other: Self) {
        self.0 += other.0;
    }
    fn size_bytes(&self) -> usize {
        8
    }
}

impl GRApp for SumApp {
    type Unit = u64;
    type RObj = Sum;
    type Params = ();

    fn decode_chunk(&self, meta: &ChunkMeta, bytes: &[u8]) -> Vec<u64> {
        assert_eq!(bytes.len() as u64, meta.len, "short read");
        let units: Vec<u64> = bytes
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
            .collect();
        assert_eq!(units.len() as u64, meta.units, "unit count mismatch");
        units
    }
    fn init(&self, _: &()) -> Sum {
        Sum(0)
    }
    fn local_reduce(&self, _: &(), robj: &mut Sum, unit: &u64) {
        robj.0 += unit;
    }
}

/// Fill chunks with the value `chunk_id + 1` in every unit, so the expected
/// global sum is analytic.
fn fill(chunk: &ChunkMeta, buf: &mut [u8]) {
    let v = (chunk.id.0 + 1) as u64;
    for u in buf.chunks_exact_mut(8) {
        u.copy_from_slice(&v.to_le_bytes());
    }
}

fn expected_sum(layout: &cb_storage::layout::DatasetLayout) -> u64 {
    layout
        .chunks
        .iter()
        .map(|c| (c.id.0 + 1) as u64 * c.units)
        .sum()
}

fn setup(
    n_files: usize,
    frac_local: f64,
) -> (cb_storage::layout::DatasetLayout, Placement, StoreMap) {
    let layout = organize_even(n_files, 4096, 512, 8).unwrap();
    let placement = Placement::split_fraction(n_files, frac_local, LOCAL, CLOUD);
    let mut stores: StoreMap = BTreeMap::new();
    stores.insert(
        LOCAL,
        Arc::new(MemStore::new("local-store")) as Arc<dyn ObjectStore>,
    );
    stores.insert(
        CLOUD,
        Arc::new(MemStore::new("cloud-store")) as Arc<dyn ObjectStore>,
    );
    materialize(&layout, &placement, &stores, fill).unwrap();
    (layout, placement, stores)
}

fn two_cluster_deployment(stores: &StoreMap, local_cores: usize, cloud_cores: usize) -> Deployment {
    let fabric = DataFabric::direct(stores);
    Deployment::new(
        vec![
            ClusterSpec::new("local", LOCAL, local_cores),
            ClusterSpec::new("EC2", CLOUD, cloud_cores),
        ],
        fabric,
    )
}

#[test]
fn hybrid_run_matches_oracle() {
    let (layout, placement, stores) = setup(8, 0.5);
    let deployment = two_cluster_deployment(&stores, 3, 3);
    let out = run(
        &SumApp,
        &(),
        &layout,
        &placement,
        &deployment,
        &RuntimeConfig::default(),
    )
    .unwrap();
    assert_eq!(out.result.0, expected_sum(&layout));

    let r = &out.report;
    assert_eq!(r.total_jobs(), layout.n_jobs() as u64);
    assert_eq!(r.clusters.len(), 2);
    assert!(r.total_s > 0.0);
    assert_eq!(r.robj_bytes, 8);
}

#[test]
fn single_cluster_all_local() {
    let (layout, placement, stores) = setup(4, 1.0);
    let fabric = DataFabric::direct(&stores);
    let deployment = Deployment::new(vec![ClusterSpec::new("local", LOCAL, 4)], fabric);
    let out = run(
        &SumApp,
        &(),
        &layout,
        &placement,
        &deployment,
        &RuntimeConfig::default(),
    )
    .unwrap();
    assert_eq!(out.result.0, expected_sum(&layout));
    let c = &out.report.clusters[0];
    assert_eq!(c.jobs_stolen, 0, "no remote data, nothing stolen");
    assert_eq!(c.bytes_remote, 0);
    assert_eq!(c.bytes_local, layout.total_bytes());
}

#[test]
fn skewed_placement_forces_stealing() {
    // All data in the cloud; the local cluster must steal everything it does.
    let (layout, placement, stores) = setup(6, 0.0);
    let deployment = two_cluster_deployment(&stores, 2, 2);
    let out = run(
        &SumApp,
        &(),
        &layout,
        &placement,
        &deployment,
        &RuntimeConfig::default(),
    )
    .unwrap();
    assert_eq!(out.result.0, expected_sum(&layout));
    let local = out.report.cluster("local").unwrap();
    assert_eq!(
        local.jobs_stolen, local.jobs_processed,
        "every local-cluster job was remote data"
    );
    let ec2 = out.report.cluster("EC2").unwrap();
    assert_eq!(ec2.jobs_stolen, 0);
}

#[test]
fn stealing_disabled_leaves_remote_jobs_to_their_home_cluster() {
    let (layout, placement, stores) = setup(6, 0.5);
    let deployment = two_cluster_deployment(&stores, 2, 2);
    let mut cfg = RuntimeConfig::default();
    cfg.pool.allow_stealing = false;
    let out = run(&SumApp, &(), &layout, &placement, &deployment, &cfg).unwrap();
    assert_eq!(out.result.0, expected_sum(&layout));
    for c in &out.report.clusters {
        assert_eq!(c.jobs_stolen, 0);
        assert_eq!(c.bytes_remote, 0);
    }
}

#[test]
fn many_small_jobs_all_processed_exactly_once() {
    let (layout, placement, stores) = setup(16, 0.33);
    let deployment = two_cluster_deployment(&stores, 4, 4);
    let out = run(
        &SumApp,
        &(),
        &layout,
        &placement,
        &deployment,
        &RuntimeConfig::default(),
    )
    .unwrap();
    // The analytic sum is only right if every chunk was folded exactly once.
    assert_eq!(out.result.0, expected_sum(&layout));
    assert_eq!(out.report.total_jobs(), layout.n_jobs() as u64);
}

#[test]
fn missing_file_fails_the_run_without_hanging() {
    let (layout, placement, stores) = setup(4, 0.5);
    // Sabotage: remove one cloud file after materialization. Its chunks can
    // never be processed anywhere, so the run must terminate with an error
    // naming the loss — not hang waiting, and not "succeed" with data
    // silently dropped.
    stores[&CLOUD].delete("part-00002").unwrap();
    let deployment = two_cluster_deployment(&stores, 2, 2);
    let err = run(
        &SumApp,
        &(),
        &layout,
        &placement,
        &deployment,
        &RuntimeConfig::default(),
    )
    .unwrap_err();
    match err {
        RuntimeError::JobsFailed {
            dead,
            unfinished,
            last_error,
        } => {
            assert!(
                !dead.is_empty() || unfinished > 0,
                "some chunks must be reported lost"
            );
            assert!(
                last_error.unwrap().contains("part-00002"),
                "error names the missing file"
            );
        }
        other => panic!("expected JobsFailed, got {other:?}"),
    }
}

#[test]
fn invalid_config_rejected_before_running() {
    let (layout, placement, stores) = setup(2, 0.5);
    let deployment = two_cluster_deployment(&stores, 1, 1);
    let cfg = RuntimeConfig {
        retrieval_threads: 0,
        ..Default::default()
    };
    let err = run(&SumApp, &(), &layout, &placement, &deployment, &cfg).unwrap_err();
    assert!(matches!(err, RuntimeError::Validation(_)));
}

#[test]
fn missing_fabric_path_rejected() {
    let (layout, placement, stores) = setup(2, 0.5);
    // Build a fabric where the local cluster cannot reach cloud data.
    let mut fabric = DataFabric::new();
    fabric.set_path(LOCAL, LOCAL, Arc::clone(&stores[&LOCAL]));
    fabric.set_path(CLOUD, CLOUD, Arc::clone(&stores[&CLOUD]));
    fabric.set_path(CLOUD, LOCAL, Arc::clone(&stores[&LOCAL]));
    let deployment = Deployment::new(
        vec![
            ClusterSpec::new("local", LOCAL, 1),
            ClusterSpec::new("EC2", CLOUD, 1),
        ],
        fabric,
    );
    let err = run(
        &SumApp,
        &(),
        &layout,
        &placement,
        &deployment,
        &RuntimeConfig::default(),
    )
    .unwrap_err();
    assert!(matches!(err, RuntimeError::Validation(_)));
}

#[test]
fn report_breakdown_is_consistent() {
    let (layout, placement, stores) = setup(8, 0.5);
    let deployment = two_cluster_deployment(&stores, 2, 2);
    let out = run(
        &SumApp,
        &(),
        &layout,
        &placement,
        &deployment,
        &RuntimeConfig::default(),
    )
    .unwrap();
    for c in &out.report.clusters {
        assert!(c.wall_s <= out.report.total_s + 1e-9);
        assert!(c.sync_s >= 0.0);
        assert!(c.processing_s >= 0.0);
        assert!(c.retrieval_s >= 0.0);
        // processing + retrieval + sync == wall (by construction of sync).
        let sum = c.processing_s + c.retrieval_s + c.sync_s;
        assert!(
            (sum - c.wall_s).abs() < 1e-6 || sum <= c.wall_s,
            "breakdown exceeds wall: {sum} vs {}",
            c.wall_s
        );
        assert_eq!(
            c.bytes_local + c.bytes_remote,
            layout
                .chunks
                .iter()
                .filter(|_| true)
                .map(|_| 0u64)
                .sum::<u64>()
                + c.bytes_local
                + c.bytes_remote
        );
    }
    // One cluster idles while the other finishes; at most one has nonzero
    // idle... both can be ~0, but never both large. Just sanity: idle >= 0.
    assert!(out.report.clusters.iter().all(|c| c.idle_end_s >= 0.0));
}

#[test]
fn synthetic_compute_slows_processing() {
    let (layout, placement, stores) = setup(2, 1.0);
    let fabric = DataFabric::direct(&stores);
    let deployment = Deployment::new(vec![ClusterSpec::new("local", LOCAL, 2)], fabric);

    let fast = run(
        &SumApp,
        &(),
        &layout,
        &placement,
        &deployment,
        &RuntimeConfig::default(),
    )
    .unwrap();

    let cfg = RuntimeConfig {
        synthetic_compute_ns_per_unit: 2_000, // 2 µs per unit
        ..Default::default()
    };
    let slow = run(&SumApp, &(), &layout, &placement, &deployment, &cfg).unwrap();

    assert_eq!(slow.result.0, fast.result.0);
    let fast_p = fast.report.clusters[0].processing_s;
    let slow_p = slow.report.clusters[0].processing_s;
    assert!(
        slow_p > fast_p * 2.0,
        "synthetic compute should dominate: fast={fast_p} slow={slow_p}"
    );
}
