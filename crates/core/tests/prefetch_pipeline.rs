//! Prefetch-pipeline integration tests: correctness of the slave's
//! background fetcher at every lookahead depth, and the overlap win itself.
//!
//! The pipeline must be *invisible* to the computation: any
//! `prefetch_depth` — under any kill schedule or fetch-fault rate — has to
//! produce the exact reduction object of the serial (depth 0) slave,
//! because leases held by the fetcher are reclaimed, not lost, when a
//! slave dies. And on a workload where retrieval time rivals compute time,
//! depth 1 has to actually deliver the overlap it exists for.

use cb_storage::builder::{materialize, StoreMap};
use cb_storage::faults::{FaultMode, FlakyStore};
use cb_storage::layout::{ChunkMeta, LocationId, Placement};
use cb_storage::organizer::organize_even;
use cb_storage::s3sim::{RemoteProfile, RemoteStore};
use cb_storage::store::{MemStore, ObjectStore};
use cloudburst_core::api::{GRApp, ReductionObject};
use cloudburst_core::config::{RuntimeConfig, SlaveKill};
use cloudburst_core::deploy::{ClusterSpec, DataFabric, Deployment};
use cloudburst_core::runtime::run;
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

const LOCAL: LocationId = LocationId(0);
const CLOUD: LocationId = LocationId(1);

/// Sums little-endian u64 units. Integer addition is exactly associative
/// and commutative, so *any* job-to-slave assignment — and any recovery
/// interleaving — must reproduce the same bits.
struct SumApp;

#[derive(Debug, PartialEq, Eq)]
struct Sum(u64);

impl ReductionObject for Sum {
    fn merge(&mut self, other: Self) {
        self.0 += other.0;
    }
    fn size_bytes(&self) -> usize {
        8
    }
}

impl GRApp for SumApp {
    type Unit = u64;
    type RObj = Sum;
    type Params = ();

    fn decode_chunk(&self, meta: &ChunkMeta, bytes: &[u8]) -> Vec<u64> {
        assert_eq!(bytes.len() as u64, meta.len, "short read");
        bytes
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
            .collect()
    }
    fn init(&self, _: &()) -> Sum {
        Sum(0)
    }
    fn local_reduce(&self, _: &(), robj: &mut Sum, unit: &u64) {
        robj.0 += unit;
    }
}

fn fill(chunk: &ChunkMeta, buf: &mut [u8]) {
    let v = (chunk.id.0 + 1) as u64;
    for u in buf.chunks_exact_mut(8) {
        u.copy_from_slice(&v.to_le_bytes());
    }
}

fn expected_sum(layout: &cb_storage::layout::DatasetLayout) -> u64 {
    layout
        .chunks
        .iter()
        .map(|c| (c.id.0 + 1) as u64 * c.units)
        .sum()
}

fn setup(
    n_files: usize,
    frac_local: f64,
) -> (cb_storage::layout::DatasetLayout, Placement, StoreMap) {
    let layout = organize_even(n_files, 4096, 512, 8).unwrap();
    let placement = Placement::split_fraction(n_files, frac_local, LOCAL, CLOUD);
    let mut stores: StoreMap = BTreeMap::new();
    stores.insert(
        LOCAL,
        Arc::new(MemStore::new("local-store")) as Arc<dyn ObjectStore>,
    );
    stores.insert(
        CLOUD,
        Arc::new(MemStore::new("cloud-store")) as Arc<dyn ObjectStore>,
    );
    materialize(&layout, &placement, &stores, fill).unwrap();
    (layout, placement, stores)
}

fn two_cluster_deployment(stores: &StoreMap, local_cores: usize, cloud_cores: usize) -> Deployment {
    let fabric = DataFabric::direct(stores);
    Deployment::new(
        vec![
            ClusterSpec::new("local", LOCAL, local_cores),
            ClusterSpec::new("EC2", CLOUD, cloud_cores),
        ],
        fabric,
    )
}

/// Every depth produces the serial result on the healthy path.
#[test]
fn every_depth_matches_the_serial_reduction() {
    let (layout, placement, stores) = setup(6, 0.5);
    let deployment = two_cluster_deployment(&stores, 2, 2);
    let mut results = Vec::new();
    for depth in 0..=3 {
        let cfg = RuntimeConfig {
            prefetch_depth: depth,
            ..Default::default()
        };
        let out = run(&SumApp, &(), &layout, &placement, &deployment, &cfg).unwrap();
        assert_eq!(out.report.total_jobs(), layout.n_jobs() as u64);
        results.push(out.result);
    }
    assert!(
        results.iter().all(|r| r.0 == expected_sum(&layout)),
        "reduction must be bit-identical across depths: {results:?}"
    );
}

/// A retiring slave's prefetched-but-unprocessed leases are reclaimed
/// uncharged; the work still lands exactly once.
#[test]
fn killed_slave_in_flight_prefetches_are_reclaimed() {
    let (layout, placement, stores) = setup(8, 0.5);
    let deployment = two_cluster_deployment(&stores, 2, 2);
    let cfg = RuntimeConfig {
        prefetch_depth: 3, // die holding up to 3 undigested leases
        kill_schedule: vec![
            SlaveKill {
                cluster: 0,
                slave: 0,
                after_jobs: 1,
            },
            SlaveKill {
                cluster: 1,
                slave: 1,
                after_jobs: 2,
            },
        ],
        ..Default::default()
    };
    let out = run(&SumApp, &(), &layout, &placement, &deployment, &cfg).unwrap();
    assert_eq!(out.result.0, expected_sum(&layout));
    assert_eq!(out.report.total_jobs(), layout.n_jobs() as u64);
    assert_eq!(out.report.recovery.slaves_killed, 2);
}

/// The overlap win itself, in wall-clock time: one slave, one remote store
/// tuned so a fetch and a fold both take ~20 ms. Serial pays
/// `n * (fetch + fold)`; a depth-1 pipeline pays ~`fetch + n * fold`. The
/// ISSUE's acceptance floor is 1.3x (the tuned ceiling is ~1.8x).
#[test]
fn depth_one_beats_serial_on_a_remote_dominated_workload() {
    // 8 chunks x 512 KiB; one core so nothing but the pipeline overlaps.
    let layout = organize_even(4, 1 << 20, 1 << 19, 8).unwrap();
    let placement = Placement::all_at(4, CLOUD);
    let mut stores: StoreMap = BTreeMap::new();
    let profile = RemoteProfile {
        request_latency: Duration::from_millis(1),
        aggregate_bps: f64::INFINITY,
        per_conn_bps: 25.0e6, // 512 KiB / 25 MB/s ~= 21 ms per fetch
    };
    let backing = Arc::new(MemStore::new("s3-backing"));
    stores.insert(
        CLOUD,
        Arc::new(RemoteStore::new("s3", backing, profile)) as Arc<dyn ObjectStore>,
    );
    materialize(&layout, &placement, &stores, fill).unwrap();
    let deployment = Deployment::new(
        vec![ClusterSpec::new("local", CLOUD, 1)],
        DataFabric::direct(&stores),
    );

    let timed = |depth: usize| {
        let cfg = RuntimeConfig {
            prefetch_depth: depth,
            retrieval_threads: 1, // fetch time = len / per_conn_bps
            synthetic_compute_ns_per_unit: 300, // 65536 units ~= 20 ms per fold
            ..Default::default()
        };
        let out = run(&SumApp, &(), &layout, &placement, &deployment, &cfg).unwrap();
        assert_eq!(out.result.0, expected_sum(&layout), "depth {depth}");
        out.report
    };

    let serial = timed(0);
    let piped = timed(1);
    let speedup = serial.total_s / piped.total_s;
    assert!(
        speedup >= 1.3,
        "depth 1 must overlap retrieval with compute: serial {:.3}s, piped {:.3}s ({speedup:.2}x)",
        serial.total_s,
        piped.total_s
    );
    let c = piped.cluster("local").unwrap();
    assert!(
        c.overlap_saved_s > 0.5 * c.retrieval_s,
        "most retrieval should hide behind compute: {c:?}"
    );
    // A serial slave blocks for at least the full retrieval (its measured
    // stall also includes master round-trip overhead), so nothing is hidden.
    let s = serial.cluster("local").unwrap();
    assert!(
        s.fetch_stall_s >= 0.9 * s.retrieval_s,
        "a serial slave stalls for every retrieval second: {s:?}"
    );
    assert!(
        s.overlap_saved_s < 0.1 * s.retrieval_s,
        "a serial slave has nothing to hide retrieval behind: {s:?}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Pipelining is invisible under fire: any depth x kill schedule x
    /// fetch-fault rate reproduces the serial reduction object, with every
    /// chunk folded exactly once.
    #[test]
    fn any_depth_under_faults_matches_serial(
        depth in 0usize..=3,
        kills in prop::collection::vec((0usize..2, 0usize..3, 0u64..4), 0..4),
        fault_denom in 0u32..4, // fault probability 0, 1/4, 1/3, 1/2 of GETs
    ) {
        let (layout, placement, stores) = setup(4, 0.5);
        let mut deployment = two_cluster_deployment(&stores, 3, 3);
        if fault_denom > 0 {
            let probability = 1.0 / (fault_denom + 1) as f64;
            for site in [LOCAL, CLOUD] {
                deployment.fabric.wrap_paths_to(site, |s| {
                    Arc::new(FlakyStore::new(s, FaultMode::Random { probability }, 2011))
                });
            }
        }
        let kill_schedule: Vec<SlaveKill> = kills
            .iter()
            .filter(|&&(c, s, _)| !(c == 0 && s == 0)) // keep one survivor
            .map(|&(cluster, slave, after_jobs)| SlaveKill { cluster, slave, after_jobs })
            .collect();
        let cfg = RuntimeConfig {
            prefetch_depth: depth,
            kill_schedule,
            retrieval_retries: 1,
            retrieval_backoff: Duration::ZERO,
            ..Default::default()
        };
        let out = run(&SumApp, &(), &layout, &placement, &deployment, &cfg).unwrap();
        prop_assert_eq!(out.result.0, expected_sum(&layout));
        prop_assert_eq!(out.report.total_jobs(), layout.n_jobs() as u64);
    }
}
