//! # Observability: structured events, traces, and metrics
//!
//! The paper's claims — within-cluster load balance, sequential-read
//! locality, contention-minimizing stealing — were originally only
//! *visible* in the simulator's Gantt charts. This module gives the real
//! runtime the same span-level visibility: every scheduling decision,
//! fetch, fold, retry, and reduction-object merge is emitted as a
//! structured [`EventRecord`] through a lock-cheap [`EventSink`].
//!
//! The design invariant is **RunReport-as-derived-view**: each event
//! carries the *same* measured duration / byte count that feeds the
//! aggregate [`RunReport`], so every report
//! field (jobs, steals, retrieval time, fetch stall, cache hits,
//! recovery counters) can be re-derived from the event stream alone —
//! [`TraceSummary::reconcile`] checks this exactly. The simulator emits
//! the same event kinds, so calibration can diff real-vs-simulated
//! *event streams*, not just aggregate reports.
//!
//! Pieces:
//!
//! * [`EventKind`] / [`EventRecord`] — the event taxonomy (timestamps are
//!   monotonic nanoseconds since run start; simulated runs use virtual
//!   nanoseconds, making the two directly comparable).
//! * [`EventSink`] + [`SinkHandle`] — the emission interface. A disabled
//!   handle (the default) costs one branch per call site.
//! * [`RecordingSink`] — buffers events in memory; the runtime stamps
//!   wall-clock time, the simulator stamps virtual time via
//!   [`RecordingSink::with_clock`].
//! * [`encode_jsonl`] / [`decode_jsonl`] — the versioned JSONL trace
//!   format written by `cloudburst run --trace-out` (schema documented in
//!   `docs/OBSERVABILITY.md`).
//! * [`Timeline`] — the shared Gantt renderer: live runs and simulated
//!   runs render with the same glyphs ([`GANTT_LEGEND`]).
//! * [`TraceSummary`] / [`MetricsRegistry`] — counters and histograms
//!   folded from the stream.
//!
//! ## Example
//!
//! ```
//! use cloudburst_core::obs::{
//!     decode_jsonl, encode_jsonl, EventKind, RecordingSink, SinkHandle,
//! };
//!
//! let sink = RecordingSink::new();
//! let handle = SinkHandle::new(sink.clone());
//! handle.emit(Some(0), Some(1), EventKind::FetchStart { chunk: 7 });
//! handle.emit(
//!     Some(0),
//!     Some(1),
//!     EventKind::FetchEnd { chunk: 7, bytes: 4096, remote: true, ns: 1_500 },
//! );
//!
//! let events = sink.take();
//! let jsonl = encode_jsonl(&events);
//! let back = decode_jsonl(&jsonl).unwrap();
//! assert_eq!(back, events);
//! ```

use crate::report::RunReport;
use parking_lot::Mutex;
use serde::value::{Number, Value};
use std::collections::BTreeMap;
use std::fmt;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Schema identifier written in the JSONL header line.
pub const SCHEMA_NAME: &str = "cloudburst-trace";
/// Version of the JSONL trace schema (bump on incompatible change).
pub const SCHEMA_VERSION: u64 = 1;
/// The one Gantt legend shared by live runs, simulated runs, and docs.
pub const GANTT_LEGEND: &str = "█ process, ▒ fetch, ░ stall, ◆ robj, · idle";

// ---------------------------------------------------------------------------
// Event taxonomy
// ---------------------------------------------------------------------------

/// What happened. Payload integers are the *same* measured values that
/// feed [`RunReport`], so aggregates derived
/// from events match the report exactly (see [`TraceSummary::reconcile`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// The head granted a job lease (cluster/slave = the grantee's master).
    JobAssigned { chunk: u64, stolen: bool },
    /// A remote-file grant: the grantee will read a chunk homed elsewhere.
    Steal { chunk: u64 },
    /// A lease went back to the pool. `charged` means the job's failure
    /// budget was debited (a real failure); uncharged releases are
    /// never-attempted prefetch leases returned at retirement.
    LeaseReleased { chunk: u64, charged: bool },
    /// A slave's fetcher began retrieving a chunk.
    FetchStart { chunk: u64 },
    /// Retrieval finished: `bytes` delivered, `remote` = crossed the
    /// cluster boundary, `ns` = retrieval duration.
    FetchEnd {
        chunk: u64,
        bytes: u64,
        remote: bool,
        ns: u64,
    },
    /// Retrieval failed terminally (all retries exhausted / deadline hit);
    /// `ns` is the time the fetcher spent before giving up (it still counts
    /// toward the cluster's retrieval time, exactly as in the report).
    FetchFailed { chunk: u64, ns: u64 },
    /// Retrieval completed but the retiring slave never folded the chunk;
    /// its lease goes back uncharged. Terminal for fetch pairing, counted
    /// in no aggregate.
    FetchDiscarded { chunk: u64 },
    /// The fold thread waited `ns` for the fetch pipeline to deliver
    /// (the per-cluster `fetch_stall_s` is the per-core mean of these).
    Stall { ns: u64 },
    /// Local reduction over a chunk began.
    ProcessStart { chunk: u64 },
    /// Local reduction finished: `units` folded in `ns`. `stolen` tags
    /// jobs that were granted off another cluster's files.
    ProcessEnd {
        chunk: u64,
        units: u64,
        ns: u64,
        stolen: bool,
    },
    /// A ranged GET is being retried (`attempt` starts at 1).
    Retry { attempt: u64 },
    /// A slave stopped pulling work; `killed` distinguishes scheduled
    /// fail-stops from failure-threshold retirements.
    SlaveRetired { killed: bool },
    /// A cluster's reduction object reached the head: `bytes` shipped,
    /// `ns` spent on the (WAN) transfer.
    RobjMerge { bytes: u64, ns: u64 },
    /// Iterative-run chunk cache served `bytes` from memory.
    CacheHit { bytes: u64 },
    /// Iterative-run chunk cache went to the backing store for `bytes`.
    CacheMiss { bytes: u64 },
    /// The storage fault-injection layer forced a failure.
    FaultInjected,
    /// An iterative run crossed into pass `pass` (0-based).
    PassBoundary { pass: u64 },
    /// A master asked the head for more work with `queue_len` jobs left.
    MasterRefill { queue_len: u64 },
    /// A control-plane frame of `bytes` was written to a network peer
    /// (distributed runs only; `cluster` identifies the peer on the head
    /// side, the emitting cluster on the worker side).
    NetSent { bytes: u64 },
    /// A control-plane frame of `bytes` was read from a network peer.
    NetRecv { bytes: u64 },
    /// A worker completed the handshake and joined the run with `cores`
    /// slave cores.
    PeerJoined { cores: u64 },
    /// A worker was declared lost (socket error or missed heartbeats);
    /// `jobs` of its work — leases *and* unshipped completions — were
    /// returned to the pool.
    PeerLost { jobs: u64 },
}

impl EventKind {
    /// Stable snake_case name used in the JSONL `ev` field.
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::JobAssigned { .. } => "job_assigned",
            EventKind::Steal { .. } => "steal",
            EventKind::LeaseReleased { .. } => "lease_released",
            EventKind::FetchStart { .. } => "fetch_start",
            EventKind::FetchEnd { .. } => "fetch_end",
            EventKind::FetchFailed { .. } => "fetch_failed",
            EventKind::FetchDiscarded { .. } => "fetch_discarded",
            EventKind::Stall { .. } => "stall",
            EventKind::ProcessStart { .. } => "process_start",
            EventKind::ProcessEnd { .. } => "process_end",
            EventKind::Retry { .. } => "retry",
            EventKind::SlaveRetired { .. } => "slave_retired",
            EventKind::RobjMerge { .. } => "robj_merge",
            EventKind::CacheHit { .. } => "cache_hit",
            EventKind::CacheMiss { .. } => "cache_miss",
            EventKind::FaultInjected => "fault_injected",
            EventKind::PassBoundary { .. } => "pass_boundary",
            EventKind::MasterRefill { .. } => "master_refill",
            EventKind::NetSent { .. } => "net_sent",
            EventKind::NetRecv { .. } => "net_recv",
            EventKind::PeerJoined { .. } => "peer_joined",
            EventKind::PeerLost { .. } => "peer_lost",
        }
    }
}

/// One timestamped event. `cluster`/`slave` are omitted where the event
/// has no such scope (e.g. cache traffic observed below the runtime).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventRecord {
    /// Monotonic nanoseconds since run start (virtual ns in the sim).
    pub t_ns: u64,
    pub cluster: Option<u32>,
    pub slave: Option<u32>,
    pub kind: EventKind,
}

// ---------------------------------------------------------------------------
// Sinks
// ---------------------------------------------------------------------------

/// Receives events from emission points. Implementations stamp the
/// timestamp themselves (wall clock for live runs, virtual clock for the
/// simulator) so call sites stay trivial.
pub trait EventSink: Send + Sync {
    fn emit(&self, cluster: Option<u32>, slave: Option<u32>, kind: EventKind);
}

/// A cheaply clonable, possibly-disabled handle to an [`EventSink`].
///
/// The default handle is disabled: [`SinkHandle::emit`] is then a single
/// `Option` branch, which is what the `obs` criterion bench holds to <2%
/// overhead on the fold hot path.
#[derive(Clone, Default)]
pub struct SinkHandle(Option<Arc<dyn EventSink>>);

impl SinkHandle {
    /// A handle that drops every event (the default).
    pub fn disabled() -> Self {
        SinkHandle(None)
    }

    /// A handle delivering to `sink`.
    pub fn new(sink: Arc<dyn EventSink>) -> Self {
        SinkHandle(Some(sink))
    }

    /// Whether events go anywhere. Emission sites may use this to skip
    /// payload preparation that is not already free.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Emit one event (no-op when disabled).
    #[inline]
    pub fn emit(&self, cluster: Option<u32>, slave: Option<u32>, kind: EventKind) {
        if let Some(sink) = &self.0 {
            sink.emit(cluster, slave, kind);
        }
    }
}

impl fmt::Debug for SinkHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(if self.0.is_some() {
            "SinkHandle(enabled)"
        } else {
            "SinkHandle(disabled)"
        })
    }
}

/// Buffers events in memory, stamping each with a timestamp.
///
/// With [`RecordingSink::new`] timestamps are wall-clock nanoseconds
/// since the sink was created. With [`RecordingSink::with_clock`] they
/// are read from a shared counter the simulator advances — the mechanism
/// that makes live and simulated event streams diffable.
pub struct RecordingSink {
    t0: Instant,
    clock: Option<Arc<AtomicU64>>,
    events: Mutex<Vec<EventRecord>>,
}

impl RecordingSink {
    /// Record wall-clock timestamps relative to now.
    #[allow(clippy::new_ret_no_self)]
    pub fn new() -> Arc<RecordingSink> {
        Arc::new(RecordingSink {
            t0: Instant::now(),
            clock: None,
            events: Mutex::new(Vec::new()),
        })
    }

    /// Record timestamps from `clock` (virtual nanoseconds owned by the
    /// simulator) instead of the wall clock.
    pub fn with_clock(clock: Arc<AtomicU64>) -> Arc<RecordingSink> {
        Arc::new(RecordingSink {
            t0: Instant::now(),
            clock: Some(clock),
            events: Mutex::new(Vec::new()),
        })
    }

    fn now_ns(&self) -> u64 {
        match &self.clock {
            Some(c) => c.load(Ordering::Relaxed),
            None => self.t0.elapsed().as_nanos() as u64,
        }
    }

    /// Copy out everything recorded so far.
    pub fn snapshot(&self) -> Vec<EventRecord> {
        self.events.lock().clone()
    }

    /// Drain everything recorded so far.
    pub fn take(&self) -> Vec<EventRecord> {
        std::mem::take(&mut *self.events.lock())
    }

    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.events.lock().is_empty()
    }
}

impl EventSink for RecordingSink {
    fn emit(&self, cluster: Option<u32>, slave: Option<u32>, kind: EventKind) {
        let rec = EventRecord {
            t_ns: self.now_ns(),
            cluster,
            slave,
            kind,
        };
        self.events.lock().push(rec);
    }
}

// ---------------------------------------------------------------------------
// JSONL encode / decode
// ---------------------------------------------------------------------------

fn u(n: u64) -> Value {
    Value::Number(Number::U64(n))
}

impl EventRecord {
    /// The event as a JSON object (one JSONL line, sans newline).
    pub fn to_value(&self) -> Value {
        let mut pairs: Vec<(String, Value)> = vec![("t_ns".into(), u(self.t_ns))];
        if let Some(c) = self.cluster {
            pairs.push(("cluster".into(), u(c as u64)));
        }
        if let Some(s) = self.slave {
            pairs.push(("slave".into(), u(s as u64)));
        }
        pairs.push(("ev".into(), Value::String(self.kind.name().into())));
        match self.kind {
            EventKind::JobAssigned { chunk, stolen } => {
                pairs.push(("chunk".into(), u(chunk)));
                pairs.push(("stolen".into(), Value::Bool(stolen)));
            }
            EventKind::Steal { chunk }
            | EventKind::FetchStart { chunk }
            | EventKind::FetchDiscarded { chunk }
            | EventKind::ProcessStart { chunk } => {
                pairs.push(("chunk".into(), u(chunk)));
            }
            EventKind::FetchFailed { chunk, ns } => {
                pairs.push(("chunk".into(), u(chunk)));
                pairs.push(("ns".into(), u(ns)));
            }
            EventKind::LeaseReleased { chunk, charged } => {
                pairs.push(("chunk".into(), u(chunk)));
                pairs.push(("charged".into(), Value::Bool(charged)));
            }
            EventKind::FetchEnd {
                chunk,
                bytes,
                remote,
                ns,
            } => {
                pairs.push(("chunk".into(), u(chunk)));
                pairs.push(("bytes".into(), u(bytes)));
                pairs.push(("remote".into(), Value::Bool(remote)));
                pairs.push(("ns".into(), u(ns)));
            }
            EventKind::Stall { ns } => pairs.push(("ns".into(), u(ns))),
            EventKind::ProcessEnd {
                chunk,
                units,
                ns,
                stolen,
            } => {
                pairs.push(("chunk".into(), u(chunk)));
                pairs.push(("units".into(), u(units)));
                pairs.push(("ns".into(), u(ns)));
                pairs.push(("stolen".into(), Value::Bool(stolen)));
            }
            EventKind::Retry { attempt } => pairs.push(("attempt".into(), u(attempt))),
            EventKind::SlaveRetired { killed } => {
                pairs.push(("killed".into(), Value::Bool(killed)));
            }
            EventKind::RobjMerge { bytes, ns } => {
                pairs.push(("bytes".into(), u(bytes)));
                pairs.push(("ns".into(), u(ns)));
            }
            EventKind::CacheHit { bytes } | EventKind::CacheMiss { bytes } => {
                pairs.push(("bytes".into(), u(bytes)));
            }
            EventKind::FaultInjected => {}
            EventKind::PassBoundary { pass } => pairs.push(("pass".into(), u(pass))),
            EventKind::MasterRefill { queue_len } => {
                pairs.push(("queue_len".into(), u(queue_len)));
            }
            EventKind::NetSent { bytes } | EventKind::NetRecv { bytes } => {
                pairs.push(("bytes".into(), u(bytes)));
            }
            EventKind::PeerJoined { cores } => pairs.push(("cores".into(), u(cores))),
            EventKind::PeerLost { jobs } => pairs.push(("jobs".into(), u(jobs))),
        }
        Value::Object(pairs)
    }

    /// Parse one JSONL line's object back into an event.
    pub fn from_value(v: &Value) -> Result<EventRecord, String> {
        fn get_u64(v: &Value, key: &str) -> Result<u64, String> {
            let field = v.get(key).ok_or_else(|| format!("missing `{key}`"))?;
            match field.as_number().map_err(|e| e.to_string())? {
                Number::U64(n) => Ok(*n),
                Number::I64(n) if *n >= 0 => Ok(*n as u64),
                _ => Err(format!("`{key}` is not a non-negative integer")),
            }
        }
        fn get_bool(v: &Value, key: &str) -> Result<bool, String> {
            match v.get(key) {
                Some(Value::Bool(b)) => Ok(*b),
                Some(other) => Err(format!("`{key}` should be bool, got {}", other.kind())),
                None => Err(format!("missing `{key}`")),
            }
        }
        let t_ns = get_u64(v, "t_ns")?;
        let cluster = match v.get("cluster") {
            Some(_) => Some(get_u64(v, "cluster")?),
            None => None,
        };
        let slave = match v.get("slave") {
            Some(_) => Some(get_u64(v, "slave")?),
            None => None,
        };
        let ev = match v.get("ev") {
            Some(Value::String(s)) => s.as_str(),
            _ => return Err("missing or non-string `ev`".into()),
        };
        let kind = match ev {
            "job_assigned" => EventKind::JobAssigned {
                chunk: get_u64(v, "chunk")?,
                stolen: get_bool(v, "stolen")?,
            },
            "steal" => EventKind::Steal {
                chunk: get_u64(v, "chunk")?,
            },
            "lease_released" => EventKind::LeaseReleased {
                chunk: get_u64(v, "chunk")?,
                charged: get_bool(v, "charged")?,
            },
            "fetch_start" => EventKind::FetchStart {
                chunk: get_u64(v, "chunk")?,
            },
            "fetch_end" => EventKind::FetchEnd {
                chunk: get_u64(v, "chunk")?,
                bytes: get_u64(v, "bytes")?,
                remote: get_bool(v, "remote")?,
                ns: get_u64(v, "ns")?,
            },
            "fetch_failed" => EventKind::FetchFailed {
                chunk: get_u64(v, "chunk")?,
                ns: get_u64(v, "ns")?,
            },
            "fetch_discarded" => EventKind::FetchDiscarded {
                chunk: get_u64(v, "chunk")?,
            },
            "stall" => EventKind::Stall {
                ns: get_u64(v, "ns")?,
            },
            "process_start" => EventKind::ProcessStart {
                chunk: get_u64(v, "chunk")?,
            },
            "process_end" => EventKind::ProcessEnd {
                chunk: get_u64(v, "chunk")?,
                units: get_u64(v, "units")?,
                ns: get_u64(v, "ns")?,
                stolen: get_bool(v, "stolen")?,
            },
            "retry" => EventKind::Retry {
                attempt: get_u64(v, "attempt")?,
            },
            "slave_retired" => EventKind::SlaveRetired {
                killed: get_bool(v, "killed")?,
            },
            "robj_merge" => EventKind::RobjMerge {
                bytes: get_u64(v, "bytes")?,
                ns: get_u64(v, "ns")?,
            },
            "cache_hit" => EventKind::CacheHit {
                bytes: get_u64(v, "bytes")?,
            },
            "cache_miss" => EventKind::CacheMiss {
                bytes: get_u64(v, "bytes")?,
            },
            "fault_injected" => EventKind::FaultInjected,
            "pass_boundary" => EventKind::PassBoundary {
                pass: get_u64(v, "pass")?,
            },
            "master_refill" => EventKind::MasterRefill {
                queue_len: get_u64(v, "queue_len")?,
            },
            "net_sent" => EventKind::NetSent {
                bytes: get_u64(v, "bytes")?,
            },
            "net_recv" => EventKind::NetRecv {
                bytes: get_u64(v, "bytes")?,
            },
            "peer_joined" => EventKind::PeerJoined {
                cores: get_u64(v, "cores")?,
            },
            "peer_lost" => EventKind::PeerLost {
                jobs: get_u64(v, "jobs")?,
            },
            other => return Err(format!("unknown event kind `{other}`")),
        };
        Ok(EventRecord {
            t_ns,
            cluster: cluster.map(|c| c as u32),
            slave: slave.map(|s| s as u32),
            kind,
        })
    }
}

/// Encode a trace: a header line
/// `{"schema":"cloudburst-trace","v":1}` followed by one event per line.
pub fn encode_jsonl(events: &[EventRecord]) -> String {
    let mut out = String::new();
    let header = Value::Object(vec![
        ("schema".into(), Value::String(SCHEMA_NAME.into())),
        ("v".into(), u(SCHEMA_VERSION)),
    ]);
    out.push_str(&header.render_compact());
    out.push('\n');
    for e in events {
        out.push_str(&e.to_value().render_compact());
        out.push('\n');
    }
    out
}

/// Decode a JSONL trace, validating the schema header. Errors carry the
/// offending line number.
pub fn decode_jsonl(text: &str) -> Result<Vec<EventRecord>, String> {
    let mut lines = text
        .lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty());
    let (_, header) = lines.next().ok_or("empty trace file")?;
    let hv: Value =
        serde_json::from_str(header).map_err(|e| format!("line 1: bad header JSON: {e}"))?;
    match hv.get("schema") {
        Some(Value::String(s)) if s == SCHEMA_NAME => {}
        _ => {
            return Err(format!(
                "line 1: header is not a `{SCHEMA_NAME}` schema line"
            ))
        }
    }
    match hv.get("v").map(|v| v.as_number()) {
        Some(Ok(Number::U64(n))) if *n == SCHEMA_VERSION => {}
        _ => {
            return Err(format!(
                "line 1: unsupported trace schema version (want {SCHEMA_VERSION})"
            ))
        }
    }
    let mut events = Vec::new();
    for (i, line) in lines {
        let v: Value = serde_json::from_str(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        events.push(EventRecord::from_value(&v).map_err(|e| format!("line {}: {e}", i + 1))?);
    }
    Ok(events)
}

// ---------------------------------------------------------------------------
// Stream invariants
// ---------------------------------------------------------------------------

/// Structural invariants every well-formed stream satisfies: each
/// `FetchStart` on a slave is terminated by a `FetchEnd` or `FetchFailed`
/// for the same chunk before the stream ends, and durations never precede
/// run start. Returns the first violation found.
pub fn check_invariants(events: &[EventRecord]) -> Result<(), String> {
    let mut open: BTreeMap<(Option<u32>, Option<u32>), Vec<u64>> = BTreeMap::new();
    for e in events {
        let key = (e.cluster, e.slave);
        match e.kind {
            EventKind::FetchStart { chunk } => open.entry(key).or_default().push(chunk),
            EventKind::FetchEnd { chunk, ns, .. } => {
                let inflight = open.entry(key).or_default();
                match inflight.iter().rposition(|&c| c == chunk) {
                    Some(i) => {
                        inflight.remove(i);
                    }
                    None => {
                        return Err(format!(
                            "fetch_end for chunk {chunk} on {key:?} without fetch_start"
                        ))
                    }
                }
                if ns > e.t_ns {
                    return Err(format!(
                        "fetch_end duration {ns}ns precedes run start (t_ns={})",
                        e.t_ns
                    ));
                }
            }
            EventKind::FetchFailed { chunk, .. } | EventKind::FetchDiscarded { chunk } => {
                let inflight = open.entry(key).or_default();
                match inflight.iter().rposition(|&c| c == chunk) {
                    Some(i) => {
                        inflight.remove(i);
                    }
                    None => {
                        return Err(format!(
                            "{} for chunk {chunk} on {key:?} without fetch_start",
                            e.kind.name()
                        ))
                    }
                }
            }
            _ => {}
        }
    }
    for (key, inflight) in open {
        if !inflight.is_empty() {
            return Err(format!(
                "{} fetch(es) on {key:?} never terminated (chunks {inflight:?})",
                inflight.len()
            ));
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Timeline (the shared Gantt renderer)
// ---------------------------------------------------------------------------

/// What a slave was doing during a [`TimelineSpan`]. Glyphs are shared
/// with the simulator's trace ([`GANTT_LEGEND`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    Fetch,
    Stall,
    Process,
    RobjTransfer,
}

impl SpanKind {
    /// The Gantt cell glyph (see [`GANTT_LEGEND`]).
    pub fn glyph(self) -> char {
        match self {
            SpanKind::Fetch => '▒',
            SpanKind::Stall => '░',
            SpanKind::Process => '█',
            SpanKind::RobjTransfer => '◆',
        }
    }
}

/// One activity interval of one slave, in nanoseconds since run start.
#[derive(Debug, Clone, Copy)]
pub struct TimelineSpan {
    pub cluster: u32,
    pub slave: u32,
    pub kind: SpanKind,
    pub start_ns: u64,
    pub end_ns: u64,
}

/// Per-slave activity spans reconstructed from an event stream; renders
/// the same textual Gantt chart as the simulator's `Trace`.
#[derive(Debug, Clone, Default)]
pub struct Timeline {
    pub spans: Vec<TimelineSpan>,
    /// End of the observed run, ns.
    pub horizon_ns: u64,
}

impl Timeline {
    /// Rebuild spans from duration-carrying events (`fetch_end`, `stall`,
    /// `process_end`, `robj_merge` each close a span of length `ns`).
    pub fn from_events(events: &[EventRecord]) -> Timeline {
        let mut tl = Timeline::default();
        for e in events {
            let (cluster, slave) = match (e.cluster, e.slave) {
                (Some(c), s) => (c, s.unwrap_or(0)),
                _ => continue,
            };
            let kind_ns = match e.kind {
                EventKind::FetchEnd { ns, .. } | EventKind::FetchFailed { ns, .. } => {
                    Some((SpanKind::Fetch, ns))
                }
                EventKind::Stall { ns } => Some((SpanKind::Stall, ns)),
                EventKind::ProcessEnd { ns, .. } => Some((SpanKind::Process, ns)),
                EventKind::RobjMerge { ns, .. } => Some((SpanKind::RobjTransfer, ns)),
                _ => None,
            };
            if let Some((kind, ns)) = kind_ns {
                tl.record(cluster, slave, kind, e.t_ns.saturating_sub(ns), e.t_ns);
            }
            tl.horizon_ns = tl.horizon_ns.max(e.t_ns);
        }
        tl
    }

    /// Record one span and extend the horizon.
    pub fn record(&mut self, cluster: u32, slave: u32, kind: SpanKind, start_ns: u64, end_ns: u64) {
        debug_assert!(end_ns >= start_ns, "span ends before it starts");
        self.spans.push(TimelineSpan {
            cluster,
            slave,
            kind,
            start_ns,
            end_ns,
        });
        self.horizon_ns = self.horizon_ns.max(end_ns);
    }

    /// Busy fraction of one slave over the whole run (fetch + process;
    /// stall and robj shipping are not "busy" slave work).
    pub fn utilization(&self, cluster: u32, slave: u32) -> f64 {
        if self.horizon_ns == 0 {
            return 0.0;
        }
        let busy: u64 = self
            .spans
            .iter()
            .filter(|s| {
                s.cluster == cluster
                    && s.slave == slave
                    && matches!(s.kind, SpanKind::Fetch | SpanKind::Process)
            })
            .map(|s| s.end_ns - s.start_ns)
            .sum();
        busy as f64 / self.horizon_ns as f64
    }

    /// Mean busy fraction across all slaves of `cluster`.
    pub fn cluster_utilization(&self, cluster: u32) -> f64 {
        let slaves: std::collections::BTreeSet<u32> = self
            .spans
            .iter()
            .filter(|s| s.cluster == cluster)
            .map(|s| s.slave)
            .collect();
        if slaves.is_empty() {
            return 0.0;
        }
        slaves
            .iter()
            .map(|&s| self.utilization(cluster, s))
            .sum::<f64>()
            / slaves.len() as f64
    }

    /// Render the textual Gantt chart: one row per (cluster, slave),
    /// `width` columns spanning the run, later spans overwriting earlier
    /// ones in a cell — identical conventions to the simulator's trace.
    pub fn render_gantt(&self, width: usize) -> String {
        assert!(width > 0);
        let horizon = (self.horizon_ns as f64).max(1.0);
        let mut rows: BTreeMap<(u32, u32), Vec<char>> = BTreeMap::new();
        for s in &self.spans {
            let row = rows
                .entry((s.cluster, s.slave))
                .or_insert_with(|| vec!['·'; width]);
            let a = ((s.start_ns as f64 / horizon) * width as f64) as usize;
            let b = ((s.end_ns as f64 / horizon) * width as f64).ceil() as usize;
            for cell in row.iter_mut().take(b.min(width)).skip(a.min(width - 1)) {
                *cell = s.kind.glyph();
            }
        }
        let mut out = String::new();
        let _ = writeln!(
            out,
            "gantt over {:.2}s  ({GANTT_LEGEND})",
            self.horizon_ns as f64 / 1e9
        );
        for ((c, s), row) in rows {
            let _ = writeln!(
                out,
                "c{c}/s{s:<3} |{}|",
                row.into_iter().collect::<String>()
            );
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Summary (RunReport as a derived view)
// ---------------------------------------------------------------------------

/// Per-cluster aggregates folded from the event stream.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ClusterSummary {
    pub jobs: u64,
    pub stolen: u64,
    pub process_ns: u64,
    pub fetch_ns: u64,
    pub stall_ns: u64,
    pub bytes_local: u64,
    pub bytes_remote: u64,
}

/// Everything [`RunReport`] reports, re-derived
/// from the event stream alone. [`TraceSummary::reconcile`] asserts the
/// two agree — the observability layer's core invariant.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceSummary {
    pub clusters: BTreeMap<u32, ClusterSummary>,
    pub assignments: u64,
    pub steals: u64,
    pub leases_released: u64,
    pub charged_releases: u64,
    pub retries: u64,
    pub fetch_failures: u64,
    /// Failure-threshold retirements (excludes scheduled kills, matching
    /// `RecoveryStats::slaves_retired`).
    pub slaves_retired: u64,
    pub slaves_killed: u64,
    pub cache_hits: u64,
    pub cache_misses: u64,
    pub cache_hit_bytes: u64,
    pub robj_bytes: u64,
    pub robj_merges: u64,
    pub faults_injected: u64,
    pub passes: u64,
    /// Control-plane frames written/read (distributed runs; zero for
    /// in-process runs, matching `NetStats::default`).
    pub frames_sent: u64,
    pub frames_recv: u64,
    pub net_bytes_sent: u64,
    pub net_bytes_recv: u64,
    pub peers_joined: u64,
    pub peers_lost: u64,
}

impl TraceSummary {
    /// Fold an event stream into aggregates.
    pub fn from_events(events: &[EventRecord]) -> TraceSummary {
        fn cl<'a>(s: &'a mut TraceSummary, e: &EventRecord) -> &'a mut ClusterSummary {
            s.clusters.entry(e.cluster.unwrap_or(0)).or_default()
        }
        let mut s = TraceSummary::default();
        for e in events {
            match e.kind {
                EventKind::JobAssigned { .. } => s.assignments += 1,
                EventKind::Steal { .. } => s.steals += 1,
                EventKind::LeaseReleased { charged, .. } => {
                    s.leases_released += 1;
                    if charged {
                        s.charged_releases += 1;
                    }
                }
                EventKind::FetchEnd {
                    bytes, remote, ns, ..
                } => {
                    let c = cl(&mut s, e);
                    c.fetch_ns += ns;
                    if remote {
                        c.bytes_remote += bytes;
                    } else {
                        c.bytes_local += bytes;
                    }
                }
                EventKind::FetchFailed { ns, .. } => {
                    s.fetch_failures += 1;
                    cl(&mut s, e).fetch_ns += ns;
                }
                EventKind::Stall { ns } => cl(&mut s, e).stall_ns += ns,
                EventKind::ProcessEnd { ns, stolen, .. } => {
                    let c = cl(&mut s, e);
                    c.jobs += 1;
                    c.process_ns += ns;
                    if stolen {
                        c.stolen += 1;
                    }
                }
                EventKind::Retry { .. } => s.retries += 1,
                EventKind::SlaveRetired { killed } => {
                    if killed {
                        s.slaves_killed += 1;
                    } else {
                        s.slaves_retired += 1;
                    }
                }
                EventKind::RobjMerge { bytes, .. } => {
                    s.robj_merges += 1;
                    s.robj_bytes += bytes;
                }
                EventKind::CacheHit { bytes } => {
                    s.cache_hits += 1;
                    s.cache_hit_bytes += bytes;
                }
                EventKind::CacheMiss { .. } => s.cache_misses += 1,
                EventKind::FaultInjected => s.faults_injected += 1,
                EventKind::PassBoundary { pass } => s.passes = s.passes.max(pass + 1),
                EventKind::NetSent { bytes } => {
                    s.frames_sent += 1;
                    s.net_bytes_sent += bytes;
                }
                EventKind::NetRecv { bytes } => {
                    s.frames_recv += 1;
                    s.net_bytes_recv += bytes;
                }
                EventKind::PeerJoined { .. } => s.peers_joined += 1,
                EventKind::PeerLost { .. } => s.peers_lost += 1,
                _ => {}
            }
        }
        s
    }

    /// Jobs processed across all clusters.
    pub fn total_jobs(&self) -> u64 {
        self.clusters.values().map(|c| c.jobs).sum()
    }

    /// Stolen jobs processed across all clusters.
    pub fn total_stolen(&self) -> u64 {
        self.clusters.values().map(|c| c.stolen).sum()
    }

    /// Check that this summary and `report` agree: integer counters must
    /// match exactly; per-core mean durations within `eps_s` seconds
    /// (floating-point association differs between the two folds).
    /// Returns the first disagreement found.
    pub fn reconcile(&self, report: &RunReport, eps_s: f64) -> Result<(), String> {
        fn eq(name: &str, a: u64, b: u64) -> Result<(), String> {
            if a == b {
                Ok(())
            } else {
                Err(format!("{name}: events say {a}, report says {b}"))
            }
        }
        fn close(name: &str, a: f64, b: f64, eps: f64) -> Result<(), String> {
            if (a - b).abs() <= eps {
                Ok(())
            } else {
                Err(format!("{name}: events say {a:.6}, report says {b:.6}"))
            }
        }
        for (i, c) in report.clusters.iter().enumerate() {
            let empty = ClusterSummary::default();
            let ev = self.clusters.get(&(i as u32)).unwrap_or(&empty);
            let name = &c.name;
            eq(&format!("{name}.jobs_processed"), ev.jobs, c.jobs_processed)?;
            eq(&format!("{name}.jobs_stolen"), ev.stolen, c.jobs_stolen)?;
            eq(
                &format!("{name}.bytes_local"),
                ev.bytes_local,
                c.bytes_local,
            )?;
            eq(
                &format!("{name}.bytes_remote"),
                ev.bytes_remote,
                c.bytes_remote,
            )?;
            let cores = (c.cores as f64).max(1.0);
            close(
                &format!("{name}.retrieval_s"),
                ev.fetch_ns as f64 / 1e9 / cores,
                c.retrieval_s,
                eps_s,
            )?;
            close(
                &format!("{name}.fetch_stall_s"),
                ev.stall_ns as f64 / 1e9 / cores,
                c.fetch_stall_s,
                eps_s,
            )?;
        }
        eq("recovery.retries", self.retries, report.recovery.retries)?;
        eq(
            "recovery.fetch_failures",
            self.fetch_failures,
            report.recovery.fetch_failures,
        )?;
        eq(
            "recovery.jobs_reenqueued",
            self.leases_released,
            report.recovery.jobs_reenqueued,
        )?;
        eq(
            "recovery.slaves_retired",
            self.slaves_retired,
            report.recovery.slaves_retired,
        )?;
        eq(
            "recovery.slaves_killed",
            self.slaves_killed,
            report.recovery.slaves_killed,
        )?;
        eq("cache_hits", self.cache_hits, report.cache_hits)?;
        eq("cache_misses", self.cache_misses, report.cache_misses)?;
        eq("net.frames_sent", self.frames_sent, report.net.frames_sent)?;
        eq("net.frames_recv", self.frames_recv, report.net.frames_recv)?;
        eq("net.bytes_sent", self.net_bytes_sent, report.net.bytes_sent)?;
        eq("net.bytes_recv", self.net_bytes_recv, report.net.bytes_recv)?;
        eq(
            "net.peers_joined",
            self.peers_joined,
            report.net.peers_joined,
        )?;
        eq("net.peers_lost", self.peers_lost, report.net.peers_lost)?;
        Ok(())
    }
}

/// The `n` slowest completed fetches, slowest first (for `inspect trace`).
pub fn slowest_fetches(events: &[EventRecord], n: usize) -> Vec<EventRecord> {
    let mut fetches: Vec<EventRecord> = events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::FetchEnd { .. }))
        .copied()
        .collect();
    fetches.sort_by_key(|e| match e.kind {
        EventKind::FetchEnd { ns, .. } => std::cmp::Reverse(ns),
        _ => std::cmp::Reverse(0),
    });
    fetches.truncate(n);
    fetches
}

// ---------------------------------------------------------------------------
// Metrics registry
// ---------------------------------------------------------------------------

/// A log₂-bucketed latency histogram (nanosecond samples).
#[derive(Debug, Clone)]
pub struct Histogram {
    /// `buckets[i]` counts samples with `ns < 2^i` (and `>= 2^(i-1)`).
    buckets: [u64; 64],
    count: u64,
    sum_ns: u64,
    min_ns: u64,
    max_ns: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; 64],
            count: 0,
            sum_ns: 0,
            min_ns: u64::MAX,
            max_ns: 0,
        }
    }
}

impl Histogram {
    /// Record one nanosecond sample.
    pub fn record(&mut self, ns: u64) {
        let bucket = (64 - ns.leading_zeros()).min(63) as usize;
        self.buckets[bucket] += 1;
        self.count += 1;
        self.sum_ns += ns;
        self.min_ns = self.min_ns.min(ns);
        self.max_ns = self.max_ns.max(ns);
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn min_ns(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min_ns
        }
    }

    pub fn max_ns(&self) -> u64 {
        self.max_ns
    }

    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_ns as f64 / self.count as f64
        }
    }

    /// Approximate quantile: the upper bound of the bucket containing the
    /// `q`-quantile sample (within 2× of the true value by construction).
    pub fn quantile_ns(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return if i >= 63 { u64::MAX } else { 1u64 << i };
            }
        }
        self.max_ns
    }
}

/// Counters and histograms folded from an event stream: the queryable
/// face of the metrics layer (`fetch_latency`, `stall`, `process`
/// histograms; job/steal/retry/cache counters).
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<&'static str, u64>,
    histograms: BTreeMap<&'static str, Histogram>,
}

impl MetricsRegistry {
    /// Fold `events` into counters and histograms.
    pub fn from_events(events: &[EventRecord]) -> MetricsRegistry {
        let mut m = MetricsRegistry::default();
        for e in events {
            m.count(e.kind.name(), 1);
            match e.kind {
                EventKind::FetchEnd {
                    bytes, remote, ns, ..
                } => {
                    m.observe("fetch_latency", ns);
                    m.count(
                        if remote {
                            "bytes_remote"
                        } else {
                            "bytes_local"
                        },
                        bytes,
                    );
                }
                EventKind::Stall { ns } => m.observe("stall", ns),
                EventKind::ProcessEnd { units, ns, .. } => {
                    m.observe("process", ns);
                    m.count("units_folded", units);
                }
                EventKind::RobjMerge { bytes, ns } => {
                    m.observe("robj_transfer", ns);
                    m.count("robj_bytes", bytes);
                }
                _ => {}
            }
        }
        m
    }

    fn count(&mut self, name: &'static str, by: u64) {
        *self.counters.entry(name).or_insert(0) += by;
    }

    fn observe(&mut self, name: &'static str, ns: u64) {
        self.histograms.entry(name).or_default().record(ns);
    }

    /// A counter's value (0 when never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// A histogram, if any sample was recorded under `name`.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Cache hit ratio in [0, 1]; 0 when the cache saw no traffic.
    pub fn cache_hit_ratio(&self) -> f64 {
        let h = self.counter("cache_hit");
        let m = self.counter("cache_miss");
        if h + m == 0 {
            0.0
        } else {
            h as f64 / (h + m) as f64
        }
    }

    /// Render counters and histogram summaries as an aligned text table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{:<16} {:>12}", "counter", "value");
        for (name, v) in &self.counters {
            let _ = writeln!(out, "{name:<16} {v:>12}");
        }
        if !self.histograms.is_empty() {
            let _ = writeln!(
                out,
                "{:<16} {:>8} {:>10} {:>10} {:>10} {:>10}",
                "histogram", "count", "mean_ms", "p50_ms", "p99_ms", "max_ms"
            );
            for (name, h) in &self.histograms {
                let _ = writeln!(
                    out,
                    "{name:<16} {:>8} {:>10.3} {:>10.3} {:>10.3} {:>10.3}",
                    h.count(),
                    h.mean_ns() / 1e6,
                    h.quantile_ns(0.5) as f64 / 1e6,
                    h.quantile_ns(0.99) as f64 / 1e6,
                    h.max_ns() as f64 / 1e6,
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(t_ns: u64, cluster: u32, slave: u32, kind: EventKind) -> EventRecord {
        EventRecord {
            t_ns,
            cluster: Some(cluster),
            slave: Some(slave),
            kind,
        }
    }

    fn all_kinds() -> Vec<EventKind> {
        vec![
            EventKind::JobAssigned {
                chunk: 3,
                stolen: true,
            },
            EventKind::Steal { chunk: 3 },
            EventKind::LeaseReleased {
                chunk: 4,
                charged: false,
            },
            EventKind::FetchStart { chunk: 5 },
            EventKind::FetchEnd {
                chunk: 5,
                bytes: 1 << 20,
                remote: true,
                ns: 12_345,
            },
            EventKind::FetchFailed { chunk: 6, ns: 42 },
            EventKind::FetchDiscarded { chunk: 8 },
            EventKind::Stall { ns: 99 },
            EventKind::ProcessStart { chunk: 5 },
            EventKind::ProcessEnd {
                chunk: 5,
                units: 4096,
                ns: 777,
                stolen: false,
            },
            EventKind::Retry { attempt: 2 },
            EventKind::SlaveRetired { killed: true },
            EventKind::RobjMerge {
                bytes: 64,
                ns: 1_000,
            },
            EventKind::CacheHit { bytes: 512 },
            EventKind::CacheMiss { bytes: 512 },
            EventKind::FaultInjected,
            EventKind::PassBoundary { pass: 1 },
            EventKind::MasterRefill { queue_len: 2 },
            EventKind::NetSent { bytes: 48 },
            EventKind::NetRecv { bytes: 37 },
            EventKind::PeerJoined { cores: 4 },
            EventKind::PeerLost { jobs: 7 },
        ]
    }

    #[test]
    fn jsonl_round_trips_every_kind() {
        let events: Vec<EventRecord> = all_kinds()
            .into_iter()
            .enumerate()
            .map(|(i, k)| EventRecord {
                t_ns: 1_000_000 + i as u64,
                cluster: if i % 3 == 0 { None } else { Some(i as u32) },
                slave: if i % 2 == 0 { None } else { Some(1) },
                kind: k,
            })
            .collect();
        let text = encode_jsonl(&events);
        assert!(text.starts_with("{\"schema\":\"cloudburst-trace\",\"v\":1}"));
        let back = decode_jsonl(&text).unwrap();
        assert_eq!(back, events);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(decode_jsonl("").is_err());
        assert!(decode_jsonl("{\"schema\":\"other\",\"v\":1}\n").is_err());
        assert!(decode_jsonl("{\"schema\":\"cloudburst-trace\",\"v\":99}\n").is_err());
        let bad_event = format!(
            "{}\n{{\"t_ns\":1,\"ev\":\"no_such_event\"}}\n",
            "{\"schema\":\"cloudburst-trace\",\"v\":1}"
        );
        let err = decode_jsonl(&bad_event).unwrap_err();
        assert!(err.contains("line 2"), "{err}");
        assert!(err.contains("no_such_event"), "{err}");
    }

    #[test]
    fn disabled_handle_is_a_noop() {
        let h = SinkHandle::default();
        assert!(!h.is_enabled());
        h.emit(Some(0), Some(0), EventKind::FaultInjected); // must not panic
        assert_eq!(format!("{h:?}"), "SinkHandle(disabled)");
    }

    #[test]
    fn recording_sink_orders_and_stamps() {
        let sink = RecordingSink::new();
        let h = SinkHandle::new(sink.clone());
        assert!(h.is_enabled());
        h.emit(Some(0), Some(0), EventKind::FetchStart { chunk: 1 });
        h.emit(
            Some(0),
            Some(0),
            EventKind::FetchEnd {
                chunk: 1,
                bytes: 10,
                remote: false,
                ns: 0,
            },
        );
        let evs = sink.snapshot();
        assert_eq!(evs.len(), 2);
        assert!(evs[0].t_ns <= evs[1].t_ns, "timestamps are monotonic");
        assert_eq!(sink.take().len(), 2);
        assert!(sink.is_empty());
    }

    #[test]
    fn manual_clock_stamps_virtual_time() {
        let clock = Arc::new(AtomicU64::new(42));
        let sink = RecordingSink::with_clock(clock.clone());
        let h = SinkHandle::new(sink.clone());
        h.emit(None, None, EventKind::FaultInjected);
        clock.store(1_000, Ordering::Relaxed);
        h.emit(None, None, EventKind::FaultInjected);
        let evs = sink.snapshot();
        assert_eq!(evs[0].t_ns, 42);
        assert_eq!(evs[1].t_ns, 1_000);
    }

    #[test]
    fn invariants_catch_unterminated_fetch() {
        let ok = vec![
            rec(10, 0, 0, EventKind::FetchStart { chunk: 1 }),
            rec(
                20,
                0,
                0,
                EventKind::FetchEnd {
                    chunk: 1,
                    bytes: 1,
                    remote: false,
                    ns: 10,
                },
            ),
            rec(30, 0, 1, EventKind::FetchStart { chunk: 2 }),
            rec(40, 0, 1, EventKind::FetchFailed { chunk: 2, ns: 10 }),
        ];
        assert_eq!(check_invariants(&ok), Ok(()));

        let dangling = vec![rec(10, 0, 0, EventKind::FetchStart { chunk: 1 })];
        assert!(check_invariants(&dangling).is_err());

        let orphan = vec![rec(
            10,
            0,
            0,
            EventKind::FetchEnd {
                chunk: 1,
                bytes: 1,
                remote: false,
                ns: 5,
            },
        )];
        assert!(check_invariants(&orphan).is_err());
    }

    #[test]
    fn timeline_builds_spans_and_renders() {
        let events = vec![
            rec(
                2_000_000_000,
                0,
                0,
                EventKind::FetchEnd {
                    chunk: 1,
                    bytes: 1,
                    remote: true,
                    ns: 2_000_000_000,
                },
            ),
            rec(
                6_000_000_000,
                0,
                0,
                EventKind::ProcessEnd {
                    chunk: 1,
                    units: 10,
                    ns: 4_000_000_000,
                    stolen: false,
                },
            ),
            rec(
                10_000_000_000,
                1,
                0,
                EventKind::ProcessEnd {
                    chunk: 2,
                    units: 10,
                    ns: 10_000_000_000,
                    stolen: true,
                },
            ),
        ];
        let tl = Timeline::from_events(&events);
        assert_eq!(tl.spans.len(), 3);
        assert_eq!(tl.horizon_ns, 10_000_000_000);
        assert!((tl.utilization(0, 0) - 0.6).abs() < 1e-12);
        assert!((tl.utilization(1, 0) - 1.0).abs() < 1e-12);
        let g = tl.render_gantt(20);
        assert!(g.contains(GANTT_LEGEND));
        assert!(g.contains("c0/s0"));
        let row1 = g.lines().find(|l| l.starts_with("c1/s0")).unwrap();
        assert_eq!(row1.matches('█').count(), 20, "fully busy row");
    }

    #[test]
    fn summary_folds_counters() {
        let events = vec![
            rec(
                1,
                0,
                0,
                EventKind::JobAssigned {
                    chunk: 1,
                    stolen: false,
                },
            ),
            rec(2, 0, 0, EventKind::Steal { chunk: 9 }),
            rec(
                5,
                0,
                0,
                EventKind::FetchEnd {
                    chunk: 1,
                    bytes: 100,
                    remote: false,
                    ns: 4,
                },
            ),
            rec(
                9,
                0,
                0,
                EventKind::ProcessEnd {
                    chunk: 1,
                    units: 50,
                    ns: 3,
                    stolen: false,
                },
            ),
            rec(
                12,
                1,
                0,
                EventKind::ProcessEnd {
                    chunk: 9,
                    units: 50,
                    ns: 3,
                    stolen: true,
                },
            ),
            rec(13, 1, 0, EventKind::Retry { attempt: 1 }),
            rec(14, 1, 0, EventKind::SlaveRetired { killed: false }),
            rec(15, 0, 0, EventKind::CacheHit { bytes: 10 }),
            rec(16, 0, 0, EventKind::PassBoundary { pass: 2 }),
        ];
        let s = TraceSummary::from_events(&events);
        assert_eq!(s.total_jobs(), 2);
        assert_eq!(s.total_stolen(), 1);
        assert_eq!(s.steals, 1);
        assert_eq!(s.retries, 1);
        assert_eq!(s.slaves_retired, 1);
        assert_eq!(s.slaves_killed, 0);
        assert_eq!(s.cache_hits, 1);
        assert_eq!(s.passes, 3);
        assert_eq!(s.clusters[&0].bytes_local, 100);
        assert_eq!(s.clusters[&1].stolen, 1);
    }

    #[test]
    fn slowest_fetches_sorts_desc() {
        let mk = |ns| {
            rec(
                ns,
                0,
                0,
                EventKind::FetchEnd {
                    chunk: ns,
                    bytes: 1,
                    remote: false,
                    ns,
                },
            )
        };
        let events = vec![
            mk(5),
            mk(50),
            mk(20),
            rec(1, 0, 0, EventKind::FaultInjected),
        ];
        let top = slowest_fetches(&events, 2);
        assert_eq!(top.len(), 2);
        assert!(matches!(top[0].kind, EventKind::FetchEnd { ns: 50, .. }));
        assert!(matches!(top[1].kind, EventKind::FetchEnd { ns: 20, .. }));
    }

    #[test]
    fn histogram_quantiles_bracket_samples() {
        let mut h = Histogram::default();
        for ns in [10, 20, 40, 80, 1_000_000] {
            h.record(ns);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.min_ns(), 10);
        assert_eq!(h.max_ns(), 1_000_000);
        let p50 = h.quantile_ns(0.5);
        assert!((16..=64).contains(&p50), "p50 bucket bound {p50}");
        assert!(h.quantile_ns(1.0) >= 1_000_000);
        let empty = Histogram::default();
        assert_eq!(empty.quantile_ns(0.5), 0);
        assert_eq!(empty.min_ns(), 0);
    }

    #[test]
    fn metrics_registry_folds_events() {
        let events = vec![
            rec(
                5,
                0,
                0,
                EventKind::FetchEnd {
                    chunk: 1,
                    bytes: 100,
                    remote: true,
                    ns: 4,
                },
            ),
            rec(6, 0, 0, EventKind::CacheHit { bytes: 1 }),
            rec(7, 0, 0, EventKind::CacheHit { bytes: 1 }),
            rec(8, 0, 0, EventKind::CacheMiss { bytes: 1 }),
        ];
        let m = MetricsRegistry::from_events(&events);
        assert_eq!(m.counter("fetch_end"), 1);
        assert_eq!(m.counter("bytes_remote"), 100);
        assert_eq!(m.histogram("fetch_latency").unwrap().count(), 1);
        assert!((m.cache_hit_ratio() - 2.0 / 3.0).abs() < 1e-12);
        let table = m.render();
        assert!(table.contains("cache_hit"));
        assert!(table.contains("fetch_latency"));
    }
}
