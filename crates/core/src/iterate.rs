//! Iterative execution driver.
//!
//! k-means and PageRank — two of the paper's three applications — are
//! iterative: each pass is one full framework run, and the pass's reduction
//! object determines the next pass's broadcast parameters. This module
//! packages that loop (convergence policy, iteration cap, per-pass reports)
//! so applications only supply the `robj → next params` step.

use crate::api::GRApp;
use crate::config::RuntimeConfig;
use crate::deploy::Deployment;
use crate::obs::{EventKind, SinkHandle};
use crate::report::RunReport;
use crate::runtime::{run, RuntimeError};
use cb_storage::cache::CachedStore;
use cb_storage::layout::{DatasetLayout, LocationId, Placement};
use std::collections::BTreeSet;
use std::sync::Arc;

/// What an application's update step tells the driver to do next.
pub enum Step<P> {
    /// Run another pass with these parameters.
    Continue(P),
    /// Converged (or otherwise done); stop with these final parameters.
    Done(P),
}

/// Outcome of an iterative run.
#[derive(Debug)]
pub struct IterativeOutcome<P> {
    /// Final parameters (e.g. converged centroids / ranks).
    pub params: P,
    /// Whether the update step declared convergence (vs. hitting the cap).
    pub converged: bool,
    /// Number of passes executed.
    pub iterations: usize,
    /// Per-pass run reports, in order.
    pub reports: Vec<RunReport>,
}

impl<P> IterativeOutcome<P> {
    /// Total wall time across passes.
    pub fn total_s(&self) -> f64 {
        self.reports.iter().map(|r| r.total_s).sum()
    }
}

/// Wrap every fabric path of a copy of `deployment` in a [`CachedStore`]
/// with `capacity_bytes` budget each, returning the cached deployment plus
/// handles to the caches (for hit/miss accounting). Iterative runs re-read
/// the same chunks every pass, so a read-through cache turns passes after
/// the first into memory reads.
fn cached_deployment(
    deployment: &Deployment,
    capacity_bytes: usize,
    sink: &SinkHandle,
) -> (Deployment, Vec<Arc<CachedStore>>) {
    let mut d = deployment.clone();
    let sites: BTreeSet<LocationId> = d.fabric.paths().map(|(_, to, _)| to).collect();
    let mut caches = Vec::new();
    for site in sites {
        d.fabric.wrap_paths_to(site, |inner| {
            let mut store = CachedStore::new(inner, capacity_bytes);
            if sink.is_enabled() {
                // Observed at the same points the hit/miss counters
                // increment, so event counts equal the report's cache stats.
                let sink = sink.clone();
                store = store.with_observer(Arc::new(move |hit, bytes| {
                    let kind = if hit {
                        EventKind::CacheHit { bytes }
                    } else {
                        EventKind::CacheMiss { bytes }
                    };
                    sink.emit(None, None, kind);
                }));
            }
            let cache = Arc::new(store);
            caches.push(Arc::clone(&cache));
            cache
        });
    }
    (d, caches)
}

/// Run `app` repeatedly: after each pass, `update(pass_index, robj, params)`
/// produces the next parameters or declares convergence. At most
/// `max_iterations` passes (0 is rejected — it would mean never running).
///
/// When `cfg.cache_bytes > 0`, every fabric path is wrapped in a
/// [`CachedStore`] shared across passes; each pass's report carries that
/// pass's cache hit/miss deltas.
///
/// The reduction object is handed to `update` by value; parameters flow
/// through the driver so the caller keeps no mutable state of their own.
#[allow(clippy::too_many_arguments)] // mirrors `runtime::run` plus the loop knobs
pub fn run_iterative<A, F>(
    app: &A,
    initial: A::Params,
    layout: &DatasetLayout,
    placement: &Placement,
    deployment: &Deployment,
    cfg: &RuntimeConfig,
    max_iterations: usize,
    mut update: F,
) -> Result<IterativeOutcome<A::Params>, RuntimeError>
where
    A: GRApp,
    F: FnMut(usize, A::RObj, &A::Params) -> Step<A::Params>,
{
    assert!(max_iterations > 0, "max_iterations must be >= 1");
    let (cached, caches) = if cfg.cache_bytes > 0 {
        let (d, caches) = cached_deployment(deployment, cfg.cache_bytes, &cfg.sink);
        (Some(d), caches)
    } else {
        (None, Vec::new())
    };
    let deployment = cached.as_ref().unwrap_or(deployment);
    let (mut prev_hits, mut prev_misses) = (0u64, 0u64);
    let mut params = initial;
    let mut reports = Vec::new();
    for iter in 0..max_iterations {
        cfg.sink
            .emit(None, None, EventKind::PassBoundary { pass: iter as u64 });
        let mut out = run(app, &params, layout, placement, deployment, cfg)?;
        let hits: u64 = caches.iter().map(|c| c.hits()).sum();
        let misses: u64 = caches.iter().map(|c| c.misses()).sum();
        out.report.cache_hits = hits - prev_hits;
        out.report.cache_misses = misses - prev_misses;
        (prev_hits, prev_misses) = (hits, misses);
        reports.push(out.report);
        match update(iter, out.result, &params) {
            Step::Done(p) => {
                return Ok(IterativeOutcome {
                    params: p,
                    converged: true,
                    iterations: iter + 1,
                    reports,
                })
            }
            Step::Continue(p) => params = p,
        }
    }
    let iterations = reports.len();
    Ok(IterativeOutcome {
        params,
        converged: false,
        iterations,
        reports,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{GRApp, ReductionObject};
    use crate::deploy::{ClusterSpec, DataFabric, Deployment};
    use cb_storage::builder::materialize;
    use cb_storage::layout::{ChunkMeta, LocationId, Placement};
    use cb_storage::organizer::organize_even;
    use cb_storage::store::{MemStore, ObjectStore};
    use std::collections::BTreeMap;
    use std::sync::Arc;

    /// Counts units >= a threshold that tightens each pass: a toy iterative
    /// computation whose trajectory is fully predictable.
    struct ThresholdCount;

    #[derive(Debug)]
    struct Count(u64);

    impl ReductionObject for Count {
        fn merge(&mut self, other: Self) {
            self.0 += other.0;
        }
        fn size_bytes(&self) -> usize {
            8
        }
    }

    impl GRApp for ThresholdCount {
        type Unit = u8;
        type RObj = Count;
        type Params = u8; // threshold

        fn decode_chunk(&self, _m: &ChunkMeta, bytes: &[u8]) -> Vec<u8> {
            bytes.to_vec()
        }
        fn init(&self, _: &u8) -> Count {
            Count(0)
        }
        fn local_reduce(&self, thr: &u8, robj: &mut Count, unit: &u8) {
            if unit >= thr {
                robj.0 += 1;
            }
        }
    }

    fn env() -> (cb_storage::layout::DatasetLayout, Placement, Deployment) {
        let layout = organize_even(2, 256, 64, 1).unwrap();
        let placement = Placement::all_at(2, LocationId(0));
        let store: Arc<dyn ObjectStore> = Arc::new(MemStore::new("m"));
        let mut stores = BTreeMap::new();
        stores.insert(LocationId(0), Arc::clone(&store));
        materialize(&layout, &placement, &stores, |_c, buf| {
            for (i, b) in buf.iter_mut().enumerate() {
                *b = (i % 7) as u8;
            }
        })
        .unwrap();
        let fabric = DataFabric::direct(&stores);
        let deployment = Deployment::new(vec![ClusterSpec::new("local", LocationId(0), 2)], fabric);
        (layout, placement, deployment)
    }

    #[test]
    fn iterates_until_convergence() {
        let (layout, placement, deployment) = env();
        // Raise the threshold until fewer than 100 units qualify.
        let out = run_iterative(
            &ThresholdCount,
            0u8,
            &layout,
            &placement,
            &deployment,
            &RuntimeConfig::default(),
            20,
            |_i, robj, thr| {
                if robj.0 < 100 {
                    Step::Done(*thr)
                } else {
                    Step::Continue(thr + 1)
                }
            },
        )
        .unwrap();
        assert!(out.converged);
        // 512 bytes cycling 0..7: counts 512, ~439, ~366, ... < 100 at thr 6.
        assert_eq!(out.params, 6);
        assert_eq!(out.iterations, 7, "thresholds 0..=6");
        assert_eq!(out.reports.len(), 7);
        assert!(out.total_s() > 0.0);
    }

    #[test]
    fn stops_at_iteration_cap() {
        let (layout, placement, deployment) = env();
        let out = run_iterative(
            &ThresholdCount,
            0u8,
            &layout,
            &placement,
            &deployment,
            &RuntimeConfig::default(),
            3,
            |_i, _robj, thr| Step::Continue(thr + 1),
        )
        .unwrap();
        assert!(!out.converged);
        assert_eq!(out.iterations, 3);
        assert_eq!(out.params, 3);
    }

    #[test]
    fn update_sees_pass_indices_in_order() {
        let (layout, placement, deployment) = env();
        let mut seen = Vec::new();
        let _ = run_iterative(
            &ThresholdCount,
            0u8,
            &layout,
            &placement,
            &deployment,
            &RuntimeConfig::default(),
            4,
            |i, _robj, thr| {
                seen.push(i);
                Step::Continue(*thr)
            },
        )
        .unwrap();
        assert_eq!(seen, vec![0, 1, 2, 3]);
    }

    #[test]
    fn cache_turns_later_passes_into_hits() {
        let (layout, placement, deployment) = env();
        let cfg = RuntimeConfig {
            cache_bytes: 1 << 20,
            ..Default::default()
        };
        let step = |_i: usize, _robj: Count, thr: &u8| Step::Continue(thr + 1);
        let out = run_iterative(
            &ThresholdCount,
            0u8,
            &layout,
            &placement,
            &deployment,
            &cfg,
            3,
            step,
        )
        .unwrap();
        assert_eq!(out.iterations, 3);
        assert!(out.reports[0].cache_misses > 0, "first pass is cold");
        assert_eq!(out.reports[0].cache_hits, 0, "nothing cached before pass 0");
        for r in &out.reports[1..] {
            assert!(r.cache_hits > 0, "later passes re-read from the cache");
            assert_eq!(r.cache_misses, 0, "the dataset fits; no re-misses");
        }

        // Caching must not change the computation, and an uncached run
        // reports no cache traffic at all.
        let base = run_iterative(
            &ThresholdCount,
            0u8,
            &layout,
            &placement,
            &deployment,
            &RuntimeConfig::default(),
            3,
            step,
        )
        .unwrap();
        assert_eq!(out.params, base.params);
        for r in &base.reports {
            assert_eq!((r.cache_hits, r.cache_misses), (0, 0));
        }
    }

    #[test]
    #[should_panic(expected = "max_iterations")]
    fn zero_iterations_rejected() {
        let (layout, placement, deployment) = env();
        let _ = run_iterative(
            &ThresholdCount,
            0u8,
            &layout,
            &placement,
            &deployment,
            &RuntimeConfig::default(),
            0,
            |_i, _r, thr| Step::Continue(*thr),
        );
    }

    #[test]
    fn runtime_errors_propagate() {
        let (layout, placement, deployment) = env();
        let cfg = RuntimeConfig {
            cache_group_units: 0, // invalid
            ..Default::default()
        };
        let err = run_iterative(
            &ThresholdCount,
            0u8,
            &layout,
            &placement,
            &deployment,
            &cfg,
            5,
            |_i, _r, thr| Step::Continue(*thr),
        )
        .unwrap_err();
        assert!(matches!(err, RuntimeError::Validation(_)));
    }
}
