//! Runtime configuration knobs.

use crate::sched::pool::PoolConfig;

/// A scheduled slave failure: slave `slave` of cluster `cluster` fail-stops
/// after processing `after_jobs` jobs.
///
/// The kill is taken at a job boundary (the generalized-reduction model's
/// natural checkpoint): the slave's accumulated reduction object survives —
/// it is handed to the master exactly as at normal shutdown — while any job
/// the head still considers leased to it is failed back to the pool. This
/// models the paper's observation that GR needs only the tiny reduction
/// object plus the set of unprocessed chunks to recover, rather than
/// MapReduce-style re-execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlaveKill {
    /// Index of the cluster in the deployment.
    pub cluster: usize,
    /// Slave (core) index within that cluster.
    pub slave: usize,
    /// Jobs the slave completes before dying.
    pub after_jobs: u64,
}

/// Configuration of the in-process cloud-bursting runtime.
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// Head-side assignment policy.
    pub pool: PoolConfig,
    /// Master refills from the head when its queue drops to this size.
    pub master_low_water: usize,
    /// Parallel connections each slave uses for *remote* chunk retrieval
    /// (the paper's "multiple retrieval threads").
    pub retrieval_threads: usize,
    /// Data units folded per local-reduction group. The paper sizes unit
    /// groups to the processor cache; functionally it only affects batching
    /// granularity, and it is the hook for the synthetic compute weight.
    pub cache_group_units: usize,
    /// Extra attempts per ranged GET after the first (transient remote
    /// failures happen against real object services).
    pub retrieval_retries: u32,
    /// Initial backoff before a retry (doubles per attempt).
    pub retrieval_backoff: std::time::Duration,
    /// Artificial extra compute, in nanoseconds per data unit, applied on
    /// top of the real fold. Lets tests and examples shape an application's
    /// compute-to-I/O ratio (e.g. make a scaled-down k-means behave
    /// "compute-bound" like the 120 GB original) without gigabytes of data.
    /// Zero disables it.
    pub synthetic_compute_ns_per_unit: u64,
    /// Per-GET deadline. A retrieval that takes longer than this (e.g. a
    /// hung connection, modelled by `FaultMode::Stall`) is classified as
    /// failed and retried, rather than blocking the slave forever.
    /// `None` disables the deadline.
    pub retrieval_deadline: Option<std::time::Duration>,
    /// A slave that fails this many *consecutive* jobs retires gracefully:
    /// it reports its partial reduction object to the master (which still
    /// merges into the cluster result) and stops pulling work, leaving the
    /// remaining jobs to healthier slaves and clusters. Must be >= 1.
    pub slave_failure_threshold: u32,
    /// Deterministic fault-injection hook: scheduled slave fail-stops.
    pub kill_schedule: Vec<SlaveKill>,
    /// How many jobs a slave prefetches ahead of the one it is folding.
    /// With depth `d`, a slave holds up to `1 + d` leases: the chunk being
    /// processed plus up to `d` being retrieved by its background fetcher,
    /// so retrieval overlaps computation (the FREERIDE-style double buffer
    /// at depth 1). `0` restores strictly serial fetch-then-fold behaviour.
    pub prefetch_depth: usize,
    /// Byte budget for a per-location read-through chunk cache
    /// ([`cb_storage::cache::CachedStore`]) wrapped around every fabric
    /// path during *iterative* runs ([`crate::iterate::run_iterative`]):
    /// passes after the first hit memory instead of the wire. `0` disables
    /// caching. Single-pass [`crate::runtime::run`] ignores this knob.
    pub cache_bytes: usize,
    /// Observability sink: every scheduling / retrieval / reduction event
    /// is emitted here (see [`crate::obs`]). The default is a disabled
    /// handle — one branch per emission site, nothing recorded.
    pub sink: crate::obs::SinkHandle,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            pool: PoolConfig::default(),
            master_low_water: 2,
            retrieval_threads: 4,
            retrieval_retries: 2,
            retrieval_backoff: std::time::Duration::from_millis(5),
            cache_group_units: 4096,
            synthetic_compute_ns_per_unit: 0,
            retrieval_deadline: None,
            slave_failure_threshold: 3,
            kill_schedule: Vec::new(),
            prefetch_depth: 1,
            cache_bytes: 0,
            sink: crate::obs::SinkHandle::disabled(),
        }
    }
}

impl RuntimeConfig {
    /// Validate the configuration, returning a description of the first
    /// problem found.
    pub fn validate(&self) -> Result<(), String> {
        if self.pool.local_batch == 0 {
            return Err("pool.local_batch must be >= 1".into());
        }
        if self.pool.remote_batch == 0 {
            return Err("pool.remote_batch must be >= 1".into());
        }
        if self.retrieval_threads == 0 {
            return Err("retrieval_threads must be >= 1".into());
        }
        if self.cache_group_units == 0 {
            return Err("cache_group_units must be >= 1".into());
        }
        if self.slave_failure_threshold == 0 {
            return Err("slave_failure_threshold must be >= 1".into());
        }
        if let Some(d) = self.retrieval_deadline {
            if d.is_zero() {
                return Err("retrieval_deadline must be > 0 when set".into());
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        assert_eq!(RuntimeConfig::default().validate(), Ok(()));
    }

    #[test]
    fn zero_knobs_rejected() {
        let c = RuntimeConfig {
            retrieval_threads: 0,
            ..Default::default()
        };
        assert!(c.validate().is_err());

        let c = RuntimeConfig {
            cache_group_units: 0,
            ..Default::default()
        };
        assert!(c.validate().is_err());

        for (local, remote) in [(0, 1), (1, 0)] {
            let mut c = RuntimeConfig::default();
            c.pool.local_batch = local;
            c.pool.remote_batch = remote;
            assert!(c.validate().is_err());
        }

        let c = RuntimeConfig {
            slave_failure_threshold: 0,
            ..Default::default()
        };
        assert!(c.validate().is_err());

        let c = RuntimeConfig {
            retrieval_deadline: Some(std::time::Duration::ZERO),
            ..Default::default()
        };
        assert!(c.validate().is_err());
    }
}
