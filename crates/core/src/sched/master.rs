//! The master node's cluster-local job queue (paper §III-B).
//!
//! *"The master monitors the cluster's job pool, and when it senses that it
//! is depleted, it will request a new group of jobs from the head."*
//!
//! [`MasterPool`] is the pure state machine for that behaviour: it holds the
//! jobs granted by the head, hands them to slaves one at a time, and tells
//! its driver when a refill request should be sent (queue at or below the
//! low-water mark, no request already in flight, head not exhausted).

use crate::obs::{EventKind, SinkHandle};
use cb_storage::layout::ChunkId;
use std::collections::VecDeque;

/// A job as held by a master: the chunk plus whether its data is remote
/// (the grant was stolen), which the slave needs to pick a store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MasterJob {
    pub chunk: ChunkId,
    pub stolen: bool,
}

/// Cluster-local job queue with demand-driven refill.
#[derive(Debug, Clone)]
pub struct MasterPool {
    queue: VecDeque<MasterJob>,
    /// Request more when `queue.len() <= low_water`.
    low_water: usize,
    request_in_flight: bool,
    /// The head confirmed no more jobs will ever come for this cluster
    /// (see [`MasterPool::mark_exhausted`]).
    exhausted: bool,
    /// Observability sink (disabled by default; see [`MasterPool::with_sink`]).
    sink: SinkHandle,
    /// Cluster index stamped on emitted events.
    cluster: u32,
}

impl MasterPool {
    pub fn new(low_water: usize) -> Self {
        MasterPool {
            queue: VecDeque::new(),
            low_water,
            request_in_flight: false,
            exhausted: false,
            sink: SinkHandle::disabled(),
            cluster: 0,
        }
    }

    /// Emit [`EventKind::MasterRefill`] to `sink` each time this master
    /// sends a refill request to the head, tagged with `cluster`.
    pub fn with_sink(mut self, sink: SinkHandle, cluster: u32) -> Self {
        self.sink = sink;
        self.cluster = cluster;
        self
    }

    /// Jobs currently queued.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// True once the head has said "no more" and the queue has drained.
    pub fn finished(&self) -> bool {
        self.exhausted && self.queue.is_empty()
    }

    /// True if the driver should send a job request to the head *now*.
    /// Callers must follow a `true` with [`MasterPool::mark_requested`].
    pub fn should_request(&self) -> bool {
        !self.exhausted && !self.request_in_flight && self.queue.len() <= self.low_water
    }

    /// Record that a request was sent.
    pub fn mark_requested(&mut self) {
        debug_assert!(!self.request_in_flight, "double refill request");
        self.request_in_flight = true;
        self.sink.emit(
            Some(self.cluster),
            None,
            EventKind::MasterRefill {
                queue_len: self.queue.len() as u64,
            },
        );
    }

    /// Whether a refill request is currently outstanding. While true, an
    /// empty queue means "wait", not "finished".
    pub fn request_in_flight(&self) -> bool {
        self.request_in_flight
    }

    /// Absorb a grant from the head.
    ///
    /// An empty grant no longer implies exhaustion: it can also mean
    /// "nothing available *right now*" while jobs leased to other clusters
    /// could still fail back into the head pool. Drivers receiving an empty
    /// grant must consult the head (`JobPool::exhausted_for`) and either
    /// call [`MasterPool::mark_exhausted`] or poll again later.
    pub fn on_grant(&mut self, jobs: impl IntoIterator<Item = ChunkId>, stolen: bool) {
        self.request_in_flight = false;
        for chunk in jobs {
            self.queue.push_back(MasterJob { chunk, stolen });
        }
    }

    /// The head confirmed this cluster can never receive another grant.
    pub fn mark_exhausted(&mut self) {
        self.exhausted = true;
    }

    /// Drain every job still queued (granted by the head but never handed
    /// to a slave) — used by a dying master to return its leases.
    pub fn drain(&mut self) -> Vec<MasterJob> {
        self.queue.drain(..).collect()
    }

    /// Hand the next job to a slave.
    pub fn take(&mut self) -> Option<MasterJob> {
        self.queue.pop_front()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(v: &[u32]) -> Vec<ChunkId> {
        v.iter().map(|&i| ChunkId(i)).collect()
    }

    #[test]
    fn refill_triggers_at_low_water() {
        let mut m = MasterPool::new(2);
        assert!(m.should_request(), "empty pool wants jobs");
        m.mark_requested();
        assert!(!m.should_request(), "no double request");
        m.on_grant(ids(&[0, 1, 2, 3]), false);
        assert!(!m.should_request(), "above low water");
        m.take();
        assert!(!m.should_request());
        m.take();
        assert!(m.should_request(), "at low water (len 2)");
    }

    #[test]
    fn empty_grant_allows_repolling_until_marked_exhausted() {
        let mut m = MasterPool::new(1);
        m.mark_requested();
        m.on_grant(ids(&[5]), true);
        m.mark_requested();
        m.on_grant(ids(&[]), false);
        // An empty grant can mean "nothing right now": jobs held elsewhere
        // may fail back, so the pool stays pollable...
        assert!(m.should_request(), "empty grant alone is not exhaustion");
        assert!(!m.finished());
        // ...until the head confirms nothing further can come.
        m.mark_exhausted();
        assert!(!m.should_request(), "exhausted pools never re-request");
        assert!(!m.finished(), "one job still queued");
        let j = m.take().unwrap();
        assert_eq!(j.chunk, ChunkId(5));
        assert!(j.stolen);
        assert!(m.finished());
        assert_eq!(m.take(), None);
    }

    #[test]
    fn drain_returns_undispatched_jobs() {
        let mut m = MasterPool::new(0);
        m.on_grant(ids(&[1, 2]), false);
        m.on_grant(ids(&[9]), true);
        m.take();
        let leases = m.drain();
        assert_eq!(leases.len(), 2);
        assert_eq!(leases[0].chunk, ChunkId(2));
        assert_eq!(leases[1].chunk, ChunkId(9));
        assert!(leases[1].stolen);
        assert!(m.is_empty());
    }

    #[test]
    fn fifo_order_preserved() {
        let mut m = MasterPool::new(0);
        m.on_grant(ids(&[3, 4, 5]), false);
        assert_eq!(m.take().unwrap().chunk, ChunkId(3));
        assert_eq!(m.take().unwrap().chunk, ChunkId(4));
        assert_eq!(m.take().unwrap().chunk, ChunkId(5));
    }

    #[test]
    fn stolen_flag_carried_per_grant() {
        let mut m = MasterPool::new(0);
        m.on_grant(ids(&[0]), false);
        m.on_grant(ids(&[1]), true);
        assert!(!m.take().unwrap().stolen);
        assert!(m.take().unwrap().stolen);
    }

    #[test]
    fn in_flight_state_visible() {
        let mut m = MasterPool::new(0);
        assert!(!m.request_in_flight());
        m.mark_requested();
        assert!(m.request_in_flight());
        m.on_grant(ids(&[1]), false);
        assert!(!m.request_in_flight());
    }
}
