//! Pure scheduling state machines (head job pool, master queue).
//!
//! Shared verbatim between the real threaded runtime and the discrete-event
//! performance simulator, so the schedules the simulator analyses are the
//! schedules the runtime executes.

pub mod master;
pub mod pool;

pub use master::{MasterJob, MasterPool};
pub use pool::{Grant, JobPool, LocationCounters, PoolConfig};
