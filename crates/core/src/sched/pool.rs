//! The head node's job pool and assignment policy (paper §III-B).
//!
//! One job == one chunk. The head grants *batches* of jobs to requesting
//! clusters with three policies from the paper:
//!
//! 1. **Locality first** — while a cluster still has jobs homed at its own
//!    site, it is granted only those.
//! 2. **Consecutive jobs** — local grants are runs of consecutive chunk ids
//!    within one file, so slaves read files sequentially ("an important
//!    optimization in our system ... increases the input utilization").
//! 3. **Contention-minimizing stealing** — once a cluster's local jobs are
//!    exhausted, it is granted *remote* jobs, "chosen from files which the
//!    minimum number of nodes are currently processing".
//!
//! The pool is a pure state machine — no threads, no clocks — so the real
//! runtime and the discrete-event simulator drive the *identical* policy
//! code, which is what makes the simulator's schedules trustworthy.

use crate::obs::{EventKind, SinkHandle};
use cb_storage::layout::{ChunkId, DatasetLayout, FileId, LocationId, Placement};
use std::collections::{BTreeMap, VecDeque};

/// Head-side assignment policy knobs (ablations flip these).
#[derive(Debug, Clone)]
pub struct PoolConfig {
    /// Max jobs per local grant.
    pub local_batch: usize,
    /// Max jobs per stolen (remote) grant. The paper retrieves remote jobs
    /// chunk-by-chunk, so keeping this smaller than `local_batch` mirrors
    /// the finer-grained stealing.
    pub remote_batch: usize,
    /// Whether clusters may process data homed elsewhere at all.
    pub allow_stealing: bool,
    /// `true`: local grants are consecutive runs within one file (paper).
    /// `false` (ablation): grants round-robin across the site's files,
    /// destroying sequential access.
    pub consecutive: bool,
    /// How many times a single job may fail (be returned via
    /// [`JobPool::fail`] or [`JobPool::reclaim`]) before the pool declares
    /// it dead instead of re-enqueueing it. Dead jobs make
    /// [`JobPool::all_done`] unreachable, which the runtime surfaces as a
    /// permanent error.
    pub max_job_failures: u32,
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig {
            local_batch: 8,
            remote_batch: 4,
            allow_stealing: true,
            consecutive: true,
            max_job_failures: 8,
        }
    }
}

/// One grant from the head to a cluster.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Grant {
    /// Jobs granted, in processing order. Empty means "nothing available".
    pub jobs: Vec<ChunkId>,
    /// True if these jobs' data is homed at a different site than the
    /// grantee (the grantee will perform remote retrieval).
    pub stolen: bool,
}

impl Grant {
    pub fn empty() -> Self {
        Grant {
            jobs: Vec::new(),
            stolen: false,
        }
    }

    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }
}

/// Per-location assignment counters (feeds the paper's Table I).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LocationCounters {
    /// Jobs granted whose data was homed at the grantee's own site.
    pub granted_local: u64,
    /// Jobs granted whose data was homed elsewhere ("stolen").
    pub granted_stolen: u64,
    /// Jobs reported complete by this location.
    pub completed: u64,
    /// Jobs this location returned unfinished ([`JobPool::fail`] /
    /// [`JobPool::reclaim`]).
    pub failed: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum JobState {
    Pending,
    Assigned(LocationId),
    /// Completed, remembering *who* completed it: a distributed head must
    /// be able to re-enqueue a peer's completions if that peer dies before
    /// shipping the reduction object they were folded into (see
    /// [`JobPool::forfeit`]).
    Done(LocationId),
    /// Failed more than `max_job_failures` times; will never be granted
    /// again. A pool with dead jobs can never report [`JobPool::all_done`].
    Dead,
}

/// The head node's job pool.
///
/// ```
/// use cloudburst_core::sched::pool::{JobPool, PoolConfig};
/// use cb_storage::organizer::organize_even;
/// use cb_storage::layout::{LocationId, Placement};
///
/// let layout = organize_even(2, 4 * 64, 64, 8).unwrap(); // 2 files × 4 jobs
/// let placement = Placement::split_fraction(2, 0.5, LocationId(0), LocationId(1));
/// let mut pool = JobPool::new(&layout, &placement, PoolConfig::default());
///
/// // Site 0 gets its own file's jobs first, consecutively.
/// let grant = pool.request(LocationId(0));
/// assert!(!grant.stolen);
/// let ids: Vec<u32> = grant.jobs.iter().map(|c| c.0).collect();
/// assert_eq!(ids, vec![0, 1, 2, 3]);
///
/// // Once its local jobs are gone, further grants steal remote data.
/// let stolen = pool.request(LocationId(0));
/// assert!(stolen.stolen);
/// ```
#[derive(Debug, Clone)]
pub struct JobPool {
    cfg: PoolConfig,
    placement: Placement,
    /// Pending jobs per file, front = lowest (next consecutive) chunk id.
    pending: Vec<VecDeque<ChunkId>>,
    /// Outstanding (assigned, not yet completed) job count per file — the
    /// "number of nodes currently processing" contention proxy.
    readers: Vec<usize>,
    /// Per-job lifecycle.
    state: Vec<JobState>,
    /// Owning file of each chunk.
    chunk_file: Vec<FileId>,
    /// Jobs not yet granted.
    n_pending: usize,
    /// Jobs granted but not completed.
    n_outstanding: usize,
    /// Jobs declared dead after exceeding `max_job_failures`.
    n_dead: usize,
    /// Failure count per job (survives re-enqueueing).
    failures: Vec<u32>,
    /// Total re-enqueue events ([`fail`](JobPool::fail) and
    /// [`reclaim`](JobPool::reclaim)), feeding the run's recovery stats.
    n_reenqueued: u64,
    counters: BTreeMap<LocationId, LocationCounters>,
    /// Round-robin cursor per location for the non-consecutive ablation.
    rr_cursor: BTreeMap<LocationId, usize>,
    /// Observability sink (disabled by default; see [`JobPool::with_sink`]).
    sink: SinkHandle,
    /// Maps a grantee's location to its cluster index for event tagging.
    cluster_of: BTreeMap<LocationId, u32>,
}

impl JobPool {
    /// Build the pool from the dataset index and placement. Mirrors "when
    /// the head node starts, it reads the index file in order to generate
    /// the job pool; each job corresponds to a chunk".
    pub fn new(layout: &DatasetLayout, placement: &Placement, cfg: PoolConfig) -> Self {
        assert_eq!(
            placement.n_files(),
            layout.files.len(),
            "placement/layout file count mismatch"
        );
        let mut pending: Vec<VecDeque<ChunkId>> = vec![VecDeque::new(); layout.files.len()];
        let mut chunk_file = Vec::with_capacity(layout.chunks.len());
        for c in &layout.chunks {
            pending[c.file.0 as usize].push_back(c.id);
            chunk_file.push(c.file);
        }
        let n = layout.chunks.len();
        JobPool {
            cfg,
            placement: placement.clone(),
            pending,
            readers: vec![0; layout.files.len()],
            state: vec![JobState::Pending; n],
            chunk_file,
            n_pending: n,
            n_outstanding: 0,
            n_dead: 0,
            failures: vec![0; n],
            n_reenqueued: 0,
            counters: BTreeMap::new(),
            rr_cursor: BTreeMap::new(),
            sink: SinkHandle::disabled(),
            cluster_of: BTreeMap::new(),
        }
    }

    /// Emit scheduling events ([`EventKind::JobAssigned`],
    /// [`EventKind::Steal`], [`EventKind::LeaseReleased`]) to `sink`.
    /// `cluster_of` maps each grantee location to its cluster index so the
    /// events carry cluster ids (the pool itself only sees locations).
    pub fn with_sink(mut self, sink: SinkHandle, cluster_of: BTreeMap<LocationId, u32>) -> Self {
        self.sink = sink;
        self.cluster_of = cluster_of;
        self
    }

    fn cluster_id(&self, loc: LocationId) -> Option<u32> {
        self.cluster_of.get(&loc).copied()
    }

    /// Jobs not yet granted.
    pub fn pending(&self) -> usize {
        self.n_pending
    }

    /// Jobs granted but not yet completed.
    pub fn outstanding(&self) -> usize {
        self.n_outstanding
    }

    /// True when every job has been completed. Dead jobs count against
    /// this: a pool that lost a job permanently is never "done".
    pub fn all_done(&self) -> bool {
        self.n_pending == 0 && self.n_outstanding == 0 && self.n_dead == 0
    }

    /// Jobs that exceeded `max_job_failures` and were abandoned.
    pub fn dead_jobs(&self) -> Vec<ChunkId> {
        self.state
            .iter()
            .enumerate()
            .filter(|(_, s)| **s == JobState::Dead)
            .map(|(i, _)| ChunkId(i as u32))
            .collect()
    }

    /// Total re-enqueue events (failed and reclaimed leases) so far.
    pub fn reenqueued(&self) -> u64 {
        self.n_reenqueued
    }

    /// True when `loc` can never receive another grant: every job it could
    /// be offered is completed or dead. While jobs it could run are merely
    /// *outstanding* at some cluster, this stays `false` — a failure could
    /// return them to the pool, so masters must keep polling rather than
    /// shut down.
    pub fn exhausted_for(&self, loc: LocationId) -> bool {
        if self.cfg.allow_stealing {
            self.n_pending == 0 && self.n_outstanding == 0
        } else {
            // Without stealing only jobs homed at `loc` matter.
            self.placement
                .files_at(loc)
                .all(|f| self.pending[f.0 as usize].is_empty() && self.readers[f.0 as usize] == 0)
        }
    }

    /// Per-location counters (Table I inputs).
    pub fn counters(&self, loc: LocationId) -> LocationCounters {
        self.counters.get(&loc).copied().unwrap_or_default()
    }

    /// Handle a job request from the master at `loc`.
    ///
    /// Returns an empty grant when nothing can be given to this cluster
    /// *right now*: either the pool is drained, or stealing is disabled and
    /// the site's own jobs are gone. (An empty grant while
    /// `pending() > 0 && allow_stealing` cannot happen.)
    pub fn request(&mut self, loc: LocationId) -> Grant {
        // 1. Local jobs first.
        if let Some(file) = self.pick_local_file(loc) {
            let jobs = self.take_from(file, self.cfg.local_batch, loc);
            let entry = self.counters.entry(loc).or_default();
            entry.granted_local += jobs.len() as u64;
            if self.sink.is_enabled() {
                let cluster = self.cluster_id(loc);
                for j in &jobs {
                    self.sink.emit(
                        cluster,
                        None,
                        EventKind::JobAssigned {
                            chunk: j.0 as u64,
                            stolen: false,
                        },
                    );
                }
            }
            return Grant {
                jobs,
                stolen: false,
            };
        }
        // 2. Steal remote jobs from the least-contended file.
        if self.cfg.allow_stealing {
            if let Some(file) = self.pick_remote_file() {
                let jobs = self.take_from(file, self.cfg.remote_batch, loc);
                let entry = self.counters.entry(loc).or_default();
                entry.granted_stolen += jobs.len() as u64;
                if self.sink.is_enabled() {
                    let cluster = self.cluster_id(loc);
                    for j in &jobs {
                        self.sink.emit(
                            cluster,
                            None,
                            EventKind::JobAssigned {
                                chunk: j.0 as u64,
                                stolen: true,
                            },
                        );
                        self.sink
                            .emit(cluster, None, EventKind::Steal { chunk: j.0 as u64 });
                    }
                }
                return Grant { jobs, stolen: true };
            }
        }
        Grant::empty()
    }

    /// Mark `job` completed by `loc`.
    pub fn complete(&mut self, loc: LocationId, job: ChunkId) {
        let idx = job.0 as usize;
        match self.state[idx] {
            JobState::Assigned(holder) => {
                assert_eq!(
                    holder, loc,
                    "{job} completed by {loc} but was assigned to {holder}"
                );
            }
            s => panic!("{job} completed while in state {s:?}"),
        }
        self.state[idx] = JobState::Done(loc);
        let f = self.chunk_file[idx].0 as usize;
        self.readers[f] -= 1;
        self.n_outstanding -= 1;
        self.counters.entry(loc).or_default().completed += 1;
    }

    /// Return `job` — assigned to `loc` but not finished — to the pool.
    ///
    /// The job goes back to the *front* of its file's queue so the next
    /// grant of that file re-starts at the lowest chunk id, preserving the
    /// sequential-read property the consecutive-grant policy relies on.
    /// After `max_job_failures` such returns the job is declared dead
    /// instead (see [`JobPool::dead_jobs`]).
    pub fn fail(&mut self, loc: LocationId, job: ChunkId) {
        self.return_lease(loc, job, true, "failed");
    }

    /// Return `job` — leased by `loc` but never *attempted* — to the pool
    /// without charging its failure budget.
    ///
    /// Used for in-flight prefetched leases reclaimed from a retiring
    /// slave: nothing is wrong with the chunk, so an innocent job must not
    /// inch toward [`JobPool::dead_jobs`] just because its holders kept
    /// dying. Still counts as a re-enqueue event.
    pub fn release(&mut self, loc: LocationId, job: ChunkId) {
        self.return_lease(loc, job, false, "released");
    }

    /// True iff `job` is in range and currently assigned to `loc`.
    ///
    /// The panicking [`complete`](JobPool::complete)/[`fail`](JobPool::fail)/
    /// [`release`](JobPool::release) encode *in-process* invariants: a thread
    /// resolving a job it does not hold is a bug in this binary. A networked
    /// head, however, is driven by frames from other processes — a peer
    /// declared lost (its leases forfeited, possibly re-granted elsewhere)
    /// may still deliver late or bogus resolutions, and those must not be
    /// able to crash or corrupt the run. The `try_` variants below validate
    /// with this predicate and report rejection instead of panicking.
    pub fn holds(&self, loc: LocationId, job: ChunkId) -> bool {
        self.state.get(job.0 as usize) == Some(&JobState::Assigned(loc))
    }

    /// Tolerant [`complete`](JobPool::complete) for untrusted remote input:
    /// returns `false` (and changes nothing) unless [`holds`](JobPool::holds).
    pub fn try_complete(&mut self, loc: LocationId, job: ChunkId) -> bool {
        self.holds(loc, job) && {
            self.complete(loc, job);
            true
        }
    }

    /// Tolerant [`fail`](JobPool::fail); see [`try_complete`](JobPool::try_complete).
    pub fn try_fail(&mut self, loc: LocationId, job: ChunkId) -> bool {
        self.holds(loc, job) && {
            self.fail(loc, job);
            true
        }
    }

    /// Tolerant [`release`](JobPool::release); see [`try_complete`](JobPool::try_complete).
    pub fn try_release(&mut self, loc: LocationId, job: ChunkId) -> bool {
        self.holds(loc, job) && {
            self.release(loc, job);
            true
        }
    }

    fn return_lease(&mut self, loc: LocationId, job: ChunkId, charge_budget: bool, verb: &str) {
        let idx = job.0 as usize;
        match self.state[idx] {
            JobState::Assigned(holder) => {
                assert_eq!(
                    holder, loc,
                    "{job} {verb} by {loc} but was assigned to {holder}"
                );
            }
            s => panic!("{job} {verb} while in state {s:?}"),
        }
        let f = self.chunk_file[idx].0 as usize;
        self.readers[f] -= 1;
        self.n_outstanding -= 1;
        self.counters.entry(loc).or_default().failed += 1;
        if charge_budget {
            self.failures[idx] += 1;
            if self.failures[idx] > self.cfg.max_job_failures {
                self.state[idx] = JobState::Dead;
                self.n_dead += 1;
                return;
            }
        }
        self.state[idx] = JobState::Pending;
        // Front-insert, keeping the queue sorted: failed jobs are the
        // lowest ids of their file still pending (they were granted from
        // the front), so pushing in front keeps consecutive order.
        let q = &mut self.pending[f];
        let pos = q.partition_point(|c| c.0 < job.0);
        q.insert(pos, job);
        self.n_pending += 1;
        self.n_reenqueued += 1;
        // Emitted exactly where `n_reenqueued` increments (a job that dies
        // instead of re-enqueueing emits nothing), so the event count equals
        // `RecoveryStats::jobs_reenqueued`.
        self.sink.emit(
            self.cluster_id(loc),
            None,
            EventKind::LeaseReleased {
                chunk: job.0 as u64,
                charged: charge_budget,
            },
        );
    }

    /// Return every lease `loc` currently holds — the cluster (or its
    /// master) is gone. Returns the jobs that went back to the pool; jobs
    /// that exceeded their failure budget die instead and are not listed.
    pub fn reclaim(&mut self, loc: LocationId) -> Vec<ChunkId> {
        let held: Vec<ChunkId> = self
            .state
            .iter()
            .enumerate()
            .filter(|(_, s)| **s == JobState::Assigned(loc))
            .map(|(i, _)| ChunkId(i as u32))
            .collect();
        let mut returned = Vec::with_capacity(held.len());
        for job in held {
            self.fail(loc, job);
            if self.state[job.0 as usize] == JobState::Pending {
                returned.push(job);
            }
        }
        returned
    }

    /// Forget everything `loc` contributed that the head has not banked:
    /// its outstanding leases are failed back (as [`JobPool::reclaim`]),
    /// and the jobs it *completed* are re-enqueued uncharged — the results
    /// of those completions lived only in the peer's reduction object,
    /// which died with it. Only call this for a peer that never shipped
    /// its robj; once shipped, its completions are safe. Returns the
    /// number of jobs returned to the pending queues.
    pub fn forfeit(&mut self, loc: LocationId) -> usize {
        let reclaimed = self.reclaim(loc).len();
        let done: Vec<ChunkId> = self
            .state
            .iter()
            .enumerate()
            .filter(|(_, s)| **s == JobState::Done(loc))
            .map(|(i, _)| ChunkId(i as u32))
            .collect();
        for &job in &done {
            let idx = job.0 as usize;
            self.state[idx] = JobState::Pending;
            let f = self.chunk_file[idx].0 as usize;
            let q = &mut self.pending[f];
            let pos = q.partition_point(|c| c.0 < job.0);
            q.insert(pos, job);
            self.n_pending += 1;
            self.n_reenqueued += 1;
            // The completion is un-banked: the counter no longer reflects a
            // result the run will ever see.
            self.counters.entry(loc).or_default().completed -= 1;
            self.sink.emit(
                self.cluster_id(loc),
                None,
                EventKind::LeaseReleased {
                    chunk: job.0 as u64,
                    charged: false,
                },
            );
        }
        reclaimed + done.len()
    }

    /// Choose a file homed at `loc` that still has pending jobs.
    fn pick_local_file(&mut self, loc: LocationId) -> Option<FileId> {
        let candidates: Vec<FileId> = self
            .placement
            .files_at(loc)
            .filter(|f| !self.pending[f.0 as usize].is_empty())
            .collect();
        if candidates.is_empty() {
            return None;
        }
        if self.cfg.consecutive {
            // Prefer a file already being read at this site (continue the
            // sequential scan), else the lowest id.
            candidates
                .iter()
                .copied()
                .find(|f| self.readers[f.0 as usize] > 0)
                .or_else(|| candidates.first().copied())
        } else {
            // Ablation: rotate across the site's files.
            let cur = self.rr_cursor.entry(loc).or_insert(0);
            let pick = candidates[*cur % candidates.len()];
            *cur = cur.wrapping_add(1);
            Some(pick)
        }
    }

    /// The paper's stealing heuristic: among files with pending jobs, pick
    /// the one with the fewest current readers (ties: lowest file id).
    fn pick_remote_file(&self) -> Option<FileId> {
        (0..self.pending.len())
            .filter(|&f| !self.pending[f].is_empty())
            .min_by_key(|&f| (self.readers[f], f))
            .map(|f| FileId(f as u32))
    }

    /// Pop up to `max` consecutive jobs from the front of `file`'s queue.
    fn take_from(&mut self, file: FileId, max: usize, loc: LocationId) -> Vec<ChunkId> {
        let q = &mut self.pending[file.0 as usize];
        let n = max.min(q.len()).max(1).min(q.len());
        let mut jobs = Vec::with_capacity(n);
        for _ in 0..n {
            let id = q.pop_front().expect("picked file had pending jobs");
            self.state[id.0 as usize] = JobState::Assigned(loc);
            jobs.push(id);
        }
        self.readers[file.0 as usize] += jobs.len();
        self.n_pending -= jobs.len();
        self.n_outstanding += jobs.len();
        jobs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cb_storage::organizer::organize_even;

    const LOCAL: LocationId = LocationId(0);
    const CLOUD: LocationId = LocationId(1);

    /// 4 files × 4 chunks, first half local, second half cloud.
    fn pool(cfg: PoolConfig) -> JobPool {
        let layout = organize_even(4, 4 * 64, 64, 8).unwrap();
        let placement = Placement::split_fraction(4, 0.5, LOCAL, CLOUD);
        JobPool::new(&layout, &placement, cfg)
    }

    #[test]
    fn grants_are_consecutive_within_a_file() {
        let mut p = pool(PoolConfig {
            local_batch: 3,
            ..Default::default()
        });
        let g = p.request(LOCAL);
        assert!(!g.stolen);
        let ids: Vec<u32> = g.jobs.iter().map(|c| c.0).collect();
        assert_eq!(ids, vec![0, 1, 2]);
        // Next local grant continues the same file (reader affinity).
        let g2 = p.request(LOCAL);
        assert_eq!(g2.jobs.iter().map(|c| c.0).collect::<Vec<_>>(), vec![3]);
    }

    #[test]
    fn local_jobs_before_stealing() {
        let mut p = pool(PoolConfig {
            local_batch: 16,
            remote_batch: 4,
            ..Default::default()
        });
        // Local cluster drains both its files before stealing from cloud's.
        let g1 = p.request(LOCAL);
        assert!(!g1.stolen);
        let g2 = p.request(LOCAL);
        assert!(!g2.stolen);
        assert_eq!(g1.jobs.len() + g2.jobs.len(), 8);
        let g3 = p.request(LOCAL);
        assert!(g3.stolen, "after local exhaustion, grants are stolen");
    }

    #[test]
    fn stealing_picks_least_contended_file() {
        let mut p = pool(PoolConfig {
            local_batch: 16,
            remote_batch: 2,
            ..Default::default()
        });
        // Cloud starts reading its own file 2.
        let g = p.request(CLOUD);
        assert_eq!(g.jobs[0].0, 8); // file 2 chunks are ids 8..12
                                    // Local drains its files quickly.
        let _ = p.request(LOCAL);
        let _ = p.request(LOCAL);
        // Now local steals: file 2 has 2 readers... (outstanding 2 jobs),
        // file 3 has none -> steal from file 3.
        let s = p.request(LOCAL);
        assert!(s.stolen);
        assert!(
            s.jobs.iter().all(|c| (12..16).contains(&c.0)),
            "stole from the un-read file: {:?}",
            s.jobs
        );
    }

    #[test]
    fn stealing_disabled_returns_empty() {
        let mut p = pool(PoolConfig {
            local_batch: 16,
            allow_stealing: false,
            ..Default::default()
        });
        let _ = p.request(LOCAL);
        let _ = p.request(LOCAL);
        let g = p.request(LOCAL);
        assert!(g.is_empty());
        assert_eq!(p.pending(), 8, "cloud's jobs remain");
    }

    #[test]
    fn counters_track_local_and_stolen() {
        let mut p = pool(PoolConfig {
            local_batch: 8,
            remote_batch: 8,
            ..Default::default()
        });
        // Grants are per-file, so draining all 16 jobs takes four requests:
        // two local (files 0 and 1), then two stolen (files 2 and 3).
        let mut granted = Vec::new();
        for expect_stolen in [false, false, true, true] {
            let g = p.request(LOCAL);
            assert_eq!(g.stolen, expect_stolen);
            assert_eq!(g.jobs.len(), 4);
            granted.extend(g.jobs);
        }
        for j in &granted {
            p.complete(LOCAL, *j);
        }
        let c = p.counters(LOCAL);
        assert_eq!(c.granted_local, 8);
        assert_eq!(c.granted_stolen, 8);
        assert_eq!(c.completed, 16);
        assert!(p.all_done());
    }

    #[test]
    fn every_job_granted_exactly_once() {
        let mut p = pool(PoolConfig::default());
        let mut seen = std::collections::BTreeSet::new();
        loop {
            let g = if seen.len() % 2 == 0 {
                p.request(LOCAL)
            } else {
                p.request(CLOUD)
            };
            if g.is_empty() {
                break;
            }
            for j in g.jobs {
                assert!(seen.insert(j), "job {j} granted twice");
            }
        }
        assert_eq!(seen.len(), 16);
        assert_eq!(p.pending(), 0);
    }

    #[test]
    #[should_panic(expected = "completed by")]
    fn completion_by_wrong_cluster_panics() {
        let mut p = pool(PoolConfig::default());
        let g = p.request(LOCAL);
        p.complete(CLOUD, g.jobs[0]);
    }

    #[test]
    #[should_panic(expected = "state")]
    fn double_completion_panics() {
        let mut p = pool(PoolConfig::default());
        let g = p.request(LOCAL);
        p.complete(LOCAL, g.jobs[0]);
        p.complete(LOCAL, g.jobs[0]);
    }

    #[test]
    fn fail_reenqueues_at_front_preserving_order() {
        let mut p = pool(PoolConfig {
            local_batch: 3,
            ..Default::default()
        });
        let g = p.request(LOCAL);
        assert_eq!(g.jobs.iter().map(|c| c.0).collect::<Vec<_>>(), [0, 1, 2]);
        // Chunk 1 fails; the next grant of this file must restart at 1
        // before continuing to 3, keeping the scan sequential.
        p.complete(LOCAL, ChunkId(0));
        p.fail(LOCAL, ChunkId(1));
        p.complete(LOCAL, ChunkId(2));
        let g2 = p.request(LOCAL);
        assert_eq!(g2.jobs.iter().map(|c| c.0).collect::<Vec<_>>(), [1, 3]);
        assert_eq!(p.reenqueued(), 1);
        assert_eq!(p.counters(LOCAL).failed, 1);
    }

    #[test]
    fn failed_job_can_be_completed_by_another_cluster() {
        let mut p = pool(PoolConfig {
            local_batch: 16,
            remote_batch: 16,
            ..Default::default()
        });
        let g = p.request(LOCAL);
        for j in &g.jobs {
            p.fail(LOCAL, *j);
        }
        // The cloud cluster steals the returned jobs and finishes them.
        loop {
            let g = p.request(CLOUD);
            if g.is_empty() {
                break;
            }
            for j in g.jobs {
                p.complete(CLOUD, j);
            }
        }
        assert!(p.all_done());
    }

    #[test]
    fn reclaim_returns_every_lease_of_a_location() {
        let mut p = pool(PoolConfig {
            local_batch: 4,
            ..Default::default()
        });
        let g1 = p.request(LOCAL);
        let g2 = p.request(CLOUD);
        p.complete(LOCAL, g1.jobs[0]);
        let returned = p.reclaim(LOCAL);
        assert_eq!(returned.len(), g1.jobs.len() - 1);
        assert_eq!(p.outstanding(), g2.jobs.len(), "cloud leases untouched");
        // Reclaimed jobs are grantable again.
        assert_eq!(p.pending(), 16 - 1 - g2.jobs.len());
        assert!(p.reclaim(LOCAL).is_empty(), "idempotent once drained");
    }

    #[test]
    fn release_reenqueues_without_charging_failure_budget() {
        let mut p = pool(PoolConfig {
            local_batch: 1,
            max_job_failures: 2,
            ..Default::default()
        });
        // Far more releases than the budget allows failures: the job stays
        // alive — a lease returned unattempted says nothing about the chunk.
        for _ in 0..10 {
            let g = p.request(LOCAL);
            assert_eq!(g.jobs[0], ChunkId(0));
            p.release(LOCAL, g.jobs[0]);
        }
        assert!(p.dead_jobs().is_empty(), "released jobs never die");
        assert_eq!(p.reenqueued(), 10);
        let g = p.request(LOCAL);
        assert_eq!(g.jobs[0], ChunkId(0), "released job grantable again");
        p.complete(LOCAL, g.jobs[0]);
    }

    #[test]
    fn job_dies_after_exceeding_failure_budget() {
        let mut p = pool(PoolConfig {
            local_batch: 1,
            max_job_failures: 2,
            ..Default::default()
        });
        for _ in 0..3 {
            let g = p.request(LOCAL);
            assert_eq!(g.jobs[0], ChunkId(0));
            p.fail(LOCAL, g.jobs[0]);
        }
        assert_eq!(p.dead_jobs(), vec![ChunkId(0)]);
        // The dead job is never granted again and blocks completion.
        let g = p.request(LOCAL);
        assert_ne!(g.jobs[0], ChunkId(0));
        let mut remaining: Vec<ChunkId> = g.jobs.clone();
        loop {
            let g = p.request(LOCAL);
            if g.is_empty() {
                break;
            }
            remaining.extend(g.jobs);
        }
        for j in remaining {
            p.complete(LOCAL, j);
        }
        assert!(!p.all_done(), "a dead job keeps the pool incomplete");
        assert!(p.exhausted_for(LOCAL), "but no further grants will come");
    }

    #[test]
    fn exhausted_for_waits_on_outstanding_jobs() {
        let mut p = pool(PoolConfig {
            local_batch: 16,
            remote_batch: 16,
            ..Default::default()
        });
        let mut local_jobs = Vec::new();
        loop {
            let g = p.request(LOCAL);
            if g.is_empty() {
                break;
            }
            local_jobs.extend(g.jobs);
        }
        assert_eq!(p.pending(), 0);
        assert!(
            !p.exhausted_for(CLOUD),
            "outstanding jobs could fail back — cloud must keep polling"
        );
        let lost: Vec<ChunkId> = local_jobs.drain(8..).collect();
        for j in local_jobs {
            p.complete(LOCAL, j);
        }
        for j in lost {
            p.fail(LOCAL, j);
        }
        assert!(!p.exhausted_for(CLOUD), "failed jobs are pending again");
        loop {
            let g = p.request(CLOUD);
            if g.is_empty() {
                break;
            }
            for j in g.jobs {
                p.complete(CLOUD, j);
            }
        }
        assert!(p.exhausted_for(CLOUD));
        assert!(p.all_done());
    }

    #[test]
    fn forfeit_reenqueues_leases_and_completions() {
        let mut p = pool(PoolConfig {
            local_batch: 4,
            ..Default::default()
        });
        let g = p.request(LOCAL);
        p.complete(LOCAL, g.jobs[0]);
        p.complete(LOCAL, g.jobs[1]);
        // LOCAL dies before shipping: its 2 leases AND its 2 completions
        // all go back to pending.
        let returned = p.forfeit(LOCAL);
        assert_eq!(returned, 4);
        assert_eq!(p.pending(), 16);
        assert_eq!(p.outstanding(), 0);
        assert_eq!(p.counters(LOCAL).completed, 0, "completions un-banked");
        assert_eq!(p.reenqueued(), 4);
        assert!(!p.all_done());
    }

    #[test]
    fn forfeited_jobs_completable_elsewhere() {
        let mut p = pool(PoolConfig {
            local_batch: 16,
            remote_batch: 16,
            ..Default::default()
        });
        loop {
            let g = p.request(LOCAL);
            if g.is_empty() {
                break;
            }
            for j in g.jobs {
                p.complete(LOCAL, j);
            }
        }
        assert!(p.all_done());
        let returned = p.forfeit(LOCAL);
        assert_eq!(returned, 16);
        // The surviving cluster re-runs everything; the pool converges.
        loop {
            let g = p.request(CLOUD);
            if g.is_empty() {
                break;
            }
            for j in g.jobs {
                p.complete(CLOUD, j);
            }
        }
        assert!(p.all_done());
        assert_eq!(p.counters(CLOUD).completed, 16);
    }

    #[test]
    fn forfeit_of_uninvolved_location_is_noop() {
        let mut p = pool(PoolConfig::default());
        let g = p.request(LOCAL);
        assert_eq!(p.forfeit(CLOUD), 0);
        assert_eq!(p.outstanding(), g.jobs.len(), "LOCAL leases untouched");
        assert_eq!(p.reenqueued(), 0);
    }

    #[test]
    fn try_resolutions_reject_non_holders_without_panicking() {
        let mut p = pool(PoolConfig::default());
        let g = p.request(LOCAL);
        let job = g.jobs[0];
        // Wrong holder, out-of-range id, un-granted job: all rejected, no
        // state change — the inputs a networked head gets from a lost or
        // hostile peer.
        assert!(!p.try_complete(CLOUD, job));
        assert!(!p.try_fail(CLOUD, job));
        assert!(!p.try_release(CLOUD, job));
        assert!(!p.try_complete(LOCAL, ChunkId(u32::MAX)));
        assert!(!p.try_complete(LOCAL, ChunkId(15)), "pending, not assigned");
        assert_eq!(p.counters(CLOUD).completed, 0);
        assert_eq!(p.counters(CLOUD).failed, 0);
        assert_eq!(p.outstanding(), g.jobs.len());
        // The real holder still resolves normally — exactly once.
        assert!(p.try_complete(LOCAL, job));
        assert!(!p.try_complete(LOCAL, job), "double resolve rejected");
        assert_eq!(p.counters(LOCAL).completed, 1);
    }

    #[test]
    #[should_panic(expected = "failed by")]
    fn fail_by_wrong_cluster_panics() {
        let mut p = pool(PoolConfig::default());
        let g = p.request(LOCAL);
        p.fail(CLOUD, g.jobs[0]);
    }

    #[test]
    fn non_consecutive_ablation_rotates_files() {
        let mut p = pool(PoolConfig {
            local_batch: 1,
            consecutive: false,
            ..Default::default()
        });
        let f1 = p.request(LOCAL).jobs[0].0 / 4;
        let f2 = p.request(LOCAL).jobs[0].0 / 4;
        assert_ne!(f1, f2, "round-robin should alternate files");
    }

    #[test]
    fn empty_when_drained() {
        let mut p = pool(PoolConfig {
            local_batch: 100,
            remote_batch: 100,
            ..Default::default()
        });
        let mut all = vec![];
        loop {
            let g = p.request(LOCAL);
            if g.is_empty() {
                break;
            }
            all.extend(g.jobs);
        }
        assert_eq!(all.len(), 16);
        assert!(p.request(CLOUD).is_empty());
        assert!(!p.all_done(), "outstanding jobs not yet completed");
        for j in all {
            p.complete(LOCAL, j);
        }
        assert!(p.all_done());
    }
}
