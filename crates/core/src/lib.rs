//! # cloudburst-core — data-intensive computing with cloud bursting
//!
//! A Rust implementation of the middleware described in *"A Framework for
//! Data-Intensive Computing with Cloud Bursting"* (Bicer, Chiu, Agrawal,
//! IEEE CLUSTER 2011): Map-Reduce–style processing of a dataset split
//! between a local cluster and cloud storage, using compute on both sides,
//! with transparent remote retrieval and pooling-based load balancing.
//!
//! * [`api`] — the **generalized reduction** programming model: a
//!   [`api::ReductionObject`] folded in place by [`api::GRApp::local_reduce`]
//!   (no shuffle, no intermediate pairs), merged across workers and clusters.
//! * [`combine`] — the shipped combiner library (aggregation, concatenation,
//!   top-k, keyed sums, ...).
//! * [`sched`] — the head's job pool with locality-first consecutive grants
//!   and contention-minimizing work stealing, plus the master-side queue.
//! * [`runtime`] — the real multi-threaded head/master/slave execution
//!   engine over a [`deploy::Deployment`].
//! * [`report`] — the measurement schema (processing / retrieval / sync per
//!   cluster; job and byte counters) matching the paper's figures.
//!
//! ## Quick example
//!
//! See `examples/quickstart.rs` in the repository for a complete program;
//! the short of it:
//!
//! ```
//! use cloudburst_core::api::{GRApp, ReductionObject};
//! use cloudburst_core::combine::Counter;
//! use cb_storage::layout::ChunkMeta;
//!
//! /// Count bytes that equal 0x2A.
//! struct CountStars;
//! impl GRApp for CountStars {
//!     type Unit = u8;
//!     type RObj = Counter;
//!     type Params = ();
//!     fn decode_chunk(&self, _m: &ChunkMeta, bytes: &[u8]) -> Vec<u8> { bytes.to_vec() }
//!     fn init(&self, _: &()) -> Counter { Counter(0) }
//!     fn local_reduce(&self, _: &(), robj: &mut Counter, unit: &u8) {
//!         if *unit == 0x2A { robj.0 += 1; }
//!     }
//! }
//! ```

#![deny(unsafe_code)]

pub mod api;
pub mod combine;
pub mod config;
pub mod deploy;
pub mod iterate;
pub mod obs;
pub mod report;
pub mod runtime;
pub mod sched;

pub use api::{run_sequential, GRApp, ReductionObject};
pub use config::RuntimeConfig;
pub use deploy::{ClusterSpec, DataFabric, Deployment};
pub use iterate::{run_iterative, IterativeOutcome, Step};
pub use obs::{EventKind, EventRecord, EventSink, RecordingSink, SinkHandle};
pub use report::{ClusterBreakdown, RunReport};
pub use runtime::{
    run, run_cluster, ClusterOutcome, HeadPort, Resolution, RunOutcome, RuntimeError, SlaveStats,
};
