//! The Generalized Reduction programming interface (paper §III-A, Fig. 1).
//!
//! Unlike Map-Reduce — even with a Combine function — the generalized
//! reduction model never materializes intermediate `(key, value)` pairs:
//! each data element is processed and folded *immediately* into a
//! **reduction object** (`proc(e)` in the paper's figure). After all
//! elements are consumed, per-worker reduction objects are merged pairwise
//! in a **global reduction**. The model trades generality (the fold must be
//! order-insensitive) for the absence of shuffle, sort, grouping, and
//! intermediate memory — which is precisely what makes it suitable for
//! cloud bursting, where inter-cluster traffic is the scarce resource.
//!
//! An application supplies three things (paper §III-A):
//!
//! 1. a **Reduction Object** — any type implementing [`ReductionObject`];
//! 2. a **Local Reduction** — [`GRApp::local_reduce`], folding one data unit
//!    into the object; the result must not depend on unit order;
//! 3. a **Global Reduction** — [`ReductionObject::merge`], combining two
//!    objects; shipped combiners live in [`crate::combine`].

use cb_storage::layout::ChunkMeta;

/// A mergeable accumulator — the *reduction object* of the paper.
///
/// # Contract
///
/// `merge` must be **commutative and associative** up to the application's
/// notion of equivalence: for the framework to be free to process chunks in
/// any order on any node, `a ⊕ b == b ⊕ a` and `(a ⊕ b) ⊕ c == a ⊕ (b ⊕ c)`.
/// The shipped combiners are property-tested against this contract; user
/// implementations should be too.
pub trait ReductionObject: Send + 'static {
    /// Fold `other` into `self` (the global-reduction combine step).
    fn merge(&mut self, other: Self);

    /// Approximate wire size of this object in bytes.
    ///
    /// The runtime uses this to model (and the simulator to charge) the
    /// inter-cluster transfer of reduction objects during global reduction —
    /// the paper's pagerank experiments show this matters enormously when
    /// the object is hundreds of megabytes.
    fn size_bytes(&self) -> usize;
}

/// A generalized-reduction application.
///
/// `Params` carries read-only per-pass state broadcast to every worker
/// (e.g. current k-means centroids, the query point set for k-NN, the rank
/// vector of the previous PageRank iteration). Iterative algorithms run the
/// framework once per pass with updated `Params`.
pub trait GRApp: Send + Sync + 'static {
    /// The smallest atomically-processable element (paper: "data unit").
    type Unit: Send;
    /// The reduction object type.
    type RObj: ReductionObject;
    /// Read-only broadcast state for one pass.
    type Params: Send + Sync;

    /// Decode a chunk's raw bytes into data units.
    ///
    /// `meta.units` tells the expected count; implementations should
    /// assert/validate it to catch index corruption early.
    fn decode_chunk(&self, meta: &ChunkMeta, bytes: &[u8]) -> Vec<Self::Unit>;

    /// A fresh (identity) reduction object.
    fn init(&self, params: &Self::Params) -> Self::RObj;

    /// Fold one unit into the reduction object. Must be order-insensitive
    /// across units (see [`ReductionObject`] contract).
    fn local_reduce(&self, params: &Self::Params, robj: &mut Self::RObj, unit: &Self::Unit);
}

// --- Composition: tuples and vectors of reduction objects are reduction
// --- objects, merged component-wise. Lets an application accumulate
// --- several independent statistics in one pass without a wrapper type.

impl<A: ReductionObject, B: ReductionObject> ReductionObject for (A, B) {
    fn merge(&mut self, other: Self) {
        self.0.merge(other.0);
        self.1.merge(other.1);
    }
    fn size_bytes(&self) -> usize {
        self.0.size_bytes() + self.1.size_bytes()
    }
}

impl<A: ReductionObject, B: ReductionObject, C: ReductionObject> ReductionObject for (A, B, C) {
    fn merge(&mut self, other: Self) {
        self.0.merge(other.0);
        self.1.merge(other.1);
        self.2.merge(other.2);
    }
    fn size_bytes(&self) -> usize {
        self.0.size_bytes() + self.1.size_bytes() + self.2.size_bytes()
    }
}

/// Slot-wise merge; both sides must have the same length (same number of
/// logical slots on every worker).
impl<R: ReductionObject> ReductionObject for Vec<R> {
    fn merge(&mut self, other: Self) {
        assert_eq!(
            self.len(),
            other.len(),
            "merging Vec<RObj> of different lengths"
        );
        for (a, b) in self.iter_mut().zip(other) {
            a.merge(b);
        }
    }
    fn size_bytes(&self) -> usize {
        self.iter().map(|r| r.size_bytes()).sum()
    }
}

/// Process a whole decoded chunk sequentially — the reference semantics any
/// distributed schedule must reproduce. Exposed for tests, benchmarks, and
/// the sequential baselines.
pub fn reduce_units<A: GRApp>(app: &A, params: &A::Params, robj: &mut A::RObj, units: &[A::Unit]) {
    for u in units {
        app.local_reduce(params, robj, u);
    }
}

/// Run an app over an in-memory corpus on a single thread: decode every
/// chunk, fold every unit, return the final object. This is the oracle the
/// integration tests compare every distributed configuration against.
pub fn run_sequential<A: GRApp>(
    app: &A,
    params: &A::Params,
    chunks: impl IntoIterator<Item = (ChunkMeta, Vec<u8>)>,
) -> A::RObj {
    let mut robj = app.init(params);
    for (meta, bytes) in chunks {
        let units = app.decode_chunk(&meta, &bytes);
        reduce_units(app, params, &mut robj, &units);
    }
    robj
}

#[cfg(test)]
mod tests {
    use super::*;
    use cb_storage::layout::{ChunkId, FileId};

    /// Trivial app: units are little-endian u64s, reduction is their sum.
    struct SumApp;

    pub struct Sum(u64);

    impl ReductionObject for Sum {
        fn merge(&mut self, other: Self) {
            self.0 += other.0;
        }
        fn size_bytes(&self) -> usize {
            8
        }
    }

    impl GRApp for SumApp {
        type Unit = u64;
        type RObj = Sum;
        type Params = ();

        fn decode_chunk(&self, meta: &ChunkMeta, bytes: &[u8]) -> Vec<u64> {
            assert_eq!(bytes.len() as u64, meta.len);
            bytes
                .chunks_exact(8)
                .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
                .collect()
        }
        fn init(&self, _: &()) -> Sum {
            Sum(0)
        }
        fn local_reduce(&self, _: &(), robj: &mut Sum, unit: &u64) {
            robj.0 += unit;
        }
    }

    fn chunk(id: u32, vals: &[u64]) -> (ChunkMeta, Vec<u8>) {
        let bytes: Vec<u8> = vals.iter().flat_map(|v| v.to_le_bytes()).collect();
        (
            ChunkMeta {
                id: ChunkId(id),
                file: FileId(0),
                offset: 0,
                len: bytes.len() as u64,
                units: vals.len() as u64,
            },
            bytes,
        )
    }

    #[test]
    fn sequential_oracle_sums() {
        let r = run_sequential(
            &SumApp,
            &(),
            vec![chunk(0, &[1, 2, 3]), chunk(1, &[10, 20])],
        );
        assert_eq!(r.0, 36);
    }

    #[test]
    fn merge_matches_split_processing() {
        let all = run_sequential(&SumApp, &(), vec![chunk(0, &[1, 2, 3, 4, 5, 6])]);
        let mut a = run_sequential(&SumApp, &(), vec![chunk(0, &[1, 2, 3])]);
        let b = run_sequential(&SumApp, &(), vec![chunk(1, &[4, 5, 6])]);
        a.merge(b);
        assert_eq!(a.0, all.0);
    }

    #[test]
    fn empty_corpus_is_identity() {
        let r = run_sequential(&SumApp, &(), std::iter::empty());
        assert_eq!(r.0, 0);
    }

    #[test]
    fn tuple_robjs_merge_componentwise() {
        let mut a = (Sum(1), Sum(10));
        a.merge((Sum(2), Sum(20)));
        assert_eq!(a.0 .0, 3);
        assert_eq!(a.1 .0, 30);
        assert_eq!(a.size_bytes(), 16);

        let mut t = (Sum(1), Sum(2), Sum(3));
        t.merge((Sum(10), Sum(20), Sum(30)));
        assert_eq!((t.0 .0, t.1 .0, t.2 .0), (11, 22, 33));
    }

    #[test]
    fn vec_robjs_merge_slotwise() {
        let mut a = vec![Sum(1), Sum(2)];
        a.merge(vec![Sum(10), Sum(20)]);
        assert_eq!(a[0].0, 11);
        assert_eq!(a[1].0, 22);
        assert_eq!(a.size_bytes(), 16);
    }

    #[test]
    #[should_panic(expected = "different lengths")]
    fn vec_robjs_length_mismatch_panics() {
        let mut a = vec![Sum(1)];
        a.merge(vec![Sum(1), Sum(2)]);
    }
}
