//! The shipped combiner library (paper §III-A: *"A user can choose from one
//! of the several common combination functions already implemented in the
//! generalized reduction system library (such as aggregation, concatenation,
//! etc.), or they can provide one of their own."*).
//!
//! Every type here implements [`ReductionObject`] with a commutative,
//! associative `merge`; the property tests in `tests/scheduling_properties.rs`
//! verify the algebra over random inputs and splits.

use crate::api::ReductionObject;
use std::collections::BTreeMap;

/// Element-wise sum of a fixed-length `f64` vector ("aggregation").
///
/// The workhorse for numeric analytics — k-means uses one per centroid,
/// PageRank uses one the size of the rank vector.
///
/// ```
/// use cloudburst_core::combine::VecSum;
/// use cloudburst_core::api::ReductionObject;
///
/// let mut a = VecSum::from_vec(vec![1.0, 2.0]);
/// let b = VecSum::from_vec(vec![10.0, 20.0]);
/// a.merge(b);
/// assert_eq!(a.values(), &[11.0, 22.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct VecSum {
    values: Vec<f64>,
}

impl VecSum {
    pub fn zeros(len: usize) -> Self {
        VecSum {
            values: vec![0.0; len],
        }
    }

    pub fn from_vec(values: Vec<f64>) -> Self {
        VecSum { values }
    }

    pub fn add_at(&mut self, idx: usize, x: f64) {
        self.values[idx] += x;
    }

    pub fn values(&self) -> &[f64] {
        &self.values
    }

    pub fn into_values(self) -> Vec<f64> {
        self.values
    }

    pub fn len(&self) -> usize {
        self.values.len()
    }

    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

impl ReductionObject for VecSum {
    fn merge(&mut self, other: Self) {
        assert_eq!(
            self.values.len(),
            other.values.len(),
            "merging VecSum of different lengths"
        );
        for (a, b) in self.values.iter_mut().zip(other.values) {
            *a += b;
        }
    }

    fn size_bytes(&self) -> usize {
        self.values.len() * std::mem::size_of::<f64>()
    }
}

/// Scalar counters (u64 sum). Often embedded in larger objects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Counter(pub u64);

impl ReductionObject for Counter {
    fn merge(&mut self, other: Self) {
        self.0 += other.0;
    }
    fn size_bytes(&self) -> usize {
        8
    }
}

/// Concatenation of records, order-normalized on read ("concatenation").
///
/// `merge` appends; because concatenation alone is *not* commutative, the
/// object guarantees order-insensitivity by exposing results only in sorted
/// order. This matches how concatenating combiners are used in practice:
/// the collection is a set of records whose arrival order is meaningless.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Concat<T: Ord + Send + 'static> {
    items: Vec<T>,
}

impl<T: Ord + Send + 'static> Concat<T> {
    pub fn new() -> Self {
        Concat { items: Vec::new() }
    }

    pub fn push(&mut self, item: T) {
        self.items.push(item);
    }

    pub fn len(&self) -> usize {
        self.items.len()
    }

    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The collected records, in canonical (sorted) order.
    pub fn into_sorted(mut self) -> Vec<T> {
        self.items.sort_unstable();
        self.items
    }

    /// The collected records in arrival order (wire codecs sort a copy
    /// themselves to stay canonical without consuming the object).
    pub fn items(&self) -> &[T] {
        &self.items
    }
}

impl<T: Ord + Send + 'static> ReductionObject for Concat<T> {
    fn merge(&mut self, other: Self) {
        self.items.extend(other.items);
    }
    fn size_bytes(&self) -> usize {
        self.items.len() * std::mem::size_of::<T>()
    }
}

/// Min / max over a totally ordered domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MinMax {
    pub min: Option<i64>,
    pub max: Option<i64>,
}

impl MinMax {
    pub fn observe(&mut self, x: i64) {
        self.min = Some(self.min.map_or(x, |m| m.min(x)));
        self.max = Some(self.max.map_or(x, |m| m.max(x)));
    }
}

impl ReductionObject for MinMax {
    fn merge(&mut self, other: Self) {
        if let Some(m) = other.min {
            self.min = Some(self.min.map_or(m, |s| s.min(m)));
        }
        if let Some(m) = other.max {
            self.max = Some(self.max.map_or(m, |s| s.max(m)));
        }
    }
    fn size_bytes(&self) -> usize {
        16
    }
}

/// Keyed aggregation: `key -> (sum, count)`. The generalized-reduction
/// analogue of a word-count/`reduceByKey`; deterministic iteration order
/// via `BTreeMap`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct KeyedSum {
    entries: BTreeMap<u64, (f64, u64)>,
}

impl KeyedSum {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn add(&mut self, key: u64, value: f64) {
        let e = self.entries.entry(key).or_insert((0.0, 0));
        e.0 += value;
        e.1 += 1;
    }

    pub fn get(&self, key: u64) -> Option<(f64, u64)> {
        self.entries.get(&key).copied()
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn iter(&self) -> impl Iterator<Item = (u64, (f64, u64))> + '_ {
        self.entries.iter().map(|(&k, &v)| (k, v))
    }

    /// Reconstruct an entry verbatim — `(sum, count)` as stored, not one
    /// observation like [`KeyedSum::add`]. Merges with any existing entry.
    /// This is how wire codecs rebuild a shipped object exactly.
    pub fn insert_entry(&mut self, key: u64, sum: f64, count: u64) {
        let e = self.entries.entry(key).or_insert((0.0, 0));
        e.0 += sum;
        e.1 += count;
    }
}

impl ReductionObject for KeyedSum {
    fn merge(&mut self, other: Self) {
        for (k, (s, c)) in other.entries {
            let e = self.entries.entry(k).or_insert((0.0, 0));
            e.0 += s;
            e.1 += c;
        }
    }
    fn size_bytes(&self) -> usize {
        self.entries.len() * (8 + 8 + 8)
    }
}

/// Bounded top-K by ascending score: keeps the K smallest `(score, payload)`
/// pairs seen. This is k-NN's reduction object (K nearest = K smallest
/// distances). A binary max-heap caps memory at K entries per worker.
///
/// ```
/// use cloudburst_core::combine::TopK;
///
/// let mut best = TopK::new(2);
/// for (score, id) in [(3.0, 0), (1.0, 1), (2.0, 2)] {
///     best.offer(score, id);
/// }
/// assert_eq!(best.into_sorted(), vec![(1.0, 1), (2.0, 2)]);
/// ```
#[derive(Debug, Clone)]
pub struct TopK {
    k: usize,
    /// Max-heap on score: the root is the *worst* of the current best K.
    heap: std::collections::BinaryHeap<ScoredEntry>,
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct ScoredEntry {
    score: f64,
    payload: u64,
}

impl Eq for ScoredEntry {}

impl PartialOrd for ScoredEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for ScoredEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Total order: by score, then payload for determinism. NaN scores
        // are rejected at insert.
        self.score
            .partial_cmp(&other.score)
            .expect("NaN score in TopK")
            .then_with(|| self.payload.cmp(&other.payload))
    }
}

impl TopK {
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "TopK requires k >= 1");
        TopK {
            k,
            heap: std::collections::BinaryHeap::with_capacity(k + 1),
        }
    }

    pub fn k(&self) -> usize {
        self.k
    }

    /// Offer a candidate; kept only if among the K best (smallest) so far.
    pub fn offer(&mut self, score: f64, payload: u64) {
        assert!(!score.is_nan(), "NaN score offered to TopK");
        if self.heap.len() < self.k {
            self.heap.push(ScoredEntry { score, payload });
            return;
        }
        let worst = self.heap.peek().expect("non-empty");
        let cand = ScoredEntry { score, payload };
        if cand < *worst {
            self.heap.pop();
            self.heap.push(cand);
        }
    }

    pub fn len(&self) -> usize {
        self.heap.len()
    }

    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// The kept entries in heap order (wire codecs re-`offer` these on
    /// decode; callers wanting ranked output use [`TopK::into_sorted`]).
    pub fn entries(&self) -> impl Iterator<Item = (f64, u64)> + '_ {
        self.heap.iter().map(|e| (e.score, e.payload))
    }

    /// Best-first (ascending score) results.
    pub fn into_sorted(self) -> Vec<(f64, u64)> {
        let mut v: Vec<ScoredEntry> = self.heap.into_vec();
        v.sort_unstable();
        v.into_iter().map(|e| (e.score, e.payload)).collect()
    }
}

impl ReductionObject for TopK {
    fn merge(&mut self, other: Self) {
        assert_eq!(self.k, other.k, "merging TopK of different k");
        for e in other.heap {
            self.offer(e.score, e.payload);
        }
    }
    fn size_bytes(&self) -> usize {
        self.heap.len() * 16
    }
}

/// Fixed-range histogram: counts per equal-width bin over `[lo, hi)`, with
/// underflow/overflow buckets. Order-insensitive by construction.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    pub fn new(lo: f64, hi: f64, n_bins: usize) -> Self {
        assert!(hi > lo, "empty histogram range");
        assert!(n_bins > 0, "histogram needs at least one bin");
        Histogram {
            lo,
            hi,
            bins: vec![0; n_bins],
            underflow: 0,
            overflow: 0,
        }
    }

    pub fn observe(&mut self, x: f64) {
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let frac = (x - self.lo) / (self.hi - self.lo);
            let bin = ((frac * self.bins.len() as f64) as usize).min(self.bins.len() - 1);
            self.bins[bin] += 1;
        }
    }

    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total observations, including out-of-range ones.
    pub fn count(&self) -> u64 {
        self.bins.iter().sum::<u64>() + self.underflow + self.overflow
    }
}

impl ReductionObject for Histogram {
    fn merge(&mut self, other: Self) {
        assert!(
            self.lo == other.lo && self.hi == other.hi && self.bins.len() == other.bins.len(),
            "merging incompatible histograms"
        );
        for (a, b) in self.bins.iter_mut().zip(other.bins) {
            *a += b;
        }
        self.underflow += other.underflow;
        self.overflow += other.overflow;
    }
    fn size_bytes(&self) -> usize {
        self.bins.len() * 8 + 32
    }
}

/// Streaming first/second moments (count, mean, variance) with the
/// parallel Welford combination — merge order does not affect the result
/// beyond floating-point noise.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Moments {
    n: u64,
    mean: f64,
    m2: f64,
}

impl Moments {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn observe(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    pub fn count(&self) -> u64 {
        self.n
    }

    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sample variance (n−1 denominator); 0 for fewer than two samples.
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }
}

impl ReductionObject for Moments {
    fn merge(&mut self, other: Self) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let n = n1 + n2;
        self.m2 += other.m2 + delta * delta * n1 * n2 / n;
        self.mean = (n1 * self.mean + n2 * other.mean) / n;
        self.n += other.n;
    }
    fn size_bytes(&self) -> usize {
        24
    }
}

/// Set union over a dense `u64` id space, as a bitmap. Useful for distinct
/// counting and membership reductions with a bounded universe.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitSetUnion {
    words: Vec<u64>,
}

impl BitSetUnion {
    /// A set over ids `0..universe`.
    pub fn new(universe: usize) -> Self {
        BitSetUnion {
            words: vec![0; universe.div_ceil(64)],
        }
    }

    pub fn insert(&mut self, id: usize) {
        self.words[id / 64] |= 1u64 << (id % 64);
    }

    pub fn contains(&self, id: usize) -> bool {
        self.words
            .get(id / 64)
            .map(|w| w & (1u64 << (id % 64)) != 0)
            .unwrap_or(false)
    }

    /// Number of distinct ids present.
    pub fn count(&self) -> u64 {
        self.words.iter().map(|w| w.count_ones() as u64).sum()
    }
}

impl ReductionObject for BitSetUnion {
    fn merge(&mut self, other: Self) {
        assert_eq!(
            self.words.len(),
            other.words.len(),
            "merging BitSetUnion of different universes"
        );
        for (a, b) in self.words.iter_mut().zip(other.words) {
            *a |= b;
        }
    }
    fn size_bytes(&self) -> usize {
        self.words.len() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vecsum_merges_elementwise() {
        let mut a = VecSum::from_vec(vec![1.0, 2.0, 3.0]);
        let b = VecSum::from_vec(vec![10.0, 20.0, 30.0]);
        a.merge(b);
        assert_eq!(a.values(), &[11.0, 22.0, 33.0]);
        assert_eq!(a.size_bytes(), 24);
    }

    #[test]
    #[should_panic(expected = "different lengths")]
    fn vecsum_length_mismatch_panics() {
        let mut a = VecSum::zeros(2);
        a.merge(VecSum::zeros(3));
    }

    #[test]
    fn counter_merges() {
        let mut a = Counter(3);
        a.merge(Counter(4));
        assert_eq!(a, Counter(7));
    }

    #[test]
    fn concat_is_order_insensitive_after_sort() {
        let mut a = Concat::new();
        a.push(3);
        a.push(1);
        let mut b = Concat::new();
        b.push(2);
        let mut ab = a.clone();
        ab.merge(b.clone());
        let mut ba = b;
        ba.merge(a);
        assert_eq!(ab.into_sorted(), ba.into_sorted());
    }

    #[test]
    fn minmax_handles_empty_sides() {
        let mut a = MinMax::default();
        let mut b = MinMax::default();
        b.observe(5);
        b.observe(-2);
        a.merge(b);
        assert_eq!(a.min, Some(-2));
        assert_eq!(a.max, Some(5));
        a.merge(MinMax::default());
        assert_eq!(a.min, Some(-2));
    }

    #[test]
    fn keyedsum_merges_by_key() {
        let mut a = KeyedSum::new();
        a.add(1, 2.0);
        a.add(2, 5.0);
        let mut b = KeyedSum::new();
        b.add(1, 3.0);
        b.add(3, 7.0);
        a.merge(b);
        assert_eq!(a.get(1), Some((5.0, 2)));
        assert_eq!(a.get(2), Some((5.0, 1)));
        assert_eq!(a.get(3), Some((7.0, 1)));
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn topk_keeps_k_smallest() {
        let mut t = TopK::new(3);
        for (i, s) in [5.0, 1.0, 4.0, 2.0, 3.0, 0.5].iter().enumerate() {
            t.offer(*s, i as u64);
        }
        let got = t.into_sorted();
        assert_eq!(got.len(), 3);
        assert_eq!(got[0], (0.5, 5));
        assert_eq!(got[1], (1.0, 1));
        assert_eq!(got[2], (2.0, 3));
    }

    #[test]
    fn topk_merge_equals_union() {
        let scores: Vec<f64> = (0..50).map(|i| ((i * 37) % 50) as f64).collect();
        let mut whole = TopK::new(5);
        for (i, &s) in scores.iter().enumerate() {
            whole.offer(s, i as u64);
        }
        let mut left = TopK::new(5);
        let mut right = TopK::new(5);
        for (i, &s) in scores.iter().enumerate() {
            if i % 2 == 0 {
                left.offer(s, i as u64);
            } else {
                right.offer(s, i as u64);
            }
        }
        left.merge(right);
        assert_eq!(left.into_sorted(), whole.into_sorted());
    }

    #[test]
    fn topk_tie_scores_resolved_by_payload() {
        let mut t = TopK::new(2);
        t.offer(1.0, 9);
        t.offer(1.0, 3);
        t.offer(1.0, 7);
        assert_eq!(t.into_sorted(), vec![(1.0, 3), (1.0, 7)]);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn topk_rejects_nan() {
        TopK::new(1).offer(f64::NAN, 0);
    }

    #[test]
    fn topk_underfull() {
        let mut t = TopK::new(10);
        t.offer(2.0, 0);
        t.offer(1.0, 1);
        assert_eq!(t.len(), 2);
        assert_eq!(t.into_sorted(), vec![(1.0, 1), (2.0, 0)]);
    }

    #[test]
    fn histogram_bins_and_out_of_range() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        for x in [0.0, 1.9, 2.0, 9.99, -1.0, 10.0, 55.0] {
            h.observe(x);
        }
        assert_eq!(h.bins(), &[2, 1, 0, 0, 1]);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.count(), 7);
    }

    #[test]
    fn histogram_merge_equals_union() {
        let mut whole = Histogram::new(0.0, 1.0, 10);
        let mut a = Histogram::new(0.0, 1.0, 10);
        let mut b = Histogram::new(0.0, 1.0, 10);
        for i in 0..100 {
            let x = (i as f64) / 100.0;
            whole.observe(x);
            if i % 2 == 0 {
                a.observe(x);
            } else {
                b.observe(x);
            }
        }
        a.merge(b);
        assert_eq!(a, whole);
    }

    #[test]
    #[should_panic(expected = "incompatible")]
    fn histogram_shape_mismatch_panics() {
        let mut a = Histogram::new(0.0, 1.0, 5);
        a.merge(Histogram::new(0.0, 2.0, 5));
    }

    #[test]
    fn moments_match_direct_computation() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut m = Moments::new();
        for &x in &xs {
            m.observe(x);
        }
        assert_eq!(m.count(), 8);
        assert!((m.mean() - 5.0).abs() < 1e-12);
        assert!((m.variance() - 32.0 / 7.0).abs() < 1e-9);
    }

    #[test]
    fn moments_merge_equals_sequential() {
        let xs: Vec<f64> = (0..200).map(|i| (i as f64) * 0.31 - 7.0).collect();
        let mut whole = Moments::new();
        for &x in &xs {
            whole.observe(x);
        }
        let mut a = Moments::new();
        let mut b = Moments::new();
        for &x in &xs[..71] {
            a.observe(x);
        }
        for &x in &xs[71..] {
            b.observe(x);
        }
        a.merge(b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
        // Empty-side identities.
        a.merge(Moments::new());
        assert_eq!(a.count(), 200);
    }

    #[test]
    fn bitset_union() {
        let mut a = BitSetUnion::new(200);
        let mut b = BitSetUnion::new(200);
        a.insert(0);
        a.insert(63);
        a.insert(64);
        b.insert(64);
        b.insert(199);
        a.merge(b);
        assert!(a.contains(0) && a.contains(63) && a.contains(64) && a.contains(199));
        assert!(!a.contains(1));
        assert!(!a.contains(5000), "out of universe is just absent");
        assert_eq!(a.count(), 4);
        assert_eq!(a.size_bytes(), 32);
    }

    #[test]
    #[should_panic(expected = "different universes")]
    fn bitset_universe_mismatch_panics() {
        let mut a = BitSetUnion::new(64);
        a.merge(BitSetUnion::new(128));
    }
}
