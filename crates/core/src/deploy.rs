//! Deployment description: clusters, sites, and the data fabric.
//!
//! A [`Deployment`] lists the compute clusters (name, site, cores, optional
//! WAN throttle for reduction-object shipping) and a [`DataFabric`]: for
//! every (accessing site, data site) pair, the [`ObjectStore`] through which
//! that access flows. The fabric is what makes "the local cluster stealing a
//! job stored in S3" read through a slow, latency-laden path while the cloud
//! cluster reads the same object fast — both views are decorators over the
//! same backing store.

use cb_simnet::Throttle;
use cb_storage::layout::LocationId;
use cb_storage::store::ObjectStore;
use std::collections::BTreeMap;
use std::sync::Arc;

/// One compute cluster.
#[derive(Clone)]
pub struct ClusterSpec {
    /// Display name ("local", "EC2").
    pub name: String,
    /// The site this cluster is at (determines which data is "local").
    pub location: LocationId,
    /// Number of worker (slave) cores.
    pub cores: usize,
    /// Throttle through which this cluster's reduction object travels to
    /// the head during global reduction. `None` = colocated with the head.
    pub wan_to_head: Option<Arc<Throttle>>,
    /// Per-unit synthetic compute weight override for this cluster, in
    /// nanoseconds (models slower/faster cores). `None` uses the run
    /// config's global value.
    pub compute_ns_per_unit: Option<u64>,
    /// Round-trip latency of a master↔head job-request exchange (zero for
    /// a master colocated with the head; tens of milliseconds across the
    /// WAN). Paid on every refill from the head.
    pub head_rtt: std::time::Duration,
}

impl ClusterSpec {
    pub fn new(name: impl Into<String>, location: LocationId, cores: usize) -> Self {
        ClusterSpec {
            name: name.into(),
            location,
            cores,
            wan_to_head: None,
            compute_ns_per_unit: None,
            head_rtt: std::time::Duration::ZERO,
        }
    }

    /// Attach a WAN throttle for global-reduction transfers.
    pub fn with_wan(mut self, wan: Arc<Throttle>) -> Self {
        self.wan_to_head = Some(wan);
        self
    }

    /// Override this cluster's per-unit compute weight.
    pub fn with_compute_ns(mut self, ns: u64) -> Self {
        self.compute_ns_per_unit = Some(ns);
        self
    }

    /// Set the master↔head request round-trip latency.
    pub fn with_head_rtt(mut self, rtt: std::time::Duration) -> Self {
        self.head_rtt = rtt;
        self
    }
}

/// The (accessor site, data site) → store routing table.
#[derive(Clone, Default)]
pub struct DataFabric {
    paths: BTreeMap<(LocationId, LocationId), Arc<dyn ObjectStore>>,
}

impl DataFabric {
    pub fn new() -> Self {
        Self::default()
    }

    /// Route all accesses from `from` to data homed at `to` through `store`.
    pub fn set_path(
        &mut self,
        from: LocationId,
        to: LocationId,
        store: Arc<dyn ObjectStore>,
    ) -> &mut Self {
        self.paths.insert((from, to), store);
        self
    }

    /// Convenience: every site sees every store directly (no throttling);
    /// `stores[loc]` is the store at site `loc`.
    pub fn direct(stores: &BTreeMap<LocationId, Arc<dyn ObjectStore>>) -> Self {
        let mut f = DataFabric::new();
        for &from in stores.keys() {
            for (&to, store) in stores {
                f.set_path(from, to, Arc::clone(store));
            }
        }
        f
    }

    /// The store through which site `from` reads data homed at `to`.
    pub fn store_for(&self, from: LocationId, to: LocationId) -> Option<&Arc<dyn ObjectStore>> {
        self.paths.get(&(from, to))
    }

    /// Decorate every path leading *to* data site `to` — the structural way
    /// to degrade one location (e.g. wrap each view of the S3 site in a
    /// `FlakyStore`) while other sites stay healthy. Returns the number of
    /// paths wrapped.
    pub fn wrap_paths_to<F>(&mut self, to: LocationId, mut wrap: F) -> usize
    where
        F: FnMut(Arc<dyn ObjectStore>) -> Arc<dyn ObjectStore>,
    {
        let mut n = 0;
        for ((_, t), store) in self.paths.iter_mut() {
            if *t == to {
                *store = wrap(Arc::clone(store));
                n += 1;
            }
        }
        n
    }

    /// All configured paths (diagnostics).
    pub fn paths(&self) -> impl Iterator<Item = (LocationId, LocationId, &str)> {
        self.paths.iter().map(|(&(f, t), s)| (f, t, s.name()))
    }
}

/// A full deployment: clusters plus the data fabric.
#[derive(Clone)]
pub struct Deployment {
    pub clusters: Vec<ClusterSpec>,
    pub fabric: DataFabric,
}

impl Deployment {
    pub fn new(clusters: Vec<ClusterSpec>, fabric: DataFabric) -> Self {
        Deployment { clusters, fabric }
    }

    /// Total worker cores across clusters.
    pub fn total_cores(&self) -> usize {
        self.clusters.iter().map(|c| c.cores).sum()
    }

    /// Check structural validity: at least one cluster, nonzero cores, and
    /// a fabric path from every cluster site to every data site in `data_sites`.
    pub fn validate(&self, data_sites: &[LocationId]) -> Result<(), String> {
        if self.clusters.is_empty() {
            return Err("deployment has no clusters".into());
        }
        for c in &self.clusters {
            if c.cores == 0 {
                return Err(format!("cluster {} has zero cores", c.name));
            }
            for &site in data_sites {
                if self.fabric.store_for(c.location, site).is_none() {
                    return Err(format!(
                        "no fabric path from cluster {} ({}) to data site {site}",
                        c.name, c.location
                    ));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cb_storage::store::MemStore;

    fn loc(i: u16) -> LocationId {
        LocationId(i)
    }

    #[test]
    fn direct_fabric_routes_everything() {
        let mut stores: BTreeMap<LocationId, Arc<dyn ObjectStore>> = BTreeMap::new();
        stores.insert(loc(0), Arc::new(MemStore::new("a")));
        stores.insert(loc(1), Arc::new(MemStore::new("b")));
        let f = DataFabric::direct(&stores);
        assert_eq!(f.store_for(loc(0), loc(1)).unwrap().name(), "b");
        assert_eq!(f.store_for(loc(1), loc(0)).unwrap().name(), "a");
        assert_eq!(f.paths().count(), 4);
    }

    #[test]
    fn asymmetric_paths() {
        let mut f = DataFabric::new();
        f.set_path(loc(0), loc(1), Arc::new(MemStore::new("slow-view")));
        f.set_path(loc(1), loc(1), Arc::new(MemStore::new("fast-view")));
        assert_eq!(f.store_for(loc(0), loc(1)).unwrap().name(), "slow-view");
        assert_eq!(f.store_for(loc(1), loc(1)).unwrap().name(), "fast-view");
        assert!(f.store_for(loc(0), loc(0)).is_none());
    }

    #[test]
    fn wrap_paths_to_decorates_only_the_target_site() {
        use cb_storage::faults::{FaultMode, FlakyStore};
        let mut stores: BTreeMap<LocationId, Arc<dyn ObjectStore>> = BTreeMap::new();
        stores.insert(loc(0), Arc::new(MemStore::new("a")));
        stores.insert(loc(1), Arc::new(MemStore::new("b")));
        let mut f = DataFabric::direct(&stores);
        let wrapped = f.wrap_paths_to(loc(1), |s| {
            Arc::new(FlakyStore::new(s, FaultMode::FirstNPerKey { n: 1 }, 0))
        });
        assert_eq!(wrapped, 2, "both accessors' views of site 1");
        assert_eq!(f.store_for(loc(0), loc(1)).unwrap().name(), "flaky(b)");
        assert_eq!(f.store_for(loc(1), loc(1)).unwrap().name(), "flaky(b)");
        assert_eq!(f.store_for(loc(0), loc(0)).unwrap().name(), "a");
    }

    #[test]
    fn deployment_validation() {
        let mut stores: BTreeMap<LocationId, Arc<dyn ObjectStore>> = BTreeMap::new();
        stores.insert(loc(0), Arc::new(MemStore::new("a")));
        let fabric = DataFabric::direct(&stores);

        let d = Deployment::new(vec![], fabric.clone());
        assert!(d.validate(&[loc(0)]).is_err(), "no clusters");

        let d = Deployment::new(vec![ClusterSpec::new("c", loc(0), 0)], fabric.clone());
        assert!(d.validate(&[loc(0)]).is_err(), "zero cores");

        let d = Deployment::new(vec![ClusterSpec::new("c", loc(0), 2)], fabric.clone());
        assert_eq!(d.validate(&[loc(0)]), Ok(()));
        assert!(d.validate(&[loc(1)]).is_err(), "missing path to site 1");
        assert_eq!(d.total_cores(), 2);
    }

    #[test]
    fn cluster_spec_builders() {
        let wan = Arc::new(Throttle::unlimited());
        let c = ClusterSpec::new("EC2", loc(1), 8)
            .with_wan(wan)
            .with_compute_ns(50);
        assert!(c.wan_to_head.is_some());
        assert_eq!(c.compute_ns_per_unit, Some(50));
        assert_eq!(c.cores, 8);
    }
}
