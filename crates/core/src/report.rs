//! Run reports: the measurement schema shared by the real runtime and the
//! discrete-event simulator.
//!
//! Mirrors the paper's presentation: per-cluster *processing*, *data
//! retrieval*, and *sync* time (the stacked bars of Figs. 3–4), plus the
//! Table I job counters and the Table II global-reduction / idle / slowdown
//! decomposition.
//!
//! When a run is traced (a [`SinkHandle`](crate::obs::SinkHandle) is
//! installed), every counter and duration here is a *derived view* of the
//! event stream: the emission points pass the same measured values that
//! feed these aggregates, and
//! [`TraceSummary::reconcile`](crate::obs::TraceSummary::reconcile) checks
//! the two presentations agree. See `docs/OBSERVABILITY.md`.

use serde::{Deserialize, Serialize};

/// Per-cluster execution breakdown.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct ClusterBreakdown {
    /// Cluster name ("local", "EC2", ...).
    pub name: String,
    /// Worker cores in this cluster.
    pub cores: usize,
    /// Mean per-core time spent in local reduction (decode + fold).
    pub processing_s: f64,
    /// Mean per-core time spent retrieving chunk data.
    pub retrieval_s: f64,
    /// Mean per-core time spent waiting: job waits, stragglers, end-of-run
    /// barrier — `wall - processing - retrieval`.
    pub sync_s: f64,
    /// Wall time from run start to this cluster finishing its last job
    /// (including handing its reduction object to the head).
    pub wall_s: f64,
    /// Time this cluster sat idle at the end waiting for the other
    /// cluster(s) to finish (Table II "Idle Time").
    pub idle_end_s: f64,
    /// Jobs this cluster processed in total (Table I).
    pub jobs_processed: u64,
    /// Of those, jobs whose data was homed at another site (Table I
    /// "stolen").
    pub jobs_stolen: u64,
    /// Bytes read from this cluster's own site.
    pub bytes_local: u64,
    /// Bytes retrieved from remote sites.
    pub bytes_remote: u64,
    /// Mean per-core retrieval time *hidden* behind computation by the
    /// prefetch pipeline: `retrieval_s - fetch_stall_s`. Zero when
    /// `prefetch_depth == 0` (serial slaves hide nothing).
    #[serde(default)]
    pub overlap_saved_s: f64,
    /// Mean per-core time a slave's fold loop actually *stalled* waiting on
    /// its fetcher. With prefetching this is the un-hidden remainder of
    /// `retrieval_s`; without it, it equals `retrieval_s`.
    #[serde(default)]
    pub fetch_stall_s: f64,
}

/// Fault-recovery accounting for one run. All zeros on a failure-free run.
#[derive(Debug, Clone, Default, Serialize, Deserialize, PartialEq)]
pub struct RecoveryStats {
    /// Retrieval failures surfaced to slaves after the storage layer's own
    /// retries were exhausted.
    pub fetch_failures: u64,
    /// Jobs returned to the head pool and granted again (slave failures
    /// plus reclaimed leases).
    pub jobs_reenqueued: u64,
    /// Storage-level GET retry attempts (transient faults absorbed below
    /// the scheduler).
    pub retries: u64,
    /// Slaves that retired early after too many consecutive failures.
    pub slaves_retired: u64,
    /// Slaves fail-stopped by the injected kill schedule.
    pub slaves_killed: u64,
}

impl RecoveryStats {
    /// True when the run saw no failure events at all.
    pub fn is_clean(&self) -> bool {
        self.fetch_failures == 0
            && self.jobs_reenqueued == 0
            && self.retries == 0
            && self.slaves_retired == 0
            && self.slaves_killed == 0
    }
}

/// Control-plane network accounting for one run. All zeros for in-process
/// runs (the loopback head exchanges no frames); filled in by the `cb-net`
/// head for distributed runs. Mirrors the `NetSent`/`NetRecv`/`PeerJoined`/
/// `PeerLost` event kinds, which
/// [`TraceSummary::reconcile`](crate::obs::TraceSummary::reconcile) checks
/// against these counters.
#[derive(Debug, Clone, Default, Serialize, Deserialize, PartialEq)]
pub struct NetStats {
    /// Wire frames written to peers.
    pub frames_sent: u64,
    /// Wire frames read from peers.
    pub frames_recv: u64,
    /// Bytes written (length prefixes included).
    pub bytes_sent: u64,
    /// Bytes read (length prefixes included).
    pub bytes_recv: u64,
    /// Workers that completed the handshake.
    pub peers_joined: u64,
    /// Workers declared lost (socket error or missed heartbeats).
    pub peers_lost: u64,
}

impl NetStats {
    /// True for a run that never touched the network (in-process loopback).
    pub fn is_idle(&self) -> bool {
        *self == NetStats::default()
    }
}

/// A full run: per-cluster breakdowns plus global phases.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct RunReport {
    /// End-to-end wall time.
    pub total_s: f64,
    /// Time spent combining the per-cluster reduction objects at the head,
    /// including their inter-cluster transfer (Table II "Global Reduction").
    pub global_reduction_s: f64,
    /// Final reduction-object size in bytes (drives the transfer cost the
    /// paper highlights for pagerank).
    pub robj_bytes: u64,
    /// One entry per cluster.
    pub clusters: Vec<ClusterBreakdown>,
    /// Failure-injection and recovery accounting (zeros when clean).
    #[serde(default)]
    pub recovery: RecoveryStats,
    /// Chunk-cache hits across the run (iterative runs with
    /// `cache_bytes > 0`; zero otherwise).
    #[serde(default)]
    pub cache_hits: u64,
    /// Chunk-cache misses across the run.
    #[serde(default)]
    pub cache_misses: u64,
    /// Control-plane network accounting (zeros for in-process runs).
    #[serde(default)]
    pub net: NetStats,
}

impl RunReport {
    /// Total jobs processed across clusters.
    pub fn total_jobs(&self) -> u64 {
        self.clusters.iter().map(|c| c.jobs_processed).sum()
    }

    /// Total stolen jobs across clusters.
    pub fn total_stolen(&self) -> u64 {
        self.clusters.iter().map(|c| c.jobs_stolen).sum()
    }

    /// The paper's "Total Slowdown" (Table II): this run's execution time
    /// minus the baseline's, in seconds.
    pub fn slowdown_vs(&self, baseline: &RunReport) -> f64 {
        self.total_s - baseline.total_s
    }

    /// Slowdown as a fraction of the baseline ("the average slowdown of our
    /// system ... is only 15.55%").
    pub fn slowdown_ratio_vs(&self, baseline: &RunReport) -> f64 {
        if baseline.total_s == 0.0 {
            return 0.0;
        }
        (self.total_s - baseline.total_s) / baseline.total_s
    }

    /// Find a cluster by name.
    pub fn cluster(&self, name: &str) -> Option<&ClusterBreakdown> {
        self.clusters.iter().find(|c| c.name == name)
    }

    /// Render as an aligned text table (one row per cluster) — the format
    /// the `repro` harness prints for each figure.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<10} {:>5} {:>12} {:>12} {:>10} {:>10} {:>8} {:>8}",
            "cluster", "cores", "processing", "retrieval", "sync", "wall", "jobs", "stolen"
        );
        for c in &self.clusters {
            let _ = writeln!(
                out,
                "{:<10} {:>5} {:>11.2}s {:>11.2}s {:>9.2}s {:>9.2}s {:>8} {:>8}",
                c.name,
                c.cores,
                c.processing_s,
                c.retrieval_s,
                c.sync_s,
                c.wall_s,
                c.jobs_processed,
                c.jobs_stolen
            );
        }
        let _ = writeln!(
            out,
            "total {:.2}s   global-reduction {:.3}s   robj {} bytes",
            self.total_s, self.global_reduction_s, self.robj_bytes
        );
        if !self.recovery.is_clean() {
            let r = &self.recovery;
            let _ = writeln!(
                out,
                "recovery: {} fetch failures, {} jobs re-enqueued, {} retries, \
                 {} slaves retired, {} slaves killed",
                r.fetch_failures, r.jobs_reenqueued, r.retries, r.slaves_retired, r.slaves_killed
            );
        }
        if !self.net.is_idle() {
            let n = &self.net;
            let _ = writeln!(
                out,
                "network: {} peers joined ({} lost), {} frames / {} bytes sent, \
                 {} frames / {} bytes received",
                n.peers_joined,
                n.peers_lost,
                n.frames_sent,
                n.bytes_sent,
                n.frames_recv,
                n.bytes_recv
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunReport {
        RunReport {
            total_s: 100.0,
            global_reduction_s: 0.5,
            robj_bytes: 1024,
            clusters: vec![
                ClusterBreakdown {
                    name: "local".into(),
                    cores: 16,
                    processing_s: 60.0,
                    retrieval_s: 30.0,
                    sync_s: 10.0,
                    wall_s: 100.0,
                    idle_end_s: 0.0,
                    jobs_processed: 480,
                    jobs_stolen: 0,
                    bytes_local: 1 << 30,
                    bytes_remote: 0,
                    overlap_saved_s: 0.0,
                    fetch_stall_s: 30.0,
                },
                ClusterBreakdown {
                    name: "EC2".into(),
                    cores: 16,
                    processing_s: 55.0,
                    retrieval_s: 25.0,
                    sync_s: 15.0,
                    wall_s: 95.0,
                    idle_end_s: 5.0,
                    jobs_processed: 480,
                    jobs_stolen: 64,
                    bytes_local: 1 << 29,
                    bytes_remote: 1 << 28,
                    overlap_saved_s: 5.0,
                    fetch_stall_s: 20.0,
                },
            ],
            recovery: RecoveryStats::default(),
            cache_hits: 0,
            cache_misses: 0,
            net: NetStats::default(),
        }
    }

    #[test]
    fn totals() {
        let r = sample();
        assert_eq!(r.total_jobs(), 960);
        assert_eq!(r.total_stolen(), 64);
        assert_eq!(r.cluster("EC2").unwrap().cores, 16);
        assert!(r.cluster("nope").is_none());
    }

    #[test]
    fn slowdowns() {
        let base = RunReport {
            total_s: 80.0,
            ..sample()
        };
        let r = sample();
        assert!((r.slowdown_vs(&base) - 20.0).abs() < 1e-12);
        assert!((r.slowdown_ratio_vs(&base) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn json_round_trip() {
        let r = sample();
        let s = serde_json::to_string(&r).unwrap();
        let back: RunReport = serde_json::from_str(&s).unwrap();
        assert_eq!(r, back);
    }

    #[test]
    fn render_contains_rows() {
        let text = sample().render();
        assert!(text.contains("local"));
        assert!(text.contains("EC2"));
        assert!(text.contains("global-reduction"));
        assert!(
            !text.contains("recovery:"),
            "clean runs omit the recovery row"
        );
    }

    #[test]
    fn render_shows_recovery_when_dirty() {
        let mut r = sample();
        r.recovery.jobs_reenqueued = 3;
        r.recovery.slaves_killed = 1;
        let text = r.render();
        assert!(text.contains("3 jobs re-enqueued"));
        assert!(text.contains("1 slaves killed"));
    }

    #[test]
    fn json_without_prefetch_or_cache_fields_defaults_zero() {
        // Reports serialized before the prefetch pipeline existed must
        // still load, with the overlap/stall/cache fields defaulting to 0.
        let r = sample();
        let s = serde_json::to_string(&r).unwrap();
        let stripped = s
            .replace(",\"overlap_saved_s\":0,\"fetch_stall_s\":30", "")
            .replace(",\"overlap_saved_s\":5,\"fetch_stall_s\":20", "")
            .replace(",\"cache_hits\":0,\"cache_misses\":0", "");
        assert_ne!(s, stripped, "new fields were serialized");
        let back: RunReport = serde_json::from_str(&stripped).unwrap();
        assert_eq!(back.clusters[1].overlap_saved_s, 0.0);
        assert_eq!(back.clusters[1].fetch_stall_s, 0.0);
        assert_eq!(back.cache_hits, 0);
        assert_eq!(back.cache_misses, 0);
    }

    #[test]
    fn json_without_net_field_defaults_idle() {
        // Reports serialized before the network subsystem existed must
        // still load, with net counters defaulting to an idle NetStats.
        let r = sample();
        let s = serde_json::to_string(&r).unwrap();
        let stripped = s.replace(
            ",\"net\":{\"frames_sent\":0,\"frames_recv\":0,\"bytes_sent\":0,\
             \"bytes_recv\":0,\"peers_joined\":0,\"peers_lost\":0}",
            "",
        );
        assert_ne!(s, stripped, "net field was serialized");
        let back: RunReport = serde_json::from_str(&stripped).unwrap();
        assert!(back.net.is_idle());
        assert_eq!(back, r);
    }

    #[test]
    fn render_shows_network_when_distributed() {
        let mut r = sample();
        assert!(!r.render().contains("network:"), "idle net row omitted");
        r.net.peers_joined = 2;
        r.net.frames_sent = 10;
        r.net.bytes_sent = 420;
        let text = r.render();
        assert!(text.contains("2 peers joined"));
        assert!(text.contains("10 frames / 420 bytes sent"));
    }

    #[test]
    fn json_without_recovery_field_defaults_clean() {
        // Reports serialized before RecoveryStats existed must still load.
        let r = sample();
        let s = serde_json::to_string(&r).unwrap();
        let stripped = s.replace(
            ",\"recovery\":{\"fetch_failures\":0,\"jobs_reenqueued\":0,\"retries\":0,\"slaves_retired\":0,\"slaves_killed\":0}",
            "",
        );
        assert_ne!(s, stripped, "recovery field was serialized");
        let back: RunReport = serde_json::from_str(&stripped).unwrap();
        assert!(back.recovery.is_clean());
        assert_eq!(back, r);
    }
}
