//! The in-process cloud-bursting runtime (paper §III-B, Fig. 2).
//!
//! Real threads, real data, real (wall-clock-throttled) I/O. The three node
//! roles of the paper map onto:
//!
//! * **head** — the job pool ([`JobPool`]) behind a mutex plus the global
//!   reduction performed on the caller's thread once every cluster reports;
//! * **master** — one thread per cluster owning a [`MasterPool`]; serves
//!   slaves over channels, refills from the head on demand, merges its
//!   slaves' reduction objects (local combination) and ships the result to
//!   the head through the cluster's WAN throttle;
//! * **slave** — `cores` threads per cluster; each holds up to
//!   `1 + prefetch_depth` leases, retrieving the next chunk on a background
//!   fetcher thread (through the data fabric; multi-threaded ranged GETs
//!   when the data is remote — "job stealing") *while* folding the current
//!   one in cache-sized groups into its private reduction object, so
//!   retrieval overlaps computation. [`RuntimeConfig::prefetch_depth`]` = 0`
//!   restores the strictly serial fetch-then-fold loop.
//!
//! The scheduling behaviour (locality, consecutive grants, contention-aware
//! stealing, demand-driven balancing) lives entirely in [`crate::sched`] and
//! is shared verbatim with the discrete-event simulator.
//!
//! # Fault tolerance
//!
//! The generalized-reduction model makes recovery cheap (paper §III-C): the
//! only state worth preserving is each slave's small reduction object plus
//! the set of unprocessed chunks, both of which the head already tracks.
//! Concretely:
//!
//! * a slave whose retrieval fails (after the storage layer's own retries)
//!   reports the job *failed* and keeps pulling work — the head re-enqueues
//!   the chunk at the front of its file's queue so another slave or cluster
//!   picks it up with sequential reads intact;
//! * a slave that fails [`RuntimeConfig::slave_failure_threshold`]
//!   consecutive jobs retires gracefully: its partial reduction object still
//!   merges into the cluster result, and its remaining work drains to
//!   healthier slaves;
//! * a slave fail-stopped by the injected kill schedule behaves like a
//!   graceful retirement at a job boundary (the model's natural checkpoint);
//! * a master whose slaves have all died drains its undispatched leases back
//!   to the head, so surviving clusters can steal them — losing every node
//!   at one location degrades the run instead of hanging or panicking;
//! * the run errors only when a chunk has failed permanently everywhere
//!   (its failure budget, [`crate::sched::pool::PoolConfig::max_job_failures`],
//!   is exhausted) — surfaced as [`RuntimeError::JobsFailed`] naming the
//!   dead chunks.

use crate::api::{GRApp, ReductionObject};
use crate::config::RuntimeConfig;
use crate::deploy::{ClusterSpec, DataFabric, Deployment};
use crate::obs::EventKind;
use crate::report::{ClusterBreakdown, RecoveryStats, RunReport};
use crate::sched::master::{MasterJob, MasterPool};
use crate::sched::pool::{Grant, JobPool};
use bytes::Bytes;
use cb_storage::layout::{ChunkId, DatasetLayout, LocationId, Placement};
use cb_storage::retrieve::Retriever;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::io;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How long a master blocks on its slave channel before re-checking whether
/// parked slaves can be fed (e.g. by jobs another cluster failed back).
const MASTER_POLL: Duration = Duration::from_millis(2);

/// Errors surfaced by a run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuntimeError {
    /// Configuration or deployment rejected before starting.
    Validation(String),
    /// An I/O failure outside the per-job recovery path.
    Io(String),
    /// One or more chunks could not be processed anywhere: `dead` exhausted
    /// their failure budget, `unfinished` more were left with no cluster
    /// able to run them.
    JobsFailed {
        dead: Vec<ChunkId>,
        unfinished: usize,
        last_error: Option<String>,
    },
    /// A master thread died without reporting its cluster's result.
    ClusterLost(String),
}

impl std::fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RuntimeError::Validation(s) => write!(f, "invalid configuration: {s}"),
            RuntimeError::Io(s) => write!(f, "I/O failure: {s}"),
            RuntimeError::JobsFailed {
                dead,
                unfinished,
                last_error,
            } => {
                write!(
                    f,
                    "{} job(s) failed permanently, {} left unprocessed",
                    dead.len(),
                    unfinished
                )?;
                if let Some(c) = dead.first() {
                    write!(f, " (first dead: {c})")?;
                }
                if let Some(e) = last_error {
                    write!(f, "; last error: {e}")?;
                }
                Ok(())
            }
            RuntimeError::ClusterLost(s) => write!(f, "cluster lost: {s}"),
        }
    }
}

impl std::error::Error for RuntimeError {}

/// Per-slave accumulated timings and counters.
#[derive(Debug, Clone, Default)]
pub struct SlaveStats {
    pub processing: Duration,
    pub retrieval: Duration,
    /// Time the fold loop actually *blocked* waiting for its fetcher to
    /// deliver chunk data. Without prefetching this equals `retrieval`;
    /// with it, `retrieval - fetch_stall` is what the pipeline hid.
    pub fetch_stall: Duration,
    pub jobs: u64,
    pub stolen_jobs: u64,
    pub units: u64,
    pub bytes_local: u64,
    pub bytes_remote: u64,
}

/// How a master reports one lease back to the head.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Resolution {
    /// Processed and folded into the cluster's reduction object.
    Completed(ChunkId),
    /// Attempted and failed (charges the job's failure budget).
    Failed(ChunkId),
    /// Returned unattempted (reclaimed prefetch lease; uncharged).
    Released(ChunkId),
}

/// The master's view of the head node.
///
/// [`run`] talks to the in-process [`JobPool`] through this trait (the
/// loopback special case, implemented directly on `Mutex<JobPool>`); the
/// `cb-net` crate implements it over a TCP connection so the identical
/// master/slave machinery drives a remote head. Errors mean "the head is
/// unreachable" — the master winds its cluster down cleanly and lets the
/// head's own peer-loss handling reclaim the leases.
pub trait HeadPort: Sync {
    /// Request a job batch for the cluster at `loc`. The boolean is the
    /// head's exhaustion verdict, observed atomically with the (possibly
    /// empty) grant: once `true`, no job this location could run will ever
    /// become available again and the master may shut down.
    fn request_jobs(&self, loc: LocationId) -> io::Result<(Grant, bool)>;

    /// Report the outcome of one lease.
    fn resolve(&self, loc: LocationId, what: Resolution) -> io::Result<()>;
}

/// The loopback head: the pool itself, behind its mutex. The request and
/// the exhaustion check happen under one lock acquisition, so exhaustion
/// observed here cannot be invalidated by a concurrent fail-back.
impl HeadPort for Mutex<JobPool> {
    fn request_jobs(&self, loc: LocationId) -> io::Result<(Grant, bool)> {
        let mut h = self.lock();
        let grant = h.request(loc);
        let exhausted = grant.jobs.is_empty() && h.exhausted_for(loc);
        Ok((grant, exhausted))
    }

    fn resolve(&self, loc: LocationId, what: Resolution) -> io::Result<()> {
        let mut h = self.lock();
        match what {
            Resolution::Completed(c) => h.complete(loc, c),
            Resolution::Failed(c) => h.fail(loc, c),
            Resolution::Released(c) => h.release(loc, c),
        }
        Ok(())
    }
}

/// Everything one cluster produced, as returned by [`run_cluster`]: the
/// locally-combined reduction object (shipped through the WAN throttle if
/// one is configured), per-slave stats, and recovery accounting.
#[derive(Debug)]
pub struct ClusterOutcome<R> {
    pub robj: Option<Box<R>>,
    pub stats: Vec<SlaveStats>,
    /// Instant at which all of this cluster's slaves finished and the local
    /// combination completed (before the WAN transfer).
    pub local_done: Instant,
    /// This cluster's share of the recovery accounting (fetch failures,
    /// retired/killed slaves). `jobs_reenqueued` and `retries` are filled
    /// in by the caller, which owns those counters.
    pub recovery: RecoveryStats,
    /// First failure message observed (diagnostics; non-fatal unless jobs
    /// die permanently).
    pub error: Option<String>,
}

/// What happened to the last job a slave held.
enum JobOutcome {
    /// No job held (first request).
    None,
    /// Processed and folded into the slave's reduction object.
    Completed(ChunkId),
    /// Retrieval failed after the storage layer's retries; the chunk must
    /// go back to the head pool.
    Failed { chunk: ChunkId, error: String },
}

/// Why a slave stopped pulling work before the pool drained.
enum RetireReason {
    /// Fail-stopped by the injected kill schedule.
    Killed,
    /// Too many consecutive job failures.
    TooManyFailures,
}

/// Slave → master messages.
///
/// A slave with `prefetch_depth > 0` holds several leases at once, so job
/// outcomes can no longer always piggyback on the next request: `Resolve`
/// reports an outcome without asking for more work, and `Reclaim` returns a
/// prefetched lease that a retiring slave never folded.
enum ToMaster<R> {
    /// "Give me a job"; carries the outcome of a job this slave resolved
    /// since its last message (if any) so the master can report it to the
    /// head.
    Request { slave: usize, outcome: JobOutcome },
    /// Report an outcome *without* requesting another job — a retiring
    /// slave flushing the results of jobs it already folded (or failed).
    Resolve { outcome: JobOutcome },
    /// Return an in-flight prefetched lease un-folded (the slave is
    /// retiring). The head re-enqueues it without charging the job's
    /// failure budget — nothing is wrong with the chunk.
    Reclaim { chunk: ChunkId },
    /// Final report: stats plus this slave's reduction object. The partial
    /// reduction object is sent even on retirement — under generalized
    /// reduction it is a valid checkpoint and still merges. All outcomes
    /// and leases have been resolved/reclaimed by this point.
    Finished {
        stats: SlaveStats,
        robj: Box<R>,
        retired: Option<RetireReason>,
    },
}

/// Fetcher → fold-loop messages (the slave-side prefetch pipeline).
enum Fetched {
    /// The fetcher picked up a lease and is about to retrieve it. A recv
    /// that unblocks on this was waiting on the *master*, not on data, so
    /// it counts as sync time rather than fetch stall.
    Started,
    /// A retrieval finished (either way). `fetch_time` is the wall time
    /// the fetcher spent retrieving; `remote` is whether the chunk's home
    /// is another site.
    Data {
        job: MasterJob,
        result: io::Result<Bytes>,
        fetch_time: Duration,
        remote: bool,
        /// Whether a retrieval was actually begun (a `FetchStart` was
        /// emitted). Shutdown-synthesized replies carry `false`, so the
        /// drain loop knows not to emit a `FetchDiscarded` terminal.
        started: bool,
    },
    /// The master answered "no more jobs" to one of our requests.
    NoMore,
}

/// Cluster-thread → head-collector message.
struct ClusterResult<R> {
    cluster: usize,
    outcome: ClusterOutcome<R>,
}

/// Outcome of [`run`]: the final reduction object plus measurements.
#[derive(Debug)]
pub struct RunOutcome<R> {
    pub result: R,
    pub report: RunReport,
}

/// Execute one pass of `app` over the dataset across the deployment.
///
/// Returns the globally reduced object and a [`RunReport`] with the same
/// breakdown the paper's figures use.
pub fn run<A: GRApp>(
    app: &A,
    params: &A::Params,
    layout: &DatasetLayout,
    placement: &Placement,
    deployment: &Deployment,
    cfg: &RuntimeConfig,
) -> Result<RunOutcome<A::RObj>, RuntimeError> {
    cfg.validate().map_err(RuntimeError::Validation)?;
    layout
        .validate()
        .map_err(|e| RuntimeError::Validation(e.to_string()))?;
    let data_sites: Vec<LocationId> = {
        let mut v: Vec<LocationId> = (0..placement.n_files())
            .map(|i| placement.home(cb_storage::layout::FileId(i as u32)))
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    };
    deployment
        .validate(&data_sites)
        .map_err(RuntimeError::Validation)?;
    for kill in &cfg.kill_schedule {
        let cores = deployment
            .clusters
            .get(kill.cluster)
            .map(|c| c.cores)
            .ok_or_else(|| {
                RuntimeError::Validation(format!(
                    "kill_schedule names cluster {} but only {} cluster(s) exist",
                    kill.cluster,
                    deployment.clusters.len()
                ))
            })?;
        if kill.slave >= cores {
            return Err(RuntimeError::Validation(format!(
                "kill_schedule names slave {} of cluster {} but it has {} core(s)",
                kill.slave, kill.cluster, cores
            )));
        }
    }

    // Location → cluster index, so head-side scheduling events carry the
    // cluster id (earliest cluster wins if two share a location).
    let cluster_of: std::collections::BTreeMap<LocationId, u32> = deployment
        .clusters
        .iter()
        .enumerate()
        .rev()
        .map(|(i, c)| (c.location, i as u32))
        .collect();
    let head = Mutex::new(
        JobPool::new(layout, placement, cfg.pool.clone()).with_sink(cfg.sink.clone(), cluster_of),
    );
    let retry_counter = Arc::new(AtomicU64::new(0));
    let (result_tx, result_rx) = unbounded::<ClusterResult<A::RObj>>();
    let t0 = Instant::now();

    std::thread::scope(|scope| {
        for (ci, cluster) in deployment.clusters.iter().enumerate() {
            let result_tx = result_tx.clone();
            let head = &head;
            let retry_counter = &retry_counter;
            scope.spawn(move || {
                let outcome = run_cluster(
                    app,
                    params,
                    layout,
                    placement,
                    &deployment.fabric,
                    cluster,
                    ci,
                    cfg,
                    head,
                    retry_counter,
                );
                let _ = result_tx.send(ClusterResult {
                    cluster: ci,
                    outcome,
                });
            });
        }
        drop(result_tx);
    });

    // Head: collect per-cluster results, perform the global reduction. All
    // threads have joined (the scope closed), so the channel holds whatever
    // the masters managed to report.
    let n_clusters = deployment.clusters.len();
    let mut results: Vec<Option<ClusterResult<A::RObj>>> = (0..n_clusters).map(|_| None).collect();
    while let Ok(r) = result_rx.recv() {
        let idx = r.cluster;
        results[idx] = Some(r);
    }
    if let Some(ci) = results.iter().position(|r| r.is_none()) {
        return Err(RuntimeError::ClusterLost(format!(
            "master for cluster {} ({}) died without reporting",
            ci, deployment.clusters[ci].name
        )));
    }

    let mut error: Option<String> = None;
    let mut recovery = RecoveryStats::default();
    let mut final_robj: Option<A::RObj> = None;
    let mut local_dones: Vec<Instant> = Vec::with_capacity(n_clusters);
    for r in results.iter_mut() {
        let r = &mut r.as_mut().expect("checked above").outcome;
        if let Some(e) = r.error.take() {
            error.get_or_insert(e);
        }
        recovery.fetch_failures += r.recovery.fetch_failures;
        recovery.slaves_retired += r.recovery.slaves_retired;
        recovery.slaves_killed += r.recovery.slaves_killed;
        local_dones.push(r.local_done);
    }
    recovery.retries = retry_counter.load(Ordering::Relaxed);
    let last_local_done = local_dones.iter().copied().max().unwrap_or(t0);
    // Merge in cluster order: the global reduction proper.
    for r in results.iter_mut() {
        if let Some(robj) = r.as_mut().and_then(|r| r.outcome.robj.take()) {
            match final_robj.as_mut() {
                None => final_robj = Some(*robj),
                Some(acc) => acc.merge(*robj),
            }
        }
    }
    let end = Instant::now();

    // The run only fails if some chunk could not be processed anywhere;
    // every fault the scheduler absorbed shows up in `recovery` instead.
    {
        let pool = head.lock();
        recovery.jobs_reenqueued = pool.reenqueued();
        if !pool.all_done() {
            let dead = pool.dead_jobs();
            let unfinished = pool.pending() + pool.outstanding();
            return Err(RuntimeError::JobsFailed {
                dead,
                unfinished,
                last_error: error,
            });
        }
    }

    let final_robj = final_robj
        .ok_or_else(|| RuntimeError::Validation("no reduction objects produced".into()))?;

    // Assemble the report.
    let global_reduction = end.saturating_duration_since(last_local_done);
    let mut clusters = Vec::with_capacity(n_clusters);
    for (ci, r) in results.into_iter().enumerate() {
        let r = r.expect("checked above").outcome;
        let spec = &deployment.clusters[ci];
        let n = r.stats.len().max(1) as f64;
        let proc_s: f64 = r
            .stats
            .iter()
            .map(|s| s.processing.as_secs_f64())
            .sum::<f64>()
            / n;
        let retr_s: f64 = r
            .stats
            .iter()
            .map(|s| s.retrieval.as_secs_f64())
            .sum::<f64>()
            / n;
        let stall_s: f64 = r
            .stats
            .iter()
            .map(|s| s.fetch_stall.as_secs_f64())
            .sum::<f64>()
            / n;
        let overlap_s: f64 = r
            .stats
            .iter()
            .map(|s| s.retrieval.saturating_sub(s.fetch_stall).as_secs_f64())
            .sum::<f64>()
            / n;
        let wall_s = r.local_done.saturating_duration_since(t0).as_secs_f64();
        clusters.push(ClusterBreakdown {
            name: spec.name.clone(),
            cores: spec.cores,
            processing_s: proc_s,
            retrieval_s: retr_s,
            sync_s: (wall_s - proc_s - retr_s).max(0.0),
            wall_s,
            idle_end_s: last_local_done
                .saturating_duration_since(r.local_done)
                .as_secs_f64(),
            jobs_processed: r.stats.iter().map(|s| s.jobs).sum(),
            jobs_stolen: r.stats.iter().map(|s| s.stolen_jobs).sum(),
            bytes_local: r.stats.iter().map(|s| s.bytes_local).sum(),
            bytes_remote: r.stats.iter().map(|s| s.bytes_remote).sum(),
            overlap_saved_s: overlap_s,
            fetch_stall_s: stall_s,
        });
    }
    let report = RunReport {
        total_s: end.saturating_duration_since(t0).as_secs_f64(),
        global_reduction_s: global_reduction.as_secs_f64(),
        robj_bytes: final_robj.size_bytes() as u64,
        clusters,
        recovery,
        cache_hits: 0,
        cache_misses: 0,
        net: Default::default(),
    };
    Ok(RunOutcome {
        result: final_robj,
        report,
    })
}

/// Report a slave's job outcome to the head. An `Err` means the head is
/// unreachable (only possible through a networked [`HeadPort`]).
fn note_outcome(
    head: &dyn HeadPort,
    loc: LocationId,
    outcome: JobOutcome,
    recovery: &mut RecoveryStats,
    first_error: &mut Option<String>,
) -> io::Result<()> {
    match outcome {
        JobOutcome::None => Ok(()),
        JobOutcome::Completed(chunk) => head.resolve(loc, Resolution::Completed(chunk)),
        JobOutcome::Failed { chunk, error } => {
            recovery.fetch_failures += 1;
            first_error.get_or_insert(error);
            head.resolve(loc, Resolution::Failed(chunk))
        }
    }
}

/// Run one cluster — the master loop on the calling thread plus `cores`
/// slave threads — against a head reached through `head`.
///
/// This is the unit [`run`] composes in-process (one call per cluster, all
/// sharing a `Mutex<JobPool>` loopback head) and `cb-net` runs standalone
/// in a worker process (with a TCP-backed port). The cluster's reduction
/// object is shipped through the WAN throttle before returning.
#[allow(clippy::too_many_arguments)]
pub fn run_cluster<A: GRApp>(
    app: &A,
    params: &A::Params,
    layout: &DatasetLayout,
    placement: &Placement,
    fabric: &DataFabric,
    cluster: &ClusterSpec,
    cluster_idx: usize,
    cfg: &RuntimeConfig,
    head: &dyn HeadPort,
    retry_counter: &Arc<AtomicU64>,
) -> ClusterOutcome<A::RObj> {
    let loc = cluster.location;
    let n_slaves = cluster.cores;
    let (to_master_tx, rx) = unbounded::<ToMaster<A::RObj>>();

    std::thread::scope(|scope| {
        let mut job_txs: Vec<Sender<Option<MasterJob>>> = Vec::with_capacity(n_slaves);
        for si in 0..n_slaves {
            let (job_tx, job_rx) = unbounded::<Option<MasterJob>>();
            job_txs.push(job_tx);
            let to_master = to_master_tx.clone();
            scope.spawn(move || {
                slave_loop(
                    app,
                    params,
                    layout,
                    placement,
                    fabric,
                    cfg,
                    cluster,
                    cluster_idx,
                    si,
                    Arc::clone(retry_counter),
                    to_master,
                    job_rx,
                )
            });
        }
        drop(to_master_tx);

        // --- Master loop (this thread): serve slaves, refill from the
        // head, merge the slaves' reduction objects. ---
        let mut pool =
            MasterPool::new(cfg.master_low_water).with_sink(cfg.sink.clone(), cluster_idx as u32);
        let mut stats: Vec<SlaveStats> = Vec::with_capacity(n_slaves);
        let mut robj_acc: Option<Box<A::RObj>> = None;
        let mut recovery = RecoveryStats::default();
        let mut error: Option<String> = None;
        let mut finished_slaves = 0usize;
        // Slaves that asked for a job the pool could not supply yet. An
        // empty head grant means "nothing right now", not "never": a job
        // leased to another cluster may still fail back, so parked slaves
        // wait until the head confirms exhaustion.
        let mut parked: VecDeque<usize> = VecDeque::new();

        let refill = |pool: &mut MasterPool, error: &mut Option<String>| {
            pool.mark_requested();
            // The request/grant exchange crosses the master↔head network.
            if !cluster.head_rtt.is_zero() {
                std::thread::sleep(cluster.head_rtt);
            }
            match head.request_jobs(loc) {
                Ok((grant, exhausted)) => {
                    pool.on_grant(grant.jobs, grant.stolen);
                    if exhausted {
                        pool.mark_exhausted();
                    }
                }
                Err(e) => {
                    // The head is gone; there will be no more work. Wind
                    // the cluster down so slaves drain and finish.
                    error.get_or_insert(format!("cluster {}: head unreachable: {e}", cluster.name));
                    pool.mark_exhausted();
                }
            }
        };

        while finished_slaves < n_slaves {
            match rx.recv_timeout(MASTER_POLL) {
                Ok(ToMaster::Request { slave, outcome }) => {
                    if let Err(e) = note_outcome(head, loc, outcome, &mut recovery, &mut error) {
                        error.get_or_insert(format!("head unreachable: {e}"));
                    }
                    parked.push_back(slave);
                }
                Ok(ToMaster::Resolve { outcome }) => {
                    if let Err(e) = note_outcome(head, loc, outcome, &mut recovery, &mut error) {
                        error.get_or_insert(format!("head unreachable: {e}"));
                    }
                }
                Ok(ToMaster::Reclaim { chunk }) => {
                    if let Err(e) = head.resolve(loc, Resolution::Released(chunk)) {
                        error.get_or_insert(format!("head unreachable: {e}"));
                    }
                }
                Ok(ToMaster::Finished {
                    stats: s,
                    robj,
                    retired,
                }) => {
                    match retired {
                        Some(RetireReason::Killed) => recovery.slaves_killed += 1,
                        Some(RetireReason::TooManyFailures) => recovery.slaves_retired += 1,
                        None => {}
                    }
                    finished_slaves += 1;
                    stats.push(s);
                    match robj_acc.as_mut() {
                        None => robj_acc = Some(robj),
                        Some(acc) => acc.merge(*robj),
                    }
                }
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => break,
            }

            // Feed parked slaves, refilling from the head as needed.
            while let Some(&slave) = parked.front() {
                if let Some(job) = pool.take() {
                    parked.pop_front();
                    let _ = job_txs[slave].send(Some(job));
                } else if pool.finished() {
                    parked.pop_front();
                    let _ = job_txs[slave].send(None);
                } else {
                    refill(&mut pool, &mut error);
                    if pool.is_empty() && !pool.finished() {
                        // Nothing available right now; re-poll after MASTER_POLL.
                        break;
                    }
                }
            }
            // Prefetch below the low-water mark so slaves rarely block on a
            // head round-trip.
            if finished_slaves < n_slaves && pool.should_request() {
                refill(&mut pool, &mut error);
            }
        }

        // A dying master returns its undispatched leases so surviving
        // clusters can steal them (all-slaves-lost is survivable).
        for job in pool.drain() {
            let _ = head.resolve(loc, Resolution::Failed(job.chunk));
        }

        let local_done = Instant::now();
        // Ship the cluster's reduction object to the head through the WAN.
        if let Some(robj) = &robj_acc {
            let t_ship = Instant::now();
            if let Some(wan) = &cluster.wan_to_head {
                wan.acquire(robj.size_bytes() as u64);
            }
            cfg.sink.emit(
                Some(cluster_idx as u32),
                None,
                EventKind::RobjMerge {
                    bytes: robj.size_bytes() as u64,
                    ns: t_ship.elapsed().as_nanos() as u64,
                },
            );
        }
        ClusterOutcome {
            robj: robj_acc,
            stats,
            local_done,
            recovery,
            error,
        }
    })
}

/// One slave thread: pull jobs, retrieve, fold — and survive failures.
#[allow(clippy::too_many_arguments)]
fn slave_loop<A: GRApp>(
    app: &A,
    params: &A::Params,
    layout: &DatasetLayout,
    placement: &Placement,
    fabric: &DataFabric,
    cfg: &RuntimeConfig,
    cluster: &ClusterSpec,
    cluster_idx: usize,
    slave: usize,
    retry_counter: Arc<AtomicU64>,
    to_master: Sender<ToMaster<A::RObj>>,
    job_rx: Receiver<Option<MasterJob>>,
) {
    let my_loc = cluster.location;
    let (ci, si) = (cluster_idx as u32, slave as u32);
    // Jitter-decorrelate retries across slaves while staying deterministic.
    let jitter_seed = ((cluster_idx as u64) << 32) ^ (slave as u64 + 1);
    let mut remote_retriever = Retriever::new(cfg.retrieval_threads)
        .with_retries(cfg.retrieval_retries, cfg.retrieval_backoff)
        .with_deadline(cfg.retrieval_deadline)
        .with_jitter_seed(jitter_seed)
        .with_retry_counter(Arc::clone(&retry_counter));
    let mut local_retriever = Retriever::sequential()
        .with_retries(cfg.retrieval_retries, cfg.retrieval_backoff)
        .with_deadline(cfg.retrieval_deadline)
        .with_jitter_seed(jitter_seed)
        .with_retry_counter(Arc::clone(&retry_counter));
    if cfg.sink.is_enabled() {
        // The hook fires where the storage layer's retry counter
        // increments, so `retry` events match `RecoveryStats::retries`.
        let retry_hook = |sink: crate::obs::SinkHandle| -> cb_storage::retrieve::RetryHook {
            Arc::new(move |attempt: u32| {
                sink.emit(
                    Some(ci),
                    Some(si),
                    EventKind::Retry {
                        attempt: attempt as u64,
                    },
                )
            })
        };
        remote_retriever = remote_retriever.with_retry_hook(retry_hook(cfg.sink.clone()));
        local_retriever = local_retriever.with_retry_hook(retry_hook(cfg.sink.clone()));
    }
    let compute_ns = cluster
        .compute_ns_per_unit
        .unwrap_or(cfg.synthetic_compute_ns_per_unit);
    let kill_after: Option<u64> = cfg
        .kill_schedule
        .iter()
        .find(|k| k.cluster == cluster_idx && k.slave == slave)
        .map(|k| k.after_jobs);

    let mut robj = app.init(params);
    let mut stats = SlaveStats::default();
    let mut retired: Option<RetireReason> = None;
    let mut consecutive_failures = 0u32;

    // The prefetch pipeline: this slave holds up to `1 + prefetch_depth`
    // leases at once — the job being folded plus the lookahead a background
    // fetcher thread is retrieving — so retrieval overlaps computation.
    // Depth 0 degenerates to the strictly serial fetch-then-fold loop.
    let capacity = 1 + cfg.prefetch_depth;
    // Raised when this slave stops folding (kill, retirement, or drain):
    // the fetcher skips further retrievals and hands leases straight back
    // so they can be reclaimed.
    let shutting_down = AtomicBool::new(false);
    let (fetch_tx, fetch_rx) = unbounded::<Fetched>();

    std::thread::scope(|fs| {
        // --- Background fetcher: owns the master->slave job channel. ---
        let shutting_down = &shutting_down;
        let local_retriever = &local_retriever;
        let remote_retriever = &remote_retriever;
        fs.spawn(move || {
            while let Ok(msg) = job_rx.recv() {
                let Some(job) = msg else {
                    let _ = fetch_tx.send(Fetched::NoMore);
                    continue;
                };
                if shutting_down.load(Ordering::Relaxed) {
                    // Don't start work the fold loop will discard; hand the
                    // lease back immediately for reclaim.
                    let _ = fetch_tx.send(Fetched::Data {
                        job,
                        result: Err(io::Error::new(
                            io::ErrorKind::Interrupted,
                            "slave shutting down",
                        )),
                        fetch_time: Duration::ZERO,
                        remote: false,
                        started: false,
                    });
                    continue;
                }
                let _ = fetch_tx.send(Fetched::Started);
                cfg.sink.emit(
                    Some(ci),
                    Some(si),
                    EventKind::FetchStart {
                        chunk: job.chunk.0 as u64,
                    },
                );
                let chunk = layout.chunk(job.chunk);
                let file = layout.file(chunk.file);
                let home = placement.home(chunk.file);
                let store = fabric
                    .store_for(my_loc, home)
                    .expect("deployment validated");
                let retriever = if home == my_loc {
                    local_retriever
                } else {
                    remote_retriever
                };
                let t_r = Instant::now();
                let result = retriever.fetch(store.as_ref(), &file.name, chunk.offset, chunk.len);
                let send = fetch_tx.send(Fetched::Data {
                    job,
                    result,
                    fetch_time: t_r.elapsed(),
                    remote: home != my_loc,
                    started: true,
                });
                if send.is_err() {
                    break;
                }
            }
        });

        // --- Fold loop (this thread). ---
        // Requests sent to the master whose reply has not yet surfaced
        // from the fetcher (as Data or NoMore).
        let mut outstanding = 0usize;
        let mut no_more = false;
        // Outcomes of resolved jobs waiting to piggyback on the next
        // request (or be flushed as Resolve at shutdown).
        let mut pending: VecDeque<JobOutcome> = VecDeque::new();

        loop {
            // Kill and retirement checks happen at job boundaries — the
            // generalized-reduction model's natural checkpoint — so the
            // accumulated reduction object survives the "crash".
            if let Some(n) = kill_after {
                if stats.jobs >= n {
                    retired = Some(RetireReason::Killed);
                    break;
                }
            }
            if consecutive_failures >= cfg.slave_failure_threshold {
                retired = Some(RetireReason::TooManyFailures);
                break;
            }

            // Keep the pipeline primed: one request per free lease slot,
            // each carrying one resolved outcome if available.
            let mut master_gone = false;
            while !no_more && outstanding < capacity {
                let request = ToMaster::Request {
                    slave,
                    outcome: pending.pop_front().unwrap_or(JobOutcome::None),
                };
                if to_master.send(request).is_err() {
                    master_gone = true;
                    break;
                }
                outstanding += 1;
            }
            // Once the master said "no more", leftover outcomes cannot
            // piggyback: flush them so the head can observe exhaustion.
            while let Some(outcome) = pending.pop_front() {
                if to_master.send(ToMaster::Resolve { outcome }).is_err() {
                    master_gone = true;
                    break;
                }
            }
            if master_gone || outstanding == 0 {
                break; // drained (or master gone)
            }

            let t_wait = Instant::now();
            let Ok(msg) = fetch_rx.recv() else { break };
            match msg {
                Fetched::Started => {} // master wait, not a fetch stall
                Fetched::NoMore => {
                    no_more = true;
                    outstanding -= 1;
                }
                Fetched::Data {
                    job,
                    result,
                    fetch_time,
                    remote,
                    ..
                } => {
                    // Only waits that end in data count as fetch stall:
                    // `Started` precedes `Data` in channel order, so this
                    // block was spent waiting on the retrieval itself.
                    let waited = t_wait.elapsed();
                    stats.fetch_stall += waited;
                    cfg.sink.emit(
                        Some(ci),
                        Some(si),
                        EventKind::Stall {
                            ns: waited.as_nanos() as u64,
                        },
                    );
                    outstanding -= 1;
                    stats.retrieval += fetch_time;
                    let chunk = layout.chunk(job.chunk);
                    match result {
                        Ok(bytes) => {
                            consecutive_failures = 0;
                            if remote {
                                stats.bytes_remote += chunk.len;
                            } else {
                                stats.bytes_local += chunk.len;
                            }
                            cfg.sink.emit(
                                Some(ci),
                                Some(si),
                                EventKind::FetchEnd {
                                    chunk: job.chunk.0 as u64,
                                    bytes: chunk.len,
                                    remote,
                                    ns: fetch_time.as_nanos() as u64,
                                },
                            );
                            cfg.sink.emit(
                                Some(ci),
                                Some(si),
                                EventKind::ProcessStart {
                                    chunk: job.chunk.0 as u64,
                                },
                            );
                            // Process: decode, then fold in cache-sized
                            // unit groups.
                            let t_p = Instant::now();
                            let units = app.decode_chunk(chunk, &bytes);
                            for group in units.chunks(cfg.cache_group_units) {
                                for u in group {
                                    app.local_reduce(params, &mut robj, u);
                                }
                                if compute_ns > 0 {
                                    burn(Duration::from_nanos(compute_ns * group.len() as u64));
                                }
                            }
                            let took = t_p.elapsed();
                            stats.processing += took;
                            stats.jobs += 1;
                            stats.units += units.len() as u64;
                            if job.stolen {
                                stats.stolen_jobs += 1;
                            }
                            cfg.sink.emit(
                                Some(ci),
                                Some(si),
                                EventKind::ProcessEnd {
                                    chunk: job.chunk.0 as u64,
                                    units: units.len() as u64,
                                    ns: took.as_nanos() as u64,
                                    stolen: job.stolen,
                                },
                            );
                            pending.push_back(JobOutcome::Completed(job.chunk));
                        }
                        Err(e) => {
                            // The job is NOT complete: report it failed so
                            // the head re-enqueues it, and keep pulling.
                            cfg.sink.emit(
                                Some(ci),
                                Some(si),
                                EventKind::FetchFailed {
                                    chunk: job.chunk.0 as u64,
                                    ns: fetch_time.as_nanos() as u64,
                                },
                            );
                            let file = layout.file(chunk.file);
                            let home = placement.home(chunk.file);
                            let store = fabric
                                .store_for(my_loc, home)
                                .expect("deployment validated");
                            pending.push_back(JobOutcome::Failed {
                                chunk: job.chunk,
                                error: format!(
                                    "slave {slave}@{}: fetching {} [{}+{}] from {}: {e}",
                                    cluster.name,
                                    file.name,
                                    chunk.offset,
                                    chunk.len,
                                    store.name()
                                ),
                            });
                            consecutive_failures += 1;
                        }
                    }
                }
            }
        }

        // --- Shutdown: resolve what was folded, reclaim what was not. ---
        // Ordering matters for liveness: outcomes flush *before* draining
        // replies, because a held completion blocks pool exhaustion, which
        // blocks the master's replies to our own outstanding requests.
        shutting_down.store(true, Ordering::Relaxed);
        for outcome in pending.drain(..) {
            let _ = to_master.send(ToMaster::Resolve { outcome });
        }
        while outstanding > 0 {
            let Ok(msg) = fetch_rx.recv() else { break };
            match msg {
                Fetched::Started => {}
                Fetched::NoMore => outstanding -= 1,
                Fetched::Data { job, started, .. } => {
                    // Fetched or not, the job was never folded: reclaim it
                    // immediately so another slave can process it.
                    outstanding -= 1;
                    if started {
                        // Close the fetch_start pairing for a retrieval
                        // whose result is being thrown away.
                        cfg.sink.emit(
                            Some(ci),
                            Some(si),
                            EventKind::FetchDiscarded {
                                chunk: job.chunk.0 as u64,
                            },
                        );
                    }
                    let _ = to_master.send(ToMaster::Reclaim { chunk: job.chunk });
                }
            }
        }

        if let Some(r) = &retired {
            cfg.sink.emit(
                Some(ci),
                Some(si),
                EventKind::SlaveRetired {
                    killed: matches!(r, RetireReason::Killed),
                },
            );
        }
        // Even a retiring slave's partial reduction object merges: under
        // GR it is a valid checkpoint of the work it did complete.
        let _ = to_master.send(ToMaster::Finished {
            stats,
            robj: Box::new(robj),
            retired,
        });
        // The scope now joins the fetcher: it exits once the master hangs
        // up the job channel (after every slave has finished).
    });
}

/// Spin (short) or sleep (long) for `d` — synthetic compute weight.
fn burn(d: Duration) {
    if d < Duration::from_micros(200) {
        let t = Instant::now();
        while t.elapsed() < d {
            std::hint::spin_loop();
        }
    } else {
        std::thread::sleep(d);
    }
}
