//! The in-process cloud-bursting runtime (paper §III-B, Fig. 2).
//!
//! Real threads, real data, real (wall-clock-throttled) I/O. The three node
//! roles of the paper map onto:
//!
//! * **head** — the job pool ([`JobPool`]) behind a mutex plus the global
//!   reduction performed on the caller's thread once every cluster reports;
//! * **master** — one thread per cluster owning a [`MasterPool`]; serves
//!   slaves over channels, refills from the head on demand, merges its
//!   slaves' reduction objects (local combination) and ships the result to
//!   the head through the cluster's WAN throttle;
//! * **slave** — `cores` threads per cluster; each pulls jobs one at a time,
//!   retrieves the chunk through the data fabric (multi-threaded ranged
//!   GETs when the data is remote — "job stealing"), folds the units in
//!   cache-sized groups, and accumulates into its private reduction object.
//!
//! The scheduling behaviour (locality, consecutive grants, contention-aware
//! stealing, demand-driven balancing) lives entirely in [`crate::sched`] and
//! is shared verbatim with the discrete-event simulator.

use crate::api::{GRApp, ReductionObject};
use crate::config::RuntimeConfig;
use crate::deploy::Deployment;
use crate::report::{ClusterBreakdown, RunReport};
use crate::sched::master::{MasterJob, MasterPool};
use crate::sched::pool::JobPool;
use cb_storage::layout::{ChunkId, DatasetLayout, LocationId, Placement};
use cb_storage::retrieve::Retriever;
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use std::time::{Duration, Instant};

/// Errors surfaced by a run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuntimeError {
    /// Configuration or deployment rejected before starting.
    Validation(String),
    /// A slave failed to retrieve data.
    Io(String),
}

impl std::fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RuntimeError::Validation(s) => write!(f, "invalid configuration: {s}"),
            RuntimeError::Io(s) => write!(f, "I/O failure: {s}"),
        }
    }
}

impl std::error::Error for RuntimeError {}

/// Per-slave accumulated timings and counters.
#[derive(Debug, Clone, Default)]
struct SlaveStats {
    processing: Duration,
    retrieval: Duration,
    jobs: u64,
    stolen_jobs: u64,
    units: u64,
    bytes_local: u64,
    bytes_remote: u64,
}

/// Slave → master messages.
enum ToMaster<R> {
    /// "Give me a job"; carries the id of the job just completed (if any)
    /// so the master can report it to the head.
    Request {
        slave: usize,
        completed: Option<ChunkId>,
    },
    /// Final report: stats plus this slave's reduction object.
    Finished {
        stats: SlaveStats,
        robj: Box<R>,
        error: Option<String>,
    },
}

/// Master → head-collector message.
struct ClusterResult<R> {
    cluster: usize,
    robj: Option<Box<R>>,
    stats: Vec<SlaveStats>,
    /// Instant at which all of this cluster's slaves finished and the local
    /// combination completed (before the WAN transfer).
    local_done: Instant,
    error: Option<String>,
}

/// Outcome of [`run`]: the final reduction object plus measurements.
#[derive(Debug)]
pub struct RunOutcome<R> {
    pub result: R,
    pub report: RunReport,
}

/// Execute one pass of `app` over the dataset across the deployment.
///
/// Returns the globally reduced object and a [`RunReport`] with the same
/// breakdown the paper's figures use.
pub fn run<A: GRApp>(
    app: &A,
    params: &A::Params,
    layout: &DatasetLayout,
    placement: &Placement,
    deployment: &Deployment,
    cfg: &RuntimeConfig,
) -> Result<RunOutcome<A::RObj>, RuntimeError> {
    cfg.validate().map_err(RuntimeError::Validation)?;
    layout
        .validate()
        .map_err(|e| RuntimeError::Validation(e.to_string()))?;
    let data_sites: Vec<LocationId> = {
        let mut v: Vec<LocationId> = (0..placement.n_files())
            .map(|i| placement.home(cb_storage::layout::FileId(i as u32)))
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    };
    deployment
        .validate(&data_sites)
        .map_err(RuntimeError::Validation)?;

    let head = Mutex::new(JobPool::new(layout, placement, cfg.pool.clone()));
    let (result_tx, result_rx) = unbounded::<ClusterResult<A::RObj>>();
    let t0 = Instant::now();

    std::thread::scope(|scope| {
        for (ci, cluster) in deployment.clusters.iter().enumerate() {
            let (to_master_tx, to_master_rx) = unbounded::<ToMaster<A::RObj>>();
            let mut job_txs: Vec<Sender<Option<MasterJob>>> = Vec::with_capacity(cluster.cores);

            // Slaves.
            for si in 0..cluster.cores {
                let (job_tx, job_rx) = unbounded::<Option<MasterJob>>();
                job_txs.push(job_tx);
                let to_master = to_master_tx.clone();
                scope.spawn({
                    let cluster = cluster.clone();
                    move || {
                        slave_loop(
                            app, params, layout, placement, deployment, cfg, &cluster, si,
                            to_master, job_rx,
                        )
                    }
                });
            }
            drop(to_master_tx);

            // Master.
            let result_tx = result_tx.clone();
            let head_ref = &head;
            scope.spawn({
                let cluster = cluster.clone();
                move || {
                    master_loop::<A>(
                        ci, &cluster, cfg, head_ref, to_master_rx, job_txs, result_tx,
                    )
                }
            });
        }
        drop(result_tx);
        Ok(())
    })?;

    // Head: collect per-cluster results, perform the global reduction.
    let n_clusters = deployment.clusters.len();
    let mut results: Vec<Option<ClusterResult<A::RObj>>> = (0..n_clusters).map(|_| None).collect();
    for _ in 0..n_clusters {
        let r = result_rx
            .recv()
            .expect("a master thread died without reporting");
        let idx = r.cluster;
        results[idx] = Some(r);
    }
    let mut error: Option<String> = None;
    let mut final_robj: Option<A::RObj> = None;
    let mut local_dones: Vec<Instant> = Vec::with_capacity(n_clusters);
    for r in results.iter_mut() {
        let r = r.as_mut().expect("missing cluster result");
        if let Some(e) = r.error.take() {
            error.get_or_insert(e);
        }
        local_dones.push(r.local_done);
    }
    let last_local_done = local_dones.iter().copied().max().unwrap_or(t0);
    // Merge in cluster order: the global reduction proper.
    for r in results.iter_mut() {
        if let Some(robj) = r.as_mut().and_then(|r| r.robj.take()) {
            match final_robj.as_mut() {
                None => final_robj = Some(*robj),
                Some(acc) => acc.merge(*robj),
            }
        }
    }
    let end = Instant::now();
    if let Some(e) = error {
        return Err(RuntimeError::Io(e));
    }
    let final_robj =
        final_robj.ok_or_else(|| RuntimeError::Validation("no reduction objects produced".into()))?;

    // Assemble the report.
    let global_reduction = end.saturating_duration_since(last_local_done);
    let mut clusters = Vec::with_capacity(n_clusters);
    for (ci, r) in results.into_iter().enumerate() {
        let r = r.expect("missing cluster result");
        let spec = &deployment.clusters[ci];
        let n = r.stats.len().max(1) as f64;
        let proc_s: f64 = r.stats.iter().map(|s| s.processing.as_secs_f64()).sum::<f64>() / n;
        let retr_s: f64 = r.stats.iter().map(|s| s.retrieval.as_secs_f64()).sum::<f64>() / n;
        let wall_s = r.local_done.saturating_duration_since(t0).as_secs_f64();
        clusters.push(ClusterBreakdown {
            name: spec.name.clone(),
            cores: spec.cores,
            processing_s: proc_s,
            retrieval_s: retr_s,
            sync_s: (wall_s - proc_s - retr_s).max(0.0),
            wall_s,
            idle_end_s: last_local_done
                .saturating_duration_since(r.local_done)
                .as_secs_f64(),
            jobs_processed: r.stats.iter().map(|s| s.jobs).sum(),
            jobs_stolen: r.stats.iter().map(|s| s.stolen_jobs).sum(),
            bytes_local: r.stats.iter().map(|s| s.bytes_local).sum(),
            bytes_remote: r.stats.iter().map(|s| s.bytes_remote).sum(),
        });
    }
    let report = RunReport {
        total_s: end.saturating_duration_since(t0).as_secs_f64(),
        global_reduction_s: global_reduction.as_secs_f64(),
        robj_bytes: final_robj.size_bytes() as u64,
        clusters,
    };
    Ok(RunOutcome {
        result: final_robj,
        report,
    })
}

/// The master thread: serve slaves, refill from the head, merge results.
fn master_loop<A: GRApp>(
    cluster_idx: usize,
    cluster: &crate::deploy::ClusterSpec,
    cfg: &RuntimeConfig,
    head: &Mutex<JobPool>,
    rx: Receiver<ToMaster<A::RObj>>,
    job_txs: Vec<Sender<Option<MasterJob>>>,
    result_tx: Sender<ClusterResult<A::RObj>>,
) {
    let loc = cluster.location;
    let mut pool = MasterPool::new(cfg.master_low_water);
    let mut stats: Vec<SlaveStats> = Vec::with_capacity(job_txs.len());
    let mut robj_acc: Option<Box<A::RObj>> = None;
    let mut error: Option<String> = None;
    let mut finished_slaves = 0usize;

    let refill = |pool: &mut MasterPool| {
        pool.mark_requested();
        // The request/grant exchange crosses the master↔head network.
        if !cluster.head_rtt.is_zero() {
            std::thread::sleep(cluster.head_rtt);
        }
        let grant = head.lock().request(loc);
        pool.on_grant(grant.jobs, grant.stolen);
    };

    while finished_slaves < job_txs.len() {
        let msg = match rx.recv() {
            Ok(m) => m,
            Err(_) => break, // all slaves gone (they each sent Finished first)
        };
        match msg {
            ToMaster::Request { slave, completed } => {
                if let Some(job) = completed {
                    head.lock().complete(loc, job);
                }
                if pool.is_empty() && !pool.finished() {
                    refill(&mut pool);
                }
                let reply = pool.take();
                // Prefetch below the low-water mark so slaves rarely block
                // on a head round-trip.
                if pool.should_request() {
                    refill(&mut pool);
                }
                let _ = job_txs[slave].send(reply);
            }
            ToMaster::Finished {
                stats: s,
                robj,
                error: e,
            } => {
                finished_slaves += 1;
                stats.push(s);
                if let Some(e) = e {
                    error.get_or_insert(e);
                }
                match robj_acc.as_mut() {
                    None => robj_acc = Some(robj),
                    Some(acc) => acc.merge(*robj),
                }
            }
        }
    }

    let local_done = Instant::now();
    // Ship the cluster's reduction object to the head through the WAN.
    if let (Some(wan), Some(robj)) = (&cluster.wan_to_head, &robj_acc) {
        wan.acquire(robj.size_bytes() as u64);
    }
    let _ = result_tx.send(ClusterResult {
        cluster: cluster_idx,
        robj: robj_acc,
        stats,
        local_done,
        error,
    });
}

/// One slave thread: pull jobs, retrieve, fold.
#[allow(clippy::too_many_arguments)]
fn slave_loop<A: GRApp>(
    app: &A,
    params: &A::Params,
    layout: &DatasetLayout,
    placement: &Placement,
    deployment: &Deployment,
    cfg: &RuntimeConfig,
    cluster: &crate::deploy::ClusterSpec,
    slave: usize,
    to_master: Sender<ToMaster<A::RObj>>,
    job_rx: Receiver<Option<MasterJob>>,
) {
    let my_loc = cluster.location;
    let remote_retriever = Retriever::new(cfg.retrieval_threads)
        .with_retries(cfg.retrieval_retries, cfg.retrieval_backoff);
    let local_retriever =
        Retriever::sequential().with_retries(cfg.retrieval_retries, cfg.retrieval_backoff);
    let compute_ns = cluster
        .compute_ns_per_unit
        .unwrap_or(cfg.synthetic_compute_ns_per_unit);

    let mut robj = app.init(params);
    let mut stats = SlaveStats::default();
    let mut error: Option<String> = None;
    let mut completed: Option<ChunkId> = None;

    loop {
        if to_master
            .send(ToMaster::Request { slave, completed })
            .is_err()
        {
            break;
        }
        let Ok(Some(job)) = job_rx.recv() else {
            break; // None (no more jobs) or master gone
        };
        let chunk = layout.chunk(job.chunk);
        let file = layout.file(chunk.file);
        let home = placement.home(chunk.file);
        let store = deployment
            .fabric
            .store_for(my_loc, home)
            .expect("deployment validated")
            .as_ref();
        let retriever = if home == my_loc {
            &local_retriever
        } else {
            &remote_retriever
        };

        // Retrieve.
        let t_r = Instant::now();
        let bytes = match retriever.fetch(store, &file.name, chunk.offset, chunk.len) {
            Ok(b) => b,
            Err(e) => {
                error = Some(format!(
                    "slave {slave}@{}: fetching {} [{}+{}] from {}: {e}",
                    cluster.name,
                    file.name,
                    chunk.offset,
                    chunk.len,
                    store.name()
                ));
                completed = Some(job.chunk); // report so the pool can drain
                // Tell the master we're done with this job, then stop.
                let _ = to_master.send(ToMaster::Request { slave, completed });
                let _ = job_rx.recv();
                break;
            }
        };
        stats.retrieval += t_r.elapsed();
        if home == my_loc {
            stats.bytes_local += chunk.len;
        } else {
            stats.bytes_remote += chunk.len;
        }

        // Process: decode, then fold in cache-sized unit groups.
        let t_p = Instant::now();
        let units = app.decode_chunk(chunk, &bytes);
        for group in units.chunks(cfg.cache_group_units) {
            for u in group {
                app.local_reduce(params, &mut robj, u);
            }
            if compute_ns > 0 {
                burn(Duration::from_nanos(compute_ns * group.len() as u64));
            }
        }
        stats.processing += t_p.elapsed();
        stats.jobs += 1;
        stats.units += units.len() as u64;
        if job.stolen {
            stats.stolen_jobs += 1;
        }
        completed = Some(job.chunk);
    }

    let _ = to_master.send(ToMaster::Finished {
        stats,
        robj: Box::new(robj),
        error,
    });
}

/// Spin (short) or sleep (long) for `d` — synthetic compute weight.
fn burn(d: Duration) {
    if d < Duration::from_micros(200) {
        let t = Instant::now();
        while t.elapsed() < d {
            std::hint::spin_loop();
        }
    } else {
        std::thread::sleep(d);
    }
}
