//! Robustness of the index-file decoder: arbitrary and corrupted inputs
//! must produce errors, never panics or bogus layouts. The head node trusts
//! the index to build the job pool, so this is the crate's main parsing
//! attack surface.

use cb_storage::index::{decode, encode};
use cb_storage::layout::Placement;
use cb_storage::organizer::{organize, OrganizerConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary bytes never panic the decoder.
    #[test]
    fn decode_arbitrary_bytes_never_panics(data in prop::collection::vec(any::<u8>(), 0..2048)) {
        let _ = decode(&data);
    }

    /// Any single-byte corruption of a valid index either still decodes to
    /// the same layout (impossible with CRC, but stated for completeness)
    /// or errors cleanly.
    #[test]
    fn single_byte_corruption_is_caught(
        n_files in 1usize..6,
        chunks_per_file in 1u64..6,
        pos_seed in any::<u64>(),
        flip in 1u8..=255,
    ) {
        let layout = organize(
            &(0..n_files)
                .map(|i| (format!("f{i}"), chunks_per_file * 64))
                .collect::<Vec<_>>(),
            &OrganizerConfig { chunk_bytes: 64, unit_bytes: 8 },
        )
        .unwrap();
        let mut bytes = encode(&layout);
        let pos = (pos_seed as usize) % bytes.len();
        bytes[pos] ^= flip;
        // Either the CRC (or framing) catches the corruption, or — only
        // possible if the flip landed in a dead byte — the decode matches
        // the original exactly.
        if let Ok(decoded) = decode(&bytes) {
            prop_assert_eq!(decoded, layout, "corruption accepted silently");
        }
    }

    /// Truncation at any point errors cleanly.
    #[test]
    fn truncation_is_caught(
        n_files in 1usize..5,
        cut_seed in any::<u64>(),
    ) {
        let layout = organize(
            &(0..n_files).map(|i| (format!("f{i}"), 128u64)).collect::<Vec<_>>(),
            &OrganizerConfig { chunk_bytes: 64, unit_bytes: 8 },
        )
        .unwrap();
        let bytes = encode(&layout);
        let cut = (cut_seed as usize) % bytes.len();
        prop_assert!(decode(&bytes[..cut]).is_err());
    }

    /// Round trip over random (valid) shapes, including odd names.
    #[test]
    fn round_trip_random_layouts(
        sizes in prop::collection::vec(1u64..20, 1..10),
        name_salt in "[a-zA-Z0-9_.-]{1,24}",
    ) {
        let files: Vec<(String, u64)> = sizes
            .iter()
            .enumerate()
            .map(|(i, &s)| (format!("{name_salt}-{i}"), s * 16))
            .collect();
        let layout = organize(
            &files,
            &OrganizerConfig { chunk_bytes: 48, unit_bytes: 16 },
        )
        .unwrap();
        let bytes = encode(&layout);
        let back = decode(&bytes).unwrap();
        prop_assert_eq!(back, layout);
    }

    /// Placement fractions always cover all files exactly once.
    #[test]
    fn placement_partition_is_total(
        n_files in 1usize..64,
        frac in 0.0f64..1.0,
    ) {
        use cb_storage::layout::LocationId;
        let p = Placement::split_fraction(n_files, frac, LocationId(0), LocationId(1));
        let a = p.files_at(LocationId(0)).count();
        let b = p.files_at(LocationId(1)).count();
        prop_assert_eq!(a + b, n_files);
        let fa = p.fraction_at(LocationId(0));
        prop_assert!((fa - a as f64 / n_files as f64).abs() < 1e-12);
    }
}
