//! A read-through chunk cache.
//!
//! The paper's iterative applications (k-means, PageRank) re-read the
//! *entire* dataset on every pass; when the data is remote, every pass pays
//! full WAN cost. [`CachedStore`] is a slave-side decorator that keeps
//! recently fetched ranges in memory (LRU, bounded by bytes), so passes
//! after the first hit cache instead of the wire. Entries are keyed by the
//! exact `(key, offset, len)` triple — chunk boundaries are stable across
//! passes by construction of the layout, so exact-range keying is both
//! simple and fully effective.

use crate::store::ObjectStore;
use bytes::Bytes;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

type CacheKey = (String, u64, u64);

/// LRU state: entries (with a recency stamp) plus a recency queue.
///
/// Lazy LRU: each access pushes a fresh `(key, stamp)` record instead of
/// moving the old one; eviction pops from the back and only evicts when
/// the popped stamp is still the key's *current* stamp — older records are
/// stale duplicates and are skipped.
struct CacheState {
    entries: HashMap<CacheKey, (Bytes, u64)>,
    recency: std::collections::VecDeque<(CacheKey, u64)>,
    bytes: usize,
    next_stamp: u64,
}

/// Callback invoked on every cache lookup: `(hit, bytes)`; see
/// [`CachedStore::with_observer`].
pub type CacheObserver = Arc<dyn Fn(bool, u64) + Send + Sync>;

/// A byte-bounded LRU read-through cache over any [`ObjectStore`].
pub struct CachedStore {
    inner: Arc<dyn ObjectStore>,
    capacity_bytes: usize,
    state: Mutex<CacheState>,
    hits: AtomicU64,
    misses: AtomicU64,
    name: String,
    observer: Option<CacheObserver>,
}

impl CachedStore {
    /// Cache up to `capacity_bytes` of fetched ranges over `inner`.
    pub fn new(inner: Arc<dyn ObjectStore>, capacity_bytes: usize) -> Self {
        assert!(capacity_bytes > 0, "cache capacity must be positive");
        CachedStore {
            name: format!("cached({})", inner.name()),
            inner,
            capacity_bytes,
            state: Mutex::new(CacheState {
                entries: HashMap::new(),
                recency: std::collections::VecDeque::new(),
                bytes: 0,
                next_stamp: 0,
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            observer: None,
        }
    }

    /// Call `observer(hit, bytes)` on every lookup, at the same points the
    /// hit/miss counters increment. A plain callback keeps this crate
    /// independent of the runtime's event types.
    pub fn with_observer(mut self, observer: CacheObserver) -> Self {
        self.observer = Some(observer);
        self
    }

    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Bytes currently cached.
    pub fn cached_bytes(&self) -> usize {
        self.state.lock().bytes
    }

    /// Drop everything (e.g. after the backing data changed).
    pub fn invalidate_all(&self) {
        let mut st = self.state.lock();
        st.entries.clear();
        st.recency.clear();
        st.bytes = 0;
    }

    fn insert(&self, key: CacheKey, data: Bytes) {
        // Oversized objects bypass the cache entirely.
        if data.len() > self.capacity_bytes {
            return;
        }
        let mut st = self.state.lock();
        if st.entries.contains_key(&key) {
            // A racing fetch already cached it. The bytes are in place, but
            // this access still happened: refresh recency, or a hot entry
            // fetched concurrently looks idle to LRU and gets evicted.
            drop(st);
            self.touch(&key);
            return;
        }
        let stamp = st.next_stamp;
        st.next_stamp += 1;
        st.bytes += data.len();
        st.entries.insert(key.clone(), (data, stamp));
        st.recency.push_front((key, stamp));
        while st.bytes > self.capacity_bytes {
            let Some((victim, stamp)) = st.recency.pop_back() else {
                break;
            };
            // Only evict when this record is the key's freshest access;
            // older records are stale duplicates left by touch().
            if st.entries.get(&victim).map(|(_, s)| *s) == Some(stamp) {
                if let Some((evicted, _)) = st.entries.remove(&victim) {
                    st.bytes -= evicted.len();
                }
            }
        }
    }

    fn touch(&self, key: &CacheKey) {
        let mut st = self.state.lock();
        let stamp = st.next_stamp;
        st.next_stamp += 1;
        let Some(entry) = st.entries.get_mut(key) else {
            return; // evicted between lookup and touch (benign race)
        };
        entry.1 = stamp;
        // Bound the queue so pathological hit storms cannot grow it
        // without limit.
        if st.recency.len() > 4 * st.entries.len() + 16 {
            let drained = std::mem::take(&mut st.recency);
            st.recency = drained
                .into_iter()
                .filter(|(k, s)| st.entries.get(k).map(|(_, cur)| cur == s).unwrap_or(false))
                .collect();
        }
        st.recency.push_front((key.clone(), stamp));
    }
}

impl ObjectStore for CachedStore {
    fn name(&self) -> &str {
        &self.name
    }

    fn put(&self, key: &str, data: Bytes) -> io::Result<()> {
        // Writes invalidate: simplest correct policy.
        self.invalidate_all();
        self.inner.put(key, data)
    }

    fn get_range(&self, key: &str, offset: u64, len: u64) -> io::Result<Bytes> {
        let ckey = (key.to_owned(), offset, len);
        // Bind the lookup result *outside* the `if let`: the scrutinee's
        // temporary MutexGuard would otherwise live across `touch()`'s own
        // lock() and self-deadlock.
        let cached = self.state.lock().entries.get(&ckey).map(|(b, _)| b.clone());
        if let Some(hit) = cached {
            self.hits.fetch_add(1, Ordering::Relaxed);
            if let Some(obs) = &self.observer {
                obs(true, len);
            }
            self.touch(&ckey);
            return Ok(hit);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        if let Some(obs) = &self.observer {
            obs(false, len);
        }
        let data = self.inner.get_range(key, offset, len)?;
        self.insert(ckey, data.clone());
        Ok(data)
    }

    fn size_of(&self, key: &str) -> io::Result<u64> {
        self.inner.size_of(key)
    }

    fn list(&self) -> Vec<String> {
        self.inner.list()
    }

    fn delete(&self, key: &str) -> io::Result<bool> {
        self.invalidate_all();
        self.inner.delete(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::s3sim::{RemoteProfile, RemoteStore};
    use crate::store::MemStore;
    use std::time::Duration;

    fn backing() -> Arc<MemStore> {
        let s = Arc::new(MemStore::new("m"));
        s.put("a", Bytes::from(vec![1u8; 10_000])).unwrap();
        s.put("b", Bytes::from(vec![2u8; 10_000])).unwrap();
        s
    }

    #[test]
    fn second_read_hits() {
        let c = CachedStore::new(backing(), 1 << 20);
        let x = c.get_range("a", 0, 100).unwrap();
        let y = c.get_range("a", 0, 100).unwrap();
        assert_eq!(x, y);
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
        // Different range of the same key is a distinct entry.
        c.get_range("a", 100, 100).unwrap();
        assert_eq!(c.misses(), 2);
        assert_eq!(c.cached_bytes(), 200);
    }

    #[test]
    fn lru_evicts_oldest() {
        let c = CachedStore::new(backing(), 250);
        c.get_range("a", 0, 100).unwrap(); // cache: a0
        c.get_range("a", 100, 100).unwrap(); // cache: a0, a100
        c.get_range("a", 0, 100).unwrap(); // touch a0 (now most recent)
        c.get_range("b", 0, 100).unwrap(); // evicts a100 (LRU), not a0
        assert!(c.cached_bytes() <= 250);
        let before = c.hits();
        c.get_range("a", 0, 100).unwrap();
        assert_eq!(c.hits(), before + 1, "a0 survived eviction");
        let misses_before = c.misses();
        c.get_range("a", 100, 100).unwrap();
        assert_eq!(c.misses(), misses_before + 1, "a100 was evicted");
    }

    #[test]
    fn oversized_reads_bypass() {
        let c = CachedStore::new(backing(), 50);
        c.get_range("a", 0, 1000).unwrap();
        assert_eq!(c.cached_bytes(), 0);
        c.get_range("a", 0, 1000).unwrap();
        assert_eq!(c.hits(), 0, "nothing cached, nothing hit");
    }

    #[test]
    fn writes_invalidate() {
        let c = CachedStore::new(backing(), 1 << 20);
        c.get_range("a", 0, 100).unwrap();
        c.put("a", Bytes::from(vec![9u8; 200])).unwrap();
        let got = c.get_range("a", 0, 100).unwrap();
        assert!(got.iter().all(|&b| b == 9), "stale data served after write");
        assert_eq!(c.hits(), 0);
    }

    #[test]
    fn cache_makes_throttled_rereads_fast() {
        // One cold read goes to the remote; every warm re-read must be
        // served from cache. Assert on the remote's request/byte accounting
        // rather than elapsed wall-clock, which flakes on loaded runners.
        let remote = Arc::new(RemoteStore::new(
            "slow",
            backing(),
            RemoteProfile {
                request_latency: Duration::from_millis(1),
                aggregate_bps: f64::INFINITY,
                per_conn_bps: f64::INFINITY,
            },
        ));
        let c = CachedStore::new(Arc::clone(&remote) as Arc<dyn ObjectStore>, 1 << 20);
        c.get_range("a", 0, 4096).unwrap();
        for _ in 0..10 {
            c.get_range("a", 0, 4096).unwrap();
        }
        assert_eq!(
            remote.requests_served(),
            1,
            "only the cold read hits the remote"
        );
        assert_eq!(remote.bytes_served(), 4096);
        assert_eq!(c.hits(), 10);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn duplicate_insert_counts_as_a_touch() {
        // Two slaves race on the same chunk: both miss, both fetch, both
        // insert. The second insert finds the entry present — it must still
        // refresh recency, or the (hot) entry is evicted as if never used.
        let c = CachedStore::new(backing(), 250);
        c.get_range("a", 0, 100).unwrap(); // cache: a0
        c.get_range("a", 100, 100).unwrap(); // cache: a0, a100

        // The racing fetch's insert of a0 — entry already present.
        c.insert(("a".into(), 0, 100), Bytes::from(vec![1u8; 100]));
        // Capacity forces one eviction: a100 is now LRU, a0 was touched.
        c.get_range("b", 0, 100).unwrap();
        let hits = c.hits();
        c.get_range("a", 0, 100).unwrap();
        assert_eq!(
            c.hits(),
            hits + 1,
            "a0 must survive: the duplicate insert touched it"
        );
        let misses = c.misses();
        c.get_range("a", 100, 100).unwrap();
        assert_eq!(c.misses(), misses + 1, "a100 was the true LRU victim");
    }

    #[test]
    fn observer_sees_hits_and_misses() {
        let seen: Arc<Mutex<Vec<(bool, u64)>>> = Arc::new(Mutex::new(Vec::new()));
        let obs_seen = Arc::clone(&seen);
        let c = CachedStore::new(backing(), 1 << 20).with_observer(Arc::new(move |hit, bytes| {
            obs_seen.lock().push((hit, bytes))
        }));
        c.get_range("a", 0, 100).unwrap(); // miss
        c.get_range("a", 0, 100).unwrap(); // hit
        c.get_range("b", 0, 50).unwrap(); // miss
        assert_eq!(*seen.lock(), vec![(false, 100), (true, 100), (false, 50)]);
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 2);
    }

    #[test]
    fn concurrent_readers_are_safe() {
        let c = Arc::new(CachedStore::new(backing(), 1 << 20));
        std::thread::scope(|s| {
            for _ in 0..8 {
                let c = Arc::clone(&c);
                s.spawn(move || {
                    for i in 0..200u64 {
                        let off = (i % 10) * 100;
                        let got = c.get_range("a", off, 100).unwrap();
                        assert_eq!(got.len(), 100);
                    }
                });
            }
        });
        assert_eq!(c.hits() + c.misses(), 1600);
        assert!(c.cached_bytes() <= 1 << 20);
    }
}
