//! The data organizer: analyzes a dataset and produces its layout/index.
//!
//! Mirrors the paper's offline "data organization" step: the dataset is
//! divided into files, the files into chunks sized to compute-node memory,
//! and each chunk into atomically-processable units.

use crate::layout::{ChunkId, ChunkMeta, DatasetLayout, FileId, FileMeta, LayoutError};

/// Parameters for organizing raw files into a chunked layout.
#[derive(Debug, Clone)]
pub struct OrganizerConfig {
    /// Target chunk size in bytes; actual chunks are a whole number of units
    /// and never exceed this (except when a single unit is larger).
    pub chunk_bytes: u64,
    /// Size of one data unit in bytes (fixed-size records).
    pub unit_bytes: u64,
}

/// Error from the organizer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OrganizeError {
    /// Unit size must be positive.
    ZeroUnit,
    /// Chunk size must hold at least one unit.
    ChunkSmallerThanUnit { chunk: u64, unit: u64 },
    /// A file's size is not a whole number of units.
    MisalignedFile { file: String, size: u64, unit: u64 },
    /// The resulting layout failed validation (internal bug guard).
    Invalid(LayoutError),
}

impl std::fmt::Display for OrganizeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OrganizeError::ZeroUnit => write!(f, "unit size must be positive"),
            OrganizeError::ChunkSmallerThanUnit { chunk, unit } => {
                write!(f, "chunk size {chunk} smaller than unit size {unit}")
            }
            OrganizeError::MisalignedFile { file, size, unit } => {
                write!(
                    f,
                    "file {file} size {size} is not a multiple of unit size {unit}"
                )
            }
            OrganizeError::Invalid(e) => write!(f, "organizer produced invalid layout: {e}"),
        }
    }
}

impl std::error::Error for OrganizeError {}

/// Analyze a set of `(name, size)` files into a chunked layout.
///
/// Chunks within a file are equal-sized (a whole number of units, at most
/// `chunk_bytes`) except the last, which takes the remainder. Chunk ids are
/// assigned file-by-file so consecutive chunk ids mean sequential reads.
pub fn organize(
    files: &[(String, u64)],
    cfg: &OrganizerConfig,
) -> Result<DatasetLayout, OrganizeError> {
    if cfg.unit_bytes == 0 {
        return Err(OrganizeError::ZeroUnit);
    }
    if cfg.chunk_bytes < cfg.unit_bytes {
        return Err(OrganizeError::ChunkSmallerThanUnit {
            chunk: cfg.chunk_bytes,
            unit: cfg.unit_bytes,
        });
    }
    let units_per_chunk = cfg.chunk_bytes / cfg.unit_bytes;
    let chunk_len = units_per_chunk * cfg.unit_bytes;

    let mut metas = Vec::with_capacity(files.len());
    let mut chunks = Vec::new();
    for (i, (name, size)) in files.iter().enumerate() {
        if size % cfg.unit_bytes != 0 {
            return Err(OrganizeError::MisalignedFile {
                file: name.clone(),
                size: *size,
                unit: cfg.unit_bytes,
            });
        }
        let fid = FileId(i as u32);
        metas.push(FileMeta {
            id: fid,
            name: name.clone(),
            size: *size,
        });
        let mut offset = 0u64;
        while offset < *size {
            let len = chunk_len.min(*size - offset);
            chunks.push(ChunkMeta {
                id: ChunkId(chunks.len() as u32),
                file: fid,
                offset,
                len,
                units: len / cfg.unit_bytes,
            });
            offset += len;
        }
    }
    let layout = DatasetLayout {
        files: metas,
        chunks,
    };
    layout.validate().map_err(OrganizeError::Invalid)?;
    Ok(layout)
}

/// Analyze an existing [`ObjectStore`]: every object becomes a file of the
/// dataset (in the store's sorted key order), chunked per `cfg`. This is
/// the paper's workflow — *"a data index file is generated after analyzing
/// the data set"* — for data that already sits in a store rather than being
/// synthesized.
///
/// [`ObjectStore`]: crate::store::ObjectStore
pub fn analyze_store(
    store: &dyn crate::store::ObjectStore,
    cfg: &OrganizerConfig,
) -> Result<DatasetLayout, OrganizeError> {
    let mut files = Vec::new();
    for key in store.list() {
        let size = store
            .size_of(&key)
            .map_err(|e| OrganizeError::MisalignedFile {
                // Listing raced a deletion; report it through the closest
                // existing variant with the I/O detail in the name.
                file: format!("{key} ({e})"),
                size: 0,
                unit: cfg.unit_bytes,
            })?;
        files.push((key, size));
    }
    organize(&files, cfg)
}

/// Convenience: an evenly divided synthetic dataset — `n_files` files named
/// `part-NNNNN`, each of `file_bytes`, chunked at `chunk_bytes` with
/// `unit_bytes` records. This is the shape of the paper's datasets
/// (120 GB = 32 files, 960 chunks total).
pub fn organize_even(
    n_files: usize,
    file_bytes: u64,
    chunk_bytes: u64,
    unit_bytes: u64,
) -> Result<DatasetLayout, OrganizeError> {
    let files: Vec<(String, u64)> = (0..n_files)
        .map(|i| (format!("part-{i:05}"), file_bytes))
        .collect();
    organize(
        &files,
        &OrganizerConfig {
            chunk_bytes,
            unit_bytes,
        },
    )
}

/// Build the layout matching the paper's evaluation shape: `total_bytes`
/// split into `n_files` equal files, with exactly `jobs_per_file` chunks per
/// file. The unit size must divide the chunk size evenly.
pub fn organize_paper_shape(
    total_bytes: u64,
    n_files: usize,
    jobs_per_file: usize,
    unit_bytes: u64,
) -> Result<DatasetLayout, OrganizeError> {
    assert!(n_files > 0 && jobs_per_file > 0);
    let file_bytes = total_bytes / n_files as u64;
    let file_bytes = file_bytes - file_bytes % unit_bytes;
    let chunk_bytes = (file_bytes / jobs_per_file as u64).max(unit_bytes);
    let chunk_bytes = chunk_bytes - chunk_bytes % unit_bytes;
    organize_even(n_files, file_bytes, chunk_bytes.max(unit_bytes), unit_bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn even_dataset_has_expected_shape() {
        let l = organize_even(32, 3840, 128, 8).unwrap();
        assert_eq!(l.files.len(), 32);
        assert_eq!(l.n_jobs(), 32 * 30);
        assert_eq!(l.total_bytes(), 32 * 3840);
        assert_eq!(l.total_units(), 32 * 3840 / 8);
        l.validate().unwrap();
    }

    #[test]
    fn remainder_chunk_is_smaller() {
        // 100-byte file, 8-byte units (12 units + 4 spare is misaligned) —
        // use 96 bytes: chunks of 40,40,16.
        let l = organize(
            &[("f".into(), 96)],
            &OrganizerConfig {
                chunk_bytes: 40,
                unit_bytes: 8,
            },
        )
        .unwrap();
        let lens: Vec<u64> = l.chunks.iter().map(|c| c.len).collect();
        assert_eq!(lens, vec![40, 40, 16]);
        let units: Vec<u64> = l.chunks.iter().map(|c| c.units).collect();
        assert_eq!(units, vec![5, 5, 2]);
    }

    #[test]
    fn chunk_rounds_down_to_unit_multiple() {
        // chunk_bytes 42 with 8-byte units => effective chunk 40.
        let l = organize(
            &[("f".into(), 80)],
            &OrganizerConfig {
                chunk_bytes: 42,
                unit_bytes: 8,
            },
        )
        .unwrap();
        assert_eq!(l.chunks[0].len, 40);
        assert_eq!(l.n_jobs(), 2);
    }

    #[test]
    fn misaligned_file_rejected() {
        let err = organize(
            &[("f".into(), 81)],
            &OrganizerConfig {
                chunk_bytes: 40,
                unit_bytes: 8,
            },
        )
        .unwrap_err();
        assert!(matches!(err, OrganizeError::MisalignedFile { .. }));
    }

    #[test]
    fn degenerate_configs_rejected() {
        assert_eq!(
            organize(
                &[],
                &OrganizerConfig {
                    chunk_bytes: 8,
                    unit_bytes: 0
                }
            )
            .unwrap_err(),
            OrganizeError::ZeroUnit
        );
        assert!(matches!(
            organize(
                &[],
                &OrganizerConfig {
                    chunk_bytes: 4,
                    unit_bytes: 8
                }
            )
            .unwrap_err(),
            OrganizeError::ChunkSmallerThanUnit { .. }
        ));
    }

    #[test]
    fn empty_file_list_is_empty_layout() {
        let l = organize(
            &[],
            &OrganizerConfig {
                chunk_bytes: 64,
                unit_bytes: 8,
            },
        )
        .unwrap();
        assert_eq!(l.n_jobs(), 0);
        assert_eq!(l.total_bytes(), 0);
    }

    #[test]
    fn analyze_store_builds_layout_from_contents() {
        use crate::store::{MemStore, ObjectStore};
        use bytes::Bytes;
        let store = MemStore::new("m");
        store.put("b-file", Bytes::from(vec![0u8; 96])).unwrap();
        store.put("a-file", Bytes::from(vec![0u8; 64])).unwrap();
        let layout = analyze_store(
            &store,
            &OrganizerConfig {
                chunk_bytes: 32,
                unit_bytes: 8,
            },
        )
        .unwrap();
        // Files in sorted key order, fully tiled.
        assert_eq!(layout.files[0].name, "a-file");
        assert_eq!(layout.files[1].name, "b-file");
        assert_eq!(layout.n_jobs(), 2 + 3);
        layout.validate().unwrap();

        // A misaligned object is rejected.
        store.put("c-file", Bytes::from(vec![0u8; 65])).unwrap();
        assert!(matches!(
            analyze_store(
                &store,
                &OrganizerConfig {
                    chunk_bytes: 32,
                    unit_bytes: 8
                }
            ),
            Err(OrganizeError::MisalignedFile { .. })
        ));
    }

    #[test]
    fn paper_shape_is_960_jobs() {
        // Scaled-down analogue of the paper: 32 files, 30 jobs each.
        let l = organize_paper_shape(32 * 30 * 1024, 32, 30, 16).unwrap();
        assert_eq!(l.files.len(), 32);
        assert_eq!(l.n_jobs(), 960);
        l.validate().unwrap();
    }
}
