//! The binary index-file format.
//!
//! The paper: *"A data index file is generated after analyzing the data set.
//! It holds metadata such as physical locations (data files), starting offset
//! addresses, size of chunks and number of data units inside the chunks.
//! When the head node starts, it reads the index file in order to generate
//! the job pool."*
//!
//! Format (all integers little-endian):
//!
//! ```text
//! magic   : [u8; 4] = b"GRIX"
//! version : u32     = 1
//! n_files : u32
//! files   : n_files × { name_len: u16, name: [u8], size: u64 }
//! n_chunks: u32
//! chunks  : n_chunks × { file: u32, offset: u64, len: u64, units: u64 }
//! crc     : u32  (CRC-32/ISO-HDLC of everything before it)
//! ```

use crate::layout::{ChunkId, ChunkMeta, DatasetLayout, FileId, FileMeta};
use std::fmt;

const MAGIC: &[u8; 4] = b"GRIX";
const VERSION: u32 = 1;

/// Error decoding an index file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IndexError {
    /// Input ended prematurely.
    Truncated { need: usize, have: usize },
    /// Bad magic bytes.
    BadMagic,
    /// Unsupported version.
    BadVersion(u32),
    /// CRC mismatch — the file is corrupt.
    BadChecksum { stored: u32, computed: u32 },
    /// File name is not valid UTF-8.
    BadName,
    /// Decoded layout violates structural invariants.
    InvalidLayout(String),
}

impl fmt::Display for IndexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IndexError::Truncated { need, have } => {
                write!(f, "index truncated: need {need} bytes, have {have}")
            }
            IndexError::BadMagic => write!(f, "not an index file (bad magic)"),
            IndexError::BadVersion(v) => write!(f, "unsupported index version {v}"),
            IndexError::BadChecksum { stored, computed } => {
                write!(
                    f,
                    "index checksum mismatch: stored {stored:08x}, computed {computed:08x}"
                )
            }
            IndexError::BadName => write!(f, "file name is not valid UTF-8"),
            IndexError::InvalidLayout(e) => write!(f, "decoded layout invalid: {e}"),
        }
    }
}

impl std::error::Error for IndexError {}

/// CRC-32 (ISO-HDLC polynomial, reflected) — small table-free implementation;
/// index files are tiny so speed is irrelevant, determinism is everything.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Serialize a layout into the index format.
pub fn encode(layout: &DatasetLayout) -> Vec<u8> {
    let mut out = Vec::with_capacity(64 + layout.files.len() * 32 + layout.chunks.len() * 28);
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&(layout.files.len() as u32).to_le_bytes());
    for f in &layout.files {
        let name = f.name.as_bytes();
        assert!(name.len() <= u16::MAX as usize, "file name too long");
        out.extend_from_slice(&(name.len() as u16).to_le_bytes());
        out.extend_from_slice(name);
        out.extend_from_slice(&f.size.to_le_bytes());
    }
    out.extend_from_slice(&(layout.chunks.len() as u32).to_le_bytes());
    for c in &layout.chunks {
        out.extend_from_slice(&c.file.0.to_le_bytes());
        out.extend_from_slice(&c.offset.to_le_bytes());
        out.extend_from_slice(&c.len.to_le_bytes());
        out.extend_from_slice(&c.units.to_le_bytes());
    }
    let crc = crc32(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], IndexError> {
        if self.pos + n > self.buf.len() {
            return Err(IndexError::Truncated {
                need: self.pos + n,
                have: self.buf.len(),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u16(&mut self) -> Result<u16, IndexError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, IndexError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, IndexError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
}

/// Parse and validate an index file.
pub fn decode(data: &[u8]) -> Result<DatasetLayout, IndexError> {
    if data.len() < 4 {
        return Err(IndexError::Truncated {
            need: 4,
            have: data.len(),
        });
    }
    // Checksum covers everything but the trailing CRC word.
    if data.len() < 8 {
        return Err(IndexError::Truncated {
            need: 8,
            have: data.len(),
        });
    }
    let (body, crc_bytes) = data.split_at(data.len() - 4);
    let stored = u32::from_le_bytes(crc_bytes.try_into().unwrap());
    let computed = crc32(body);
    if stored != computed {
        return Err(IndexError::BadChecksum { stored, computed });
    }

    let mut r = Reader { buf: body, pos: 0 };
    if r.take(4)? != MAGIC {
        return Err(IndexError::BadMagic);
    }
    let version = r.u32()?;
    if version != VERSION {
        return Err(IndexError::BadVersion(version));
    }
    let n_files = r.u32()? as usize;
    let mut files = Vec::with_capacity(n_files.min(1 << 20));
    for i in 0..n_files {
        let name_len = r.u16()? as usize;
        let name = std::str::from_utf8(r.take(name_len)?)
            .map_err(|_| IndexError::BadName)?
            .to_owned();
        let size = r.u64()?;
        files.push(FileMeta {
            id: FileId(i as u32),
            name,
            size,
        });
    }
    let n_chunks = r.u32()? as usize;
    let mut chunks = Vec::with_capacity(n_chunks.min(1 << 24));
    for i in 0..n_chunks {
        let file = FileId(r.u32()?);
        let offset = r.u64()?;
        let len = r.u64()?;
        let units = r.u64()?;
        chunks.push(ChunkMeta {
            id: ChunkId(i as u32),
            file,
            offset,
            len,
            units,
        });
    }
    let layout = DatasetLayout { files, chunks };
    layout
        .validate()
        .map_err(|e| IndexError::InvalidLayout(e.to_string()))?;
    Ok(layout)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::organizer::organize_even;

    #[test]
    fn round_trip() {
        let layout = organize_even(4, 1024, 64, 8).unwrap();
        let bytes = encode(&layout);
        let back = decode(&bytes).unwrap();
        assert_eq!(layout, back);
    }

    #[test]
    fn crc_is_stable() {
        // Pin the CRC-32 implementation against the standard test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn detects_corruption() {
        let layout = organize_even(2, 512, 64, 8).unwrap();
        let mut bytes = encode(&layout);
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        assert!(matches!(
            decode(&bytes),
            Err(IndexError::BadChecksum { .. })
        ));
    }

    #[test]
    fn detects_truncation() {
        let layout = organize_even(2, 512, 64, 8).unwrap();
        let bytes = encode(&layout);
        assert!(matches!(
            decode(&bytes[..5]),
            Err(IndexError::Truncated { .. })
        ));
    }

    #[test]
    fn detects_bad_magic() {
        let layout = organize_even(1, 128, 64, 8).unwrap();
        let mut bytes = encode(&layout);
        bytes[0] = b'X';
        // CRC still matches body, so recompute it.
        let n = bytes.len();
        let crc = crc32(&bytes[..n - 4]);
        bytes[n - 4..].copy_from_slice(&crc.to_le_bytes());
        assert_eq!(decode(&bytes), Err(IndexError::BadMagic));
    }

    #[test]
    fn detects_bad_version() {
        let layout = organize_even(1, 128, 64, 8).unwrap();
        let mut bytes = encode(&layout);
        bytes[4..8].copy_from_slice(&99u32.to_le_bytes());
        let n = bytes.len();
        let crc = crc32(&bytes[..n - 4]);
        bytes[n - 4..].copy_from_slice(&crc.to_le_bytes());
        assert_eq!(decode(&bytes), Err(IndexError::BadVersion(99)));
    }

    #[test]
    fn rejects_invalid_layout_with_valid_framing() {
        // Hand-build an index whose chunk list leaves a gap.
        let layout = DatasetLayout {
            files: vec![FileMeta {
                id: FileId(0),
                name: "f".into(),
                size: 100,
            }],
            chunks: vec![ChunkMeta {
                id: ChunkId(0),
                file: FileId(0),
                offset: 0,
                len: 60,
                units: 6,
            }],
        };
        let bytes = encode(&layout);
        assert!(matches!(decode(&bytes), Err(IndexError::InvalidLayout(_))));
    }
}
