//! A wall-clock–accurate simulated S3 (or any remote object service).
//!
//! The paper evaluated against the real Amazon S3; we cannot, so
//! [`RemoteStore`] wraps any inner [`ObjectStore`] and imposes the two
//! behaviours that matter to the middleware:
//!
//! * **per-request latency** — every GET pays a fixed round-trip before the
//!   first byte (S3's time-to-first-byte),
//! * **bandwidth** — a *shared* aggregate limit across all concurrent
//!   requests (the service frontend / WAN bottleneck) plus a *per-request*
//!   streaming cap (a single HTTP connection cannot exceed some rate —
//!   this is exactly why the paper's slaves fetch with multiple retrieval
//!   threads).
//!
//! The aggregate limit is enforced by [`Throttle`] (a shared serial
//! bottleneck); the per-connection cap is enforced by additionally sleeping
//! out the remainder of `len / per_conn_bps` if the shared queue was faster.

use crate::store::ObjectStore;
use bytes::Bytes;
use cb_simnet::Throttle;
use std::io;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Bandwidth/latency profile of a simulated remote store.
#[derive(Debug, Clone, Copy)]
pub struct RemoteProfile {
    /// Time-to-first-byte of every request.
    pub request_latency: Duration,
    /// Aggregate bytes/sec across all concurrent requests.
    pub aggregate_bps: f64,
    /// Max bytes/sec a single request (connection) can stream.
    pub per_conn_bps: f64,
}

impl RemoteProfile {
    /// A profile loosely shaped like 2011-era S3 access from a campus
    /// network, scaled for laptop-size experiments: 30 ms TTFB, 200 MB/s
    /// aggregate, 25 MB/s per connection (so multi-threaded retrieval pays
    /// off up to ~8 connections).
    pub fn s3_like() -> Self {
        RemoteProfile {
            request_latency: Duration::from_millis(30),
            aggregate_bps: 200.0e6,
            per_conn_bps: 25.0e6,
        }
    }

    /// A fast local storage node: no request latency to speak of, high
    /// aggregate bandwidth shared by the cluster.
    pub fn local_disk_like() -> Self {
        RemoteProfile {
            request_latency: Duration::from_micros(200),
            aggregate_bps: 800.0e6,
            per_conn_bps: 400.0e6,
        }
    }

    /// No throttling at all (unit tests).
    pub fn unlimited() -> Self {
        RemoteProfile {
            request_latency: Duration::ZERO,
            aggregate_bps: f64::INFINITY,
            per_conn_bps: f64::INFINITY,
        }
    }
}

/// An [`ObjectStore`] decorator imposing a [`RemoteProfile`] in wall-clock
/// time. Writes (`put`) are deliberately *not* throttled: dataset
/// materialization is test scaffolding, not part of the measured system.
pub struct RemoteStore {
    inner: Arc<dyn ObjectStore>,
    profile: RemoteProfile,
    shared: Throttle,
    name: String,
}

impl RemoteStore {
    pub fn new(
        name: impl Into<String>,
        inner: Arc<dyn ObjectStore>,
        profile: RemoteProfile,
    ) -> Self {
        RemoteStore {
            shared: Throttle::new(profile.aggregate_bps, profile.request_latency),
            inner,
            profile,
            name: name.into(),
        }
    }

    /// The profile this store enforces.
    pub fn profile(&self) -> RemoteProfile {
        self.profile
    }

    /// Total bytes served through the throttled path.
    pub fn bytes_served(&self) -> u64 {
        self.shared.total_bytes()
    }

    /// Number of GET requests served.
    pub fn requests_served(&self) -> u64 {
        self.shared.total_requests()
    }
}

impl ObjectStore for RemoteStore {
    fn name(&self) -> &str {
        &self.name
    }

    fn put(&self, key: &str, data: Bytes) -> io::Result<()> {
        self.inner.put(key, data)
    }

    fn get_range(&self, key: &str, offset: u64, len: u64) -> io::Result<Bytes> {
        let start = Instant::now();
        // Resolve the GET first: a request that fails (missing key, an
        // injected fault in the backing store) pays the round-trip latency
        // but must not bill `len` bytes of bandwidth to the shared wire —
        // the service never streamed the body. Charging up front both
        // inflated `bytes_served()` with bytes that were never delivered and
        // slept the full transfer time on every doomed retry.
        let body = match self.inner.get_range(key, offset, len) {
            Ok(body) => body,
            Err(e) => {
                self.shared.acquire(0);
                return Err(e);
            }
        };
        // Shared bottleneck: queueing + aggregate bandwidth + latency.
        self.shared.acquire(len);
        // Per-connection streaming cap.
        if self.profile.per_conn_bps.is_finite() {
            let conn_floor = self.profile.request_latency
                + Duration::from_secs_f64(len as f64 / self.profile.per_conn_bps);
            let elapsed = start.elapsed();
            if conn_floor > elapsed {
                std::thread::sleep(conn_floor - elapsed);
            }
        }
        Ok(body)
    }

    fn size_of(&self, key: &str) -> io::Result<u64> {
        self.inner.size_of(key)
    }

    fn list(&self) -> Vec<String> {
        self.inner.list()
    }

    fn delete(&self, key: &str) -> io::Result<bool> {
        self.inner.delete(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::MemStore;

    fn store_with(profile: RemoteProfile) -> RemoteStore {
        let inner = Arc::new(MemStore::new("backing"));
        inner.put("obj", Bytes::from(vec![7u8; 1_000_000])).unwrap();
        RemoteStore::new("s3-sim", inner, profile)
    }

    #[test]
    fn data_passes_through_unchanged() {
        let s = store_with(RemoteProfile::unlimited());
        let got = s.get_range("obj", 10, 100).unwrap();
        assert_eq!(got.len(), 100);
        assert!(got.iter().all(|&b| b == 7));
        assert_eq!(s.size_of("obj").unwrap(), 1_000_000);
        assert_eq!(s.list(), vec!["obj".to_string()]);
    }

    #[test]
    fn latency_enforced() {
        let s = store_with(RemoteProfile {
            request_latency: Duration::from_millis(25),
            aggregate_bps: f64::INFINITY,
            per_conn_bps: f64::INFINITY,
        });
        let t0 = Instant::now();
        s.get_range("obj", 0, 10).unwrap();
        assert!(t0.elapsed() >= Duration::from_millis(20));
    }

    #[test]
    fn per_connection_cap_enforced() {
        // Aggregate is huge, per-conn 1 MB/s: 200 KB takes >= ~200 ms.
        let s = store_with(RemoteProfile {
            request_latency: Duration::ZERO,
            aggregate_bps: f64::INFINITY,
            per_conn_bps: 1.0e6,
        });
        let t0 = Instant::now();
        s.get_range("obj", 0, 200_000).unwrap();
        assert!(t0.elapsed() >= Duration::from_millis(180));
    }

    #[test]
    fn counters_track_gets() {
        let s = store_with(RemoteProfile::unlimited());
        s.get_range("obj", 0, 1000).unwrap();
        s.get_range("obj", 0, 500).unwrap();
        assert_eq!(s.bytes_served(), 1500);
        assert_eq!(s.requests_served(), 2);
    }

    #[test]
    fn failed_gets_pay_latency_but_do_not_count_bytes_served() {
        let s = store_with(RemoteProfile {
            request_latency: Duration::from_millis(10),
            // 1 B/s: if a failed GET charged its length we'd sleep for ages
            // and the byte counter would lie.
            aggregate_bps: 1.0,
            per_conn_bps: f64::INFINITY,
        });
        let t0 = Instant::now();
        assert!(s.get_range("no-such-object", 0, 1_000_000).is_err());
        assert!(
            t0.elapsed() < Duration::from_millis(500),
            "failed GET slept out a transfer that never happened: {:?}",
            t0.elapsed()
        );
        assert_eq!(s.bytes_served(), 0, "no body streamed, no bytes billed");
        assert_eq!(s.requests_served(), 1, "the request itself still counts");
    }

    #[test]
    fn puts_are_not_throttled() {
        let s = store_with(RemoteProfile {
            request_latency: Duration::from_secs(5),
            aggregate_bps: 1.0,
            per_conn_bps: 1.0,
        });
        let t0 = Instant::now();
        s.put("fresh", Bytes::from_static(b"abc")).unwrap();
        assert!(t0.elapsed() < Duration::from_millis(100));
    }
}
