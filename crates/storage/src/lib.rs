//! # cb-storage — data organization and object stores
//!
//! Implements the paper's data-organization layer (§III-B):
//!
//! * [`layout`] — files → chunks → units, plus [`layout::Placement`] mapping
//!   files to sites (local cluster vs. cloud).
//! * [`index`] — the binary index file the head node reads to build the job
//!   pool (CRC-protected, versioned).
//! * [`organizer`] — the offline analyzer producing layouts from raw files.
//! * [`store`] — the [`store::ObjectStore`] abstraction with in-memory and
//!   on-disk backends.
//! * [`s3sim`] — a wall-clock-accurate simulated S3 (request latency,
//!   aggregate and per-connection bandwidth), substituting for the real
//!   service the paper used.
//! * [`retrieve`] — the multi-threaded ranged-GET retriever the slaves use
//!   for remote chunks.
//! * [`builder`] — synthetic dataset materialization for tests, examples and
//!   benchmarks.

#![deny(unsafe_code)]

pub mod builder;
pub mod cache;
pub mod faults;
pub mod index;
pub mod layout;
pub mod organizer;
pub mod retrieve;
pub mod s3sim;
pub mod store;

pub use builder::{materialize, verify_placement, StoreMap};
pub use cache::CachedStore;
pub use faults::{FaultMode, FlakyStore};
pub use index::{decode as decode_index, encode as encode_index, IndexError};
pub use layout::{ChunkId, ChunkMeta, DatasetLayout, FileId, FileMeta, LocationId, Placement};
pub use organizer::{organize, organize_even, organize_paper_shape, OrganizerConfig};
pub use retrieve::Retriever;
pub use s3sim::{RemoteProfile, RemoteStore};
pub use store::{DiskStore, MemStore, ObjectStore};
