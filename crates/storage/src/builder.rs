//! Dataset materialization: writing synthetic datasets into stores.
//!
//! Applications provide a per-chunk byte generator; the builder writes every
//! file into the store that the [`Placement`] says is its home, and returns
//! the encoded index. This is the test-harness analogue of the paper's
//! offline data organizer plus the upload of part of the dataset to S3.

use crate::index;
use crate::layout::{ChunkMeta, DatasetLayout, LocationId, Placement};
use crate::store::ObjectStore;
use bytes::Bytes;
use std::collections::BTreeMap;
use std::io;
use std::sync::Arc;

/// Map from site to the store serving that site.
pub type StoreMap = BTreeMap<LocationId, Arc<dyn ObjectStore>>;

/// Materialize `layout` into `stores` according to `placement`.
///
/// `fill` is called once per chunk with the chunk's metadata and a zeroed
/// buffer of exactly `chunk.len` bytes to fill with records.
///
/// Returns the encoded index file (which the head node consumes).
pub fn materialize<F>(
    layout: &DatasetLayout,
    placement: &Placement,
    stores: &StoreMap,
    mut fill: F,
) -> io::Result<Vec<u8>>
where
    F: FnMut(&ChunkMeta, &mut [u8]),
{
    layout
        .validate()
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
    if placement.n_files() != layout.files.len() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!(
                "placement covers {} files, layout has {}",
                placement.n_files(),
                layout.files.len()
            ),
        ));
    }
    for file in &layout.files {
        let home = placement.home(file.id);
        let store = stores.get(&home).ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("no store registered for {home}"),
            )
        })?;
        let mut buf = vec![0u8; file.size as usize];
        for chunk in layout.chunks_of_file(file.id) {
            let range = chunk.offset as usize..(chunk.offset + chunk.len) as usize;
            fill(chunk, &mut buf[range]);
        }
        store.put(&file.name, Bytes::from(buf))?;
    }
    Ok(index::encode(layout))
}

/// Verify that every file of `layout` is present, with the right size, in
/// its home store. Useful as a post-materialization sanity check and in
/// failure-injection tests.
pub fn verify_placement(
    layout: &DatasetLayout,
    placement: &Placement,
    stores: &StoreMap,
) -> io::Result<()> {
    for file in &layout.files {
        let home = placement.home(file.id);
        let store = stores.get(&home).ok_or_else(|| {
            io::Error::new(io::ErrorKind::NotFound, format!("no store for {home}"))
        })?;
        let size = store.size_of(&file.name)?;
        if size != file.size {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "{} has size {size} in {}, index says {}",
                    file.name,
                    store.name(),
                    file.size
                ),
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::FileId;
    use crate::organizer::organize_even;
    use crate::store::MemStore;

    fn stores2() -> (StoreMap, Arc<MemStore>, Arc<MemStore>) {
        let local = Arc::new(MemStore::new("local"));
        let cloud = Arc::new(MemStore::new("cloud"));
        let mut m: StoreMap = BTreeMap::new();
        m.insert(LocationId(0), local.clone() as Arc<dyn ObjectStore>);
        m.insert(LocationId(1), cloud.clone() as Arc<dyn ObjectStore>);
        (m, local, cloud)
    }

    #[test]
    fn materialize_places_files_by_home() {
        let layout = organize_even(4, 256, 64, 8).unwrap();
        let placement = Placement::split_fraction(4, 0.5, LocationId(0), LocationId(1));
        let (stores, local, cloud) = stores2();
        let idx = materialize(&layout, &placement, &stores, |chunk, buf| {
            buf.fill(chunk.id.0 as u8);
        })
        .unwrap();

        assert_eq!(local.list().len(), 2);
        assert_eq!(cloud.list().len(), 2);
        verify_placement(&layout, &placement, &stores).unwrap();

        // Index round-trips.
        let decoded = index::decode(&idx).unwrap();
        assert_eq!(decoded, layout);

        // Chunk contents are what the generator wrote, at the right offsets.
        let c = layout.chunk(crate::layout::ChunkId(1));
        let file = layout.file(c.file);
        let bytes = local.get_range(&file.name, c.offset, c.len).unwrap();
        assert!(bytes.iter().all(|&b| b == 1));
    }

    #[test]
    fn missing_store_is_an_error() {
        let layout = organize_even(2, 64, 64, 8).unwrap();
        let placement = Placement::all_at(2, LocationId(9));
        let (stores, _, _) = stores2();
        let err = materialize(&layout, &placement, &stores, |_, _| {}).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
    }

    #[test]
    fn placement_size_mismatch_is_an_error() {
        let layout = organize_even(3, 64, 64, 8).unwrap();
        let placement = Placement::all_at(2, LocationId(0));
        let (stores, _, _) = stores2();
        let err = materialize(&layout, &placement, &stores, |_, _| {}).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
    }

    #[test]
    fn verify_detects_missing_and_resized_files() {
        let layout = organize_even(2, 64, 64, 8).unwrap();
        let placement = Placement::all_at(2, LocationId(0));
        let (stores, local, _) = stores2();
        materialize(&layout, &placement, &stores, |_, _| {}).unwrap();
        verify_placement(&layout, &placement, &stores).unwrap();

        // Resize one file behind the framework's back.
        local
            .put("part-00000", Bytes::from_static(b"tiny"))
            .unwrap();
        let err = verify_placement(&layout, &placement, &stores).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);

        // Delete it entirely.
        local.delete("part-00000").unwrap();
        let err = verify_placement(&layout, &placement, &stores).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::NotFound);
        let _ = FileId(0);
    }
}
