//! Fault injection: a store decorator that fails requests on a
//! deterministic schedule.
//!
//! 2011-era S3 served bulk workloads with a small but real transient-error
//! rate, which is why production retrievers retry. [`FlakyStore`] lets
//! tests and examples reproduce that: each GET fails with probability `p`
//! (seeded, so runs are reproducible), deterministically for the first
//! `n` attempts on each key, or by *stalling* (a hung connection that
//! eventually answers — the case a per-GET deadline exists for). Faults can
//! be scoped to a key set, e.g. [`keys_homed_at`] to degrade one data
//! location while the rest of the fabric stays healthy.

use crate::layout::{DatasetLayout, LocationId, Placement};
use crate::store::ObjectStore;
use bytes::Bytes;
use cb_simnet::DetRng;
use parking_lot::Mutex;
use std::collections::{BTreeSet, HashMap};
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// When a [`FlakyStore`] injects failures.
#[derive(Debug, Clone, Copy)]
pub enum FaultMode {
    /// Every GET fails independently with this probability.
    Random { probability: f64 },
    /// The first `n` GETs of each key fail, then the key works forever —
    /// the worst case a bounded retry policy must survive.
    FirstNPerKey { n: u32 },
    /// Every GET hangs for `delay` before answering — a stalled connection.
    /// The data still arrives, so only a retriever with a per-GET deadline
    /// (see `Retriever::with_deadline`) notices anything is wrong.
    Stall { delay: Duration },
}

/// The keys of all files homed at `loc` under `placement` — the scope to
/// hand [`FlakyStore::with_scope`] for location-targeted fault injection.
pub fn keys_homed_at(
    layout: &DatasetLayout,
    placement: &Placement,
    loc: LocationId,
) -> BTreeSet<String> {
    layout
        .files
        .iter()
        .filter(|f| placement.home(f.id) == loc)
        .map(|f| f.name.clone())
        .collect()
}

/// An [`ObjectStore`] decorator that injects transient GET failures.
/// Writes and metadata operations are never failed (they are test
/// scaffolding).
pub struct FlakyStore {
    inner: Arc<dyn ObjectStore>,
    mode: FaultMode,
    /// When set, only GETs for these keys are eligible for faults.
    scope: Option<BTreeSet<String>>,
    rng: Mutex<DetRng>,
    per_key_attempts: Mutex<HashMap<String, u32>>,
    injected: AtomicU64,
    name: String,
    observer: Option<FaultObserver>,
}

/// Callback invoked once per injected fault; see [`FlakyStore::with_observer`].
pub type FaultObserver = Arc<dyn Fn() + Send + Sync>;

impl FlakyStore {
    pub fn new(inner: Arc<dyn ObjectStore>, mode: FaultMode, seed: u64) -> Self {
        FlakyStore {
            name: format!("flaky({})", inner.name()),
            inner,
            mode,
            scope: None,
            rng: Mutex::new(DetRng::new(seed)),
            per_key_attempts: Mutex::new(HashMap::new()),
            injected: AtomicU64::new(0),
            observer: None,
        }
    }

    /// Call `observer()` every time a fault is injected, at the same point
    /// the `injected_failures` counter increments — lets the observability
    /// layer record injected faults without this crate knowing its types.
    pub fn with_observer(mut self, observer: FaultObserver) -> Self {
        self.observer = Some(observer);
        self
    }

    /// Restrict fault injection to `keys` (see [`keys_homed_at`]); GETs for
    /// other keys always pass through untouched.
    pub fn with_scope(mut self, keys: BTreeSet<String>) -> Self {
        self.scope = Some(keys);
        self
    }

    /// Number of failures injected so far (stalls count too).
    pub fn injected_failures(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    /// `Some(delay)` if this GET should stall, `None` to fail hard, or
    /// pass-through. Encoded as a tri-state to keep one decision point.
    fn decide(&self, key: &str) -> FaultDecision {
        if let Some(scope) = &self.scope {
            if !scope.contains(key) {
                return FaultDecision::Pass;
            }
        }
        match self.mode {
            FaultMode::Random { probability } => {
                if self.rng.lock().chance(probability) {
                    FaultDecision::Fail
                } else {
                    FaultDecision::Pass
                }
            }
            FaultMode::FirstNPerKey { n } => {
                let mut m = self.per_key_attempts.lock();
                let c = m.entry(key.to_owned()).or_insert(0);
                *c += 1;
                if *c <= n {
                    FaultDecision::Fail
                } else {
                    FaultDecision::Pass
                }
            }
            FaultMode::Stall { delay } => FaultDecision::Stall(delay),
        }
    }
}

enum FaultDecision {
    Pass,
    Fail,
    Stall(Duration),
}

impl ObjectStore for FlakyStore {
    fn name(&self) -> &str {
        &self.name
    }

    fn put(&self, key: &str, data: Bytes) -> io::Result<()> {
        self.inner.put(key, data)
    }

    fn get_range(&self, key: &str, offset: u64, len: u64) -> io::Result<Bytes> {
        match self.decide(key) {
            FaultDecision::Pass => {}
            FaultDecision::Fail => {
                self.injected.fetch_add(1, Ordering::Relaxed);
                if let Some(obs) = &self.observer {
                    obs();
                }
                return Err(io::Error::new(
                    io::ErrorKind::ConnectionReset,
                    format!("injected transient failure on {key}"),
                ));
            }
            FaultDecision::Stall(delay) => {
                self.injected.fetch_add(1, Ordering::Relaxed);
                if let Some(obs) = &self.observer {
                    obs();
                }
                std::thread::sleep(delay);
            }
        }
        self.inner.get_range(key, offset, len)
    }

    fn size_of(&self, key: &str) -> io::Result<u64> {
        self.inner.size_of(key)
    }

    fn list(&self) -> Vec<String> {
        self.inner.list()
    }

    fn delete(&self, key: &str) -> io::Result<bool> {
        self.inner.delete(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::MemStore;

    fn backing() -> Arc<MemStore> {
        let s = Arc::new(MemStore::new("m"));
        s.put("k", Bytes::from_static(b"0123456789")).unwrap();
        s
    }

    #[test]
    fn first_n_mode_fails_then_recovers() {
        let s = FlakyStore::new(backing(), FaultMode::FirstNPerKey { n: 2 }, 0);
        assert!(s.get_range("k", 0, 4).is_err());
        assert!(s.get_range("k", 0, 4).is_err());
        let ok = s.get_range("k", 0, 4).unwrap();
        assert_eq!(ok.as_ref(), b"0123");
        assert_eq!(s.injected_failures(), 2);
        // Independent counters per key.
        s.put("other", Bytes::from_static(b"xy")).unwrap();
        assert!(s.get_range("other", 0, 1).is_err());
    }

    #[test]
    fn random_mode_is_deterministic_per_seed() {
        let run = |seed| {
            let s = FlakyStore::new(backing(), FaultMode::Random { probability: 0.5 }, seed);
            (0..32)
                .map(|_| s.get_range("k", 0, 1).is_ok())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn probability_zero_never_fails() {
        let s = FlakyStore::new(backing(), FaultMode::Random { probability: 0.0 }, 1);
        for _ in 0..100 {
            assert!(s.get_range("k", 0, 10).is_ok());
        }
        assert_eq!(s.injected_failures(), 0);
    }

    #[test]
    fn stall_mode_delays_but_delivers() {
        let s = FlakyStore::new(
            backing(),
            FaultMode::Stall {
                delay: Duration::from_millis(20),
            },
            0,
        );
        let t0 = std::time::Instant::now();
        let got = s.get_range("k", 0, 4).unwrap();
        assert_eq!(got.as_ref(), b"0123");
        assert!(
            t0.elapsed() >= Duration::from_millis(20),
            "GET must hang for the configured delay"
        );
        assert_eq!(s.injected_failures(), 1);
    }

    #[test]
    fn scope_limits_faults_to_targeted_keys() {
        let b = backing();
        b.put("remote", Bytes::from_static(b"abc")).unwrap();
        let s = FlakyStore::new(b, FaultMode::FirstNPerKey { n: 100 }, 0)
            .with_scope(["remote".to_string()].into_iter().collect());
        assert!(s.get_range("k", 0, 1).is_ok(), "unscoped key never faulted");
        assert!(s.get_range("remote", 0, 1).is_err(), "scoped key faulted");
        assert_eq!(s.injected_failures(), 1);
    }

    #[test]
    fn keys_homed_at_selects_by_placement() {
        use crate::layout::{DatasetLayout, FileId, FileMeta, Placement};
        let layout = DatasetLayout {
            files: (0..4)
                .map(|i| FileMeta {
                    id: FileId(i),
                    name: format!("f{i}"),
                    size: 1,
                })
                .collect(),
            chunks: vec![],
        };
        let p = Placement::from_homes(vec![
            LocationId(0),
            LocationId(1),
            LocationId(0),
            LocationId(1),
        ]);
        let keys = keys_homed_at(&layout, &p, LocationId(1));
        assert_eq!(
            keys.into_iter().collect::<Vec<_>>(),
            vec!["f1".to_string(), "f3".to_string()]
        );
    }

    #[test]
    fn observer_fires_per_injected_fault() {
        let fired = Arc::new(AtomicU64::new(0));
        let obs_fired = Arc::clone(&fired);
        let s = FlakyStore::new(backing(), FaultMode::FirstNPerKey { n: 2 }, 0).with_observer(
            Arc::new(move || {
                obs_fired.fetch_add(1, Ordering::Relaxed);
            }),
        );
        let _ = s.get_range("k", 0, 1);
        let _ = s.get_range("k", 0, 1);
        let _ = s.get_range("k", 0, 1); // passes: no fault left
        assert_eq!(fired.load(Ordering::Relaxed), 2);
        assert_eq!(s.injected_failures(), 2);
    }

    #[test]
    fn metadata_ops_pass_through() {
        let s = FlakyStore::new(backing(), FaultMode::FirstNPerKey { n: 99 }, 1);
        assert_eq!(s.size_of("k").unwrap(), 10);
        assert_eq!(s.list(), vec!["k".to_string()]);
        assert!(s.name().starts_with("flaky("));
    }
}
