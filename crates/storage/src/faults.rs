//! Fault injection: a store decorator that fails requests on a
//! deterministic schedule.
//!
//! 2011-era S3 served bulk workloads with a small but real transient-error
//! rate, which is why production retrievers retry. [`FlakyStore`] lets
//! tests and examples reproduce that: each GET fails with probability `p`
//! (seeded, so runs are reproducible), or deterministically for the first
//! `n` attempts on each key.

use crate::store::ObjectStore;
use bytes::Bytes;
use cb_simnet::DetRng;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// When a [`FlakyStore`] injects failures.
#[derive(Debug, Clone, Copy)]
pub enum FaultMode {
    /// Every GET fails independently with this probability.
    Random { probability: f64 },
    /// The first `n` GETs of each key fail, then the key works forever —
    /// the worst case a bounded retry policy must survive.
    FirstNPerKey { n: u32 },
}

/// An [`ObjectStore`] decorator that injects transient GET failures.
/// Writes and metadata operations are never failed (they are test
/// scaffolding).
pub struct FlakyStore {
    inner: Arc<dyn ObjectStore>,
    mode: FaultMode,
    rng: Mutex<DetRng>,
    per_key_attempts: Mutex<HashMap<String, u32>>,
    injected: AtomicU64,
    name: String,
}

impl FlakyStore {
    pub fn new(inner: Arc<dyn ObjectStore>, mode: FaultMode, seed: u64) -> Self {
        FlakyStore {
            name: format!("flaky({})", inner.name()),
            inner,
            mode,
            rng: Mutex::new(DetRng::new(seed)),
            per_key_attempts: Mutex::new(HashMap::new()),
            injected: AtomicU64::new(0),
        }
    }

    /// Number of failures injected so far.
    pub fn injected_failures(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    fn should_fail(&self, key: &str) -> bool {
        match self.mode {
            FaultMode::Random { probability } => self.rng.lock().chance(probability),
            FaultMode::FirstNPerKey { n } => {
                let mut m = self.per_key_attempts.lock();
                let c = m.entry(key.to_owned()).or_insert(0);
                *c += 1;
                *c <= n
            }
        }
    }
}

impl ObjectStore for FlakyStore {
    fn name(&self) -> &str {
        &self.name
    }

    fn put(&self, key: &str, data: Bytes) -> io::Result<()> {
        self.inner.put(key, data)
    }

    fn get_range(&self, key: &str, offset: u64, len: u64) -> io::Result<Bytes> {
        if self.should_fail(key) {
            self.injected.fetch_add(1, Ordering::Relaxed);
            return Err(io::Error::new(
                io::ErrorKind::ConnectionReset,
                format!("injected transient failure on {key}"),
            ));
        }
        self.inner.get_range(key, offset, len)
    }

    fn size_of(&self, key: &str) -> io::Result<u64> {
        self.inner.size_of(key)
    }

    fn list(&self) -> Vec<String> {
        self.inner.list()
    }

    fn delete(&self, key: &str) -> io::Result<bool> {
        self.inner.delete(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::MemStore;

    fn backing() -> Arc<MemStore> {
        let s = Arc::new(MemStore::new("m"));
        s.put("k", Bytes::from_static(b"0123456789")).unwrap();
        s
    }

    #[test]
    fn first_n_mode_fails_then_recovers() {
        let s = FlakyStore::new(backing(), FaultMode::FirstNPerKey { n: 2 }, 0);
        assert!(s.get_range("k", 0, 4).is_err());
        assert!(s.get_range("k", 0, 4).is_err());
        let ok = s.get_range("k", 0, 4).unwrap();
        assert_eq!(ok.as_ref(), b"0123");
        assert_eq!(s.injected_failures(), 2);
        // Independent counters per key.
        s.put("other", Bytes::from_static(b"xy")).unwrap();
        assert!(s.get_range("other", 0, 1).is_err());
    }

    #[test]
    fn random_mode_is_deterministic_per_seed() {
        let run = |seed| {
            let s = FlakyStore::new(backing(), FaultMode::Random { probability: 0.5 }, seed);
            (0..32)
                .map(|_| s.get_range("k", 0, 1).is_ok())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn probability_zero_never_fails() {
        let s = FlakyStore::new(backing(), FaultMode::Random { probability: 0.0 }, 1);
        for _ in 0..100 {
            assert!(s.get_range("k", 0, 10).is_ok());
        }
        assert_eq!(s.injected_failures(), 0);
    }

    #[test]
    fn metadata_ops_pass_through() {
        let s = FlakyStore::new(backing(), FaultMode::FirstNPerKey { n: 99 }, 1);
        assert_eq!(s.size_of("k").unwrap(), 10);
        assert_eq!(s.list(), vec!["k".to_string()]);
        assert!(s.name().starts_with("flaky("));
    }
}
