//! Object stores: where dataset files physically live.
//!
//! [`ObjectStore`] abstracts a flat namespace of byte blobs with ranged
//! reads — the greatest common denominator of a cluster storage node and
//! Amazon S3. Two concrete local backends are provided ([`MemStore`],
//! [`DiskStore`]); the simulated S3 remote lives in [`crate::s3sim`].

use bytes::Bytes;
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::fs;
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::PathBuf;

/// A flat blob store with ranged reads.
///
/// `get_range` with `len` running past the end of the object is an error —
/// the layout/index is the single source of truth for sizes, so an
/// out-of-range read always indicates a corrupted index or a logic bug, and
/// the framework wants to hear about it loudly.
pub trait ObjectStore: Send + Sync {
    /// Diagnostic name of this store (e.g. `"local-disk"`, `"s3-sim"`).
    fn name(&self) -> &str;

    /// Create or replace an object.
    fn put(&self, key: &str, data: Bytes) -> io::Result<()>;

    /// Read `len` bytes starting at `offset`.
    fn get_range(&self, key: &str, offset: u64, len: u64) -> io::Result<Bytes>;

    /// Size of an object.
    fn size_of(&self, key: &str) -> io::Result<u64>;

    /// All keys, sorted.
    fn list(&self) -> Vec<String>;

    /// Remove an object; `Ok(false)` if it did not exist.
    fn delete(&self, key: &str) -> io::Result<bool>;
}

fn not_found(key: &str) -> io::Error {
    io::Error::new(io::ErrorKind::NotFound, format!("no such object: {key}"))
}

fn out_of_range(key: &str, offset: u64, len: u64, size: u64) -> io::Error {
    io::Error::new(
        io::ErrorKind::UnexpectedEof,
        format!("range {offset}+{len} out of bounds for {key} (size {size})"),
    )
}

/// In-memory store: the default backend for tests and in-process clusters.
#[derive(Default)]
pub struct MemStore {
    name: String,
    objects: RwLock<BTreeMap<String, Bytes>>,
}

impl MemStore {
    pub fn new(name: impl Into<String>) -> Self {
        MemStore {
            name: name.into(),
            objects: RwLock::new(BTreeMap::new()),
        }
    }

    /// Total bytes stored.
    pub fn total_bytes(&self) -> u64 {
        self.objects.read().values().map(|b| b.len() as u64).sum()
    }
}

impl ObjectStore for MemStore {
    fn name(&self) -> &str {
        &self.name
    }

    fn put(&self, key: &str, data: Bytes) -> io::Result<()> {
        self.objects.write().insert(key.to_owned(), data);
        Ok(())
    }

    fn get_range(&self, key: &str, offset: u64, len: u64) -> io::Result<Bytes> {
        let objects = self.objects.read();
        let obj = objects.get(key).ok_or_else(|| not_found(key))?;
        let size = obj.len() as u64;
        let end = offset.checked_add(len).filter(|&e| e <= size);
        match end {
            Some(end) => Ok(obj.slice(offset as usize..end as usize)),
            None => Err(out_of_range(key, offset, len, size)),
        }
    }

    fn size_of(&self, key: &str) -> io::Result<u64> {
        self.objects
            .read()
            .get(key)
            .map(|b| b.len() as u64)
            .ok_or_else(|| not_found(key))
    }

    fn list(&self) -> Vec<String> {
        self.objects.read().keys().cloned().collect()
    }

    fn delete(&self, key: &str) -> io::Result<bool> {
        Ok(self.objects.write().remove(key).is_some())
    }
}

/// On-disk store rooted at a directory; object keys map to file names.
/// Used when datasets are too large for memory or must persist across runs.
pub struct DiskStore {
    name: String,
    root: PathBuf,
}

impl DiskStore {
    /// Open (creating if needed) a store rooted at `root`.
    pub fn open(name: impl Into<String>, root: impl Into<PathBuf>) -> io::Result<Self> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        Ok(DiskStore {
            name: name.into(),
            root,
        })
    }

    fn path_of(&self, key: &str) -> io::Result<PathBuf> {
        // Keys are flat names; reject anything path-like to keep the store
        // confined to its root.
        if key.is_empty() || key.contains('/') || key.contains("..") || key.contains('\\') {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("invalid object key: {key:?}"),
            ));
        }
        Ok(self.root.join(key))
    }
}

impl ObjectStore for DiskStore {
    fn name(&self) -> &str {
        &self.name
    }

    fn put(&self, key: &str, data: Bytes) -> io::Result<()> {
        let path = self.path_of(key)?;
        let tmp = path.with_extension("tmp");
        {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(&data)?;
            f.sync_all()?;
        }
        fs::rename(&tmp, &path)
    }

    fn get_range(&self, key: &str, offset: u64, len: u64) -> io::Result<Bytes> {
        let path = self.path_of(key)?;
        let mut f = fs::File::open(&path).map_err(|_| not_found(key))?;
        let size = f.metadata()?.len();
        if offset.checked_add(len).filter(|&e| e <= size).is_none() {
            return Err(out_of_range(key, offset, len, size));
        }
        f.seek(SeekFrom::Start(offset))?;
        let mut buf = vec![0u8; len as usize];
        f.read_exact(&mut buf)?;
        Ok(Bytes::from(buf))
    }

    fn size_of(&self, key: &str) -> io::Result<u64> {
        let path = self.path_of(key)?;
        fs::metadata(&path)
            .map(|m| m.len())
            .map_err(|_| not_found(key))
    }

    fn list(&self) -> Vec<String> {
        let mut keys: Vec<String> = fs::read_dir(&self.root)
            .into_iter()
            .flatten()
            .flatten()
            .filter(|e| e.path().extension().map(|x| x != "tmp").unwrap_or(true))
            .filter_map(|e| e.file_name().into_string().ok())
            .collect();
        keys.sort();
        keys
    }

    fn delete(&self, key: &str) -> io::Result<bool> {
        let path = self.path_of(key)?;
        match fs::remove_file(&path) {
            Ok(()) => Ok(true),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(false),
            Err(e) => Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(store: &dyn ObjectStore) {
        store.put("a", Bytes::from_static(b"hello world")).unwrap();
        store.put("b", Bytes::from_static(b"0123456789")).unwrap();

        assert_eq!(store.size_of("a").unwrap(), 11);
        assert_eq!(store.get_range("a", 0, 5).unwrap().as_ref(), b"hello");
        assert_eq!(store.get_range("a", 6, 5).unwrap().as_ref(), b"world");
        assert_eq!(store.get_range("b", 0, 10).unwrap().as_ref(), b"0123456789");
        assert_eq!(store.get_range("b", 10, 0).unwrap().len(), 0);

        // Errors.
        assert_eq!(
            store.get_range("missing", 0, 1).unwrap_err().kind(),
            io::ErrorKind::NotFound
        );
        assert_eq!(
            store.get_range("a", 6, 6).unwrap_err().kind(),
            io::ErrorKind::UnexpectedEof
        );
        assert_eq!(
            store.get_range("a", u64::MAX, 2).unwrap_err().kind(),
            io::ErrorKind::UnexpectedEof,
            "offset+len overflow must not wrap"
        );
        assert_eq!(
            store.size_of("missing").unwrap_err().kind(),
            io::ErrorKind::NotFound
        );

        assert_eq!(store.list(), vec!["a".to_string(), "b".to_string()]);

        // Overwrite.
        store.put("a", Bytes::from_static(b"xy")).unwrap();
        assert_eq!(store.size_of("a").unwrap(), 2);

        // Delete.
        assert!(store.delete("a").unwrap());
        assert!(!store.delete("a").unwrap());
        assert_eq!(store.list(), vec!["b".to_string()]);
    }

    #[test]
    fn mem_store_contract() {
        let s = MemStore::new("mem");
        exercise(&s);
        assert_eq!(s.name(), "mem");
    }

    #[test]
    fn disk_store_contract() {
        let dir = std::env::temp_dir().join(format!("cbstore-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let s = DiskStore::open("disk", &dir).unwrap();
        exercise(&s);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn disk_store_rejects_path_traversal() {
        let dir = std::env::temp_dir().join(format!("cbstore-trav-{}", std::process::id()));
        let s = DiskStore::open("disk", &dir).unwrap();
        for bad in ["../evil", "a/b", "", "c\\d"] {
            assert_eq!(
                s.put(bad, Bytes::new()).unwrap_err().kind(),
                io::ErrorKind::InvalidInput,
                "key {bad:?} should be rejected"
            );
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn mem_store_total_bytes() {
        let s = MemStore::new("m");
        s.put("x", Bytes::from(vec![0u8; 100])).unwrap();
        s.put("y", Bytes::from(vec![0u8; 50])).unwrap();
        assert_eq!(s.total_bytes(), 150);
    }
}
