//! Dataset layout: the paper's three-granularity data organization.
//!
//! A dataset is a set of **files**; each file is split into logical
//! **chunks** (the unit of job assignment — one chunk == one job), and each
//! chunk holds a whole number of **data units**, the smallest atomically
//! processable elements (a point, an edge, a record). Chunk size targets the
//! compute node's memory; unit-group size (chosen later, at processing time)
//! targets its cache.

use std::fmt;

/// Identifier of a file within a dataset (dense, 0-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FileId(pub u32);

/// Identifier of a chunk within a dataset (dense, 0-based, global across
/// files). A chunk is the paper's "job".
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ChunkId(pub u32);

/// Identifier of a *site* holding data and/or compute (e.g. 0 = local
/// cluster, 1 = cloud). The framework is not limited to two.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LocationId(pub u16);

impl fmt::Display for FileId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "file{}", self.0)
    }
}
impl fmt::Display for ChunkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "chunk{}", self.0)
    }
}
impl fmt::Display for LocationId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "loc{}", self.0)
    }
}

/// Metadata for one file of the dataset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileMeta {
    pub id: FileId,
    /// Human-readable name, also the key under which stores hold the bytes.
    pub name: String,
    /// Total size in bytes.
    pub size: u64,
}

/// Metadata for one chunk (== one job), as recorded in the index file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkMeta {
    pub id: ChunkId,
    /// File containing this chunk.
    pub file: FileId,
    /// Byte offset of the chunk within its file.
    pub offset: u64,
    /// Length in bytes.
    pub len: u64,
    /// Number of data units inside the chunk.
    pub units: u64,
}

/// The full dataset layout: every file and every chunk, in index order.
///
/// Invariants (enforced by [`DatasetLayout::validate`] and checked on index
/// decode):
/// * file ids are dense `0..files.len()`,
/// * chunk ids are dense `0..chunks.len()`,
/// * within each file, chunks are contiguous, non-overlapping, and tile the
///   file exactly from offset 0 to `size`,
/// * chunks of one file are consecutive in the global chunk order (this is
///   what makes "assign consecutive jobs" equal "sequential file reads").
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DatasetLayout {
    pub files: Vec<FileMeta>,
    pub chunks: Vec<ChunkMeta>,
}

/// Violation detected by [`DatasetLayout::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LayoutError {
    NonDenseFileIds {
        at: usize,
    },
    NonDenseChunkIds {
        at: usize,
    },
    UnknownFile {
        chunk: ChunkId,
        file: FileId,
    },
    ChunkNotContiguous {
        chunk: ChunkId,
    },
    FileNotTiled {
        file: FileId,
        covered: u64,
        size: u64,
    },
    FileChunksNotConsecutive {
        file: FileId,
    },
    EmptyChunk {
        chunk: ChunkId,
    },
}

impl fmt::Display for LayoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LayoutError::NonDenseFileIds { at } => write!(f, "file id at position {at} not dense"),
            LayoutError::NonDenseChunkIds { at } => {
                write!(f, "chunk id at position {at} not dense")
            }
            LayoutError::UnknownFile { chunk, file } => {
                write!(f, "{chunk} references unknown {file}")
            }
            LayoutError::ChunkNotContiguous { chunk } => {
                write!(f, "{chunk} does not start where the previous chunk ended")
            }
            LayoutError::FileNotTiled {
                file,
                covered,
                size,
            } => write!(f, "{file} covered {covered} of {size} bytes"),
            LayoutError::FileChunksNotConsecutive { file } => {
                write!(f, "chunks of {file} are not consecutive in global order")
            }
            LayoutError::EmptyChunk { chunk } => write!(f, "{chunk} is empty"),
        }
    }
}

impl std::error::Error for LayoutError {}

impl DatasetLayout {
    /// Total bytes across all files.
    pub fn total_bytes(&self) -> u64 {
        self.files.iter().map(|f| f.size).sum()
    }

    /// Total data units across all chunks.
    pub fn total_units(&self) -> u64 {
        self.chunks.iter().map(|c| c.units).sum()
    }

    /// Number of jobs (== chunks).
    pub fn n_jobs(&self) -> usize {
        self.chunks.len()
    }

    /// Chunk ids belonging to `file`, in offset order.
    pub fn chunks_of_file(&self, file: FileId) -> impl Iterator<Item = &ChunkMeta> {
        self.chunks.iter().filter(move |c| c.file == file)
    }

    /// Look up a chunk.
    pub fn chunk(&self, id: ChunkId) -> &ChunkMeta {
        &self.chunks[id.0 as usize]
    }

    /// Look up a file.
    pub fn file(&self, id: FileId) -> &FileMeta {
        &self.files[id.0 as usize]
    }

    /// Check every structural invariant; returns the first violation.
    pub fn validate(&self) -> Result<(), LayoutError> {
        for (i, f) in self.files.iter().enumerate() {
            if f.id.0 as usize != i {
                return Err(LayoutError::NonDenseFileIds { at: i });
            }
        }
        for (i, c) in self.chunks.iter().enumerate() {
            if c.id.0 as usize != i {
                return Err(LayoutError::NonDenseChunkIds { at: i });
            }
            if c.file.0 as usize >= self.files.len() {
                return Err(LayoutError::UnknownFile {
                    chunk: c.id,
                    file: c.file,
                });
            }
            if c.len == 0 {
                return Err(LayoutError::EmptyChunk { chunk: c.id });
            }
        }
        // Per-file tiling + global consecutiveness.
        for f in &self.files {
            let mut expected_offset = 0u64;
            let mut last_global: Option<u32> = None;
            for c in self.chunks.iter().filter(|c| c.file == f.id) {
                if let Some(prev) = last_global {
                    if c.id.0 != prev + 1 {
                        return Err(LayoutError::FileChunksNotConsecutive { file: f.id });
                    }
                }
                last_global = Some(c.id.0);
                if c.offset != expected_offset {
                    return Err(LayoutError::ChunkNotContiguous { chunk: c.id });
                }
                expected_offset += c.len;
            }
            if expected_offset != f.size {
                return Err(LayoutError::FileNotTiled {
                    file: f.id,
                    covered: expected_offset,
                    size: f.size,
                });
            }
        }
        Ok(())
    }
}

/// Which site each file lives on. Placement is *per file*: the paper's skew
/// configurations ("33% of the data local, 67% on S3") move whole files.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Placement {
    home: Vec<LocationId>,
}

impl Placement {
    /// Every file at a single site.
    pub fn all_at(n_files: usize, loc: LocationId) -> Self {
        Placement {
            home: vec![loc; n_files],
        }
    }

    /// Explicit per-file assignment.
    pub fn from_homes(home: Vec<LocationId>) -> Self {
        Placement { home }
    }

    /// The first `round(frac * n_files)` files at `first`, the rest at
    /// `second` — exactly how the paper realizes env-50/50, 33/67, 17/83.
    pub fn split_fraction(
        n_files: usize,
        frac_at_first: f64,
        first: LocationId,
        second: LocationId,
    ) -> Self {
        let k = ((n_files as f64) * frac_at_first).round() as usize;
        let k = k.min(n_files);
        let mut home = vec![first; k];
        home.extend(std::iter::repeat_n(second, n_files - k));
        Placement { home }
    }

    pub fn n_files(&self) -> usize {
        self.home.len()
    }

    /// Site holding `file`.
    pub fn home(&self, file: FileId) -> LocationId {
        self.home[file.0 as usize]
    }

    /// Files homed at `loc`.
    pub fn files_at(&self, loc: LocationId) -> impl Iterator<Item = FileId> + '_ {
        self.home
            .iter()
            .enumerate()
            .filter(move |(_, &h)| h == loc)
            .map(|(i, _)| FileId(i as u32))
    }

    /// Fraction of files at `loc`.
    pub fn fraction_at(&self, loc: LocationId) -> f64 {
        if self.home.is_empty() {
            return 0.0;
        }
        self.files_at(loc).count() as f64 / self.home.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_file_layout() -> DatasetLayout {
        DatasetLayout {
            files: vec![
                FileMeta {
                    id: FileId(0),
                    name: "a".into(),
                    size: 100,
                },
                FileMeta {
                    id: FileId(1),
                    name: "b".into(),
                    size: 50,
                },
            ],
            chunks: vec![
                ChunkMeta {
                    id: ChunkId(0),
                    file: FileId(0),
                    offset: 0,
                    len: 60,
                    units: 6,
                },
                ChunkMeta {
                    id: ChunkId(1),
                    file: FileId(0),
                    offset: 60,
                    len: 40,
                    units: 4,
                },
                ChunkMeta {
                    id: ChunkId(2),
                    file: FileId(1),
                    offset: 0,
                    len: 50,
                    units: 5,
                },
            ],
        }
    }

    #[test]
    fn valid_layout_passes() {
        let l = two_file_layout();
        assert_eq!(l.validate(), Ok(()));
        assert_eq!(l.total_bytes(), 150);
        assert_eq!(l.total_units(), 15);
        assert_eq!(l.n_jobs(), 3);
        assert_eq!(l.chunks_of_file(FileId(0)).count(), 2);
        assert_eq!(l.chunk(ChunkId(2)).file, FileId(1));
    }

    #[test]
    fn gap_detected() {
        let mut l = two_file_layout();
        l.chunks[1].offset = 61;
        assert_eq!(
            l.validate(),
            Err(LayoutError::ChunkNotContiguous { chunk: ChunkId(1) })
        );
    }

    #[test]
    fn short_tiling_detected() {
        let mut l = two_file_layout();
        l.chunks[1].len = 39;
        assert!(matches!(
            l.validate(),
            Err(LayoutError::FileNotTiled { .. })
        ));
    }

    #[test]
    fn empty_chunk_detected() {
        let mut l = two_file_layout();
        l.chunks[2].len = 0;
        assert_eq!(
            l.validate(),
            Err(LayoutError::EmptyChunk { chunk: ChunkId(2) })
        );
    }

    #[test]
    fn unknown_file_detected() {
        let mut l = two_file_layout();
        l.chunks[2].file = FileId(9);
        assert!(matches!(l.validate(), Err(LayoutError::UnknownFile { .. })));
    }

    #[test]
    fn non_consecutive_global_order_detected() {
        let mut l = two_file_layout();
        // Interleave: file0's chunks become global 0 and 2.
        l.chunks.swap(1, 2);
        l.chunks[1].id = ChunkId(1);
        l.chunks[2].id = ChunkId(2);
        assert!(matches!(
            l.validate(),
            Err(LayoutError::FileChunksNotConsecutive { .. })
        ));
    }

    #[test]
    fn placement_split_fraction() {
        let local = LocationId(0);
        let cloud = LocationId(1);
        let p = Placement::split_fraction(32, 0.33, local, cloud);
        assert_eq!(p.files_at(local).count(), 11); // round(10.56) = 11
        assert_eq!(p.files_at(cloud).count(), 21);
        assert_eq!(p.home(FileId(0)), local);
        assert_eq!(p.home(FileId(31)), cloud);
        assert!((p.fraction_at(local) - 11.0 / 32.0).abs() < 1e-12);
    }

    #[test]
    fn placement_all_at() {
        let p = Placement::all_at(5, LocationId(1));
        assert_eq!(p.files_at(LocationId(1)).count(), 5);
        assert_eq!(p.files_at(LocationId(0)).count(), 0);
        assert_eq!(p.fraction_at(LocationId(1)), 1.0);
    }

    #[test]
    fn placement_split_edges() {
        let p = Placement::split_fraction(4, 0.0, LocationId(0), LocationId(1));
        assert_eq!(p.files_at(LocationId(0)).count(), 0);
        let p = Placement::split_fraction(4, 1.0, LocationId(0), LocationId(1));
        assert_eq!(p.files_at(LocationId(0)).count(), 4);
        let p = Placement::split_fraction(4, 2.0, LocationId(0), LocationId(1));
        assert_eq!(p.files_at(LocationId(0)).count(), 4, "clamped");
    }
}
