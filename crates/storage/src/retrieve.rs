//! Multi-threaded chunk retrieval.
//!
//! The paper: *"Each slave retrieves jobs using multiple retrieval threads,
//! to capitalize on the fast network interconnects in the cluster."* A
//! remote object service caps the streaming rate of a single connection, so
//! fetching one chunk over `t` parallel ranged GETs multiplies achievable
//! bandwidth until the aggregate limit binds. [`Retriever`] implements that:
//! it splits a byte range into `t` contiguous sub-ranges, fetches them on
//! scoped threads, and reassembles the chunk in order.

use crate::store::ObjectStore;
use bytes::{Bytes, BytesMut};
use std::io;
use std::time::Duration;

/// Parallel ranged-GET fetcher.
///
/// ```
/// use cb_storage::retrieve::Retriever;
/// use cb_storage::store::{MemStore, ObjectStore};
/// use bytes::Bytes;
///
/// let store = MemStore::new("demo");
/// store.put("obj", Bytes::from(vec![7u8; 1 << 20])).unwrap();
/// let r = Retriever::new(4).with_min_split(1);
/// let data = r.fetch(&store, "obj", 100, 4096).unwrap();
/// assert_eq!(data.len(), 4096);
/// ```
#[derive(Debug, Clone)]
pub struct Retriever {
    threads: usize,
    /// Ranges smaller than this are fetched on the calling thread; spawning
    /// threads for tiny reads costs more than it saves.
    min_split_bytes: u64,
    /// Extra attempts per ranged GET after the first (transient remote
    /// failures — timeouts, connection resets — are a fact of life against
    /// an object service).
    retries: u32,
    /// Sleep before the first retry; doubles per attempt.
    retry_backoff: Duration,
}

impl Retriever {
    /// A retriever using `threads` parallel connections (clamped to ≥ 1).
    pub fn new(threads: usize) -> Self {
        Retriever {
            threads: threads.max(1),
            min_split_bytes: 64 * 1024,
            retries: 0,
            retry_backoff: Duration::from_millis(10),
        }
    }

    /// Single-connection retriever.
    pub fn sequential() -> Self {
        Self::new(1)
    }

    /// Override the minimum range size worth splitting (tests).
    pub fn with_min_split(mut self, bytes: u64) -> Self {
        self.min_split_bytes = bytes;
        self
    }

    /// Retry each ranged GET up to `retries` extra times, with exponential
    /// backoff starting at `backoff`.
    pub fn with_retries(mut self, retries: u32, backoff: Duration) -> Self {
        self.retries = retries;
        self.retry_backoff = backoff;
        self
    }

    /// One ranged GET with this retriever's retry policy.
    fn get_with_retry(
        &self,
        store: &dyn ObjectStore,
        key: &str,
        offset: u64,
        len: u64,
    ) -> io::Result<Bytes> {
        let mut backoff = self.retry_backoff;
        let mut attempt = 0u32;
        loop {
            match store.get_range(key, offset, len) {
                Ok(b) => return Ok(b),
                // Out-of-range and missing-object errors are not transient;
                // retrying them only hides index corruption.
                Err(e)
                    if attempt < self.retries
                        && e.kind() != io::ErrorKind::NotFound
                        && e.kind() != io::ErrorKind::UnexpectedEof
                        && e.kind() != io::ErrorKind::InvalidInput =>
                {
                    attempt += 1;
                    if !backoff.is_zero() {
                        std::thread::sleep(backoff);
                        backoff *= 2;
                    }
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Number of connections this retriever uses.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Fetch `[offset, offset+len)` of `key` from `store`, in parallel.
    pub fn fetch(
        &self,
        store: &dyn ObjectStore,
        key: &str,
        offset: u64,
        len: u64,
    ) -> io::Result<Bytes> {
        if len == 0 {
            return Ok(Bytes::new());
        }
        if self.threads == 1 || len < self.min_split_bytes {
            return self.get_with_retry(store, key, offset, len);
        }
        let parts = self.split(offset, len);
        let mut results: Vec<io::Result<Bytes>> = Vec::with_capacity(parts.len());
        std::thread::scope(|scope| {
            let handles: Vec<_> = parts
                .iter()
                .map(|&(off, l)| scope.spawn(move || self.get_with_retry(store, key, off, l)))
                .collect();
            for h in handles {
                results.push(h.join().expect("retrieval thread panicked"));
            }
        });
        let mut buf = BytesMut::with_capacity(len as usize);
        for r in results {
            buf.extend_from_slice(&r?);
        }
        debug_assert_eq!(buf.len() as u64, len);
        Ok(buf.freeze())
    }

    /// Split `[offset, offset+len)` into up to `threads` contiguous
    /// sub-ranges of near-equal size (first ranges take the remainder).
    fn split(&self, offset: u64, len: u64) -> Vec<(u64, u64)> {
        let n = (self.threads as u64).min(len).max(1);
        let base = len / n;
        let extra = len % n;
        let mut out = Vec::with_capacity(n as usize);
        let mut off = offset;
        for i in 0..n {
            let l = base + u64::from(i < extra);
            out.push((off, l));
            off += l;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::s3sim::{RemoteProfile, RemoteStore};
    use crate::store::MemStore;
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    fn patterned(n: usize) -> Bytes {
        Bytes::from((0..n).map(|i| (i % 251) as u8).collect::<Vec<u8>>())
    }

    #[test]
    fn split_covers_range_exactly() {
        let r = Retriever::new(4);
        let parts = r.split(100, 1003);
        assert_eq!(parts.len(), 4);
        assert_eq!(parts.iter().map(|&(_, l)| l).sum::<u64>(), 1003);
        // Contiguity.
        let mut expect = 100;
        for &(off, l) in &parts {
            assert_eq!(off, expect);
            expect = off + l;
        }
        assert_eq!(expect, 1103);
    }

    #[test]
    fn split_never_produces_empty_ranges() {
        let r = Retriever::new(8);
        let parts = r.split(0, 3);
        assert_eq!(parts.len(), 3);
        assert!(parts.iter().all(|&(_, l)| l > 0));
    }

    #[test]
    fn parallel_fetch_reassembles_in_order() {
        let store = MemStore::new("m");
        let data = patterned(1 << 20);
        store.put("k", data.clone()).unwrap();
        let r = Retriever::new(7).with_min_split(1);
        let got = r.fetch(&store, "k", 1000, 500_000).unwrap();
        assert_eq!(got, data.slice(1000..501_000));
    }

    #[test]
    fn sequential_path_for_small_ranges() {
        let store = MemStore::new("m");
        store.put("k", patterned(4096)).unwrap();
        let r = Retriever::new(8); // min_split 64 KiB: 4 KiB goes sequential
        let got = r.fetch(&store, "k", 0, 4096).unwrap();
        assert_eq!(got.len(), 4096);
    }

    #[test]
    fn zero_length_fetch() {
        let store = MemStore::new("m");
        store.put("k", patterned(10)).unwrap();
        let got = Retriever::new(4).fetch(&store, "k", 5, 0).unwrap();
        assert!(got.is_empty());
    }

    #[test]
    fn errors_propagate() {
        let store = MemStore::new("m");
        store.put("k", patterned(100)).unwrap();
        let r = Retriever::new(4).with_min_split(1);
        assert!(r.fetch(&store, "k", 50, 100).is_err());
        assert!(r.fetch(&store, "missing", 0, 10).is_err());
    }

    #[test]
    fn retries_survive_transient_failures() {
        use crate::faults::{FaultMode, FlakyStore};
        let inner = Arc::new(MemStore::new("m"));
        inner.put("k", patterned(100_000)).unwrap();
        let flaky = FlakyStore::new(inner, FaultMode::FirstNPerKey { n: 2 }, 0);

        // Without retries: fails.
        let r = Retriever::new(1);
        assert!(r.fetch(&flaky, "k", 0, 1000).is_err());

        // With retries: the third attempt succeeds.
        let r = Retriever::new(1).with_retries(3, Duration::ZERO);
        let got = r.fetch(&flaky, "k", 0, 1000).unwrap();
        assert_eq!(got, patterned(100_000).slice(0..1000));
        assert!(flaky.injected_failures() >= 2);
    }

    #[test]
    fn retries_do_not_mask_permanent_errors() {
        let store = MemStore::new("m");
        store.put("k", patterned(100)).unwrap();
        let r = Retriever::new(1).with_retries(5, Duration::ZERO);
        // Out of range: permanent, must fail immediately.
        let err = r.fetch(&store, "k", 90, 20).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
        // Missing object: permanent.
        let err = r.fetch(&store, "nope", 0, 1).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::NotFound);
    }

    #[test]
    fn parallel_fetch_with_retries_reassembles() {
        use crate::faults::{FaultMode, FlakyStore};
        let inner = Arc::new(MemStore::new("m"));
        let data = patterned(1 << 18);
        inner.put("k", data.clone()).unwrap();
        let flaky = FlakyStore::new(inner, FaultMode::Random { probability: 0.5 }, 42);
        let r = Retriever::new(4).with_min_split(1).with_retries(30, Duration::ZERO);
        for _ in 0..3 {
            let got = r.fetch(&flaky, "k", 0, 1 << 18).unwrap();
            assert_eq!(got, data);
        }
        assert!(flaky.injected_failures() > 0, "the run should have hit faults");
    }

    #[test]
    fn multiple_threads_beat_one_against_per_conn_cap() {
        // Per-connection 2 MB/s, aggregate 100 MB/s: a 400 KB fetch takes
        // ~200 ms on one connection, ~50 ms on four.
        let inner = Arc::new(MemStore::new("backing"));
        inner.put("k", patterned(400_000)).unwrap();
        let remote = RemoteStore::new(
            "s3",
            inner,
            RemoteProfile {
                request_latency: Duration::ZERO,
                aggregate_bps: 100.0e6,
                per_conn_bps: 2.0e6,
            },
        );

        let t0 = Instant::now();
        Retriever::new(1).fetch(&remote, "k", 0, 400_000).unwrap();
        let seq = t0.elapsed();

        let t1 = Instant::now();
        Retriever::new(4)
            .with_min_split(1)
            .fetch(&remote, "k", 0, 400_000)
            .unwrap();
        let par = t1.elapsed();

        assert!(
            par < seq / 2,
            "parallel retrieval should be >2x faster: seq={seq:?} par={par:?}"
        );
    }
}
