//! Multi-threaded chunk retrieval.
//!
//! The paper: *"Each slave retrieves jobs using multiple retrieval threads,
//! to capitalize on the fast network interconnects in the cluster."* A
//! remote object service caps the streaming rate of a single connection, so
//! fetching one chunk over `t` parallel ranged GETs multiplies achievable
//! bandwidth until the aggregate limit binds. [`Retriever`] implements that:
//! it splits a byte range into `t` contiguous sub-ranges, fetches them on
//! scoped threads, and reassembles the chunk in order.

use crate::store::ObjectStore;
use bytes::{Bytes, BytesMut};
use cb_simnet::DetRng;
use std::io;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The sleep before retry `attempt` (1-based): exponential growth from
/// `base`, capped at `cap`, scaled by a deterministic jitter factor in
/// `[0.5, 1.0)` derived from `seed` and the attempt number.
///
/// Pure so the schedule is unit-testable; jitter decorrelates the retries of
/// slaves that fail together (e.g. when a whole location's store degrades)
/// without giving up reproducibility.
pub fn backoff_schedule(base: Duration, cap: Duration, seed: u64, attempt: u32) -> Duration {
    if base.is_zero() {
        return Duration::ZERO;
    }
    let exp = attempt.saturating_sub(1).min(20);
    let raw = base.saturating_mul(1u32 << exp).min(cap);
    let jitter = 0.5 + 0.5 * DetRng::new(seed ^ u64::from(attempt)).uniform();
    raw.mul_f64(jitter)
}

/// Sleep `total`, but wake early (in ≤10 ms slices) if `abort` is raised —
/// a backoff sleep must not delay a fetch that is already doomed.
fn sleep_unless_aborted(total: Duration, abort: Option<&AtomicBool>) {
    let Some(flag) = abort else {
        std::thread::sleep(total);
        return;
    };
    const SLICE: Duration = Duration::from_millis(10);
    let mut left = total;
    while !left.is_zero() {
        if flag.load(Ordering::Relaxed) {
            return;
        }
        let step = left.min(SLICE);
        std::thread::sleep(step);
        left -= step;
    }
}

/// Parallel ranged-GET fetcher.
///
/// ```
/// use cb_storage::retrieve::Retriever;
/// use cb_storage::store::{MemStore, ObjectStore};
/// use bytes::Bytes;
///
/// let store = MemStore::new("demo");
/// store.put("obj", Bytes::from(vec![7u8; 1 << 20])).unwrap();
/// let r = Retriever::new(4).with_min_split(1);
/// let data = r.fetch(&store, "obj", 100, 4096).unwrap();
/// assert_eq!(data.len(), 4096);
/// ```
#[derive(Clone)]
pub struct Retriever {
    threads: usize,
    /// Ranges smaller than this are fetched on the calling thread; spawning
    /// threads for tiny reads costs more than it saves.
    min_split_bytes: u64,
    /// Extra attempts per ranged GET after the first (transient remote
    /// failures — timeouts, connection resets — are a fact of life against
    /// an object service).
    retries: u32,
    /// Sleep before the first retry; grows per [`backoff_schedule`].
    retry_backoff: Duration,
    /// Ceiling on the per-retry sleep.
    backoff_cap: Duration,
    /// Seed for the deterministic backoff jitter.
    jitter_seed: u64,
    /// Per-GET deadline: a ranged GET observed to take longer than this is
    /// classified as timed out (and retried), even if bytes eventually
    /// arrived — a hung connection must not block a slave forever.
    deadline: Option<Duration>,
    /// Shared counter incremented once per retry attempt, so callers (the
    /// runtime's `RecoveryStats`) can account for faults absorbed here.
    retry_counter: Option<Arc<AtomicU64>>,
    /// Called once per retry attempt (1-based attempt number) alongside
    /// `retry_counter` — the observability layer's per-event hook. Kept as
    /// a plain callback so this crate stays independent of the runtime's
    /// event types.
    retry_hook: Option<RetryHook>,
}

/// Callback invoked once per retry attempt; see [`Retriever::with_retry_hook`].
pub type RetryHook = Arc<dyn Fn(u32) + Send + Sync>;

impl std::fmt::Debug for Retriever {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Retriever")
            .field("threads", &self.threads)
            .field("min_split_bytes", &self.min_split_bytes)
            .field("retries", &self.retries)
            .field("retry_backoff", &self.retry_backoff)
            .field("backoff_cap", &self.backoff_cap)
            .field("jitter_seed", &self.jitter_seed)
            .field("deadline", &self.deadline)
            .field("retry_counter", &self.retry_counter)
            .field("retry_hook", &self.retry_hook.as_ref().map(|_| "…"))
            .finish()
    }
}

impl Retriever {
    /// A retriever using `threads` parallel connections (clamped to ≥ 1).
    pub fn new(threads: usize) -> Self {
        Retriever {
            threads: threads.max(1),
            min_split_bytes: 64 * 1024,
            retries: 0,
            retry_backoff: Duration::from_millis(10),
            backoff_cap: Duration::from_secs(1),
            jitter_seed: 0,
            deadline: None,
            retry_counter: None,
            retry_hook: None,
        }
    }

    /// Single-connection retriever.
    pub fn sequential() -> Self {
        Self::new(1)
    }

    /// Override the minimum range size worth splitting (tests).
    pub fn with_min_split(mut self, bytes: u64) -> Self {
        self.min_split_bytes = bytes;
        self
    }

    /// Retry each ranged GET up to `retries` extra times, with exponential
    /// backoff starting at `backoff`.
    pub fn with_retries(mut self, retries: u32, backoff: Duration) -> Self {
        self.retries = retries;
        self.retry_backoff = backoff;
        self
    }

    /// Cap the per-retry backoff sleep.
    pub fn with_backoff_cap(mut self, cap: Duration) -> Self {
        self.backoff_cap = cap;
        self
    }

    /// Seed the backoff jitter (see [`backoff_schedule`]).
    pub fn with_jitter_seed(mut self, seed: u64) -> Self {
        self.jitter_seed = seed;
        self
    }

    /// Classify any ranged GET observed to take longer than `deadline` as
    /// timed out; `None` disables the check.
    pub fn with_deadline(mut self, deadline: Option<Duration>) -> Self {
        self.deadline = deadline;
        self
    }

    /// Count every retry attempt into `counter`.
    pub fn with_retry_counter(mut self, counter: Arc<AtomicU64>) -> Self {
        self.retry_counter = Some(counter);
        self
    }

    /// Invoke `hook(attempt)` once per retry attempt (1-based), at the same
    /// point `with_retry_counter` increments — callers use it to emit
    /// per-retry events without this crate knowing their event types.
    pub fn with_retry_hook(mut self, hook: RetryHook) -> Self {
        self.retry_hook = Some(hook);
        self
    }

    /// One ranged GET with this retriever's retry policy.
    fn get_with_retry(
        &self,
        store: &dyn ObjectStore,
        key: &str,
        offset: u64,
        len: u64,
    ) -> io::Result<Bytes> {
        self.get_with_retry_aborting(store, key, offset, len, None)
    }

    /// Like [`Self::get_with_retry`], but short-circuits (attempts and
    /// backoff sleeps alike) once `abort` is raised, and raises it on any
    /// final failure — so sibling sub-fetches of one chunk stop burning
    /// their retry budgets the moment any part has failed for good.
    fn get_with_retry_aborting(
        &self,
        store: &dyn ObjectStore,
        key: &str,
        offset: u64,
        len: u64,
        abort: Option<&AtomicBool>,
    ) -> io::Result<Bytes> {
        let aborted = || {
            io::Error::new(
                io::ErrorKind::Interrupted,
                format!("GET of {key} aborted: a sibling sub-range failed permanently"),
            )
        };
        let mut attempt = 0u32;
        loop {
            if let Some(flag) = abort {
                if flag.load(Ordering::Relaxed) {
                    return Err(aborted());
                }
            }
            let t0 = Instant::now();
            let mut result = store.get_range(key, offset, len);
            if let Some(deadline) = self.deadline {
                // The store API is blocking, so a hung GET is detected after
                // the fact: data that arrived later than the deadline is
                // discarded and the attempt treated as a timeout, exactly as
                // a socket timeout would have surfaced it.
                if result.is_ok() && t0.elapsed() > deadline {
                    result = Err(io::Error::new(
                        io::ErrorKind::TimedOut,
                        format!("GET of {key} exceeded deadline {deadline:?}"),
                    ));
                }
            }
            match result {
                Ok(b) => return Ok(b),
                // Out-of-range and missing-object errors are not transient;
                // retrying them only hides index corruption.
                Err(e)
                    if attempt < self.retries
                        && e.kind() != io::ErrorKind::NotFound
                        && e.kind() != io::ErrorKind::UnexpectedEof
                        && e.kind() != io::ErrorKind::InvalidInput =>
                {
                    attempt += 1;
                    if let Some(counter) = &self.retry_counter {
                        counter.fetch_add(1, Ordering::Relaxed);
                    }
                    if let Some(hook) = &self.retry_hook {
                        hook(attempt);
                    }
                    let sleep = backoff_schedule(
                        self.retry_backoff,
                        self.backoff_cap,
                        self.jitter_seed,
                        attempt,
                    );
                    if !sleep.is_zero() {
                        sleep_unless_aborted(sleep, abort);
                    }
                }
                Err(e) => {
                    // Final failure (permanent kind, or retries exhausted):
                    // tell sibling sub-fetches to stand down.
                    if let Some(flag) = abort {
                        flag.store(true, Ordering::Relaxed);
                    }
                    return Err(e);
                }
            }
        }
    }

    /// Number of connections this retriever uses.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Fetch `[offset, offset+len)` of `key` from `store`, in parallel.
    pub fn fetch(
        &self,
        store: &dyn ObjectStore,
        key: &str,
        offset: u64,
        len: u64,
    ) -> io::Result<Bytes> {
        if len == 0 {
            return Ok(Bytes::new());
        }
        if self.threads == 1 || len < self.min_split_bytes {
            return self.get_with_retry(store, key, offset, len);
        }
        let parts = self.split(offset, len);
        let abort = AtomicBool::new(false);
        let mut results: Vec<io::Result<Bytes>> = Vec::with_capacity(parts.len());
        std::thread::scope(|scope| {
            let handles: Vec<_> = parts
                .iter()
                .map(|&(off, l)| {
                    let abort = &abort;
                    scope.spawn(move || {
                        self.get_with_retry_aborting(store, key, off, l, Some(abort))
                    })
                })
                .collect();
            for h in handles {
                results.push(h.join().expect("retrieval thread panicked"));
            }
        });
        // Surface the real failure, not a sibling's abort notice: prefer the
        // first error whose kind is not Interrupted.
        if let Some(i) = results
            .iter()
            .position(|r| matches!(r, Err(e) if e.kind() != io::ErrorKind::Interrupted))
        {
            return Err(results.swap_remove(i).unwrap_err());
        }
        let mut buf = BytesMut::with_capacity(len as usize);
        for r in results {
            buf.extend_from_slice(&r?);
        }
        debug_assert_eq!(buf.len() as u64, len);
        Ok(buf.freeze())
    }

    /// Split `[offset, offset+len)` into up to `threads` contiguous
    /// sub-ranges of near-equal size (first ranges take the remainder).
    fn split(&self, offset: u64, len: u64) -> Vec<(u64, u64)> {
        let n = (self.threads as u64).min(len).max(1);
        let base = len / n;
        let extra = len % n;
        let mut out = Vec::with_capacity(n as usize);
        let mut off = offset;
        for i in 0..n {
            let l = base + u64::from(i < extra);
            out.push((off, l));
            off += l;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::s3sim::{RemoteProfile, RemoteStore};
    use crate::store::MemStore;
    use std::sync::Arc;
    use std::time::Duration;

    fn patterned(n: usize) -> Bytes {
        Bytes::from((0..n).map(|i| (i % 251) as u8).collect::<Vec<u8>>())
    }

    #[test]
    fn split_covers_range_exactly() {
        let r = Retriever::new(4);
        let parts = r.split(100, 1003);
        assert_eq!(parts.len(), 4);
        assert_eq!(parts.iter().map(|&(_, l)| l).sum::<u64>(), 1003);
        // Contiguity.
        let mut expect = 100;
        for &(off, l) in &parts {
            assert_eq!(off, expect);
            expect = off + l;
        }
        assert_eq!(expect, 1103);
    }

    #[test]
    fn split_never_produces_empty_ranges() {
        let r = Retriever::new(8);
        let parts = r.split(0, 3);
        assert_eq!(parts.len(), 3);
        assert!(parts.iter().all(|&(_, l)| l > 0));
    }

    #[test]
    fn parallel_fetch_reassembles_in_order() {
        let store = MemStore::new("m");
        let data = patterned(1 << 20);
        store.put("k", data.clone()).unwrap();
        let r = Retriever::new(7).with_min_split(1);
        let got = r.fetch(&store, "k", 1000, 500_000).unwrap();
        assert_eq!(got, data.slice(1000..501_000));
    }

    #[test]
    fn sequential_path_for_small_ranges() {
        let store = MemStore::new("m");
        store.put("k", patterned(4096)).unwrap();
        let r = Retriever::new(8); // min_split 64 KiB: 4 KiB goes sequential
        let got = r.fetch(&store, "k", 0, 4096).unwrap();
        assert_eq!(got.len(), 4096);
    }

    #[test]
    fn zero_length_fetch() {
        let store = MemStore::new("m");
        store.put("k", patterned(10)).unwrap();
        let got = Retriever::new(4).fetch(&store, "k", 5, 0).unwrap();
        assert!(got.is_empty());
    }

    #[test]
    fn errors_propagate() {
        let store = MemStore::new("m");
        store.put("k", patterned(100)).unwrap();
        let r = Retriever::new(4).with_min_split(1);
        assert!(r.fetch(&store, "k", 50, 100).is_err());
        assert!(r.fetch(&store, "missing", 0, 10).is_err());
    }

    #[test]
    fn retries_survive_transient_failures() {
        use crate::faults::{FaultMode, FlakyStore};
        let inner = Arc::new(MemStore::new("m"));
        inner.put("k", patterned(100_000)).unwrap();
        let flaky = FlakyStore::new(inner, FaultMode::FirstNPerKey { n: 2 }, 0);

        // Without retries: fails.
        let r = Retriever::new(1);
        assert!(r.fetch(&flaky, "k", 0, 1000).is_err());

        // With retries: the third attempt succeeds.
        let r = Retriever::new(1).with_retries(3, Duration::ZERO);
        let got = r.fetch(&flaky, "k", 0, 1000).unwrap();
        assert_eq!(got, patterned(100_000).slice(0..1000));
        assert!(flaky.injected_failures() >= 2);
    }

    #[test]
    fn retries_do_not_mask_permanent_errors() {
        let store = MemStore::new("m");
        store.put("k", patterned(100)).unwrap();
        let r = Retriever::new(1).with_retries(5, Duration::ZERO);
        // Out of range: permanent, must fail immediately.
        let err = r.fetch(&store, "k", 90, 20).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
        // Missing object: permanent.
        let err = r.fetch(&store, "nope", 0, 1).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::NotFound);
    }

    #[test]
    fn parallel_fetch_with_retries_reassembles() {
        use crate::faults::{FaultMode, FlakyStore};
        let inner = Arc::new(MemStore::new("m"));
        let data = patterned(1 << 18);
        inner.put("k", data.clone()).unwrap();
        let flaky = FlakyStore::new(inner, FaultMode::Random { probability: 0.5 }, 42);
        let r = Retriever::new(4)
            .with_min_split(1)
            .with_retries(30, Duration::ZERO);
        for _ in 0..3 {
            let got = r.fetch(&flaky, "k", 0, 1 << 18).unwrap();
            assert_eq!(got, data);
        }
        assert!(
            flaky.injected_failures() > 0,
            "the run should have hit faults"
        );
    }

    #[test]
    fn backoff_schedule_grows_then_caps() {
        let base = Duration::from_millis(10);
        let cap = Duration::from_millis(80);
        for attempt in 1..=12 {
            let d = backoff_schedule(base, cap, 7, attempt);
            assert!(d <= cap, "attempt {attempt}: {d:?} exceeds cap");
            // Jitter scales the capped exponential by [0.5, 1.0).
            let raw = base.saturating_mul(1 << (attempt - 1).min(20)).min(cap);
            assert!(d >= raw / 2, "attempt {attempt}: {d:?} below jitter floor");
        }
        // Early attempts are strictly shorter than capped late ones:
        // [5,10) ms vs [40,80) ms.
        assert!(backoff_schedule(base, cap, 7, 1) < backoff_schedule(base, cap, 7, 6));
    }

    #[test]
    fn backoff_schedule_is_deterministic_and_seed_sensitive() {
        let base = Duration::from_millis(10);
        let cap = Duration::from_secs(1);
        assert_eq!(
            backoff_schedule(base, cap, 3, 4),
            backoff_schedule(base, cap, 3, 4)
        );
        let a: Vec<_> = (1..=8).map(|i| backoff_schedule(base, cap, 1, i)).collect();
        let b: Vec<_> = (1..=8).map(|i| backoff_schedule(base, cap, 2, i)).collect();
        assert_ne!(a, b, "different seeds should produce different jitter");
        assert_eq!(backoff_schedule(Duration::ZERO, cap, 1, 3), Duration::ZERO);
    }

    #[test]
    fn deadline_classifies_stalled_gets_as_timeouts() {
        use crate::faults::{FaultMode, FlakyStore};
        let inner = Arc::new(MemStore::new("m"));
        inner.put("k", patterned(100)).unwrap();
        let stalled = FlakyStore::new(
            inner,
            FaultMode::Stall {
                delay: Duration::from_millis(20),
            },
            0,
        );

        // Deadline below the stall: every attempt times out.
        let r = Retriever::new(1)
            .with_retries(2, Duration::ZERO)
            .with_deadline(Some(Duration::from_millis(2)));
        let err = r.fetch(&stalled, "k", 0, 10).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);

        // Deadline above the stall: the data arrives in time.
        let r = Retriever::new(1).with_deadline(Some(Duration::from_secs(5)));
        assert_eq!(
            r.fetch(&stalled, "k", 0, 10).unwrap(),
            patterned(100).slice(0..10)
        );
    }

    #[test]
    fn retry_counter_accounts_for_absorbed_faults() {
        use crate::faults::{FaultMode, FlakyStore};
        use std::sync::atomic::AtomicU64;
        let inner = Arc::new(MemStore::new("m"));
        inner.put("k", patterned(100)).unwrap();
        let flaky = FlakyStore::new(inner, FaultMode::FirstNPerKey { n: 2 }, 0);
        let counter = Arc::new(AtomicU64::new(0));
        let r = Retriever::new(1)
            .with_retries(3, Duration::ZERO)
            .with_retry_counter(Arc::clone(&counter));
        r.fetch(&flaky, "k", 0, 10).unwrap();
        assert_eq!(counter.load(std::sync::atomic::Ordering::Relaxed), 2);
    }

    #[test]
    fn retry_hook_sees_each_attempt() {
        use crate::faults::{FaultMode, FlakyStore};
        use parking_lot::Mutex;
        let inner = Arc::new(MemStore::new("m"));
        inner.put("k", patterned(100)).unwrap();
        let flaky = FlakyStore::new(inner, FaultMode::FirstNPerKey { n: 2 }, 0);
        let seen: Arc<Mutex<Vec<u32>>> = Arc::new(Mutex::new(Vec::new()));
        let hook_seen = Arc::clone(&seen);
        let r = Retriever::new(1)
            .with_retries(3, Duration::ZERO)
            .with_retry_hook(Arc::new(move |attempt| hook_seen.lock().push(attempt)));
        r.fetch(&flaky, "k", 0, 10).unwrap();
        assert_eq!(*seen.lock(), vec![1, 2]);
    }

    #[test]
    fn multiple_threads_beat_one_against_per_conn_cap() {
        // The per-connection cap binds per request: one connection streams
        // the whole range at per_conn_bps, four connections each stream a
        // quarter. Assert the fan-out via the remote's request/byte
        // accounting rather than elapsed wall-clock (loaded CI runners make
        // timing deltas flaky); `per_connection_cap_enforced` in s3sim.rs
        // covers the timing behaviour itself.
        let inner = Arc::new(MemStore::new("backing"));
        let data = patterned(40_000);
        inner.put("k", data.clone()).unwrap();
        let remote = RemoteStore::new(
            "s3",
            inner,
            RemoteProfile {
                request_latency: Duration::ZERO,
                aggregate_bps: 100.0e6,
                per_conn_bps: 10.0e6,
            },
        );

        Retriever::new(1).fetch(&remote, "k", 0, 40_000).unwrap();
        assert_eq!(
            remote.requests_served(),
            1,
            "sequential: the whole range streams over one capped connection"
        );

        let got = Retriever::new(4)
            .with_min_split(1)
            .fetch(&remote, "k", 0, 40_000)
            .unwrap();
        assert_eq!(got, data);
        assert_eq!(
            remote.requests_served(),
            5,
            "parallel: one connection per sub-range, each paying only len/4 against the cap"
        );
        assert_eq!(remote.bytes_served(), 80_000);
    }

    /// A store whose tail is permanently missing (NotFound past `doomed_from`) while the
    /// head only ever times out — so sub-fetches of the head would burn the
    /// full retry budget unless the doomed sibling aborts them.
    struct DoomedTail {
        doomed_from: u64,
        calls: AtomicU64,
    }

    impl ObjectStore for DoomedTail {
        fn name(&self) -> &str {
            "doomed-tail"
        }
        fn put(&self, _key: &str, _data: Bytes) -> io::Result<()> {
            Ok(())
        }
        fn get_range(&self, _key: &str, offset: u64, _len: u64) -> io::Result<Bytes> {
            self.calls.fetch_add(1, Ordering::SeqCst);
            if offset >= self.doomed_from {
                Err(io::Error::new(io::ErrorKind::NotFound, "no such range"))
            } else {
                Err(io::Error::new(io::ErrorKind::TimedOut, "transient"))
            }
        }
        fn size_of(&self, _key: &str) -> io::Result<u64> {
            Ok(400)
        }
        fn list(&self) -> Vec<String> {
            vec![]
        }
        fn delete(&self, _key: &str) -> io::Result<bool> {
            Ok(false)
        }
    }

    #[test]
    fn permanent_failure_aborts_sibling_subfetches() {
        // Four sub-ranges of [0, 400): the last (offset 300) fails NotFound
        // immediately; the other three see only transient timeouts and would
        // retry 1000 times each without the abort flag.
        let store = DoomedTail {
            doomed_from: 300,
            calls: AtomicU64::new(0),
        };
        let r = Retriever::new(4)
            .with_min_split(1)
            .with_retries(1000, Duration::from_millis(1))
            .with_backoff_cap(Duration::from_millis(20));
        let err = r.fetch(&store, "k", 0, 400).unwrap_err();
        assert_eq!(
            err.kind(),
            io::ErrorKind::NotFound,
            "the real (permanent) error must propagate, not a sibling's abort notice"
        );
        let calls = store.calls.load(Ordering::SeqCst);
        assert!(
            calls < 200,
            "siblings should stand down after the permanent failure, saw {calls} attempts"
        );
    }

    #[test]
    fn abort_does_not_fire_on_transient_failures() {
        // Random faults that retries eventually absorb must NOT raise the
        // abort flag — only a *final* per-part failure may.
        use crate::faults::{FaultMode, FlakyStore};
        let inner = Arc::new(MemStore::new("m"));
        let data = patterned(1 << 16);
        inner.put("k", data.clone()).unwrap();
        let flaky = FlakyStore::new(inner, FaultMode::Random { probability: 0.5 }, 9);
        let r = Retriever::new(4)
            .with_min_split(1)
            .with_retries(50, Duration::ZERO);
        let got = r.fetch(&flaky, "k", 0, 1 << 16).unwrap();
        assert_eq!(got, data);
    }
}
