//! # cb-sim — discrete-event performance simulator
//!
//! Reproduces the paper's evaluation (Figs. 3–4, Tables I–II) at full
//! scale — 120 GB datasets, 32 files, 960 jobs, up to 64 cores — by driving
//! the *identical* scheduling state machines as the real runtime
//! (`cloudburst_core::sched`) in virtual time over fair-shared links, with a
//! calibrated cost model standing in for the paper's OSU cluster + EC2/S3
//! testbed. See DESIGN.md §2 for the substitution argument.

#![deny(unsafe_code)]

pub mod calib;
pub mod experiments;
pub mod model;
pub mod params;
pub mod trace;

pub use model::{simulate, simulate_observed, simulate_traced};
pub use params::{LinkSpec, PathSpec, SimCluster, SimParams};
pub use trace::{Span, SpanKind, Trace};
