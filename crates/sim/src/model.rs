//! The discrete-event model of the cloud-bursting runtime.
//!
//! Drives the *same* scheduling state machines as the real runtime
//! ([`JobPool`], [`MasterPool`]) in virtual time, with transfers as flows on
//! fair-shared links and compute as parameterized per-unit costs. One run of
//! the paper's largest configuration (120 GB, 960 jobs, 64 cores) is a few
//! thousand events — milliseconds of wall time — which is what lets the
//! benchmark harness sweep every figure of the evaluation.
//!
//! Event flow per job: master dispatch → `FetchBegin` (after request
//! latency) → flow on the path's bottleneck link → `LinkWake` →
//! `ProcessDone` → completion reported, next request. Cluster end: all
//! slaves denied → local combination → `RobjSend` → WAN flow → `RobjArrive`
//! at head → final merge → `FinalDone`.

use crate::params::SimParams;
use crate::trace::{SpanKind, Trace};
use cb_simnet::engine::{Ctx, Engine, World};
use cb_simnet::link::FairShareLink;
use cb_simnet::rng::DetRng;
use cb_simnet::time::{SimDur, SimTime};
use cb_storage::layout::ChunkId;
use cloudburst_core::report::{ClusterBreakdown, RecoveryStats, RunReport};
use cloudburst_core::sched::master::MasterPool;
use cloudburst_core::sched::pool::JobPool;
use std::collections::VecDeque;

/// Events of the simulation.
#[derive(Debug, Clone, Copy)]
enum Ev {
    /// Kick off: every slave asks for work, at `t = 0`.
    Boot,
    /// A head grant reaches cluster `c`'s master.
    GrantArrive { c: usize },
    /// Slave `s` of cluster `c` starts fetching `job` (request latency paid).
    FetchBegin {
        c: usize,
        s: usize,
        job: ChunkId,
        stolen: bool,
        /// Whether this fetch continues the cluster's sequential scan.
        seq: bool,
    },
    /// A link may have completed flows.
    LinkWake { link: usize, gen: u64 },
    /// Slave finished the compute of `job`.
    ProcessDone { c: usize, s: usize, job: ChunkId },
    /// Cluster `c` finished local combination; ship the reduction object.
    RobjSend { c: usize },
    /// The whole run is complete.
    FinalDone,
}

/// What a completed flow means.
#[derive(Debug, Clone, Copy)]
enum FlowTarget {
    ChunkFetched {
        c: usize,
        s: usize,
        job: ChunkId,
        stolen: bool,
        started: SimTime,
    },
    RobjDelivered {
        c: usize,
    },
}

#[derive(Debug, Clone, Default)]
struct SlaveState {
    busy_fetch: SimDur,
    busy_proc: SimDur,
    jobs: u64,
    stolen_jobs: u64,
    bytes_local: u64,
    bytes_remote: u64,
    consecutive_failures: u32,
    finish: Option<SimTime>,
}

struct ClusterState {
    mp: MasterPool,
    waiting: VecDeque<usize>,
    /// Chunk id that would continue this cluster's sequential scan.
    expected_next: Option<u32>,
    slaves: Vec<SlaveState>,
    rngs: Vec<DetRng>,
    finished_slaves: usize,
    local_done: Option<SimTime>,
    robj_sent_at: Option<SimTime>,
    robj_arrived: bool,
}

struct SimWorld {
    params: SimParams,
    pool: JobPool,
    links: Vec<FairShareLink>,
    /// Pending flow targets, keyed by (link, flow tag).
    flow_targets: Vec<std::collections::BTreeMap<u64, FlowTarget>>,
    next_tag: u64,
    clusters: Vec<ClusterState>,
    /// In-flight chunk fetches per file (contention gauge).
    active_per_file: Vec<usize>,
    arrived_robjs: usize,
    final_done: Option<SimTime>,
    last_local_done: SimTime,
    /// Injected-failure accounting, mirroring the runtime's report.
    recovery: RecoveryStats,
    /// Activity spans, when tracing is enabled.
    trace: Option<Trace>,
}

impl SimWorld {
    fn new(params: SimParams, with_trace: bool) -> Self {
        let pool = JobPool::new(&params.layout, &params.placement, params.pool.clone());
        let links = params
            .links
            .iter()
            .map(|l| FairShareLink::with_capacity(l.bps))
            .collect::<Vec<_>>();
        let flow_targets = params.links.iter().map(|_| Default::default()).collect();
        let root = DetRng::new(params.seed);
        let clusters = params
            .clusters
            .iter()
            .enumerate()
            .map(|(ci, c)| ClusterState {
                mp: MasterPool::new(params.master_low_water),
                waiting: VecDeque::new(),
                expected_next: None,
                slaves: vec![SlaveState::default(); c.cores],
                rngs: (0..c.cores)
                    .map(|si| root.fork((ci as u64) << 32 | si as u64))
                    .collect(),
                finished_slaves: 0,
                local_done: None,
                robj_sent_at: None,
                robj_arrived: false,
            })
            .collect();
        let active_per_file = vec![0; params.layout.files.len()];
        SimWorld {
            params,
            pool,
            links,
            flow_targets,
            next_tag: 0,
            clusters,
            active_per_file,
            arrived_robjs: 0,
            final_done: None,
            last_local_done: SimTime::ZERO,
            recovery: RecoveryStats::default(),
            trace: with_trace.then(Trace::default),
        }
    }

    /// (Re-)arm the wakeup for `link`'s next completion.
    fn arm_link(&mut self, ctx: &mut Ctx<'_, Ev>, link: usize) {
        if let Some(t) = self.links[link].next_completion() {
            let gen = self.links[link].generation();
            ctx.schedule_at(t.max(ctx.now()), Ev::LinkWake { link, gen });
        }
    }

    /// Start a flow and remember what it completes.
    fn start_flow(
        &mut self,
        ctx: &mut Ctx<'_, Ev>,
        link: usize,
        bytes: u64,
        cap: f64,
        target: FlowTarget,
    ) {
        let tag = self.next_tag;
        self.next_tag += 1;
        self.links[link].start_flow_capped(ctx.now(), bytes, cap, tag);
        self.flow_targets[link].insert(tag, target);
        self.arm_link(ctx, link);
    }

    /// A slave asks its master for work (after optionally reporting a
    /// completed job). Mirrors `master_loop` + `slave_loop` of the runtime:
    /// the kill schedule is consulted at the job boundary, exactly where the
    /// real slave checks it, so a killed slave's counted work is identical in
    /// both worlds. Parks the slave; [`SimWorld::settle`] hands out jobs.
    fn slave_request(
        &mut self,
        ctx: &mut Ctx<'_, Ev>,
        c: usize,
        s: usize,
        completed: Option<ChunkId>,
    ) {
        let loc = self.params.clusters[c].location;
        if let Some(job) = completed {
            self.pool.complete(loc, job);
        }
        let jobs_done = self.clusters[c].slaves[s].jobs;
        let killed = self
            .params
            .faults
            .kill_schedule
            .iter()
            .any(|k| k.cluster == c && k.slave == s && jobs_done >= k.after_jobs);
        if killed {
            self.recovery.slaves_killed += 1;
            self.retire_slave(ctx, c, s);
            return;
        }
        self.clusters[c].waiting.push_back(s);
    }

    /// Take slave `s` out of service permanently (fail-stop or too many
    /// consecutive fetch failures). Its partial reduction object survives as
    /// a checkpoint, so nothing else needs saving — the GR recovery model.
    fn retire_slave(&mut self, ctx: &mut Ctx<'_, Ev>, c: usize, s: usize) {
        let st = &mut self.clusters[c].slaves[s];
        if st.finish.is_none() {
            st.finish = Some(ctx.now());
            self.clusters[c].finished_slaves += 1;
        }
        self.maybe_cluster_done(ctx, c);
    }

    /// If every slave of cluster `c` has finished (or died), wind the
    /// cluster down: return undispatched leases to the head and schedule the
    /// local combination of whatever reduction objects exist.
    fn maybe_cluster_done(&mut self, ctx: &mut Ctx<'_, Ev>, c: usize) {
        if self.clusters[c].finished_slaves != self.clusters[c].slaves.len()
            || self.clusters[c].local_done.is_some()
        {
            return;
        }
        // A dying master returns its leases; survivors pick them up.
        let leases = self.clusters[c].mp.drain();
        let loc = self.params.clusters[c].location;
        for job in leases {
            self.pool.fail(loc, job.chunk);
        }
        // Local combination: (cores-1) pairwise merges of the robj.
        let merges = (self.clusters[c].slaves.len() as f64 - 1.0).max(0.0);
        let combine =
            SimDur::from_secs_f64(merges * self.params.robj_bytes as f64 / self.params.merge_bps);
        self.clusters[c].local_done = Some(ctx.now() + combine);
        ctx.schedule_after(combine, Ev::RobjSend { c });
    }

    /// Run every cluster's dispatch to a fixed point. A completion or a
    /// fail-back at one cluster can unpark slaves at another (a returned
    /// lease becomes stealable; the last outstanding job completing turns an
    /// empty pool into an exhausted one), so dispatching only the cluster
    /// that saw the event is not enough.
    fn settle(&mut self, ctx: &mut Ctx<'_, Ev>) {
        loop {
            let before = (self.pool.pending(), self.pool.outstanding());
            for c in 0..self.clusters.len() {
                self.dispatch(ctx, c);
            }
            if (self.pool.pending(), self.pool.outstanding()) == before {
                break;
            }
        }
    }

    /// Hand queued jobs to waiting slaves; refill / finish as appropriate.
    fn dispatch(&mut self, ctx: &mut Ctx<'_, Ev>, c: usize) {
        if self.clusters[c].local_done.is_some() {
            return; // cluster already wound down (possibly by losing all slaves)
        }
        let loc = self.params.clusters[c].location;
        let rtt = self.params.clusters[c].rtt_to_head;

        loop {
            // Serve waiting slaves from the master queue.
            while !self.clusters[c].waiting.is_empty() {
                let Some(job) = self.clusters[c].mp.take() else {
                    break;
                };
                let s = self.clusters[c].waiting.pop_front().expect("non-empty");
                let home = self
                    .params
                    .placement
                    .home(self.params.layout.chunk(job.chunk).file);
                let path = self.params.path(loc, home);
                let seq = self.clusters[c].expected_next == Some(job.chunk.0);
                self.clusters[c].expected_next = Some(job.chunk.0 + 1);
                let latency = if seq {
                    path.latency
                } else {
                    path.latency * self.params.nonseq_latency_mult
                };
                ctx.schedule_after(
                    latency,
                    Ev::FetchBegin {
                        c,
                        s,
                        job: job.chunk,
                        stolen: job.stolen,
                        seq,
                    },
                );
            }
            // Refill when low (and someone is or will be waiting).
            if self.clusters[c].mp.should_request() {
                self.clusters[c].mp.mark_requested();
                if rtt.is_zero() {
                    // Colocated master: decide immediately.
                    let grant = self.pool.request(loc);
                    let granted = !grant.jobs.is_empty();
                    self.clusters[c].mp.on_grant(grant.jobs, grant.stolen);
                    if granted {
                        continue; // loop to serve newly arrived jobs
                    }
                    // Empty grant: only the end if the pool is truly out of
                    // work for this site. Otherwise jobs leased elsewhere may
                    // still fail back, so the parked slaves just wait.
                    if self.pool.exhausted_for(loc) {
                        self.clusters[c].mp.mark_exhausted();
                    }
                } else {
                    ctx.schedule_after(rtt, Ev::GrantArrive { c });
                }
            }
            break;
        }

        // Anyone still waiting with a finished pool is done for good.
        if self.clusters[c].mp.finished() {
            while let Some(s) = self.clusters[c].waiting.pop_front() {
                let st = &mut self.clusters[c].slaves[s];
                if st.finish.is_none() {
                    st.finish = Some(ctx.now());
                    self.clusters[c].finished_slaves += 1;
                }
            }
            self.maybe_cluster_done(ctx, c);
        }
    }

    fn handle_robj_arrive(&mut self, ctx: &mut Ctx<'_, Ev>, c: usize) {
        assert!(!self.clusters[c].robj_arrived, "robj delivered twice");
        if let (Some(tr), Some(sent)) = (self.trace.as_mut(), self.clusters[c].robj_sent_at) {
            tr.record(c, 0, SpanKind::RobjTransfer, sent, ctx.now());
        }
        self.clusters[c].robj_arrived = true;
        self.arrived_robjs += 1;
        if self.arrived_robjs == self.clusters.len() {
            // Final global reduction at the head.
            let merges = (self.clusters.len() as f64 - 1.0).max(0.0);
            let cost = self.params.global_reduction_base
                + SimDur::from_secs_f64(
                    merges * self.params.robj_bytes as f64 / self.params.merge_bps,
                );
            ctx.schedule_after(cost, Ev::FinalDone);
        }
    }
}

impl World for SimWorld {
    type Event = Ev;

    fn handle(&mut self, ctx: &mut Ctx<'_, Ev>, ev: Ev) {
        match ev {
            Ev::Boot => {
                for c in 0..self.clusters.len() {
                    for s in 0..self.clusters[c].slaves.len() {
                        self.slave_request(ctx, c, s, None);
                    }
                }
            }
            Ev::GrantArrive { c } => {
                // A cluster that died while the request was in flight must
                // not take a lease it can never serve.
                if self.clusters[c].finished_slaves < self.clusters[c].slaves.len() {
                    let loc = self.params.clusters[c].location;
                    let grant = self.pool.request(loc);
                    let granted = !grant.jobs.is_empty();
                    self.clusters[c].mp.on_grant(grant.jobs, grant.stolen);
                    if !granted && self.pool.exhausted_for(loc) {
                        self.clusters[c].mp.mark_exhausted();
                    }
                }
            }
            Ev::FetchBegin {
                c,
                s,
                job,
                stolen,
                seq,
            } => {
                let loc = self.params.clusters[c].location;
                let chunk = *self.params.layout.chunk(job);
                let home = self.params.placement.home(chunk.file);
                let path = self.params.path(loc, home);
                let mut cap = path.per_conn_bps * path.streams as f64;
                let latency = if seq {
                    path.latency
                } else {
                    // A broken sequential scan loses readahead and pays
                    // request setup again.
                    cap *= self.params.nonseq_bw_factor;
                    path.latency * self.params.nonseq_latency_mult
                };
                // Another reader already on this file contends for it.
                if self.active_per_file[chunk.file.0 as usize] > 0 {
                    cap *= self.params.file_contention_bw_factor;
                }
                self.active_per_file[chunk.file.0 as usize] += 1;
                // The fetch began (latency already paid) when the event was
                // scheduled; count latency into busy-fetch via `started`.
                let started = ctx.now() - latency;
                self.start_flow(
                    ctx,
                    path.link,
                    chunk.len,
                    cap,
                    FlowTarget::ChunkFetched {
                        c,
                        s,
                        job,
                        stolen,
                        started,
                    },
                );
            }
            Ev::LinkWake { link, gen } => {
                if self.links[link].generation() != gen {
                    return; // stale wakeup; a newer one is scheduled
                }
                let done = self.links[link].poll_completed(ctx.now());
                for completion in done {
                    let target = self.flow_targets[link]
                        .remove(&completion.tag)
                        .expect("completed flow had no target");
                    match target {
                        FlowTarget::ChunkFetched {
                            c,
                            s,
                            job,
                            stolen,
                            started,
                        } => {
                            let chunk = *self.params.layout.chunk(job);
                            self.active_per_file[chunk.file.0 as usize] -= 1;
                            // A fetch fault surfaces only after transport —
                            // the simulated analogue of the retriever
                            // exhausting its retries against a flaky store.
                            // The `prob > 0` guard keeps failure-free runs
                            // byte-identical to pre-fault seeds (no extra
                            // RNG draw).
                            let prob = self.params.faults.fetch_failure_prob;
                            let failed = prob > 0.0 && self.clusters[c].rngs[s].chance(prob);
                            let st = &mut self.clusters[c].slaves[s];
                            st.busy_fetch += ctx.now() - started;
                            if let Some(tr) = self.trace.as_mut() {
                                tr.record(c, s, SpanKind::Fetch, started, ctx.now());
                            }
                            if failed {
                                self.recovery.fetch_failures += 1;
                                let st = &mut self.clusters[c].slaves[s];
                                st.consecutive_failures += 1;
                                let retire = st.consecutive_failures
                                    >= self.params.faults.slave_failure_threshold;
                                let loc = self.params.clusters[c].location;
                                self.pool.fail(loc, job);
                                if retire {
                                    self.recovery.slaves_retired += 1;
                                    self.retire_slave(ctx, c, s);
                                } else {
                                    self.clusters[c].waiting.push_back(s);
                                }
                                continue;
                            }
                            let st = &mut self.clusters[c].slaves[s];
                            st.consecutive_failures = 0;
                            if stolen {
                                st.bytes_remote += chunk.len;
                            } else {
                                st.bytes_local += chunk.len;
                            }
                            let jitter = {
                                let cv = self.params.clusters[c].jitter_cv;
                                self.clusters[c].rngs[s].jitter(cv)
                            };
                            let proc = self.params.clusters[c].proc_time(s, chunk.units, jitter);
                            self.clusters[c].slaves[s].busy_proc += proc;
                            if let Some(tr) = self.trace.as_mut() {
                                tr.record(c, s, SpanKind::Process, ctx.now(), ctx.now() + proc);
                            }
                            ctx.schedule_after(proc, Ev::ProcessDone { c, s, job });
                        }
                        FlowTarget::RobjDelivered { c } => {
                            self.handle_robj_arrive(ctx, c);
                        }
                    }
                }
                self.arm_link(ctx, link);
            }
            Ev::ProcessDone { c, s, job } => {
                {
                    let st = &mut self.clusters[c].slaves[s];
                    st.jobs += 1;
                    let chunk = self.params.layout.chunk(job);
                    let home = self.params.placement.home(chunk.file);
                    if home != self.params.clusters[c].location {
                        st.stolen_jobs += 1;
                    }
                }
                self.slave_request(ctx, c, s, Some(job));
            }
            Ev::RobjSend { c } => {
                self.last_local_done = self.last_local_done.max(ctx.now());
                self.clusters[c].robj_sent_at = Some(ctx.now());
                match self.params.clusters[c].robj_link {
                    Some(link) => {
                        let cap = self.params.clusters[c].robj_conn_bps;
                        let bytes = self.params.robj_bytes;
                        self.start_flow(ctx, link, bytes, cap, FlowTarget::RobjDelivered { c });
                    }
                    None => self.handle_robj_arrive(ctx, c),
                }
            }
            Ev::FinalDone => {
                self.final_done = Some(ctx.now());
            }
        }
        // Any of the above may have parked slaves, completed jobs, or failed
        // jobs back into the head pool; bring every cluster up to date.
        self.settle(ctx);
    }
}

/// Run the simulation to completion and produce the same report schema as
/// the real runtime.
pub fn simulate(params: SimParams) -> Result<RunReport, String> {
    simulate_inner(params, false).map(|(r, _)| r)
}

/// Like [`simulate`], but also record an activity [`Trace`] (per-slave
/// fetch/process/robj spans) for timeline rendering and utilization checks.
pub fn simulate_traced(params: SimParams) -> Result<(RunReport, Trace), String> {
    simulate_inner(params, true).map(|(r, t)| (r, t.expect("tracing was enabled")))
}

fn simulate_inner(
    params: SimParams,
    with_trace: bool,
) -> Result<(RunReport, Option<Trace>), String> {
    params.validate()?;
    let mut engine = Engine::new(SimWorld::new(params, with_trace));
    engine.schedule(SimTime::ZERO, Ev::Boot);
    // 960 jobs × ~5 events plus link wakeups: 10M is a generous livelock
    // guard, not a tuning knob.
    if !engine.run_bounded(10_000_000) {
        return Err("simulation exceeded event budget (livelock?)".into());
    }
    let end = engine.now();
    let world = engine.into_world();
    let total = world
        .final_done
        .unwrap_or(end)
        .saturating_since(SimTime::ZERO);
    let last_local = world.last_local_done;

    // Every job must have been folded exactly once. With injected failures
    // this can legitimately fail (a chunk exceeding its failure budget, or
    // every slave dead); surface that as an error naming the loss, the same
    // contract as the runtime's `RuntimeError::JobsFailed`.
    if !world.pool.all_done() {
        return Err(format!(
            "simulation ended with unfinished jobs: {} dead, {} pending, {} outstanding",
            world.pool.dead_jobs().len(),
            world.pool.pending(),
            world.pool.outstanding(),
        ));
    }

    let mut clusters = Vec::with_capacity(world.clusters.len());
    for (ci, c) in world.clusters.iter().enumerate() {
        let spec = &world.params.clusters[ci];
        let n = c.slaves.len().max(1) as f64;
        let proc_s: f64 = c
            .slaves
            .iter()
            .map(|s| s.busy_proc.as_secs_f64())
            .sum::<f64>()
            / n;
        let fetch_s: f64 = c
            .slaves
            .iter()
            .map(|s| s.busy_fetch.as_secs_f64())
            .sum::<f64>()
            / n;
        let local_done = c.local_done.unwrap_or(world.final_done.unwrap_or(end));
        let wall_s = local_done.as_secs_f64();
        clusters.push(ClusterBreakdown {
            name: spec.name.clone(),
            cores: spec.cores,
            processing_s: proc_s,
            retrieval_s: fetch_s,
            sync_s: (wall_s - proc_s - fetch_s).max(0.0),
            wall_s,
            idle_end_s: last_local.saturating_since(local_done).as_secs_f64(),
            jobs_processed: c.slaves.iter().map(|s| s.jobs).sum(),
            jobs_stolen: c.slaves.iter().map(|s| s.stolen_jobs).sum(),
            bytes_local: c.slaves.iter().map(|s| s.bytes_local).sum(),
            bytes_remote: c.slaves.iter().map(|s| s.bytes_remote).sum(),
        });
    }
    let report = RunReport {
        total_s: total.as_secs_f64(),
        global_reduction_s: world
            .final_done
            .unwrap_or(end)
            .saturating_since(last_local)
            .as_secs_f64(),
        robj_bytes: world.params.robj_bytes,
        clusters,
        recovery: RecoveryStats {
            jobs_reenqueued: world.pool.reenqueued(),
            ..world.recovery
        },
    };
    Ok((report, world.trace))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{LinkSpec, PathSpec, SimCluster};
    use cb_storage::layout::{LocationId, Placement};
    use cb_storage::organizer::organize_even;
    use cloudburst_core::config::SlaveKill;
    use cloudburst_core::sched::pool::PoolConfig;
    use std::collections::BTreeMap;

    const L: LocationId = LocationId(0);
    const C: LocationId = LocationId(1);

    /// Two clusters, one link per path class, tiny dataset.
    fn params(frac_local: f64) -> SimParams {
        // 8 files × 4 chunks of 256 KiB.
        let layout = organize_even(8, 1 << 20, 1 << 18, 64).unwrap();
        let placement = Placement::split_fraction(8, frac_local, L, C);
        let links = vec![
            LinkSpec {
                name: "disk".into(),
                bps: 100.0e6,
            },
            LinkSpec {
                name: "s3".into(),
                bps: 100.0e6,
            },
            LinkSpec {
                name: "wan".into(),
                bps: 20.0e6,
            },
        ];
        let mut paths = BTreeMap::new();
        paths.insert(
            (L, L),
            PathSpec {
                link: 0,
                latency: SimDur::from_micros(200),
                per_conn_bps: 50.0e6,
                streams: 1,
            },
        );
        paths.insert(
            (C, C),
            PathSpec {
                link: 1,
                latency: SimDur::from_millis(5),
                per_conn_bps: 10.0e6,
                streams: 4,
            },
        );
        paths.insert(
            (L, C),
            PathSpec {
                link: 2,
                latency: SimDur::from_millis(40),
                per_conn_bps: 3.0e6,
                streams: 4,
            },
        );
        paths.insert(
            (C, L),
            PathSpec {
                link: 2,
                latency: SimDur::from_millis(40),
                per_conn_bps: 3.0e6,
                streams: 4,
            },
        );
        SimParams {
            layout,
            placement,
            clusters: vec![
                SimCluster::new("local", L, 4, 100.0),
                SimCluster::new("EC2", C, 4, 120.0)
                    .with_rtt(SimDur::from_millis(8))
                    .with_robj_path(2, 5.0e6),
            ],
            links,
            paths,
            pool: PoolConfig::default(),
            master_low_water: 2,
            robj_bytes: 64 * 1024,
            merge_bps: 1.0e9,
            global_reduction_base: SimDur::from_millis(50),
            nonseq_latency_mult: 1.0,
            nonseq_bw_factor: 1.0,
            file_contention_bw_factor: 1.0,
            seed: 7,
            faults: crate::params::FaultPlan::default(),
        }
    }

    #[test]
    fn all_jobs_processed_exactly_once() {
        let p = params(0.5);
        let n_jobs = p.layout.n_jobs() as u64;
        let r = simulate(p).unwrap();
        assert_eq!(r.total_jobs(), n_jobs);
        assert!(r.total_s > 0.0);
        assert!(r.global_reduction_s > 0.0);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let a = simulate(params(0.33)).unwrap();
        let b = simulate(params(0.33)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn seed_changes_only_jitter() {
        let mut p = params(0.5);
        p.clusters[0].jitter_cv = 0.2;
        p.clusters[1].jitter_cv = 0.2;
        let a = simulate(p.clone()).unwrap();
        p.seed = 99;
        let b = simulate(p).unwrap();
        assert_eq!(a.total_jobs(), b.total_jobs());
        assert_ne!(a.total_s, b.total_s, "jitter must respond to the seed");
    }

    #[test]
    fn balanced_split_steals_nothing() {
        let r = simulate(params(0.5)).unwrap();
        // 50/50 data, comparable compute: neither side should steal much.
        assert!(
            r.total_stolen() <= 8,
            "50/50 split should steal little, got {}",
            r.total_stolen()
        );
    }

    #[test]
    fn skew_forces_stealing_toward_data() {
        let r = simulate(params(0.125)).unwrap(); // 1 of 8 files local
        let local = r.cluster("local").unwrap();
        assert!(
            local.jobs_stolen > 0,
            "local cluster must steal when starved of data"
        );
        assert!(local.bytes_remote > 0);
    }

    #[test]
    fn stealing_disabled_still_terminates() {
        let mut p = params(0.25);
        p.pool.allow_stealing = false;
        let n_jobs = p.layout.n_jobs() as u64;
        let r = simulate(p).unwrap();
        assert_eq!(
            r.total_jobs(),
            n_jobs,
            "home clusters finish their own jobs"
        );
        assert_eq!(r.total_stolen(), 0);
    }

    #[test]
    fn breakdown_adds_up() {
        let r = simulate(params(0.33)).unwrap();
        for c in &r.clusters {
            let sum = c.processing_s + c.retrieval_s + c.sync_s;
            assert!(
                (sum - c.wall_s).abs() < 1e-6,
                "{}: {} != {}",
                c.name,
                sum,
                c.wall_s
            );
            assert!(c.wall_s <= r.total_s + 1e-9);
        }
        // Total bytes moved equal the dataset.
        let moved: u64 = r
            .clusters
            .iter()
            .map(|c| c.bytes_local + c.bytes_remote)
            .sum();
        assert_eq!(moved, 8 * (1 << 20));
    }

    #[test]
    fn straggler_inflates_sync_of_peers() {
        let base = simulate(params(0.5)).unwrap();
        let mut p = params(0.5);
        p.clusters[0] = std::mem::replace(&mut p.clusters[0], SimCluster::new("x", L, 1, 0.0))
            .with_straggler(0, 50.0);
        let slowed = simulate(p).unwrap();
        assert!(
            slowed.total_s > base.total_s,
            "a 50x straggler must hurt: {} vs {}",
            slowed.total_s,
            base.total_s
        );
        // But pooling limits the damage: the straggler only drags its own
        // in-flight job, not a static partition. With 32 jobs and 8 cores a
        // static split would give the straggler 4 jobs (~50x slowdown on
        // 1/8 of the work); dynamic pooling should stay well under that.
        let static_estimate = base.total_s * 50.0 / 8.0;
        assert!(
            slowed.total_s < static_estimate,
            "pool balancing failed: {} vs static {}",
            slowed.total_s,
            static_estimate
        );
    }

    #[test]
    fn bigger_robj_slows_global_reduction() {
        let small = simulate(params(0.5)).unwrap();
        let mut p = params(0.5);
        p.robj_bytes = 64 * 1024 * 1024; // 64 MiB over a 5 MB/s robj link
        let big = simulate(p).unwrap();
        assert!(
            big.global_reduction_s > small.global_reduction_s + 5.0,
            "64 MiB robj should add >5s: {} vs {}",
            big.global_reduction_s,
            small.global_reduction_s
        );
    }

    #[test]
    fn killed_slaves_leave_work_to_survivors() {
        // Compute-bound so the number of live cores is what matters.
        let compute_bound = |frac| {
            let mut p = params(frac);
            p.clusters[0].ns_per_unit = 50_000.0;
            p.clusters[1].ns_per_unit = 50_000.0;
            p
        };
        let baseline = simulate(compute_bound(0.5)).unwrap();
        let mut p = compute_bound(0.5);
        p.faults.kill_schedule = vec![
            SlaveKill {
                cluster: 1,
                slave: 0,
                after_jobs: 1,
            },
            SlaveKill {
                cluster: 1,
                slave: 2,
                after_jobs: 3,
            },
        ];
        let n_jobs = p.layout.n_jobs() as u64;
        let r = simulate(p).unwrap();
        assert_eq!(r.total_jobs(), n_jobs, "no chunk lost to the kills");
        assert_eq!(r.recovery.slaves_killed, 2);
        // The dead slaves' leases stay with their master, so the surviving
        // cores grind through the same job set with half the parallelism:
        // the run must get strictly slower.
        assert!(
            r.total_s > baseline.total_s,
            "halving a compute-bound cluster must cost time: {} vs {}",
            r.total_s,
            baseline.total_s
        );
    }

    #[test]
    fn losing_a_whole_cluster_reassigns_its_data() {
        let mut p = params(0.5);
        p.faults.kill_schedule = (0..4)
            .map(|s| SlaveKill {
                cluster: 1,
                slave: s,
                after_jobs: if s == 0 { 1 } else { 0 },
            })
            .collect();
        let n_jobs = p.layout.n_jobs() as u64;
        let r = simulate(p).unwrap();
        assert_eq!(r.total_jobs(), n_jobs);
        assert_eq!(r.recovery.slaves_killed, 4);
        let local = r.cluster("local").unwrap();
        assert!(
            local.jobs_stolen > 0,
            "the survivor must take over cloud-homed chunks"
        );
        assert!(
            r.recovery.jobs_reenqueued > 0,
            "the dead master's leases must have been returned"
        );
    }

    #[test]
    fn fetch_faults_are_reenqueued_until_done() {
        let mut p = params(0.5);
        p.faults.fetch_failure_prob = 0.25;
        p.faults.slave_failure_threshold = 10; // faults, not deaths
        let n_jobs = p.layout.n_jobs() as u64;
        let r = simulate(p).unwrap();
        assert_eq!(r.total_jobs(), n_jobs, "every failed fetch was re-run");
        assert!(r.recovery.fetch_failures > 0, "32 jobs at 25% must fault");
        assert_eq!(r.recovery.jobs_reenqueued, r.recovery.fetch_failures);
    }

    #[test]
    fn fault_runs_are_deterministic_too() {
        let mk = || {
            let mut p = params(0.33);
            p.faults.fetch_failure_prob = 0.1;
            p.faults.kill_schedule = vec![SlaveKill {
                cluster: 0,
                slave: 1,
                after_jobs: 2,
            }];
            p
        };
        let a = simulate(mk()).unwrap();
        let b = simulate(mk()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn losing_every_slave_everywhere_errors_instead_of_hanging() {
        let mut p = params(0.5);
        for c in 0..2 {
            for s in 0..4 {
                p.faults.kill_schedule.push(SlaveKill {
                    cluster: c,
                    slave: s,
                    after_jobs: 0,
                });
            }
        }
        let err = simulate(p).unwrap_err();
        assert!(
            err.contains("unfinished jobs"),
            "total loss must surface, got: {err}"
        );
    }

    #[test]
    fn more_cores_scale_compute_bound_runs() {
        let mut p = params(0.0); // all data in the cloud, like Fig. 4
        p.clusters[0].ns_per_unit = 50_000.0;
        p.clusters[1].ns_per_unit = 50_000.0;
        let small = simulate(p.clone()).unwrap();
        p.clusters[0].cores = 8;
        p.clusters[1].cores = 8;
        let big = simulate(p).unwrap();
        let speedup = small.total_s / big.total_s;
        assert!(
            speedup > 1.5,
            "doubling cores should speed up compute-bound run: {speedup}"
        );
    }
}
