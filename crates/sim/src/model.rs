//! The discrete-event model of the cloud-bursting runtime.
//!
//! Drives the *same* scheduling state machines as the real runtime
//! ([`JobPool`], [`MasterPool`]) in virtual time, with transfers as flows on
//! fair-shared links and compute as parameterized per-unit costs. One run of
//! the paper's largest configuration (120 GB, 960 jobs, 64 cores) is a few
//! thousand events — milliseconds of wall time — which is what lets the
//! benchmark harness sweep every figure of the evaluation.
//!
//! Event flow per job: master dispatch → `FetchBegin` (after request
//! latency) → flow on the path's bottleneck link → `LinkWake` →
//! `ProcessDone` → completion reported, next request. Cluster end: all
//! slaves denied → local combination → `RobjSend` → WAN flow → `RobjArrive`
//! at head → final merge → `FinalDone`.
//!
//! With `prefetch_depth > 0` each slave mirrors the runtime's pipelined
//! fold loop: it holds up to `1 + depth` leases, its serial background
//! fetcher streams them one at a time into a ready queue, and the compute
//! unit drains that queue — retrieval overlaps computation, and only the
//! un-hidden remainder of each fetch is counted as stall. At depth 0 the
//! event sequence (and every RNG draw) is identical to the serial model.

use crate::params::SimParams;
use crate::trace::{SpanKind, Trace};
use cb_simnet::engine::{Ctx, Engine, World};
use cb_simnet::link::FairShareLink;
use cb_simnet::rng::DetRng;
use cb_simnet::time::{SimDur, SimTime};
use cb_storage::layout::ChunkId;
use cloudburst_core::obs::{EventKind, EventRecord, RecordingSink, SinkHandle};
use cloudburst_core::report::{ClusterBreakdown, RecoveryStats, RunReport};
use cloudburst_core::sched::master::MasterPool;
use cloudburst_core::sched::pool::JobPool;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Events of the simulation.
#[derive(Debug, Clone, Copy)]
enum Ev {
    /// Kick off: every slave asks for work, at `t = 0`.
    Boot,
    /// A head grant reaches cluster `c`'s master.
    GrantArrive { c: usize },
    /// Slave `s` of cluster `c` starts fetching `job` (request latency paid).
    FetchBegin {
        c: usize,
        s: usize,
        job: ChunkId,
        stolen: bool,
        /// Whether this fetch continues the cluster's sequential scan.
        seq: bool,
    },
    /// A link may have completed flows.
    LinkWake { link: usize, gen: u64 },
    /// Slave finished the compute of `job`.
    ProcessDone { c: usize, s: usize, job: ChunkId },
    /// Cluster `c` finished local combination; ship the reduction object.
    RobjSend { c: usize },
    /// The whole run is complete.
    FinalDone,
}

/// What a completed flow means.
#[derive(Debug, Clone, Copy)]
enum FlowTarget {
    ChunkFetched {
        c: usize,
        s: usize,
        job: ChunkId,
        stolen: bool,
        started: SimTime,
    },
    RobjDelivered {
        c: usize,
    },
}

/// A lease sitting in a slave's fetch pipeline, not yet fetch-started.
#[derive(Debug, Clone, Copy)]
struct QueuedFetch {
    job: ChunkId,
    stolen: bool,
    /// Sequential-scan classification, decided at assignment time (the
    /// cluster-level scan pointer advances in grant order).
    seq: bool,
}

/// A fetched job waiting for the slave's compute unit.
#[derive(Debug, Clone, Copy)]
struct ReadyJob {
    job: ChunkId,
    /// When its fetch began (latency included) — the stall clock can only
    /// start once the data is actually on the wire.
    started: SimTime,
}

#[derive(Debug, Clone, Default)]
struct SlaveState {
    busy_fetch: SimDur,
    busy_proc: SimDur,
    /// Time the compute side sat waiting on an in-flight fetch (the
    /// runtime's `fetch_stall`). At depth 0 this equals `busy_fetch`.
    stall: SimDur,
    jobs: u64,
    stolen_jobs: u64,
    bytes_local: u64,
    bytes_remote: u64,
    consecutive_failures: u32,
    /// Leases currently held: queued + in-flight fetch + ready + processing.
    leases: usize,
    /// In the cluster's `waiting` queue (avoid duplicate parking).
    parked: bool,
    /// The serial background fetcher is mid-fetch.
    fetch_busy: bool,
    /// The compute unit is mid-job.
    proc_busy: bool,
    /// Duration of the in-flight compute job, for the `process_end` event.
    cur_proc_ns: u64,
    /// Retired (kill or failure threshold) but still draining leases.
    retiring: bool,
    /// Leased jobs whose fetch has not started yet.
    fetch_queue: VecDeque<QueuedFetch>,
    /// Fetched jobs awaiting compute.
    ready: VecDeque<ReadyJob>,
    /// When the compute unit went idle (`None` while busy); the portion of
    /// idleness overlapping the next job's fetch is counted as stall.
    idle_since: Option<SimTime>,
    finish: Option<SimTime>,
}

struct ClusterState {
    mp: MasterPool,
    waiting: VecDeque<usize>,
    /// Chunk id that would continue this cluster's sequential scan.
    expected_next: Option<u32>,
    slaves: Vec<SlaveState>,
    rngs: Vec<DetRng>,
    finished_slaves: usize,
    local_done: Option<SimTime>,
    robj_sent_at: Option<SimTime>,
    robj_arrived: bool,
}

struct SimWorld {
    params: SimParams,
    pool: JobPool,
    links: Vec<FairShareLink>,
    /// Pending flow targets, keyed by (link, flow tag).
    flow_targets: Vec<std::collections::BTreeMap<u64, FlowTarget>>,
    next_tag: u64,
    clusters: Vec<ClusterState>,
    /// In-flight chunk fetches per file (contention gauge).
    active_per_file: Vec<usize>,
    arrived_robjs: usize,
    final_done: Option<SimTime>,
    last_local_done: SimTime,
    /// Injected-failure accounting, mirroring the runtime's report.
    recovery: RecoveryStats,
    /// Activity spans, when tracing is enabled.
    trace: Option<Trace>,
    /// Observability sink; disabled unless [`simulate_observed`] is used.
    /// Emits the same event kinds as the real runtime, stamped with
    /// *virtual* time via `clock`.
    sink: SinkHandle,
    /// Virtual clock backing the sink: updated to `ctx.now()` at every
    /// event-handler entry so emitted events carry simulated nanoseconds.
    clock: Option<Arc<AtomicU64>>,
    /// Buffer behind `sink`, drained into the run's event stream at the end.
    recorder: Option<Arc<RecordingSink>>,
}

impl SimWorld {
    fn new(params: SimParams, with_trace: bool, observe: bool) -> Self {
        let (sink, clock, recorder) = if observe {
            let clock = Arc::new(AtomicU64::new(0));
            let rec = RecordingSink::with_clock(Arc::clone(&clock));
            (
                SinkHandle::new(Arc::clone(&rec) as _),
                Some(clock),
                Some(rec),
            )
        } else {
            (SinkHandle::disabled(), None, None)
        };
        // Location → cluster index for head-side event tagging (earliest
        // cluster wins if two share a location), as in the runtime.
        let cluster_of: std::collections::BTreeMap<_, _> = params
            .clusters
            .iter()
            .enumerate()
            .rev()
            .map(|(i, c)| (c.location, i as u32))
            .collect();
        let pool = JobPool::new(&params.layout, &params.placement, params.pool.clone())
            .with_sink(sink.clone(), cluster_of);
        let links = params
            .links
            .iter()
            .map(|l| FairShareLink::with_capacity(l.bps))
            .collect::<Vec<_>>();
        let flow_targets = params.links.iter().map(|_| Default::default()).collect();
        let root = DetRng::new(params.seed);
        let clusters = params
            .clusters
            .iter()
            .enumerate()
            .map(|(ci, c)| ClusterState {
                mp: MasterPool::new(params.master_low_water).with_sink(sink.clone(), ci as u32),
                waiting: VecDeque::new(),
                expected_next: None,
                slaves: vec![SlaveState::default(); c.cores],
                rngs: (0..c.cores)
                    .map(|si| root.fork((ci as u64) << 32 | si as u64))
                    .collect(),
                finished_slaves: 0,
                local_done: None,
                robj_sent_at: None,
                robj_arrived: false,
            })
            .collect();
        let active_per_file = vec![0; params.layout.files.len()];
        SimWorld {
            params,
            pool,
            links,
            flow_targets,
            next_tag: 0,
            clusters,
            active_per_file,
            arrived_robjs: 0,
            final_done: None,
            last_local_done: SimTime::ZERO,
            recovery: RecoveryStats::default(),
            trace: with_trace.then(Trace::default),
            sink,
            clock,
            recorder,
        }
    }

    /// (Re-)arm the wakeup for `link`'s next completion.
    fn arm_link(&mut self, ctx: &mut Ctx<'_, Ev>, link: usize) {
        if let Some(t) = self.links[link].next_completion() {
            let gen = self.links[link].generation();
            ctx.schedule_at(t.max(ctx.now()), Ev::LinkWake { link, gen });
        }
    }

    /// Start a flow and remember what it completes.
    fn start_flow(
        &mut self,
        ctx: &mut Ctx<'_, Ev>,
        link: usize,
        bytes: u64,
        cap: f64,
        target: FlowTarget,
    ) {
        let tag = self.next_tag;
        self.next_tag += 1;
        self.links[link].start_flow_capped(ctx.now(), bytes, cap, tag);
        self.flow_targets[link].insert(tag, target);
        self.arm_link(ctx, link);
    }

    /// A slave reaches a job boundary (boot, or a completed job already
    /// reported to the pool). Mirrors the runtime's fold loop: the kill
    /// schedule is consulted here, exactly where the real slave checks it,
    /// so a killed slave's counted work is identical in both worlds. A
    /// surviving slave starts its next ready job (if any) and parks for
    /// more leases; [`SimWorld::settle`] hands out jobs.
    fn job_boundary(&mut self, ctx: &mut Ctx<'_, Ev>, c: usize, s: usize) {
        let jobs_done = self.clusters[c].slaves[s].jobs;
        let killed = self
            .params
            .faults
            .kill_schedule
            .iter()
            .any(|k| k.cluster == c && k.slave == s && jobs_done >= k.after_jobs);
        if killed {
            self.recovery.slaves_killed += 1;
            self.sink.emit(
                Some(c as u32),
                Some(s as u32),
                EventKind::SlaveRetired { killed: true },
            );
            self.retire_slave(ctx, c, s);
            return;
        }
        self.maybe_start_proc(ctx, c, s);
        self.park_if_hungry(c, s);
    }

    /// Park `s` in its cluster's waiting queue if it can take another lease:
    /// alive, not already parked, and holding fewer than `1 + prefetch_depth`
    /// leases (the pipeline capacity).
    fn park_if_hungry(&mut self, c: usize, s: usize) {
        let capacity = 1 + self.params.prefetch_depth;
        let cl = &mut self.clusters[c];
        {
            let st = &mut cl.slaves[s];
            if st.retiring || st.finish.is_some() || st.parked || st.leases >= capacity {
                return;
            }
            st.parked = true;
        }
        cl.waiting.push_back(s);
    }

    /// Start the next queued fetch on `s`'s serial background fetcher.
    fn maybe_start_fetch(&mut self, ctx: &mut Ctx<'_, Ev>, c: usize, s: usize) {
        let qf = {
            let st = &mut self.clusters[c].slaves[s];
            if st.fetch_busy {
                return;
            }
            let Some(qf) = st.fetch_queue.pop_front() else {
                return;
            };
            st.fetch_busy = true;
            qf
        };
        // The fetcher picks up the lease *now*; request latency and the
        // transfer both count into the fetch, exactly as `busy_fetch` does.
        self.sink.emit(
            Some(c as u32),
            Some(s as u32),
            EventKind::FetchStart {
                chunk: qf.job.0 as u64,
            },
        );
        let loc = self.params.clusters[c].location;
        let home = self
            .params
            .placement
            .home(self.params.layout.chunk(qf.job).file);
        let path = self.params.path(loc, home);
        let latency = if qf.seq {
            path.latency
        } else {
            path.latency * self.params.nonseq_latency_mult
        };
        ctx.schedule_after(
            latency,
            Ev::FetchBegin {
                c,
                s,
                job: qf.job,
                stolen: qf.stolen,
                seq: qf.seq,
            },
        );
    }

    /// Feed the next ready job to `s`'s compute unit, charging the portion
    /// of its idle wait that overlapped the job's fetch as stall (the
    /// runtime counts exactly the recv blocks that end in fetched data;
    /// waits for a master grant are sync, not stall).
    fn maybe_start_proc(&mut self, ctx: &mut Ctx<'_, Ev>, c: usize, s: usize) {
        let ready = {
            let st = &mut self.clusters[c].slaves[s];
            if st.proc_busy {
                return;
            }
            match st.ready.pop_front() {
                Some(r) => r,
                None => return,
            }
        };
        let now = ctx.now();
        let jitter = {
            let cv = self.params.clusters[c].jitter_cv;
            self.clusters[c].rngs[s].jitter(cv)
        };
        let units = self.params.layout.chunk(ready.job).units;
        let proc = self.params.clusters[c].proc_time(s, units, jitter);
        let stalled = {
            let st = &mut self.clusters[c].slaves[s];
            st.proc_busy = true;
            let idle = st.idle_since.take().unwrap_or(SimTime::ZERO);
            let stalled = now.saturating_since(idle.max(ready.started));
            st.stall += stalled;
            st.busy_proc += proc;
            st.cur_proc_ns = proc.as_nanos();
            stalled
        };
        self.sink.emit(
            Some(c as u32),
            Some(s as u32),
            EventKind::Stall {
                ns: stalled.as_nanos(),
            },
        );
        self.sink.emit(
            Some(c as u32),
            Some(s as u32),
            EventKind::ProcessStart {
                chunk: ready.job.0 as u64,
            },
        );
        if let Some(tr) = self.trace.as_mut() {
            if !stalled.is_zero() {
                tr.record(c, s, SpanKind::Stall, now - stalled, now);
            }
            tr.record(c, s, SpanKind::Process, now, now + proc);
        }
        ctx.schedule_after(
            proc,
            Ev::ProcessDone {
                c,
                s,
                job: ready.job,
            },
        );
    }

    /// Take slave `s` out of service (fail-stop or too many consecutive
    /// fetch failures). Its partial reduction object survives as a
    /// checkpoint — the GR recovery model — but its prefetched leases must
    /// go back: queued and ready jobs are returned uncharged
    /// (`JobPool::release`; they were never attempted), and an in-flight
    /// fetch is released when its flow completes, exactly as the runtime's
    /// dying slave drains its fetch channel before reporting `Finished`.
    /// The slave counts as finished only once its last lease is returned.
    fn retire_slave(&mut self, ctx: &mut Ctx<'_, Ev>, c: usize, s: usize) {
        {
            let st = &mut self.clusters[c].slaves[s];
            if st.retiring || st.finish.is_some() {
                return;
            }
            st.retiring = true;
        }
        self.clusters[c].waiting.retain(|&x| x != s);
        self.clusters[c].slaves[s].parked = false;
        let loc = self.params.clusters[c].location;
        let reclaimed: Vec<ChunkId> = {
            let st = &mut self.clusters[c].slaves[s];
            let queued = st.fetch_queue.drain(..).map(|q| q.job);
            let ready = st.ready.drain(..).map(|r| r.job);
            queued.chain(ready).collect()
        };
        for job in reclaimed {
            self.clusters[c].slaves[s].leases -= 1;
            self.pool.release(loc, job);
        }
        self.maybe_finish_retiring(ctx, c, s);
    }

    /// A retiring slave is finished once every lease it held is back in the
    /// pool (an in-flight fetch or a mid-compute job keeps it alive until
    /// the corresponding event lands).
    fn maybe_finish_retiring(&mut self, ctx: &mut Ctx<'_, Ev>, c: usize, s: usize) {
        {
            let st = &mut self.clusters[c].slaves[s];
            if !st.retiring || st.finish.is_some() || st.leases != 0 {
                return;
            }
            st.finish = Some(ctx.now());
        }
        self.clusters[c].finished_slaves += 1;
        self.maybe_cluster_done(ctx, c);
    }

    /// If every slave of cluster `c` has finished (or died), wind the
    /// cluster down: return undispatched leases to the head and schedule the
    /// local combination of whatever reduction objects exist.
    fn maybe_cluster_done(&mut self, ctx: &mut Ctx<'_, Ev>, c: usize) {
        if self.clusters[c].finished_slaves != self.clusters[c].slaves.len()
            || self.clusters[c].local_done.is_some()
        {
            return;
        }
        // A dying master returns its leases; survivors pick them up.
        let leases = self.clusters[c].mp.drain();
        let loc = self.params.clusters[c].location;
        for job in leases {
            self.pool.fail(loc, job.chunk);
        }
        // Local combination: (cores-1) pairwise merges of the robj.
        let merges = (self.clusters[c].slaves.len() as f64 - 1.0).max(0.0);
        let combine =
            SimDur::from_secs_f64(merges * self.params.robj_bytes as f64 / self.params.merge_bps);
        self.clusters[c].local_done = Some(ctx.now() + combine);
        ctx.schedule_after(combine, Ev::RobjSend { c });
    }

    /// Run every cluster's dispatch to a fixed point. A completion or a
    /// fail-back at one cluster can unpark slaves at another (a returned
    /// lease becomes stealable; the last outstanding job completing turns an
    /// empty pool into an exhausted one), so dispatching only the cluster
    /// that saw the event is not enough.
    fn settle(&mut self, ctx: &mut Ctx<'_, Ev>) {
        loop {
            let before = (self.pool.pending(), self.pool.outstanding());
            for c in 0..self.clusters.len() {
                self.dispatch(ctx, c);
            }
            if (self.pool.pending(), self.pool.outstanding()) == before {
                break;
            }
        }
    }

    /// Hand queued jobs to waiting slaves; refill / finish as appropriate.
    fn dispatch(&mut self, ctx: &mut Ctx<'_, Ev>, c: usize) {
        if self.clusters[c].local_done.is_some() {
            return; // cluster already wound down (possibly by losing all slaves)
        }
        let loc = self.params.clusters[c].location;
        let rtt = self.params.clusters[c].rtt_to_head;

        loop {
            // Serve waiting slaves from the master queue. A lease joins the
            // slave's fetch pipeline; a slave still under capacity re-parks
            // at the back of the queue for its next prefetch lease.
            while !self.clusters[c].waiting.is_empty() {
                let Some(job) = self.clusters[c].mp.take() else {
                    break;
                };
                let s = self.clusters[c].waiting.pop_front().expect("non-empty");
                let seq = self.clusters[c].expected_next == Some(job.chunk.0);
                self.clusters[c].expected_next = Some(job.chunk.0 + 1);
                {
                    let st = &mut self.clusters[c].slaves[s];
                    st.parked = false;
                    st.leases += 1;
                    st.fetch_queue.push_back(QueuedFetch {
                        job: job.chunk,
                        stolen: job.stolen,
                        seq,
                    });
                }
                self.maybe_start_fetch(ctx, c, s);
                self.park_if_hungry(c, s);
            }
            // Refill when low (and someone is or will be waiting).
            if self.clusters[c].mp.should_request() {
                self.clusters[c].mp.mark_requested();
                if rtt.is_zero() {
                    // Colocated master: decide immediately.
                    let grant = self.pool.request(loc);
                    let granted = !grant.jobs.is_empty();
                    self.clusters[c].mp.on_grant(grant.jobs, grant.stolen);
                    if granted {
                        continue; // loop to serve newly arrived jobs
                    }
                    // Empty grant: only the end if the pool is truly out of
                    // work for this site. Otherwise jobs leased elsewhere may
                    // still fail back, so the parked slaves just wait.
                    if self.pool.exhausted_for(loc) {
                        self.clusters[c].mp.mark_exhausted();
                    }
                } else {
                    ctx.schedule_after(rtt, Ev::GrantArrive { c });
                }
            }
            break;
        }

        // Anyone still waiting with a finished pool gets no more leases. A
        // slave whose pipeline is empty is done for good; one still holding
        // leases finishes at its last `ProcessDone`.
        if self.clusters[c].mp.finished() {
            while let Some(s) = self.clusters[c].waiting.pop_front() {
                let st = &mut self.clusters[c].slaves[s];
                st.parked = false;
                if st.leases == 0 && st.finish.is_none() && !st.retiring {
                    st.finish = Some(ctx.now());
                    self.clusters[c].finished_slaves += 1;
                }
            }
            self.maybe_cluster_done(ctx, c);
        }
    }

    fn handle_robj_arrive(&mut self, ctx: &mut Ctx<'_, Ev>, c: usize) {
        assert!(!self.clusters[c].robj_arrived, "robj delivered twice");
        if let (Some(tr), Some(sent)) = (self.trace.as_mut(), self.clusters[c].robj_sent_at) {
            tr.record(c, 0, SpanKind::RobjTransfer, sent, ctx.now());
        }
        let ship_ns = self.clusters[c]
            .robj_sent_at
            .map(|sent| ctx.now().saturating_since(sent).as_nanos())
            .unwrap_or(0);
        self.sink.emit(
            Some(c as u32),
            None,
            EventKind::RobjMerge {
                bytes: self.params.robj_bytes,
                ns: ship_ns,
            },
        );
        self.clusters[c].robj_arrived = true;
        self.arrived_robjs += 1;
        if self.arrived_robjs == self.clusters.len() {
            // Final global reduction at the head.
            let merges = (self.clusters.len() as f64 - 1.0).max(0.0);
            let cost = self.params.global_reduction_base
                + SimDur::from_secs_f64(
                    merges * self.params.robj_bytes as f64 / self.params.merge_bps,
                );
            ctx.schedule_after(cost, Ev::FinalDone);
        }
    }
}

impl World for SimWorld {
    type Event = Ev;

    fn handle(&mut self, ctx: &mut Ctx<'_, Ev>, ev: Ev) {
        // Advance the sink's virtual clock first: every event emitted while
        // handling `ev` (including from inside the shared scheduler state
        // machines) is stamped with the simulated time of `ev`.
        if let Some(clock) = &self.clock {
            clock.store(ctx.now().as_nanos(), Ordering::Relaxed);
        }
        match ev {
            Ev::Boot => {
                for c in 0..self.clusters.len() {
                    for s in 0..self.clusters[c].slaves.len() {
                        self.job_boundary(ctx, c, s);
                    }
                }
            }
            Ev::GrantArrive { c } => {
                // A cluster that died while the request was in flight must
                // not take a lease it can never serve.
                if self.clusters[c].finished_slaves < self.clusters[c].slaves.len() {
                    let loc = self.params.clusters[c].location;
                    let grant = self.pool.request(loc);
                    let granted = !grant.jobs.is_empty();
                    self.clusters[c].mp.on_grant(grant.jobs, grant.stolen);
                    if !granted && self.pool.exhausted_for(loc) {
                        self.clusters[c].mp.mark_exhausted();
                    }
                }
            }
            Ev::FetchBegin {
                c,
                s,
                job,
                stolen,
                seq,
            } => {
                let loc = self.params.clusters[c].location;
                let chunk = *self.params.layout.chunk(job);
                let home = self.params.placement.home(chunk.file);
                let path = self.params.path(loc, home);
                let mut cap = path.per_conn_bps * path.streams as f64;
                let latency = if seq {
                    path.latency
                } else {
                    // A broken sequential scan loses readahead and pays
                    // request setup again.
                    cap *= self.params.nonseq_bw_factor;
                    path.latency * self.params.nonseq_latency_mult
                };
                // Another reader already on this file contends for it.
                if self.active_per_file[chunk.file.0 as usize] > 0 {
                    cap *= self.params.file_contention_bw_factor;
                }
                self.active_per_file[chunk.file.0 as usize] += 1;
                // The fetch began (latency already paid) when the event was
                // scheduled; count latency into busy-fetch via `started`.
                let started = ctx.now() - latency;
                self.start_flow(
                    ctx,
                    path.link,
                    chunk.len,
                    cap,
                    FlowTarget::ChunkFetched {
                        c,
                        s,
                        job,
                        stolen,
                        started,
                    },
                );
            }
            Ev::LinkWake { link, gen } => {
                if self.links[link].generation() != gen {
                    return; // stale wakeup; a newer one is scheduled
                }
                let done = self.links[link].poll_completed(ctx.now());
                for completion in done {
                    let target = self.flow_targets[link]
                        .remove(&completion.tag)
                        .expect("completed flow had no target");
                    match target {
                        FlowTarget::ChunkFetched {
                            c,
                            s,
                            job,
                            stolen,
                            started,
                        } => {
                            let chunk = *self.params.layout.chunk(job);
                            self.active_per_file[chunk.file.0 as usize] -= 1;
                            let loc = self.params.clusters[c].location;
                            self.clusters[c].slaves[s].fetch_busy = false;
                            if self.clusters[c].slaves[s].retiring {
                                // An in-flight fetch of a retiring slave:
                                // the lease goes back uncharged and the
                                // fetch is not accounted, mirroring the
                                // runtime's drain-and-reclaim (no RNG
                                // draws either, so fault streams stay
                                // aligned between worlds).
                                self.sink.emit(
                                    Some(c as u32),
                                    Some(s as u32),
                                    EventKind::FetchDiscarded {
                                        chunk: job.0 as u64,
                                    },
                                );
                                self.clusters[c].slaves[s].leases -= 1;
                                self.pool.release(loc, job);
                                self.maybe_finish_retiring(ctx, c, s);
                                continue;
                            }
                            // A fetch fault surfaces only after transport —
                            // the simulated analogue of the retriever
                            // exhausting its retries against a flaky store.
                            // The `prob > 0` guard keeps failure-free runs
                            // byte-identical to pre-fault seeds (no extra
                            // RNG draw).
                            let prob = self.params.faults.fetch_failure_prob;
                            let failed = prob > 0.0 && self.clusters[c].rngs[s].chance(prob);
                            let fetch_ns = ctx.now().saturating_since(started).as_nanos();
                            let st = &mut self.clusters[c].slaves[s];
                            st.busy_fetch += ctx.now() - started;
                            if let Some(tr) = self.trace.as_mut() {
                                tr.record(c, s, SpanKind::Fetch, started, ctx.now());
                            }
                            if failed {
                                self.recovery.fetch_failures += 1;
                                // The injected fault and its terminal
                                // failure coincide in the model (the real
                                // stack separates them by a retry loop).
                                self.sink.emit(
                                    Some(c as u32),
                                    Some(s as u32),
                                    EventKind::FaultInjected,
                                );
                                self.sink.emit(
                                    Some(c as u32),
                                    Some(s as u32),
                                    EventKind::FetchFailed {
                                        chunk: job.0 as u64,
                                        ns: fetch_ns,
                                    },
                                );
                                let now = ctx.now();
                                let st = &mut self.clusters[c].slaves[s];
                                st.consecutive_failures += 1;
                                st.leases -= 1;
                                if !st.proc_busy {
                                    // The compute side was already waiting
                                    // on this fetch; the wasted wait is a
                                    // stall, as in the runtime.
                                    let idle = st.idle_since.take().unwrap_or(SimTime::ZERO);
                                    let stalled = now.saturating_since(idle.max(started));
                                    st.stall += stalled;
                                    st.idle_since = Some(now);
                                    self.sink.emit(
                                        Some(c as u32),
                                        Some(s as u32),
                                        EventKind::Stall {
                                            ns: stalled.as_nanos(),
                                        },
                                    );
                                    if let Some(tr) = self.trace.as_mut() {
                                        if !stalled.is_zero() {
                                            tr.record(c, s, SpanKind::Stall, now - stalled, now);
                                        }
                                    }
                                }
                                let retire = self.clusters[c].slaves[s].consecutive_failures
                                    >= self.params.faults.slave_failure_threshold;
                                self.pool.fail(loc, job);
                                if retire {
                                    self.recovery.slaves_retired += 1;
                                    self.sink.emit(
                                        Some(c as u32),
                                        Some(s as u32),
                                        EventKind::SlaveRetired { killed: false },
                                    );
                                    self.retire_slave(ctx, c, s);
                                } else {
                                    self.maybe_start_fetch(ctx, c, s);
                                    self.park_if_hungry(c, s);
                                }
                                continue;
                            }
                            self.sink.emit(
                                Some(c as u32),
                                Some(s as u32),
                                EventKind::FetchEnd {
                                    chunk: job.0 as u64,
                                    bytes: chunk.len,
                                    remote: stolen,
                                    ns: fetch_ns,
                                },
                            );
                            let st = &mut self.clusters[c].slaves[s];
                            st.consecutive_failures = 0;
                            if stolen {
                                st.bytes_remote += chunk.len;
                            } else {
                                st.bytes_local += chunk.len;
                            }
                            st.ready.push_back(ReadyJob { job, started });
                            self.maybe_start_fetch(ctx, c, s);
                            self.maybe_start_proc(ctx, c, s);
                        }
                        FlowTarget::RobjDelivered { c } => {
                            self.handle_robj_arrive(ctx, c);
                        }
                    }
                }
                self.arm_link(ctx, link);
            }
            Ev::ProcessDone { c, s, job } => {
                {
                    let st = &mut self.clusters[c].slaves[s];
                    st.jobs += 1;
                    let chunk = self.params.layout.chunk(job);
                    let home = self.params.placement.home(chunk.file);
                    let stolen = home != self.params.clusters[c].location;
                    if stolen {
                        st.stolen_jobs += 1;
                    }
                    st.proc_busy = false;
                    st.leases -= 1;
                    st.idle_since = Some(ctx.now());
                    self.sink.emit(
                        Some(c as u32),
                        Some(s as u32),
                        EventKind::ProcessEnd {
                            chunk: job.0 as u64,
                            units: chunk.units,
                            ns: st.cur_proc_ns,
                            stolen,
                        },
                    );
                }
                let loc = self.params.clusters[c].location;
                self.pool.complete(loc, job);
                if self.clusters[c].slaves[s].retiring {
                    // Retired mid-compute (failure-threshold retire while
                    // this job was in flight): the completed work still
                    // counts, but no new boundary is taken.
                    self.maybe_finish_retiring(ctx, c, s);
                } else {
                    self.job_boundary(ctx, c, s);
                }
            }
            Ev::RobjSend { c } => {
                self.last_local_done = self.last_local_done.max(ctx.now());
                self.clusters[c].robj_sent_at = Some(ctx.now());
                match self.params.clusters[c].robj_link {
                    Some(link) => {
                        let cap = self.params.clusters[c].robj_conn_bps;
                        let bytes = self.params.robj_bytes;
                        self.start_flow(ctx, link, bytes, cap, FlowTarget::RobjDelivered { c });
                    }
                    None => self.handle_robj_arrive(ctx, c),
                }
            }
            Ev::FinalDone => {
                self.final_done = Some(ctx.now());
            }
        }
        // Any of the above may have parked slaves, completed jobs, or failed
        // jobs back into the head pool; bring every cluster up to date.
        self.settle(ctx);
    }
}

/// Run the simulation to completion and produce the same report schema as
/// the real runtime.
pub fn simulate(params: SimParams) -> Result<RunReport, String> {
    simulate_inner(params, false, false).map(|(r, _, _)| r)
}

/// Like [`simulate`], but also record an activity [`Trace`] (per-slave
/// fetch/process/robj spans) for timeline rendering and utilization checks.
pub fn simulate_traced(params: SimParams) -> Result<(RunReport, Trace), String> {
    simulate_inner(params, true, false).map(|(r, t, _)| (r, t.expect("tracing was enabled")))
}

/// Like [`simulate_traced`], but additionally record the full structured
/// event stream — the same [`EventKind`]s the real runtime emits, stamped
/// with *virtual* nanoseconds — so simulated and real traces can be diffed
/// event by event (and written to the same JSONL schema by
/// `simulate --trace-out`).
pub fn simulate_observed(
    params: SimParams,
) -> Result<(RunReport, Trace, Vec<EventRecord>), String> {
    simulate_inner(params, true, true).map(|(r, t, e)| (r, t.expect("tracing was enabled"), e))
}

fn simulate_inner(
    params: SimParams,
    with_trace: bool,
    observe: bool,
) -> Result<(RunReport, Option<Trace>, Vec<EventRecord>), String> {
    params.validate()?;
    let mut engine = Engine::new(SimWorld::new(params, with_trace, observe));
    engine.schedule(SimTime::ZERO, Ev::Boot);
    // 960 jobs × ~5 events plus link wakeups: 10M is a generous livelock
    // guard, not a tuning knob.
    if !engine.run_bounded(10_000_000) {
        return Err("simulation exceeded event budget (livelock?)".into());
    }
    let end = engine.now();
    let world = engine.into_world();
    let total = world
        .final_done
        .unwrap_or(end)
        .saturating_since(SimTime::ZERO);
    let last_local = world.last_local_done;

    // Every job must have been folded exactly once. With injected failures
    // this can legitimately fail (a chunk exceeding its failure budget, or
    // every slave dead); surface that as an error naming the loss, the same
    // contract as the runtime's `RuntimeError::JobsFailed`.
    if !world.pool.all_done() {
        return Err(format!(
            "simulation ended with unfinished jobs: {} dead, {} pending, {} outstanding",
            world.pool.dead_jobs().len(),
            world.pool.pending(),
            world.pool.outstanding(),
        ));
    }

    let mut clusters = Vec::with_capacity(world.clusters.len());
    for (ci, c) in world.clusters.iter().enumerate() {
        let spec = &world.params.clusters[ci];
        let n = c.slaves.len().max(1) as f64;
        let proc_s: f64 = c
            .slaves
            .iter()
            .map(|s| s.busy_proc.as_secs_f64())
            .sum::<f64>()
            / n;
        let fetch_s: f64 = c
            .slaves
            .iter()
            .map(|s| s.busy_fetch.as_secs_f64())
            .sum::<f64>()
            / n;
        let stall_s: f64 = c.slaves.iter().map(|s| s.stall.as_secs_f64()).sum::<f64>() / n;
        let overlap_s: f64 = c
            .slaves
            .iter()
            .map(|s| (s.busy_fetch.as_secs_f64() - s.stall.as_secs_f64()).max(0.0))
            .sum::<f64>()
            / n;
        let local_done = c.local_done.unwrap_or(world.final_done.unwrap_or(end));
        let wall_s = local_done.as_secs_f64();
        clusters.push(ClusterBreakdown {
            name: spec.name.clone(),
            cores: spec.cores,
            processing_s: proc_s,
            retrieval_s: fetch_s,
            sync_s: (wall_s - proc_s - fetch_s).max(0.0),
            wall_s,
            idle_end_s: last_local.saturating_since(local_done).as_secs_f64(),
            jobs_processed: c.slaves.iter().map(|s| s.jobs).sum(),
            jobs_stolen: c.slaves.iter().map(|s| s.stolen_jobs).sum(),
            bytes_local: c.slaves.iter().map(|s| s.bytes_local).sum(),
            bytes_remote: c.slaves.iter().map(|s| s.bytes_remote).sum(),
            overlap_saved_s: overlap_s,
            fetch_stall_s: stall_s,
        });
    }
    let report = RunReport {
        total_s: total.as_secs_f64(),
        global_reduction_s: world
            .final_done
            .unwrap_or(end)
            .saturating_since(last_local)
            .as_secs_f64(),
        robj_bytes: world.params.robj_bytes,
        clusters,
        recovery: RecoveryStats {
            jobs_reenqueued: world.pool.reenqueued(),
            ..world.recovery
        },
        cache_hits: 0,
        cache_misses: 0,
        net: Default::default(),
    };
    let events = world.recorder.map(|r| r.take()).unwrap_or_default();
    Ok((report, world.trace, events))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{LinkSpec, PathSpec, SimCluster};
    use cb_storage::layout::{LocationId, Placement};
    use cb_storage::organizer::organize_even;
    use cloudburst_core::config::SlaveKill;
    use cloudburst_core::sched::pool::PoolConfig;
    use std::collections::BTreeMap;

    const L: LocationId = LocationId(0);
    const C: LocationId = LocationId(1);

    /// Two clusters, one link per path class, tiny dataset.
    fn params(frac_local: f64) -> SimParams {
        // 8 files × 4 chunks of 256 KiB.
        let layout = organize_even(8, 1 << 20, 1 << 18, 64).unwrap();
        let placement = Placement::split_fraction(8, frac_local, L, C);
        let links = vec![
            LinkSpec {
                name: "disk".into(),
                bps: 100.0e6,
            },
            LinkSpec {
                name: "s3".into(),
                bps: 100.0e6,
            },
            LinkSpec {
                name: "wan".into(),
                bps: 20.0e6,
            },
        ];
        let mut paths = BTreeMap::new();
        paths.insert(
            (L, L),
            PathSpec {
                link: 0,
                latency: SimDur::from_micros(200),
                per_conn_bps: 50.0e6,
                streams: 1,
            },
        );
        paths.insert(
            (C, C),
            PathSpec {
                link: 1,
                latency: SimDur::from_millis(5),
                per_conn_bps: 10.0e6,
                streams: 4,
            },
        );
        paths.insert(
            (L, C),
            PathSpec {
                link: 2,
                latency: SimDur::from_millis(40),
                per_conn_bps: 3.0e6,
                streams: 4,
            },
        );
        paths.insert(
            (C, L),
            PathSpec {
                link: 2,
                latency: SimDur::from_millis(40),
                per_conn_bps: 3.0e6,
                streams: 4,
            },
        );
        SimParams {
            layout,
            placement,
            clusters: vec![
                SimCluster::new("local", L, 4, 100.0),
                SimCluster::new("EC2", C, 4, 120.0)
                    .with_rtt(SimDur::from_millis(8))
                    .with_robj_path(2, 5.0e6),
            ],
            links,
            paths,
            pool: PoolConfig::default(),
            master_low_water: 2,
            prefetch_depth: 0,
            robj_bytes: 64 * 1024,
            merge_bps: 1.0e9,
            global_reduction_base: SimDur::from_millis(50),
            nonseq_latency_mult: 1.0,
            nonseq_bw_factor: 1.0,
            file_contention_bw_factor: 1.0,
            seed: 7,
            faults: crate::params::FaultPlan::default(),
        }
    }

    #[test]
    fn all_jobs_processed_exactly_once() {
        let p = params(0.5);
        let n_jobs = p.layout.n_jobs() as u64;
        let r = simulate(p).unwrap();
        assert_eq!(r.total_jobs(), n_jobs);
        assert!(r.total_s > 0.0);
        assert!(r.global_reduction_s > 0.0);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let a = simulate(params(0.33)).unwrap();
        let b = simulate(params(0.33)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn seed_changes_only_jitter() {
        let mut p = params(0.5);
        p.clusters[0].jitter_cv = 0.2;
        p.clusters[1].jitter_cv = 0.2;
        let a = simulate(p.clone()).unwrap();
        p.seed = 99;
        let b = simulate(p).unwrap();
        assert_eq!(a.total_jobs(), b.total_jobs());
        assert_ne!(a.total_s, b.total_s, "jitter must respond to the seed");
    }

    #[test]
    fn balanced_split_steals_nothing() {
        let r = simulate(params(0.5)).unwrap();
        // 50/50 data, comparable compute: neither side should steal much.
        assert!(
            r.total_stolen() <= 8,
            "50/50 split should steal little, got {}",
            r.total_stolen()
        );
    }

    #[test]
    fn skew_forces_stealing_toward_data() {
        let r = simulate(params(0.125)).unwrap(); // 1 of 8 files local
        let local = r.cluster("local").unwrap();
        assert!(
            local.jobs_stolen > 0,
            "local cluster must steal when starved of data"
        );
        assert!(local.bytes_remote > 0);
    }

    #[test]
    fn stealing_disabled_still_terminates() {
        let mut p = params(0.25);
        p.pool.allow_stealing = false;
        let n_jobs = p.layout.n_jobs() as u64;
        let r = simulate(p).unwrap();
        assert_eq!(
            r.total_jobs(),
            n_jobs,
            "home clusters finish their own jobs"
        );
        assert_eq!(r.total_stolen(), 0);
    }

    #[test]
    fn breakdown_adds_up() {
        let r = simulate(params(0.33)).unwrap();
        for c in &r.clusters {
            let sum = c.processing_s + c.retrieval_s + c.sync_s;
            assert!(
                (sum - c.wall_s).abs() < 1e-6,
                "{}: {} != {}",
                c.name,
                sum,
                c.wall_s
            );
            assert!(c.wall_s <= r.total_s + 1e-9);
        }
        // Total bytes moved equal the dataset.
        let moved: u64 = r
            .clusters
            .iter()
            .map(|c| c.bytes_local + c.bytes_remote)
            .sum();
        assert_eq!(moved, 8 * (1 << 20));
    }

    #[test]
    fn straggler_inflates_sync_of_peers() {
        let base = simulate(params(0.5)).unwrap();
        let mut p = params(0.5);
        p.clusters[0] = std::mem::replace(&mut p.clusters[0], SimCluster::new("x", L, 1, 0.0))
            .with_straggler(0, 50.0);
        let slowed = simulate(p).unwrap();
        assert!(
            slowed.total_s > base.total_s,
            "a 50x straggler must hurt: {} vs {}",
            slowed.total_s,
            base.total_s
        );
        // But pooling limits the damage: the straggler only drags its own
        // in-flight job, not a static partition. With 32 jobs and 8 cores a
        // static split would give the straggler 4 jobs (~50x slowdown on
        // 1/8 of the work); dynamic pooling should stay well under that.
        let static_estimate = base.total_s * 50.0 / 8.0;
        assert!(
            slowed.total_s < static_estimate,
            "pool balancing failed: {} vs static {}",
            slowed.total_s,
            static_estimate
        );
    }

    #[test]
    fn bigger_robj_slows_global_reduction() {
        let small = simulate(params(0.5)).unwrap();
        let mut p = params(0.5);
        p.robj_bytes = 64 * 1024 * 1024; // 64 MiB over a 5 MB/s robj link
        let big = simulate(p).unwrap();
        assert!(
            big.global_reduction_s > small.global_reduction_s + 5.0,
            "64 MiB robj should add >5s: {} vs {}",
            big.global_reduction_s,
            small.global_reduction_s
        );
    }

    #[test]
    fn killed_slaves_leave_work_to_survivors() {
        // Compute-bound so the number of live cores is what matters.
        let compute_bound = |frac| {
            let mut p = params(frac);
            p.clusters[0].ns_per_unit = 50_000.0;
            p.clusters[1].ns_per_unit = 50_000.0;
            p
        };
        let baseline = simulate(compute_bound(0.5)).unwrap();
        let mut p = compute_bound(0.5);
        p.faults.kill_schedule = vec![
            SlaveKill {
                cluster: 1,
                slave: 0,
                after_jobs: 1,
            },
            SlaveKill {
                cluster: 1,
                slave: 2,
                after_jobs: 3,
            },
        ];
        let n_jobs = p.layout.n_jobs() as u64;
        let r = simulate(p).unwrap();
        assert_eq!(r.total_jobs(), n_jobs, "no chunk lost to the kills");
        assert_eq!(r.recovery.slaves_killed, 2);
        // The dead slaves' leases stay with their master, so the surviving
        // cores grind through the same job set with half the parallelism:
        // the run must get strictly slower.
        assert!(
            r.total_s > baseline.total_s,
            "halving a compute-bound cluster must cost time: {} vs {}",
            r.total_s,
            baseline.total_s
        );
    }

    #[test]
    fn losing_a_whole_cluster_reassigns_its_data() {
        let mut p = params(0.5);
        p.faults.kill_schedule = (0..4)
            .map(|s| SlaveKill {
                cluster: 1,
                slave: s,
                after_jobs: if s == 0 { 1 } else { 0 },
            })
            .collect();
        let n_jobs = p.layout.n_jobs() as u64;
        let r = simulate(p).unwrap();
        assert_eq!(r.total_jobs(), n_jobs);
        assert_eq!(r.recovery.slaves_killed, 4);
        let local = r.cluster("local").unwrap();
        assert!(
            local.jobs_stolen > 0,
            "the survivor must take over cloud-homed chunks"
        );
        assert!(
            r.recovery.jobs_reenqueued > 0,
            "the dead master's leases must have been returned"
        );
    }

    #[test]
    fn fetch_faults_are_reenqueued_until_done() {
        let mut p = params(0.5);
        p.faults.fetch_failure_prob = 0.25;
        p.faults.slave_failure_threshold = 10; // faults, not deaths
        let n_jobs = p.layout.n_jobs() as u64;
        let r = simulate(p).unwrap();
        assert_eq!(r.total_jobs(), n_jobs, "every failed fetch was re-run");
        assert!(r.recovery.fetch_failures > 0, "32 jobs at 25% must fault");
        assert_eq!(r.recovery.jobs_reenqueued, r.recovery.fetch_failures);
    }

    #[test]
    fn fault_runs_are_deterministic_too() {
        let mk = || {
            let mut p = params(0.33);
            p.faults.fetch_failure_prob = 0.1;
            p.faults.kill_schedule = vec![SlaveKill {
                cluster: 0,
                slave: 1,
                after_jobs: 2,
            }];
            p
        };
        let a = simulate(mk()).unwrap();
        let b = simulate(mk()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn losing_every_slave_everywhere_errors_instead_of_hanging() {
        let mut p = params(0.5);
        for c in 0..2 {
            for s in 0..4 {
                p.faults.kill_schedule.push(SlaveKill {
                    cluster: c,
                    slave: s,
                    after_jobs: 0,
                });
            }
        }
        let err = simulate(p).unwrap_err();
        assert!(
            err.contains("unfinished jobs"),
            "total loss must surface, got: {err}"
        );
    }

    /// One cluster, all data local, fetch and compute deliberately of the
    /// same order (~5 ms each), no link contention: the ideal testbed for
    /// overlap, where perfect pipelining approaches a 2x speedup.
    fn balanced_params(prefetch_depth: usize) -> SimParams {
        // 4 files × 4 chunks of 256 KiB, 4096 units each.
        let layout = organize_even(4, 1 << 20, 1 << 18, 64).unwrap();
        let placement = Placement::all_at(4, L);
        let links = vec![LinkSpec {
            name: "disk".into(),
            bps: 1.0e9, // 4 cores × 50 MB/s: never the bottleneck
        }];
        let mut paths = BTreeMap::new();
        paths.insert(
            (L, L),
            PathSpec {
                link: 0,
                latency: SimDur::from_micros(200),
                per_conn_bps: 50.0e6, // 256 KiB ≈ 5.2 ms per fetch
                streams: 1,
            },
        );
        SimParams {
            layout,
            placement,
            clusters: vec![SimCluster::new("local", L, 4, 1300.0)], // ≈5.3 ms/job
            links,
            paths,
            pool: PoolConfig::default(),
            master_low_water: 2,
            prefetch_depth,
            robj_bytes: 1024,
            merge_bps: 1.0e9,
            global_reduction_base: SimDur::from_millis(1),
            nonseq_latency_mult: 1.0,
            nonseq_bw_factor: 1.0,
            file_contention_bw_factor: 1.0,
            seed: 7,
            faults: crate::params::FaultPlan::default(),
        }
    }

    #[test]
    fn prefetch_overlaps_retrieval_with_compute() {
        let serial = simulate(balanced_params(0)).unwrap();
        let piped = simulate(balanced_params(1)).unwrap();
        assert_eq!(serial.total_jobs(), piped.total_jobs());
        let speedup = serial.total_s / piped.total_s;
        assert!(
            speedup >= 1.3,
            "double-buffering a balanced workload must hide most retrieval: {speedup:.3}x"
        );
        // Serial slaves hide nothing: every fetch second is a stall.
        let s = serial.cluster("local").unwrap();
        assert!((s.fetch_stall_s - s.retrieval_s).abs() < 1e-9);
        assert_eq!(s.overlap_saved_s, 0.0);
        // Pipelined slaves hide most of it.
        let p = piped.cluster("local").unwrap();
        assert!(
            p.overlap_saved_s > 0.5 * p.retrieval_s,
            "most retrieval should hide behind compute: {} of {}",
            p.overlap_saved_s,
            p.retrieval_s
        );
        assert!(p.fetch_stall_s < s.fetch_stall_s);
        // The accounting identity stall + overlap = retrieval holds.
        assert!((p.fetch_stall_s + p.overlap_saved_s - p.retrieval_s).abs() < 1e-9);
    }

    #[test]
    fn deeper_prefetch_never_loses_work_and_never_slows_the_balanced_run() {
        let serial = simulate(balanced_params(0)).unwrap();
        for depth in [1, 2, 4] {
            let r = simulate(balanced_params(depth)).unwrap();
            assert_eq!(r.total_jobs(), serial.total_jobs(), "depth {depth}");
            let moved = |rep: &cloudburst_core::report::RunReport| -> u64 {
                rep.clusters
                    .iter()
                    .map(|c| c.bytes_local + c.bytes_remote)
                    .sum()
            };
            assert_eq!(moved(&r), moved(&serial), "depth {depth}");
            assert!(
                r.total_s <= serial.total_s + 1e-9,
                "depth {depth} slower than serial: {} vs {}",
                r.total_s,
                serial.total_s
            );
        }
    }

    #[test]
    fn prefetch_survives_kills_and_fetch_faults_exactly_once() {
        let mk = || {
            let mut p = params(0.5);
            p.prefetch_depth = 2;
            p.faults.fetch_failure_prob = 0.1;
            p.faults.slave_failure_threshold = 10;
            p.faults.kill_schedule = vec![
                SlaveKill {
                    cluster: 1,
                    slave: 0,
                    after_jobs: 1,
                },
                SlaveKill {
                    cluster: 0,
                    slave: 2,
                    after_jobs: 2,
                },
            ];
            p
        };
        let n_jobs = mk().layout.n_jobs() as u64;
        let a = simulate(mk()).unwrap();
        assert_eq!(
            a.total_jobs(),
            n_jobs,
            "reclaimed prefetched leases must be re-run elsewhere"
        );
        assert_eq!(a.recovery.slaves_killed, 2);
        assert!(
            a.recovery.jobs_reenqueued > 0,
            "kills mid-pipeline must hand leases back"
        );
        let b = simulate(mk()).unwrap();
        assert_eq!(a, b, "faulty pipelined runs stay deterministic");
    }

    #[test]
    fn more_cores_scale_compute_bound_runs() {
        let mut p = params(0.0); // all data in the cloud, like Fig. 4
        p.clusters[0].ns_per_unit = 50_000.0;
        p.clusters[1].ns_per_unit = 50_000.0;
        let small = simulate(p.clone()).unwrap();
        p.clusters[0].cores = 8;
        p.clusters[1].cores = 8;
        let big = simulate(p).unwrap();
        let speedup = small.total_s / big.total_s;
        assert!(
            speedup > 1.5,
            "doubling cores should speed up compute-bound run: {speedup}"
        );
    }
}
