//! Calibration: the paper's experimental setup expressed as simulation
//! parameters.
//!
//! Constants are derived from §IV-A and the figures:
//!
//! * datasets: 120 GB, 32 files, 960 jobs (125 MB chunks);
//! * knn: 32.1 × 10⁹ elements (≈4 B units), tiny reduction object;
//! * kmeans: 10.7 × 10⁹ points (≈12 B units), compute-heavy, tiny robj;
//!   kmeans needed 44/22 EC2 cores to match 32/16 local cores;
//! * pagerank: 9.26 × 10⁸ edges (≈128 B units), ~300 MB reduction object;
//! * storage: per-slave streaming bandwidth ≈ 28–30 MB/s at both ends
//!   (single-stream local reads; 4 × ~7.5 MB/s S3 connections), consistent
//!   with the paper's observation that env-cloud retrieval was *slightly
//!   faster* than env-local and that per-core retrieval time was roughly
//!   constant across core counts;
//! * WAN: a shared ~300 MB/s pipe, ~3 MB/s per TCP connection (2011-era
//!   cross-country streams) — bulk chunk stealing uses 4 connections
//!   (~12 MB/s per stolen fetch, distinctly slower than either local path,
//!   per Table I's job imbalance), and the reduction object ships on one
//!   faster control connection (~7 MB/s, which is what makes pagerank's
//!   global reduction cost tens of seconds, Table II).
//!
//! Compute rates are fit to the env-local bars of Fig. 3 (knn ≈ 210 s,
//! kmeans ≈ 2200 s, pagerank ≈ 620 s on 32 cores). Absolute seconds are not
//! the reproduction target — orderings, ratios and crossovers are.

use crate::params::{LinkSpec, PathSpec, SimCluster, SimParams};
use cb_simnet::time::SimDur;
use cb_storage::layout::{DatasetLayout, LocationId, Placement};
use cb_storage::organizer::organize_even;
use cloudburst_core::sched::pool::PoolConfig;
use std::collections::BTreeMap;

/// Site ids.
pub const LOCAL: LocationId = LocationId(0);
pub const CLOUD: LocationId = LocationId(1);

/// Link indices in [`SimParams::links`].
pub const LINK_DISK: usize = 0;
pub const LINK_S3: usize = 1;
pub const LINK_WAN: usize = 2;

/// The three evaluation applications.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum App {
    Knn,
    KMeans,
    PageRank,
}

impl App {
    pub const ALL: [App; 3] = [App::Knn, App::KMeans, App::PageRank];

    pub fn name(self) -> &'static str {
        match self {
            App::Knn => "knn",
            App::KMeans => "kmeans",
            App::PageRank => "pagerank",
        }
    }
}

/// Per-application cost profile.
#[derive(Debug, Clone, Copy)]
pub struct AppProfile {
    /// Bytes per data unit (element/point/edge).
    pub unit_bytes: u64,
    /// Compute per unit on a local (OSU Xeon) core, nanoseconds.
    pub ns_local: f64,
    /// Compute per unit on an EC2 m1.large core, nanoseconds.
    pub ns_cloud: f64,
    /// Reduction-object wire size in bytes.
    pub robj_bytes: u64,
    /// EC2 cores matching 32 local cores (paper: 32, except kmeans 44).
    pub cloud_cores_full: usize,
    /// EC2 cores matching 16 local cores in the hybrid envs.
    pub cloud_cores_half: usize,
}

/// The paper's cost profile for `app`.
pub fn profile(app: App) -> AppProfile {
    match app {
        // 30e9 units (937.5e6 per core on 32 cores); env-local ≈ 75 s
        // processing per core → 80 ns per element.
        App::Knn => AppProfile {
            unit_bytes: 4,
            ns_local: 80.0,
            ns_cloud: 85.0,
            robj_bytes: 16 * 1024, // k=1000 (distance, id) pairs
            cloud_cores_full: 32,
            cloud_cores_half: 16,
        },
        // 10e9 units; env-local ≈ 2100 s processing per core; EC2 cores
        // individually slower (hence 44/22 of them).
        App::KMeans => AppProfile {
            unit_bytes: 12,
            ns_local: 6_700.0,
            ns_cloud: 6_700.0 * 44.0 / 32.0,
            robj_bytes: 72 * 1024, // k=1000 × (dim sums + count)
            cloud_cores_full: 44,
            cloud_cores_half: 22,
        },
        // 0.94e9 units; env-local ≈ 480 s processing per core; ~300 MB robj.
        App::PageRank => AppProfile {
            unit_bytes: 128,
            ns_local: 16_400.0,
            ns_cloud: 17_400.0,
            robj_bytes: 300_000_000,
            cloud_cores_full: 32,
            cloud_cores_half: 16,
        },
    }
}

/// Network constants of the testbed model.
#[derive(Debug, Clone, Copy)]
pub struct NetConstants {
    /// Local storage-node aggregate (SATA-SCSI array behind Infiniband).
    pub disk_bps: f64,
    /// Per-stream local read bandwidth.
    pub disk_conn_bps: f64,
    /// S3 frontend aggregate (effectively unbounded at this scale).
    pub s3_bps: f64,
    /// Per-connection S3 GET bandwidth.
    pub s3_conn_bps: f64,
    /// Connections per remote chunk fetch (the "multiple retrieval threads").
    pub s3_streams: usize,
    /// Campus↔AWS WAN aggregate.
    pub wan_bps: f64,
    /// Per-connection WAN bandwidth for bulk chunk stealing.
    pub wan_conn_bps: f64,
    /// Single-connection bandwidth for reduction-object shipping.
    pub robj_conn_bps: f64,
    /// Connections per WAN chunk fetch.
    pub wan_streams: usize,
    /// Master↔head request round-trip across the WAN.
    pub wan_rtt: SimDur,
    /// Reduction-object merge throughput at masters/head.
    pub merge_bps: f64,
    /// Fixed global-reduction overhead (control messages, barriers).
    pub global_base: SimDur,
}

impl Default for NetConstants {
    fn default() -> Self {
        NetConstants {
            disk_bps: 2.0e9,
            disk_conn_bps: 28.0e6,
            s3_bps: 100.0e9,
            s3_conn_bps: 7.5e6,
            s3_streams: 4,
            wan_bps: 300.0e6,
            wan_conn_bps: 3.0e6,
            robj_conn_bps: 7.0e6,
            wan_streams: 4,
            wan_rtt: SimDur::from_millis(100),
            merge_bps: 1.0e9,
            global_base: SimDur::from_millis(60),
        }
    }
}

/// The paper's dataset shape: 120 GB over 32 files, 30 chunks per file
/// (960 jobs), adjusted down to a whole number of `unit_bytes` records.
pub fn paper_layout(unit_bytes: u64) -> DatasetLayout {
    let chunk = (120_000_000_000u64 / 960) / unit_bytes * unit_bytes;
    organize_even(32, 30 * chunk, chunk, unit_bytes).expect("paper layout is valid")
}

/// One environment row of the Fig. 3 experiments.
#[derive(Debug, Clone)]
pub struct EnvSpec {
    /// Label as in the paper ("env-local", "env-50/50", ...).
    pub name: String,
    /// Fraction of files homed at the local site.
    pub frac_local: f64,
    pub local_cores: usize,
    pub cloud_cores: usize,
}

/// The five environments of §IV-B for `app`.
pub fn fig3_envs(app: App) -> Vec<EnvSpec> {
    let p = profile(app);
    vec![
        EnvSpec {
            name: "env-local".into(),
            frac_local: 1.0,
            local_cores: 32,
            cloud_cores: 0,
        },
        EnvSpec {
            name: "env-cloud".into(),
            frac_local: 0.0,
            local_cores: 0,
            cloud_cores: p.cloud_cores_full,
        },
        EnvSpec {
            name: "env-50/50".into(),
            frac_local: 0.5,
            local_cores: 16,
            cloud_cores: p.cloud_cores_half,
        },
        EnvSpec {
            name: "env-33/67".into(),
            frac_local: 0.33,
            local_cores: 16,
            cloud_cores: p.cloud_cores_half,
        },
        EnvSpec {
            name: "env-17/83".into(),
            frac_local: 0.17,
            local_cores: 16,
            cloud_cores: p.cloud_cores_half,
        },
    ]
}

/// Core counts (m = n) of the Fig. 4 scalability sweep.
pub const FIG4_CORES: [usize; 4] = [4, 8, 16, 32];

/// Build full simulation parameters for one environment of `app`.
pub fn build_params(app: App, env: &EnvSpec, net: &NetConstants, seed: u64) -> SimParams {
    let prof = profile(app);
    let layout = paper_layout(prof.unit_bytes);
    let placement = Placement::split_fraction(layout.files.len(), env.frac_local, LOCAL, CLOUD);

    let links = vec![
        LinkSpec {
            name: "disk".into(),
            bps: net.disk_bps,
        },
        LinkSpec {
            name: "s3".into(),
            bps: net.s3_bps,
        },
        LinkSpec {
            name: "wan".into(),
            bps: net.wan_bps,
        },
    ];
    let mut paths = BTreeMap::new();
    paths.insert(
        (LOCAL, LOCAL),
        PathSpec {
            link: LINK_DISK,
            latency: SimDur::from_micros(300),
            per_conn_bps: net.disk_conn_bps,
            streams: 1,
        },
    );
    paths.insert(
        (CLOUD, CLOUD),
        PathSpec {
            link: LINK_S3,
            latency: SimDur::from_millis(30),
            per_conn_bps: net.s3_conn_bps,
            streams: net.s3_streams,
        },
    );
    paths.insert(
        (LOCAL, CLOUD),
        PathSpec {
            link: LINK_WAN,
            latency: SimDur::from_millis(80),
            per_conn_bps: net.wan_conn_bps,
            streams: net.wan_streams,
        },
    );
    paths.insert(
        (CLOUD, LOCAL),
        PathSpec {
            link: LINK_WAN,
            latency: SimDur::from_millis(80),
            per_conn_bps: net.wan_conn_bps,
            streams: net.wan_streams,
        },
    );

    let mut clusters = Vec::new();
    if env.local_cores > 0 {
        clusters.push(
            SimCluster::new("local", LOCAL, env.local_cores, prof.ns_local).with_jitter(0.02),
        );
    }
    if env.cloud_cores > 0 {
        clusters.push(
            SimCluster::new("EC2", CLOUD, env.cloud_cores, prof.ns_cloud)
                .with_jitter(0.08)
                .with_rtt(net.wan_rtt)
                .with_robj_path(LINK_WAN, net.robj_conn_bps),
        );
    }

    SimParams {
        layout,
        placement,
        clusters,
        links,
        paths,
        pool: PoolConfig::default(),
        master_low_water: 4,
        // The paper's slaves retrieve serially; overlap experiments opt in.
        prefetch_depth: 0,
        robj_bytes: prof.robj_bytes,
        merge_bps: net.merge_bps,
        global_reduction_base: net.global_base,
        // Sequential scans are what the consecutive-grant policy buys; a
        // broken scan costs extra request setup and loses readahead.
        nonseq_latency_mult: 10.0,
        nonseq_bw_factor: 0.65,
        // Two clusters interleaving on one file fight for its head; the
        // min-readers stealing heuristic avoids this.
        file_contention_bw_factor: 0.7,
        seed,
        faults: crate::params::FaultPlan::default(),
    }
}

/// Site of the second cloud provider in the multi-cloud extension.
pub const CLOUD_B: LocationId = LocationId(2);

/// Link index of the second provider's storage frontend.
pub const LINK_S3B: usize = 3;

/// The paper's §II generalization — *"our solution will also be applicable
/// if the data and/or processing power is spread across two different cloud
/// providers"* — as a concrete topology: the local site plus two cloud
/// providers, data split `frac_local` / rest evenly between the clouds, a
/// cluster at every site. Cross-site traffic (including cloud-to-cloud)
/// rides the shared WAN.
pub fn build_multicloud_params(
    app: App,
    frac_local: f64,
    cores_per_site: usize,
    net: &NetConstants,
    seed: u64,
) -> SimParams {
    let prof = profile(app);
    let layout = paper_layout(prof.unit_bytes);
    let n_files = layout.files.len();
    // frac_local at site 0; remainder split evenly between the two clouds.
    let homes: Vec<LocationId> = (0..n_files)
        .map(|i| {
            let f = i as f64 / n_files as f64;
            if f < frac_local {
                LOCAL
            } else if (f - frac_local) < (1.0 - frac_local) / 2.0 {
                CLOUD
            } else {
                CLOUD_B
            }
        })
        .collect();
    let placement = Placement::from_homes(homes);

    let links = vec![
        LinkSpec {
            name: "disk".into(),
            bps: net.disk_bps,
        },
        LinkSpec {
            name: "s3a".into(),
            bps: net.s3_bps,
        },
        LinkSpec {
            name: "wan".into(),
            bps: net.wan_bps,
        },
        LinkSpec {
            name: "s3b".into(),
            bps: net.s3_bps,
        },
    ];
    let own_path = |site: LocationId| match site {
        LOCAL => PathSpec {
            link: LINK_DISK,
            latency: SimDur::from_micros(300),
            per_conn_bps: net.disk_conn_bps,
            streams: 1,
        },
        CLOUD => PathSpec {
            link: LINK_S3,
            latency: SimDur::from_millis(30),
            per_conn_bps: net.s3_conn_bps,
            streams: net.s3_streams,
        },
        _ => PathSpec {
            link: LINK_S3B,
            latency: SimDur::from_millis(30),
            per_conn_bps: net.s3_conn_bps,
            streams: net.s3_streams,
        },
    };
    let wan_path = PathSpec {
        link: LINK_WAN,
        latency: SimDur::from_millis(80),
        per_conn_bps: net.wan_conn_bps,
        streams: net.wan_streams,
    };
    let mut paths = BTreeMap::new();
    for from in [LOCAL, CLOUD, CLOUD_B] {
        for to in [LOCAL, CLOUD, CLOUD_B] {
            paths.insert((from, to), if from == to { own_path(to) } else { wan_path });
        }
    }

    let clusters = vec![
        SimCluster::new("local", LOCAL, cores_per_site, prof.ns_local).with_jitter(0.02),
        SimCluster::new("EC2", CLOUD, cores_per_site, prof.ns_cloud)
            .with_jitter(0.08)
            .with_rtt(net.wan_rtt)
            .with_robj_path(LINK_WAN, net.robj_conn_bps),
        SimCluster::new("cloudB", CLOUD_B, cores_per_site, prof.ns_cloud)
            .with_jitter(0.08)
            .with_rtt(net.wan_rtt)
            .with_robj_path(LINK_WAN, net.robj_conn_bps),
    ];

    SimParams {
        layout,
        placement,
        clusters,
        links,
        paths,
        pool: PoolConfig::default(),
        master_low_water: 4,
        // The paper's slaves retrieve serially; overlap experiments opt in.
        prefetch_depth: 0,
        robj_bytes: prof.robj_bytes,
        merge_bps: net.merge_bps,
        global_reduction_base: net.global_base,
        nonseq_latency_mult: 10.0,
        nonseq_bw_factor: 0.65,
        file_contention_bw_factor: 0.7,
        seed,
        faults: crate::params::FaultPlan::default(),
    }
}

/// Parameters for one Fig. 4 point: all data in S3, `m` local + `m` cloud
/// cores.
pub fn build_fig4_params(app: App, m: usize, net: &NetConstants, seed: u64) -> SimParams {
    build_params(
        app,
        &EnvSpec {
            name: format!("({m},{m})"),
            frac_local: 0.0,
            local_cores: m,
            cloud_cores: m,
        },
        net,
        seed,
    )
}

/// Numbers reported by the paper, for side-by-side comparison in
/// EXPERIMENTS.md and the `repro` harness.
pub mod paper {
    /// Table II: (env, global reduction s, idle local s, idle EC2 s, total
    /// slowdown s) per app for 50/50, 33/67, 17/83.
    pub const TABLE2_KNN: [(&str, f64, f64, f64, f64); 3] = [
        ("env-50/50", 0.072, 16.212, 0.0, 6.546),
        ("env-33/67", 0.076, 0.0, 10.556, 34.224),
        ("env-17/83", 0.076, 0.0, 15.743, 96.067),
    ];
    pub const TABLE2_KMEANS: [(&str, f64, f64, f64, f64); 3] = [
        ("env-50/50", 0.067, 0.0, 93.871, 20.430),
        ("env-33/67", 0.066, 0.0, 31.232, 142.403),
        ("env-17/83", 0.066, 0.0, 25.101, 243.312),
    ];
    pub const TABLE2_PAGERANK: [(&str, f64, f64, f64, f64); 3] = [
        ("env-50/50", 36.589, 0.0, 17.727, 72.919),
        ("env-33/67", 41.320, 0.0, 22.005, 131.321),
        ("env-17/83", 42.498, 0.0, 52.056, 214.549),
    ];

    /// Table I: (env, EC2 jobs, local jobs, stolen by local) per app.
    pub const TABLE1_KNN: [(&str, u64, u64, u64); 3] = [
        ("env-50/50", 480, 480, 0),
        ("env-33/67", 576, 384, 64),
        ("env-17/83", 672, 288, 128),
    ];
    pub const TABLE1_KMEANS: [(&str, u64, u64, u64); 3] = [
        ("env-50/50", 480, 480, 0),
        ("env-33/67", 512, 448, 128),
        ("env-17/83", 544, 416, 256),
    ];
    pub const TABLE1_PAGERANK: [(&str, u64, u64, u64); 3] = [
        ("env-50/50", 480, 480, 0),
        ("env-33/67", 528, 432, 112),
        ("env-17/83", 560, 400, 240),
    ];

    /// Fig. 4 speedups per doubling, percent, for (4,4)→(8,8)→(16,16)→(32,32).
    pub const FIG4_SPEEDUPS_KNN: [f64; 3] = [82.4, 89.3, 73.3];
    pub const FIG4_SPEEDUPS_KMEANS: [f64; 3] = [86.7, 86.3, 88.3];
    pub const FIG4_SPEEDUPS_PAGERANK: [f64; 3] = [85.8, 73.2, 66.4];

    /// Headline claims (§I / abstract).
    pub const AVG_SLOWDOWN_PCT: f64 = 15.55;
    pub const AVG_SPEEDUP_PCT: f64 = 81.0;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_layout_shape() {
        for app in App::ALL {
            let l = paper_layout(profile(app).unit_bytes);
            assert_eq!(l.files.len(), 32);
            assert_eq!(l.n_jobs(), 960, "{}", app.name());
            let total = l.total_bytes();
            assert!(
                (total as f64 - 120e9).abs() / 120e9 < 0.001,
                "{}: total {total}",
                app.name()
            );
            l.validate().unwrap();
        }
    }

    #[test]
    fn unit_counts_match_paper_magnitudes() {
        let knn = paper_layout(profile(App::Knn).unit_bytes).total_units();
        assert!(
            (knn as f64 - 32.1e9).abs() / 32.1e9 < 0.1,
            "knn units {knn}"
        );
        let km = paper_layout(profile(App::KMeans).unit_bytes).total_units();
        assert!(
            (km as f64 - 10.7e9).abs() / 10.7e9 < 0.1,
            "kmeans units {km}"
        );
        let pr = paper_layout(profile(App::PageRank).unit_bytes).total_units();
        assert!(
            (pr as f64 - 9.26e8).abs() / 9.26e8 < 0.05,
            "pagerank units {pr}"
        );
    }

    #[test]
    fn all_env_params_validate() {
        let net = NetConstants::default();
        for app in App::ALL {
            for env in fig3_envs(app) {
                let p = build_params(app, &env, &net, 1);
                p.validate()
                    .unwrap_or_else(|e| panic!("{}/{}: {e}", app.name(), env.name));
            }
            for m in FIG4_CORES {
                build_fig4_params(app, m, &net, 1).validate().unwrap();
            }
        }
    }

    #[test]
    fn env_core_counts_match_paper() {
        let envs = fig3_envs(App::KMeans);
        assert_eq!(envs[1].cloud_cores, 44);
        assert_eq!(envs[2].cloud_cores, 22);
        let envs = fig3_envs(App::Knn);
        assert_eq!(envs[1].cloud_cores, 32);
        assert_eq!(envs[4].frac_local, 0.17);
    }

    #[test]
    fn hybrid_envs_have_wan_robj_path() {
        let p = build_params(
            App::PageRank,
            &fig3_envs(App::PageRank)[2],
            &NetConstants::default(),
            1,
        );
        let ec2 = p.clusters.iter().find(|c| c.name == "EC2").unwrap();
        assert_eq!(ec2.robj_link, Some(LINK_WAN));
        let local = p.clusters.iter().find(|c| c.name == "local").unwrap();
        assert_eq!(local.robj_link, None);
    }
}
