//! Simulation parameters: topology, link capacities, and cost model.
//!
//! The simulator charges three kinds of cost, all configurable here:
//!
//! * **transfer** — every chunk fetch is a flow on one bottleneck link
//!   (fair-shared with everything else on that link, capped at
//!   `per_conn_bps × retrieval_threads` — the multi-threaded retrieval
//!   model), after a fixed per-request latency;
//! * **compute** — `units × ns_per_unit × jitter` per job, per slave core;
//! * **reduction** — local combination and the final global reduction move
//!   `robj_bytes` at `merge_bps`, and remote clusters ship their reduction
//!   object over a single WAN connection.

use cb_simnet::time::SimDur;
use cb_storage::layout::{DatasetLayout, LocationId, Placement};
use cloudburst_core::config::SlaveKill;
use cloudburst_core::sched::pool::PoolConfig;
use std::collections::BTreeMap;

/// Fault-injection plan for a simulated run, mirroring the real runtime's
/// `kill_schedule` / flaky-store knobs. The default plan is failure-free.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// Scheduled slave fail-stops (taken at job boundaries, like the
    /// runtime: the slave's reduction object survives as a checkpoint).
    pub kill_schedule: Vec<SlaveKill>,
    /// Probability that a chunk fetch fails *after* transport — the
    /// simulated analogue of a flaky store exhausting the retriever's
    /// retries. Decided per fetch from the slave's seeded RNG stream.
    pub fetch_failure_prob: f64,
    /// A slave retires after this many consecutive fetch failures
    /// (mirror of `RuntimeConfig::slave_failure_threshold`).
    pub slave_failure_threshold: u32,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            kill_schedule: Vec::new(),
            fetch_failure_prob: 0.0,
            slave_failure_threshold: 3,
        }
    }
}

impl FaultPlan {
    /// True when this plan injects nothing.
    pub fn is_failure_free(&self) -> bool {
        self.kill_schedule.is_empty() && self.fetch_failure_prob == 0.0
    }
}

/// One shared bottleneck link (disk array, S3 frontend, WAN pipe).
#[derive(Debug, Clone)]
pub struct LinkSpec {
    /// Diagnostic name.
    pub name: String,
    /// Aggregate capacity in bytes/sec.
    pub bps: f64,
}

/// How a (cluster site → data site) access flows.
#[derive(Debug, Clone, Copy)]
pub struct PathSpec {
    /// Index into [`SimParams::links`] of the bottleneck for this path.
    pub link: usize,
    /// Per-request latency (time to first byte).
    pub latency: SimDur,
    /// Bytes/sec one connection can stream on this path.
    pub per_conn_bps: f64,
    /// Parallel connections one chunk fetch opens on this path — 1 for the
    /// paper's continuous local reads, `retrieval_threads` for remote
    /// retrieval ("multiple retrieval threads").
    pub streams: usize,
}

/// One simulated compute cluster.
#[derive(Debug, Clone)]
pub struct SimCluster {
    pub name: String,
    pub location: LocationId,
    pub cores: usize,
    /// Compute cost per data unit on one of this cluster's cores.
    pub ns_per_unit: f64,
    /// Coefficient of variation of per-job compute time (virtualization
    /// noise; 0 = deterministic).
    pub jitter_cv: f64,
    /// Round-trip time of a master↔head job-request exchange.
    pub rtt_to_head: SimDur,
    /// Link the cluster's reduction object travels on to reach the head
    /// (`None` = colocated, transfer is free).
    pub robj_link: Option<usize>,
    /// Single-connection bandwidth for that reduction-object transfer.
    pub robj_conn_bps: f64,
    /// Per-slave slowdown factors for straggler injection: `(slave index,
    /// multiplicative compute slowdown)`.
    pub stragglers: Vec<(usize, f64)>,
}

impl SimCluster {
    pub fn new(
        name: impl Into<String>,
        location: LocationId,
        cores: usize,
        ns_per_unit: f64,
    ) -> Self {
        SimCluster {
            name: name.into(),
            location,
            cores,
            ns_per_unit,
            jitter_cv: 0.0,
            rtt_to_head: SimDur::ZERO,
            robj_link: None,
            robj_conn_bps: f64::INFINITY,
            stragglers: Vec::new(),
        }
    }

    pub fn with_jitter(mut self, cv: f64) -> Self {
        self.jitter_cv = cv;
        self
    }

    pub fn with_rtt(mut self, rtt: SimDur) -> Self {
        self.rtt_to_head = rtt;
        self
    }

    pub fn with_robj_path(mut self, link: usize, conn_bps: f64) -> Self {
        self.robj_link = Some(link);
        self.robj_conn_bps = conn_bps;
        self
    }

    pub fn with_straggler(mut self, slave: usize, slowdown: f64) -> Self {
        self.stragglers.push((slave, slowdown));
        self
    }

    fn straggler_factor(&self, slave: usize) -> f64 {
        self.stragglers
            .iter()
            .find(|(s, _)| *s == slave)
            .map(|(_, f)| *f)
            .unwrap_or(1.0)
    }

    /// Compute duration of one job of `units` units on `slave`.
    pub fn proc_time(&self, slave: usize, units: u64, jitter: f64) -> SimDur {
        SimDur::from_secs_f64(
            units as f64 * self.ns_per_unit * 1e-9 * jitter * self.straggler_factor(slave),
        )
    }
}

/// Full simulation input.
#[derive(Debug, Clone)]
pub struct SimParams {
    pub layout: DatasetLayout,
    pub placement: Placement,
    pub clusters: Vec<SimCluster>,
    pub links: Vec<LinkSpec>,
    /// (cluster site, data site) → path.
    pub paths: BTreeMap<(LocationId, LocationId), PathSpec>,
    /// Head-side assignment policy.
    pub pool: PoolConfig,
    /// Master refill low-water mark.
    pub master_low_water: usize,
    /// Jobs a slave prefetches ahead of the one it is processing (mirror of
    /// `RuntimeConfig::prefetch_depth`): with depth `d` a slave holds up to
    /// `1 + d` leases, its serial background fetch pipeline overlapping the
    /// compute of the job in hand. `0` models the paper's strictly serial
    /// fetch-then-process slave.
    pub prefetch_depth: usize,
    /// Reduction-object wire size.
    pub robj_bytes: u64,
    /// Merge throughput for combining reduction objects (bytes/sec of robj
    /// traversed).
    pub merge_bps: f64,
    /// Fixed overhead of the global reduction (control messages etc.).
    pub global_reduction_base: SimDur,
    /// Request-latency multiplier for a chunk fetch that does NOT continue
    /// a sequential scan (disk seek / fresh request setup). 1.0 = off.
    pub nonseq_latency_mult: f64,
    /// Per-connection bandwidth factor for non-sequential fetches (lost
    /// readahead). 1.0 = off.
    pub nonseq_bw_factor: f64,
    /// Per-connection bandwidth factor applied when another fetch is
    /// already active on the same file (head-contention on one spindle /
    /// object). 1.0 = off. This is what the head's minimum-readers stealing
    /// heuristic exists to avoid.
    pub file_contention_bw_factor: f64,
    /// RNG seed (jitter streams).
    pub seed: u64,
    /// Injected failures (kills, fetch faults). Default: failure-free.
    pub faults: FaultPlan,
}

impl SimParams {
    /// Path used when a cluster at `from` reads data homed at `to`.
    pub fn path(&self, from: LocationId, to: LocationId) -> PathSpec {
        *self
            .paths
            .get(&(from, to))
            .unwrap_or_else(|| panic!("no path from {from} to {to}"))
    }

    /// Validate parameter consistency.
    pub fn validate(&self) -> Result<(), String> {
        self.layout.validate().map_err(|e| e.to_string())?;
        if self.clusters.is_empty() {
            return Err("no clusters".into());
        }
        if self.merge_bps <= 0.0 {
            return Err("merge_bps must be positive".into());
        }
        for (name, v) in [
            ("nonseq_latency_mult", self.nonseq_latency_mult),
            ("nonseq_bw_factor", self.nonseq_bw_factor),
            ("file_contention_bw_factor", self.file_contention_bw_factor),
        ] {
            if v <= 0.0 || !v.is_finite() {
                return Err(format!("{name} must be positive and finite"));
            }
        }
        let data_sites: std::collections::BTreeSet<LocationId> = (0..self.placement.n_files())
            .map(|i| self.placement.home(cb_storage::layout::FileId(i as u32)))
            .collect();
        for c in &self.clusters {
            if c.cores == 0 {
                return Err(format!("cluster {} has zero cores", c.name));
            }
            if c.ns_per_unit < 0.0 {
                return Err(format!("cluster {} has negative compute cost", c.name));
            }
            for &site in &data_sites {
                let p = self
                    .paths
                    .get(&(c.location, site))
                    .ok_or_else(|| format!("no path from {} to {site}", c.name))?;
                if p.link >= self.links.len() {
                    return Err(format!("path from {} references unknown link", c.name));
                }
                if p.per_conn_bps <= 0.0 {
                    return Err("per_conn_bps must be positive".into());
                }
                if p.streams == 0 {
                    return Err("path streams must be >= 1".into());
                }
            }
            if let Some(l) = c.robj_link {
                if l >= self.links.len() {
                    return Err(format!("cluster {} robj link out of range", c.name));
                }
            }
        }
        for l in &self.links {
            if l.bps <= 0.0 {
                return Err(format!("link {} has nonpositive bandwidth", l.name));
            }
        }
        if !(0.0..1.0).contains(&self.faults.fetch_failure_prob) {
            return Err("fetch_failure_prob must be in [0, 1)".into());
        }
        if self.faults.slave_failure_threshold == 0 {
            return Err("slave_failure_threshold must be >= 1".into());
        }
        for k in &self.faults.kill_schedule {
            let c = self
                .clusters
                .get(k.cluster)
                .ok_or_else(|| format!("kill schedule references unknown cluster {}", k.cluster))?;
            if k.slave >= c.cores {
                return Err(format!(
                    "kill schedule references slave {} of cluster {} (only {} cores)",
                    k.slave, c.name, c.cores
                ));
            }
        }
        Ok(())
    }

    /// Total worker cores.
    pub fn total_cores(&self) -> usize {
        self.clusters.iter().map(|c| c.cores).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cb_storage::organizer::organize_even;

    fn base() -> SimParams {
        let layout = organize_even(4, 1024, 256, 8).unwrap();
        let placement = Placement::split_fraction(4, 0.5, LocationId(0), LocationId(1));
        let mut paths = BTreeMap::new();
        let p = PathSpec {
            link: 0,
            latency: SimDur::from_millis(1),
            per_conn_bps: 1e6,
            streams: 4,
        };
        for from in [LocationId(0), LocationId(1)] {
            for to in [LocationId(0), LocationId(1)] {
                paths.insert((from, to), p);
            }
        }
        SimParams {
            layout,
            placement,
            clusters: vec![
                SimCluster::new("local", LocationId(0), 2, 10.0),
                SimCluster::new("EC2", LocationId(1), 2, 12.0),
            ],
            links: vec![LinkSpec {
                name: "net".into(),
                bps: 1e8,
            }],
            paths,
            pool: PoolConfig::default(),
            master_low_water: 1,
            prefetch_depth: 0,
            robj_bytes: 1024,
            merge_bps: 1e9,
            global_reduction_base: SimDur::from_millis(50),
            nonseq_latency_mult: 1.0,
            nonseq_bw_factor: 1.0,
            file_contention_bw_factor: 1.0,
            seed: 1,
            faults: FaultPlan::default(),
        }
    }

    #[test]
    fn valid_params_pass() {
        assert_eq!(base().validate(), Ok(()));
        assert_eq!(base().total_cores(), 4);
    }

    #[test]
    fn missing_path_detected() {
        let mut p = base();
        p.paths.remove(&(LocationId(0), LocationId(1)));
        assert!(p.validate().is_err());
    }

    #[test]
    fn bad_link_index_detected() {
        let mut p = base();
        p.paths
            .get_mut(&(LocationId(0), LocationId(0)))
            .unwrap()
            .link = 9;
        assert!(p.validate().is_err());
    }

    #[test]
    fn zero_cores_detected() {
        let mut p = base();
        p.clusters[0].cores = 0;
        assert!(p.validate().is_err());
    }

    #[test]
    fn straggler_factor_applies() {
        let c = SimCluster::new("x", LocationId(0), 4, 100.0).with_straggler(2, 3.0);
        let normal = c.proc_time(0, 1000, 1.0);
        let slow = c.proc_time(2, 1000, 1.0);
        assert_eq!(slow.as_nanos(), normal.as_nanos() * 3);
    }

    #[test]
    fn proc_time_scales_with_units_and_jitter() {
        let c = SimCluster::new("x", LocationId(0), 1, 50.0);
        assert_eq!(c.proc_time(0, 1_000_000, 1.0), SimDur::from_millis(50));
        assert_eq!(c.proc_time(0, 1_000_000, 2.0), SimDur::from_millis(100));
    }
}
