//! The paper's experiments as runnable functions.
//!
//! Each function returns structured rows; the `repro` binary in `cb-bench`
//! formats them next to the paper's reported values. Everything here runs in
//! virtual time — a full figure is milliseconds of wall clock.

use crate::calib::{self, App, NetConstants};
use crate::model::{simulate, simulate_traced};
use crate::trace::Trace;
use cloudburst_core::report::RunReport;
use serde::Serialize;

/// Default seed for reported runs (the paper took the best of ≥3 EC2 runs;
/// we are deterministic instead).
pub const DEFAULT_SEED: u64 = 2011;

/// One bar of Fig. 3: an environment plus its simulated report.
#[derive(Debug, Clone, Serialize)]
pub struct Fig3Row {
    pub env: String,
    pub local_cores: usize,
    pub cloud_cores: usize,
    pub report: RunReport,
}

/// Run the five environments of Fig. 3 for `app`.
pub fn run_fig3(app: App, net: &NetConstants, seed: u64) -> Vec<Fig3Row> {
    calib::fig3_envs(app)
        .into_iter()
        .map(|env| {
            let params = calib::build_params(app, &env, net, seed);
            let report = simulate(params).expect("fig3 simulation failed");
            Fig3Row {
                env: env.name,
                local_cores: env.local_cores,
                cloud_cores: env.cloud_cores,
                report,
            }
        })
        .collect()
}

/// Table I row: job distribution for one hybrid environment.
#[derive(Debug, Clone, Serialize)]
pub struct Table1Row {
    pub app: String,
    pub env: String,
    pub ec2_jobs: u64,
    pub local_jobs: u64,
    pub local_stolen: u64,
}

/// Derive Table I from fig3 rows (hybrid envs only).
pub fn table1(app: App, rows: &[Fig3Row]) -> Vec<Table1Row> {
    rows.iter()
        .filter(|r| r.local_cores > 0 && r.cloud_cores > 0)
        .map(|r| {
            let local = r.report.cluster("local").expect("local cluster");
            let ec2 = r.report.cluster("EC2").expect("EC2 cluster");
            Table1Row {
                app: app.name().into(),
                env: r.env.clone(),
                ec2_jobs: ec2.jobs_processed,
                local_jobs: local.jobs_processed,
                local_stolen: local.jobs_stolen,
            }
        })
        .collect()
}

/// Table II row: overhead decomposition for one hybrid environment.
#[derive(Debug, Clone, Serialize)]
pub struct Table2Row {
    pub app: String,
    pub env: String,
    pub global_reduction_s: f64,
    pub idle_local_s: f64,
    pub idle_ec2_s: f64,
    /// Seconds over the env-local baseline.
    pub total_slowdown_s: f64,
    /// Slowdown as a fraction of this env's execution time.
    pub slowdown_ratio: f64,
}

/// Derive Table II from fig3 rows (needs the env-local baseline, `rows[0]`).
pub fn table2(app: App, rows: &[Fig3Row]) -> Vec<Table2Row> {
    let baseline = &rows[0].report;
    assert_eq!(rows[0].env, "env-local", "rows[0] must be the baseline");
    rows.iter()
        .filter(|r| r.local_cores > 0 && r.cloud_cores > 0)
        .map(|r| {
            let local = r.report.cluster("local").expect("local cluster");
            let ec2 = r.report.cluster("EC2").expect("EC2 cluster");
            let slow = r.report.slowdown_vs(baseline);
            Table2Row {
                app: app.name().into(),
                env: r.env.clone(),
                global_reduction_s: r.report.global_reduction_s,
                idle_local_s: local.idle_end_s,
                idle_ec2_s: ec2.idle_end_s,
                total_slowdown_s: slow,
                slowdown_ratio: slow / r.report.total_s,
            }
        })
        .collect()
}

/// One point of Fig. 4 plus the speedup over the previous point.
#[derive(Debug, Clone, Serialize)]
pub struct Fig4Row {
    pub cores_each: usize,
    pub report: RunReport,
    /// `(T_prev / T - 1) × 100`, as the paper quotes "X% speedup" per
    /// doubling. `None` for the first point.
    pub speedup_pct: Option<f64>,
}

/// Run the Fig. 4 scalability sweep for `app` (all data in S3).
pub fn run_fig4(app: App, net: &NetConstants, seed: u64) -> Vec<Fig4Row> {
    let mut rows: Vec<Fig4Row> = Vec::new();
    for m in calib::FIG4_CORES {
        let params = calib::build_fig4_params(app, m, net, seed);
        let report = simulate(params).expect("fig4 simulation failed");
        let speedup_pct = rows
            .last()
            .map(|prev| (prev.report.total_s / report.total_s - 1.0) * 100.0);
        rows.push(Fig4Row {
            cores_each: m,
            report,
            speedup_pct,
        });
    }
    rows
}

/// The abstract's headline: mean hybrid slowdown across apps and skews.
pub fn average_slowdown_pct(net: &NetConstants, seed: u64) -> f64 {
    let mut ratios = Vec::new();
    for app in App::ALL {
        let rows = run_fig3(app, net, seed);
        let baseline = &rows[0].report;
        for r in rows
            .iter()
            .filter(|r| r.local_cores > 0 && r.cloud_cores > 0)
        {
            ratios.push(r.report.slowdown_ratio_vs(baseline) * 100.0);
        }
    }
    ratios.iter().sum::<f64>() / ratios.len() as f64
}

/// The abstract's other headline: mean speedup per core doubling.
pub fn average_speedup_pct(net: &NetConstants, seed: u64) -> f64 {
    let mut speedups = Vec::new();
    for app in App::ALL {
        for r in run_fig4(app, net, seed) {
            if let Some(s) = r.speedup_pct {
                speedups.push(s);
            }
        }
    }
    speedups.iter().sum::<f64>() / speedups.len() as f64
}

/// Ablation result: a labelled variant next to the default.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct AblationRow {
    pub variant: String,
    pub total_s: f64,
    pub retrieval_local_s: f64,
    pub retrieval_ec2_s: f64,
    pub idle_max_s: f64,
    pub stolen_jobs: u64,
}

fn ablation_row(variant: impl Into<String>, report: &RunReport) -> AblationRow {
    AblationRow {
        variant: variant.into(),
        total_s: report.total_s,
        retrieval_local_s: report
            .cluster("local")
            .map(|c| c.retrieval_s)
            .unwrap_or(0.0),
        retrieval_ec2_s: report.cluster("EC2").map(|c| c.retrieval_s).unwrap_or(0.0),
        idle_max_s: report
            .clusters
            .iter()
            .map(|c| c.idle_end_s)
            .fold(0.0, f64::max),
        stolen_jobs: report.total_stolen(),
    }
}

/// Consecutive vs round-robin local job assignment (sequential-read
/// optimization, §III-B).
pub fn ablate_consecutive(net: &NetConstants, seed: u64) -> Vec<AblationRow> {
    let env = &calib::fig3_envs(App::Knn)[0]; // env-local: pure disk reads
    let mut out = Vec::new();
    for (label, consecutive) in [("consecutive (paper)", true), ("round-robin files", false)] {
        let mut p = calib::build_params(App::Knn, env, net, seed);
        p.pool.consecutive = consecutive;
        out.push(ablation_row(label, &simulate(p).unwrap()));
    }
    out
}

/// Min-contention vs naive remote-file selection for stealing. The naive
/// variant is emulated by making every file look equally contended
/// (factor 1.0 ⇒ the heuristic has nothing to save), versus the calibrated
/// contention penalty with and without the heuristic-friendly batch sizes.
pub fn ablate_contention(net: &NetConstants, seed: u64) -> Vec<AblationRow> {
    let env = &calib::fig3_envs(App::Knn)[4]; // env-17/83: heavy stealing
    let mut out = Vec::new();
    let p = calib::build_params(App::Knn, env, net, seed);
    out.push(ablation_row(
        "min-readers heuristic (paper)",
        &simulate(p).unwrap(),
    ));
    // Adversarial selection: steal many tiny batches so concurrent readers
    // pile onto few files (remote_batch 1 with contention penalty).
    let mut p = calib::build_params(App::Knn, env, net, seed);
    p.pool.remote_batch = 1;
    p.file_contention_bw_factor = 0.5;
    out.push(ablation_row(
        "fine-grained steal, heavier contention",
        &simulate(p).unwrap(),
    ));
    // No contention effect at all (upper bound).
    let mut p = calib::build_params(App::Knn, env, net, seed);
    p.file_contention_bw_factor = 1.0;
    out.push(ablation_row(
        "no contention penalty (upper bound)",
        &simulate(p).unwrap(),
    ));
    out
}

/// Work stealing on vs off in a skewed environment.
pub fn ablate_stealing(net: &NetConstants, seed: u64) -> Vec<AblationRow> {
    let env = &calib::fig3_envs(App::Knn)[4]; // env-17/83
    let mut out = Vec::new();
    for (label, stealing) in [("stealing on (paper)", true), ("stealing off", false)] {
        let mut p = calib::build_params(App::Knn, env, net, seed);
        p.pool.allow_stealing = stealing;
        out.push(ablation_row(label, &simulate(p).unwrap()));
    }
    out
}

/// Retrieval connections per remote fetch: 1, 2, 4, 8 (multi-threaded
/// retrieval, §III-B).
pub fn ablate_retrieval_streams(net: &NetConstants, seed: u64) -> Vec<AblationRow> {
    let env = &calib::fig3_envs(App::Knn)[1]; // env-cloud: all fetches are S3
    let mut out = Vec::new();
    for streams in [1usize, 2, 4, 8] {
        let mut n = *net;
        n.s3_streams = streams;
        let p = calib::build_params(App::Knn, env, &n, seed);
        out.push(ablation_row(
            format!("{streams} retrieval streams"),
            &simulate(p).unwrap(),
        ));
    }
    out
}

/// Master prefetch depth (the refill low-water mark): demand-driven
/// pooling only hides the master↔head round trip if the master re-requests
/// *before* its queue drains (`low_water = 0` refills only once a slave is
/// already waiting). At the paper's 100 ms WAN RTT the batch grants
/// amortize the round trip so completely that prefetch depth is
/// irrelevant — a robustness result — so this ablation stresses the
/// mechanism with a 1 s RTT, where the gap becomes visible.
pub fn ablate_prefetch(net: &NetConstants, seed: u64) -> Vec<AblationRow> {
    let env = &calib::fig3_envs(App::Knn)[1]; // env-cloud: every grant crosses the WAN RTT
    let mut stressed = *net;
    stressed.wan_rtt = cb_simnet::time::SimDur::from_secs(1);
    [0usize, 2, 4, 8, 16]
        .into_iter()
        .map(|low_water| {
            let mut p = calib::build_params(App::Knn, env, &stressed, seed);
            p.master_low_water = low_water;
            ablation_row(
                format!("low-water {low_water} (1s head RTT)"),
                &simulate(p).expect("prefetch ablation"),
            )
        })
        .collect()
}

/// Slave-side retrieval/compute overlap (double buffering): sweep the slave
/// prefetch depth on the all-remote, compute-heavy configuration (k-means
/// in env-cloud), where every chunk crosses the S3 path but the cores are
/// busy enough per chunk for a background fetch to hide behind the fold.
/// Depth 0 is the paper's serial fetch-then-process slave.
pub fn ablate_overlap(net: &NetConstants, seed: u64) -> Vec<AblationRow> {
    let env = &calib::fig3_envs(App::KMeans)[1]; // env-cloud: all fetches are S3
    [0usize, 1, 2, 4]
        .into_iter()
        .map(|depth| {
            let mut p = calib::build_params(App::KMeans, env, net, seed);
            p.prefetch_depth = depth;
            let label = if depth == 0 {
                "prefetch depth 0 (serial, paper)".to_string()
            } else {
                format!("prefetch depth {depth}")
            };
            ablation_row(label, &simulate(p).expect("overlap ablation"))
        })
        .collect()
}

/// One row of the failure ablation: a fault schedule next to its cost.
#[derive(Debug, Clone, Serialize)]
pub struct FailureAblationRow {
    pub variant: String,
    pub total_s: f64,
    /// Extra time over the failure-free run, percent.
    pub penalty_pct: f64,
    pub fetch_failures: u64,
    pub jobs_reenqueued: u64,
    pub slaves_killed: u64,
    /// Jobs the local cluster took over from cloud-homed data.
    pub local_stolen: u64,
}

/// Failure ablation (§III-C's recovery claim, quantified): because
/// generalized reduction only needs the reduction objects plus the set of
/// unprocessed chunks, killed slaves and failed fetches cost re-execution
/// time — never correctness. Runs env-50/50 under escalating fault
/// schedules and reports the time penalty of each.
pub fn ablate_failures(net: &NetConstants, seed: u64) -> Vec<FailureAblationRow> {
    use cloudburst_core::config::SlaveKill;
    let env = &calib::fig3_envs(App::Knn)[2]; // env-50/50 hybrid
    let cloud = env.cloud_cores;
    let schedules: Vec<(String, crate::params::FaultPlan)> = vec![
        ("failure-free (paper)".into(), Default::default()),
        (
            "2% fetch faults".into(),
            crate::params::FaultPlan {
                fetch_failure_prob: 0.02,
                ..Default::default()
            },
        ),
        (
            format!("kill {} of {cloud} EC2 cores mid-run", cloud / 2),
            crate::params::FaultPlan {
                kill_schedule: (0..cloud / 2)
                    .map(|s| SlaveKill {
                        cluster: 1,
                        slave: s,
                        after_jobs: 5,
                    })
                    .collect(),
                ..Default::default()
            },
        ),
        (
            "lose the EC2 cluster at startup".into(),
            crate::params::FaultPlan {
                kill_schedule: (0..cloud)
                    .map(|s| SlaveKill {
                        cluster: 1,
                        slave: s,
                        after_jobs: 0,
                    })
                    .collect(),
                ..Default::default()
            },
        ),
    ];
    let mut out = Vec::new();
    let mut baseline_s = 0.0f64;
    for (variant, faults) in schedules {
        let mut p = calib::build_params(App::Knn, env, net, seed);
        p.faults = faults;
        let report = simulate(p).expect("failure ablation");
        if out.is_empty() {
            baseline_s = report.total_s;
        }
        out.push(FailureAblationRow {
            variant,
            total_s: report.total_s,
            penalty_pct: (report.total_s / baseline_s - 1.0) * 100.0,
            fetch_failures: report.recovery.fetch_failures,
            jobs_reenqueued: report.recovery.jobs_reenqueued,
            slaves_killed: report.recovery.slaves_killed,
            local_stolen: report.cluster("local").map(|c| c.jobs_stolen).unwrap_or(0),
        });
    }
    out
}

/// EC2 performance variability: how total time degrades with jitter under
/// pool-based balancing.
pub fn ablate_jitter(net: &NetConstants, seed: u64) -> Vec<AblationRow> {
    let env = &calib::fig3_envs(App::KMeans)[2]; // compute-bound hybrid
    let mut out = Vec::new();
    for cv in [0.0, 0.08, 0.2, 0.4] {
        let mut p = calib::build_params(App::KMeans, env, net, seed);
        for c in &mut p.clusters {
            if c.name == "EC2" {
                c.jitter_cv = cv;
            }
        }
        out.push(ablation_row(
            format!("EC2 jitter cv={cv}"),
            &simulate(p).unwrap(),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net() -> NetConstants {
        NetConstants::default()
    }

    #[test]
    fn fig3_knn_has_five_envs_and_all_jobs() {
        let rows = run_fig3(App::Knn, &net(), DEFAULT_SEED);
        assert_eq!(rows.len(), 5);
        for r in &rows {
            assert_eq!(r.report.total_jobs(), 960, "{}", r.env);
        }
    }

    #[test]
    fn fig3_hybrid_slowdown_grows_with_skew() {
        for app in App::ALL {
            let rows = run_fig3(app, &net(), DEFAULT_SEED);
            let base = rows[0].report.total_s;
            let t5050 = rows[2].report.total_s;
            let t3367 = rows[3].report.total_s;
            let t1783 = rows[4].report.total_s;
            assert!(
                t5050 <= t3367 && t3367 <= t1783,
                "{}: slowdown must grow with skew: {t5050} {t3367} {t1783}",
                app.name()
            );
            assert!(
                t1783 > base,
                "{}: worst skew must be slower than baseline",
                app.name()
            );
        }
    }

    #[test]
    fn table1_stealing_grows_with_skew() {
        for app in App::ALL {
            let rows = run_fig3(app, &net(), DEFAULT_SEED);
            let t1 = table1(app, &rows);
            assert_eq!(t1.len(), 3);
            assert!(t1[0].local_stolen <= t1[1].local_stolen);
            assert!(t1[1].local_stolen <= t1[2].local_stolen);
            // At 50/50 almost nothing is stolen (paper: exactly 0).
            assert!(t1[0].local_stolen <= 8, "{}: {:?}", app.name(), t1[0]);
        }
    }

    #[test]
    fn table2_pagerank_global_reduction_dominates_apps() {
        let knn = table2(App::Knn, &run_fig3(App::Knn, &net(), DEFAULT_SEED));
        let pr = table2(
            App::PageRank,
            &run_fig3(App::PageRank, &net(), DEFAULT_SEED),
        );
        // knn's robj is tiny; pagerank's is 300 MB.
        assert!(knn[0].global_reduction_s < 1.0, "{:?}", knn[0]);
        assert!(
            pr[0].global_reduction_s > 10.0,
            "pagerank robj must cost tens of seconds: {:?}",
            pr[0]
        );
    }

    #[test]
    fn fig4_speedups_are_substantial() {
        for app in App::ALL {
            let rows = run_fig4(app, &net(), DEFAULT_SEED);
            assert_eq!(rows.len(), 4);
            for r in rows.iter().skip(1) {
                let s = r.speedup_pct.unwrap();
                assert!(
                    s > 40.0,
                    "{} at ({},{}) speedup {s}",
                    app.name(),
                    r.cores_each,
                    r.cores_each
                );
            }
        }
    }

    #[test]
    fn fig4_pagerank_scales_worst_at_high_cores() {
        let knn = run_fig4(App::Knn, &net(), DEFAULT_SEED);
        let pr = run_fig4(App::PageRank, &net(), DEFAULT_SEED);
        let last = |rows: &[Fig4Row]| rows.last().unwrap().speedup_pct.unwrap();
        assert!(
            last(&pr) < last(&knn),
            "pagerank's fixed robj cost must hurt scaling: {} vs {}",
            last(&pr),
            last(&knn)
        );
    }

    #[test]
    fn ablations_point_the_right_way() {
        let n = net();
        let cons = ablate_consecutive(&n, DEFAULT_SEED);
        assert!(
            cons[0].total_s < cons[1].total_s,
            "consecutive grants must beat round-robin: {cons:?}"
        );

        let steal = ablate_stealing(&n, DEFAULT_SEED);
        assert!(
            steal[0].total_s < steal[1].total_s,
            "stealing must beat idling: {steal:?}"
        );
        assert!(steal[1].idle_max_s > steal[0].idle_max_s);

        let streams = ablate_retrieval_streams(&n, DEFAULT_SEED);
        assert!(
            streams[3].total_s < streams[0].total_s * 0.6,
            "multi-threaded retrieval must pay off: {streams:?}"
        );
    }
}

/// One row of the multi-cloud extension: a three-site deployment (local +
/// two cloud providers), varying how much data stays local.
#[derive(Debug, Clone, Serialize)]
pub struct MultiCloudRow {
    pub frac_local: f64,
    pub report: RunReport,
}

/// Run the multi-cloud extension (§II's "two different cloud providers"):
/// three 16-core clusters, data split local / cloud-A / cloud-B.
pub fn run_multicloud(app: App, net: &NetConstants, seed: u64) -> Vec<MultiCloudRow> {
    [0.34f64, 0.2, 0.0]
        .into_iter()
        .map(|frac_local| {
            let params = calib::build_multicloud_params(app, frac_local, 16, net, seed);
            let report = simulate(params).expect("multicloud simulation failed");
            MultiCloudRow { frac_local, report }
        })
        .collect()
}

/// One point of the WAN provisioning sweep.
#[derive(Debug, Clone, Serialize)]
pub struct WanSweepRow {
    /// Multiplier over the calibrated 2011 WAN (bandwidths and streams'
    /// per-connection rates scale together).
    pub wan_multiplier: f64,
    pub total_s: f64,
    /// Slowdown of env-17/83 relative to env-local, percent.
    pub slowdown_pct: f64,
    pub global_reduction_s: f64,
}

/// The paper's §I forward-looking claim — *"ongoing developments (such as
/// building dedicated high speed connections ...) are addressing this
/// issue"* — quantified: scale the WAN up and watch the worst-skew
/// (env-17/83) slowdown collapse toward zero. Uses pagerank, the app most
/// sensitive to inter-cluster bandwidth.
pub fn sweep_wan(app: App, net: &NetConstants, seed: u64) -> Vec<WanSweepRow> {
    let baseline = {
        let env = &calib::fig3_envs(app)[0];
        simulate(calib::build_params(app, env, net, seed)).expect("baseline")
    };
    [1.0f64, 2.0, 4.0, 8.0, 16.0, 32.0]
        .into_iter()
        .map(|mult| {
            let mut n = *net;
            n.wan_bps *= mult;
            n.wan_conn_bps *= mult;
            n.robj_conn_bps *= mult;
            let env = &calib::fig3_envs(app)[4]; // env-17/83
            let report = simulate(calib::build_params(app, env, &n, seed)).expect("sweep");
            WanSweepRow {
                wan_multiplier: mult,
                total_s: report.total_s,
                slowdown_pct: (report.total_s / baseline.total_s - 1.0) * 100.0,
                global_reduction_s: report.global_reduction_s,
            }
        })
        .collect()
}

/// Seed-sensitivity row: run-to-run spread of one environment under EC2
/// jitter.
#[derive(Debug, Clone, Serialize)]
pub struct SeedSpreadRow {
    pub env: String,
    pub min_s: f64,
    pub mean_s: f64,
    pub max_s: f64,
    /// Coefficient of variation across seeds, percent.
    pub cv_pct: f64,
}

/// The paper ran every EC2 configuration "at least three times" and kept
/// the shortest, because of instance variability. This experiment
/// quantifies that spread in the model: `n_seeds` independent runs per
/// environment, reporting min/mean/max total time.
pub fn seed_sensitivity(app: App, net: &NetConstants, n_seeds: u64) -> Vec<SeedSpreadRow> {
    assert!(n_seeds >= 2, "need at least two seeds for a spread");
    calib::fig3_envs(app)
        .iter()
        .map(|env| {
            let mut stats = cb_simnet::Summary::new();
            for seed in 0..n_seeds {
                let params = calib::build_params(app, env, net, DEFAULT_SEED + seed);
                stats.record(simulate(params).expect("seed run").total_s);
            }
            SeedSpreadRow {
                env: env.name.clone(),
                min_s: stats.min(),
                mean_s: stats.mean(),
                max_s: stats.max(),
                cv_pct: 100.0 * stats.std_dev() / stats.mean(),
            }
        })
        .collect()
}

/// One point of the reduction-object size sweep.
#[derive(Debug, Clone, Serialize)]
pub struct RobjSweepRow {
    pub robj_mb: f64,
    pub total_s: f64,
    pub global_reduction_s: f64,
    /// Fraction of execution spent in the global reduction.
    pub global_fraction: f64,
    /// Slowdown of env-50/50 over env-local with the same robj size.
    pub slowdown_pct: f64,
}

/// The paper's feasibility threshold (§IV-B): *"if the reduction object
/// size increases relative to input data size, it may not be feasible to
/// use cloud bursting due to the increasing costs of transferring the
/// reduction object."* Sweep the robj from kilobytes to gigabytes on the
/// pagerank profile and watch the global reduction swallow the run.
pub fn sweep_robj(net: &NetConstants, seed: u64) -> Vec<RobjSweepRow> {
    let envs = calib::fig3_envs(App::PageRank);
    [0.3f64, 30.0, 300.0, 1_000.0, 3_000.0]
        .into_iter()
        .map(|mb| {
            let robj_bytes = (mb * 1e6) as u64;
            let mut base = calib::build_params(App::PageRank, &envs[0], net, seed);
            base.robj_bytes = robj_bytes;
            let baseline = simulate(base).expect("robj sweep baseline");
            let mut p = calib::build_params(App::PageRank, &envs[2], net, seed);
            p.robj_bytes = robj_bytes;
            let report = simulate(p).expect("robj sweep");
            RobjSweepRow {
                robj_mb: mb,
                total_s: report.total_s,
                global_reduction_s: report.global_reduction_s,
                global_fraction: report.global_reduction_s / report.total_s,
                slowdown_pct: (report.total_s / baseline.total_s - 1.0) * 100.0,
            }
        })
        .collect()
}

/// A traced run of one hybrid environment, for timeline rendering: returns
/// the report, the trace, and per-cluster utilizations.
pub fn run_timeline(app: App, net: &NetConstants, seed: u64) -> (RunReport, Trace) {
    let env = &calib::fig3_envs(app)[3]; // env-33/67: both stealing and idle
    let params = calib::build_params(app, env, net, seed);
    simulate_traced(params).expect("traced simulation failed")
}

#[cfg(test)]
mod extension_tests {
    use super::*;

    #[test]
    fn prefetch_hides_head_rtt() {
        let rows = ablate_prefetch(&NetConstants::default(), DEFAULT_SEED);
        assert_eq!(rows.len(), 5);
        // Deep prefetch must clearly beat no prefetch under a 1s RTT.
        assert!(
            rows.last().unwrap().total_s < rows[0].total_s * 0.98,
            "prefetch should hide the head RTT: {rows:?}"
        );
    }

    #[test]
    fn overlap_ablation_rewards_prefetch_deterministically() {
        let n = NetConstants::default();
        let rows = ablate_overlap(&n, DEFAULT_SEED);
        assert_eq!(rows.len(), 4);
        assert!(
            rows[1].total_s < rows[0].total_s,
            "double buffering must beat the serial slave: {rows:?}"
        );
        for r in &rows[1..] {
            assert!(
                r.total_s <= rows[0].total_s,
                "deeper prefetch must never lose to serial: {rows:?}"
            );
        }
        let again = ablate_overlap(&n, DEFAULT_SEED);
        assert_eq!(rows, again, "the ablation must be deterministic");
    }

    #[test]
    fn multicloud_terminates_and_conserves() {
        let rows = run_multicloud(App::Knn, &NetConstants::default(), DEFAULT_SEED);
        assert_eq!(rows.len(), 3);
        for r in &rows {
            assert_eq!(r.report.total_jobs(), 960, "frac={}", r.frac_local);
            assert_eq!(r.report.clusters.len(), 3);
            // Each cloud processes work; nobody is starved outright.
            for c in &r.report.clusters {
                assert!(
                    c.jobs_processed > 0,
                    "{} idle at frac={}",
                    c.name,
                    r.frac_local
                );
            }
        }
        // With no local data, the local cluster's work is all stolen.
        let all_cloud = &rows[2];
        let local = all_cloud.report.cluster("local").unwrap();
        assert_eq!(local.jobs_stolen, local.jobs_processed);
    }

    #[test]
    fn wan_sweep_slowdown_collapses() {
        let rows = sweep_wan(App::PageRank, &NetConstants::default(), DEFAULT_SEED);
        assert_eq!(rows.len(), 6);
        let first = rows.first().unwrap();
        let last = rows.last().unwrap();
        assert!(
            last.slowdown_pct < first.slowdown_pct / 2.0,
            "a 32x WAN should collapse the skew penalty: {} -> {}",
            first.slowdown_pct,
            last.slowdown_pct
        );
        assert!(
            last.global_reduction_s < first.global_reduction_s / 4.0,
            "robj transfer should get much cheaper: {} -> {}",
            first.global_reduction_s,
            last.global_reduction_s
        );
        // Totals are non-increasing in WAN capacity.
        for w in rows.windows(2) {
            assert!(w[1].total_s <= w[0].total_s * 1.001);
        }
    }

    #[test]
    fn seed_spread_is_tight_for_long_runs() {
        let rows = seed_sensitivity(App::Knn, &NetConstants::default(), 4);
        assert_eq!(rows.len(), 5);
        for r in &rows {
            assert!(r.min_s <= r.mean_s && r.mean_s <= r.max_s, "{r:?}");
            // Long-running pooled workloads absorb jitter: spread under 5%.
            assert!(r.cv_pct < 5.0, "spread too wide: {r:?}");
        }
        // Hybrid envs (EC2 jitter cv=0.08 on half the cores) still vary a
        // bit more than... actually env-local has cv=0.02 local-only: its
        // spread should be the smallest or near it.
        let local = &rows[0];
        let worst = rows.iter().map(|r| r.cv_pct).fold(0.0, f64::max);
        assert!(local.cv_pct <= worst + 1e-9);
    }

    #[test]
    fn robj_sweep_shows_the_feasibility_cliff() {
        let rows = sweep_robj(&NetConstants::default(), DEFAULT_SEED);
        assert_eq!(rows.len(), 5);
        // Global-reduction share grows monotonically with robj size...
        for w in rows.windows(2) {
            assert!(
                w[1].global_reduction_s > w[0].global_reduction_s,
                "{rows:?}"
            );
        }
        // ...and at gigabyte scale it dominates the hybrid run.
        let last = rows.last().unwrap();
        assert!(
            last.global_fraction > 0.3,
            "3 GB robj should dominate: {last:?}"
        );
        assert!(
            rows[0].slowdown_pct < 10.0,
            "tiny robj keeps bursting cheap: {:?}",
            rows[0]
        );
        assert!(
            last.slowdown_pct > 30.0,
            "huge robj makes bursting infeasible: {last:?}"
        );
    }

    #[test]
    fn failure_ablation_costs_time_never_jobs() {
        let rows = ablate_failures(&NetConstants::default(), DEFAULT_SEED);
        assert_eq!(rows.len(), 4);
        let base = &rows[0];
        assert_eq!(base.fetch_failures, 0);
        assert_eq!(base.slaves_killed, 0);
        // Fetch faults at 2% over 960 jobs must both occur and be re-run.
        assert!(rows[1].fetch_failures > 0, "{rows:?}");
        assert_eq!(rows[1].fetch_failures, rows[1].jobs_reenqueued);
        // Losing the whole cloud forces the local cluster to steal roughly
        // half the dataset, at a large but finite cost.
        let lost = rows.last().unwrap();
        assert!(lost.slaves_killed as usize > 0);
        assert!(
            lost.local_stolen > 400,
            "local must absorb the cloud's ~480 jobs: {lost:?}"
        );
        assert!(
            lost.penalty_pct > rows[1].penalty_pct,
            "total cluster loss must cost more than sparse faults: {rows:?}"
        );
    }

    #[test]
    fn timeline_shows_busy_slaves() {
        let (report, trace) = run_timeline(App::Knn, &NetConstants::default(), DEFAULT_SEED);
        assert_eq!(report.total_jobs(), 960);
        assert!(!trace.spans.is_empty());
        // Pool balancing keeps every cluster quite busy.
        for (ci, c) in report.clusters.iter().enumerate() {
            let u = trace.cluster_utilization(ci);
            assert!(u > 0.7, "cluster {} utilization only {u:.2}", c.name);
        }
        let gantt = trace.render_gantt(80);
        assert!(gantt.lines().count() >= 33, "one row per slave plus header");
    }
}
