//! Execution traces: per-slave activity spans recorded by the simulator.
//!
//! A [`Trace`] is the microscope behind the aggregate [`RunReport`]: every
//! fetch, every compute burst, and every reduction-object transfer as a
//! `(start, end)` interval. It renders as a textual Gantt chart (one row
//! per slave) and computes per-slave utilization — which is how the
//! load-balancing claims of the paper can be *seen*, not just asserted.
//!
//! The chart uses the same glyph vocabulary as the live runtime's
//! [`Timeline`](cloudburst_core::obs::Timeline) ([`GANTT_LEGEND`]), so a
//! simulated Gantt and a real one from `run --trace-out` can be diffed
//! side by side.
//!
//! [`RunReport`]: cloudburst_core::report::RunReport

use cb_simnet::time::SimTime;
use cloudburst_core::obs::GANTT_LEGEND;
use std::fmt::Write as _;

/// What a slave was doing during a span. Glyphs match
/// [`cloudburst_core::obs::SpanKind`] one for one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// Retrieving a chunk (including request latency).
    Fetch,
    /// The compute unit sat waiting on an in-flight fetch (the un-hidden
    /// part of retrieval; what `fetch_stall_s` aggregates).
    Stall,
    /// Local reduction over a chunk's units.
    Process,
    /// Shipping the cluster's reduction object to the head (attributed to
    /// slave 0 of the cluster for display purposes).
    RobjTransfer,
}

impl SpanKind {
    fn glyph(self) -> char {
        match self {
            SpanKind::Fetch => '▒',
            SpanKind::Stall => '░',
            SpanKind::Process => '█',
            SpanKind::RobjTransfer => '◆',
        }
    }
}

/// One activity interval of one slave.
#[derive(Debug, Clone, Copy)]
pub struct Span {
    pub cluster: usize,
    pub slave: usize,
    pub kind: SpanKind,
    pub start: SimTime,
    pub end: SimTime,
}

/// A full run's spans plus its horizon.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    pub spans: Vec<Span>,
    /// End of the run.
    pub horizon: SimTime,
}

impl Trace {
    /// Record a span (called by the simulator).
    pub fn record(
        &mut self,
        cluster: usize,
        slave: usize,
        kind: SpanKind,
        start: SimTime,
        end: SimTime,
    ) {
        debug_assert!(end >= start, "span ends before it starts");
        self.spans.push(Span {
            cluster,
            slave,
            kind,
            start,
            end,
        });
        self.horizon = self.horizon.max(end);
    }

    /// Busy fraction of one slave over the whole run (fetch + process;
    /// stalls and robj transfers are waiting, not work).
    pub fn utilization(&self, cluster: usize, slave: usize) -> f64 {
        if self.horizon == SimTime::ZERO {
            return 0.0;
        }
        let busy: f64 = self
            .spans
            .iter()
            .filter(|s| {
                s.cluster == cluster
                    && s.slave == slave
                    && matches!(s.kind, SpanKind::Fetch | SpanKind::Process)
            })
            .map(|s| s.end.saturating_since(s.start).as_secs_f64())
            .sum();
        busy / self.horizon.as_secs_f64()
    }

    /// Mean busy fraction across all slaves of `cluster`.
    pub fn cluster_utilization(&self, cluster: usize) -> f64 {
        let slaves: std::collections::BTreeSet<usize> = self
            .spans
            .iter()
            .filter(|s| s.cluster == cluster)
            .map(|s| s.slave)
            .collect();
        if slaves.is_empty() {
            return 0.0;
        }
        slaves
            .iter()
            .map(|&s| self.utilization(cluster, s))
            .sum::<f64>()
            / slaves.len() as f64
    }

    /// Render a textual Gantt chart, one row per (cluster, slave), `width`
    /// columns spanning the whole run. Later spans overwrite earlier ones
    /// in a cell; the glyphs are the shared
    /// [`GANTT_LEGEND`].
    pub fn render_gantt(&self, width: usize) -> String {
        assert!(width > 0);
        let horizon = self.horizon.as_secs_f64().max(f64::MIN_POSITIVE);
        let mut rows: std::collections::BTreeMap<(usize, usize), Vec<char>> =
            std::collections::BTreeMap::new();
        for s in &self.spans {
            let row = rows
                .entry((s.cluster, s.slave))
                .or_insert_with(|| vec!['·'; width]);
            let a = ((s.start.as_secs_f64() / horizon) * width as f64) as usize;
            let b = ((s.end.as_secs_f64() / horizon) * width as f64).ceil() as usize;
            for cell in row.iter_mut().take(b.min(width)).skip(a.min(width - 1)) {
                *cell = s.kind.glyph();
            }
        }
        let mut out = String::new();
        let _ = writeln!(
            out,
            "gantt over {:.2}s  ({GANTT_LEGEND})",
            self.horizon.as_secs_f64()
        );
        for ((c, s), row) in rows {
            let _ = writeln!(
                out,
                "c{c}/s{s:<3} |{}|",
                row.into_iter().collect::<String>()
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs_f64(s)
    }

    #[test]
    fn utilization_counts_busy_time() {
        let mut tr = Trace::default();
        tr.record(0, 0, SpanKind::Fetch, t(0.0), t(2.0));
        tr.record(0, 0, SpanKind::Process, t(2.0), t(6.0));
        tr.record(0, 1, SpanKind::Process, t(0.0), t(3.0));
        tr.record(1, 0, SpanKind::RobjTransfer, t(6.0), t(10.0));
        assert_eq!(tr.horizon, t(10.0));
        assert!((tr.utilization(0, 0) - 0.6).abs() < 1e-12);
        assert!((tr.utilization(0, 1) - 0.3).abs() < 1e-12);
        // Robj transfer is not "busy" slave work.
        assert_eq!(tr.utilization(1, 0), 0.0);
        assert!((tr.cluster_utilization(0) - 0.45).abs() < 1e-12);
    }

    #[test]
    fn empty_trace_is_zero() {
        let tr = Trace::default();
        assert_eq!(tr.utilization(0, 0), 0.0);
        assert_eq!(tr.cluster_utilization(0), 0.0);
    }

    #[test]
    fn gantt_renders_rows() {
        let mut tr = Trace::default();
        tr.record(0, 0, SpanKind::Fetch, t(0.0), t(5.0));
        tr.record(0, 0, SpanKind::Process, t(5.0), t(10.0));
        tr.record(1, 0, SpanKind::Process, t(0.0), t(10.0));
        let g = tr.render_gantt(20);
        assert!(g.contains("c0/s0"));
        assert!(g.contains("c1/s0"));
        let row0 = g.lines().find(|l| l.starts_with("c0/s0")).unwrap();
        assert!(row0.contains('▒') && row0.contains('█'));
        let row1 = g.lines().find(|l| l.starts_with("c1/s0")).unwrap();
        assert_eq!(row1.matches('█').count(), 20, "fully busy row");
    }
}
