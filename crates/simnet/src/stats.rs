//! Streaming summary statistics used by run reports.

use crate::time::SimDur;
use std::fmt;

/// Online accumulator of count / sum / min / max / mean (Welford variance).
#[derive(Debug, Clone, Default)]
pub struct Summary {
    n: u64,
    sum: f64,
    min: f64,
    max: f64,
    mean: f64,
    m2: f64,
}

impl Summary {
    pub fn new() -> Self {
        Summary {
            n: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            mean: 0.0,
            m2: 0.0,
        }
    }

    pub fn record(&mut self, x: f64) {
        self.n += 1;
        self.sum += x;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Record a duration in seconds.
    pub fn record_dur(&mut self, d: SimDur) {
        self.record(d.as_secs_f64());
    }

    pub fn count(&self) -> u64 {
        self.n
    }

    pub fn sum(&self) -> f64 {
        self.sum
    }

    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    pub fn min(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.min
        }
    }

    pub fn max(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Sample variance (n-1 denominator).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Merge another summary into this one (parallel Welford combine).
    pub fn merge(&mut self, other: &Summary) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let n = n1 + n2;
        self.m2 += other.m2 + delta * delta * n1 * n2 / n;
        self.mean = (n1 * self.mean + n2 * other.mean) / n;
        self.n += other.n;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.4} sd={:.4} min={:.4} max={:.4}",
            self.n,
            self.mean(),
            self.std_dev(),
            self.min(),
            self.max()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_moments() {
        let mut s = Summary::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.record(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-9);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
        assert_eq!(s.sum(), 40.0);
    }

    #[test]
    fn empty_is_safe() {
        let s = Summary::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
        assert_eq!(s.std_dev(), 0.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64) * 0.37 - 3.0).collect();
        let mut whole = Summary::new();
        for &x in &xs {
            whole.record(x);
        }
        let mut a = Summary::new();
        let mut b = Summary::new();
        for &x in &xs[..33] {
            a.record(x);
        }
        for &x in &xs[33..] {
            b.record(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_sides() {
        let mut a = Summary::new();
        let mut b = Summary::new();
        b.record(1.5);
        a.merge(&b);
        assert_eq!(a.count(), 1);
        let empty = Summary::new();
        a.merge(&empty);
        assert_eq!(a.count(), 1);
    }
}
