//! A processor-sharing ("fair-share") link model.
//!
//! A [`FairShareLink`] models a shared bottleneck (a WAN uplink, the
//! aggregate S3 frontend, a storage node's disk array) of fixed capacity `C`
//! bytes/sec. Concurrent transfers ("flows") share `C` by *max-min fairness
//! with per-flow caps* (water-filling): every flow gets an equal share of the
//! capacity unless its own cap binds, in which case the leftover is
//! redistributed to the uncapped flows. This is the standard fluid
//! approximation of TCP sharing a bottleneck and is what makes contention
//! effects — e.g. many slaves hammering the same S3 bucket — come out of the
//! simulation rather than being hand-coded.
//!
//! Interaction with the event engine follows the *generation* pattern: every
//! mutation bumps [`FairShareLink::generation`]. The world schedules a wakeup
//! at [`FairShareLink::next_completion`] tagged with the current generation;
//! when the wakeup fires with a stale generation it is ignored (a newer
//! wakeup has already been scheduled).

use crate::time::{SimDur, SimTime};
use std::collections::BTreeMap;

/// Identifier of an in-flight transfer on a [`FairShareLink`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FlowId(pub u64);

#[derive(Debug, Clone)]
struct Flow {
    /// Bytes still to transfer (fluid model, fractional).
    remaining: f64,
    /// This flow's own rate cap in bytes/sec (`f64::INFINITY` if uncapped).
    cap: f64,
    /// Opaque tag the caller can use to route the completion.
    tag: u64,
}

/// Shared-bottleneck link with max-min fair bandwidth allocation.
///
/// ```
/// use cb_simnet::link::FairShareLink;
/// use cb_simnet::time::SimTime;
///
/// // A 100 B/s link; two simultaneous 100-byte flows share it fairly
/// // and both finish at t = 2 s.
/// let mut link = FairShareLink::with_capacity(100.0);
/// link.start_flow(SimTime::ZERO, 100, 0);
/// link.start_flow(SimTime::ZERO, 100, 1);
/// let done_at = link.next_completion().unwrap();
/// assert_eq!(done_at, SimTime::from_secs(2));
/// assert_eq!(link.poll_completed(done_at).len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct FairShareLink {
    capacity: f64,
    default_flow_cap: f64,
    flows: BTreeMap<FlowId, Flow>,
    /// Cached per-flow rates, recomputed on membership change.
    rates: BTreeMap<FlowId, f64>,
    last_advance: SimTime,
    next_id: u64,
    generation: u64,
    bytes_delivered: f64,
}

/// Completion record returned by [`FairShareLink::poll_completed`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    pub flow: FlowId,
    pub tag: u64,
}

impl FairShareLink {
    /// A link of `capacity_bps` aggregate bytes/sec where each flow is also
    /// individually limited to `default_flow_cap_bps` (use `f64::INFINITY`
    /// for no per-flow cap).
    pub fn new(capacity_bps: f64, default_flow_cap_bps: f64) -> Self {
        assert!(capacity_bps > 0.0, "link capacity must be positive");
        assert!(default_flow_cap_bps > 0.0, "flow cap must be positive");
        FairShareLink {
            capacity: capacity_bps,
            default_flow_cap: default_flow_cap_bps,
            flows: BTreeMap::new(),
            rates: BTreeMap::new(),
            last_advance: SimTime::ZERO,
            next_id: 0,
            generation: 0,
            bytes_delivered: 0.0,
        }
    }

    /// An uncapped-per-flow link.
    pub fn with_capacity(capacity_bps: f64) -> Self {
        Self::new(capacity_bps, f64::INFINITY)
    }

    /// Aggregate capacity in bytes/sec.
    pub fn capacity(&self) -> f64 {
        self.capacity
    }

    /// Monotone counter bumped on every state change; used to invalidate
    /// stale wakeup events.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Number of in-flight flows.
    pub fn active_flows(&self) -> usize {
        self.flows.len()
    }

    /// Total bytes fully delivered so far (monotone).
    pub fn bytes_delivered(&self) -> f64 {
        self.bytes_delivered
    }

    /// Start a transfer of `bytes` with the link's default per-flow cap.
    pub fn start_flow(&mut self, now: SimTime, bytes: u64, tag: u64) -> FlowId {
        self.start_flow_capped(now, bytes, self.default_flow_cap, tag)
    }

    /// Start a transfer with an explicit per-flow cap (e.g. `n_threads *
    /// per_connection_bandwidth` for a multi-threaded S3 fetch).
    pub fn start_flow_capped(&mut self, now: SimTime, bytes: u64, cap: f64, tag: u64) -> FlowId {
        assert!(cap > 0.0, "flow cap must be positive");
        self.advance(now);
        let id = FlowId(self.next_id);
        self.next_id += 1;
        self.flows.insert(
            id,
            Flow {
                remaining: bytes as f64,
                cap,
                tag,
            },
        );
        self.recompute_rates();
        self.generation += 1;
        id
    }

    /// Abort an in-flight flow. Returns `true` if it existed.
    pub fn cancel(&mut self, now: SimTime, id: FlowId) -> bool {
        self.advance(now);
        let existed = self.flows.remove(&id).is_some();
        if existed {
            self.recompute_rates();
            self.generation += 1;
        }
        existed
    }

    /// The absolute instant at which the next flow (if any) will finish,
    /// assuming no further arrivals.
    pub fn next_completion(&self) -> Option<SimTime> {
        self.flows
            .iter()
            .map(|(id, f)| {
                let rate = self.rates[id];
                self.last_advance + SimDur::for_transfer(f.remaining.ceil() as u64, rate)
            })
            .min()
    }

    /// Advance the fluid model to `now` and collect every flow that has
    /// finished by then, in deterministic (FlowId) order.
    pub fn poll_completed(&mut self, now: SimTime) -> Vec<Completion> {
        self.advance(now);
        let done: Vec<FlowId> = self
            .flows
            .iter()
            .filter(|(_, f)| f.remaining <= 0.5)
            .map(|(&id, _)| id)
            .collect();
        let mut out = Vec::with_capacity(done.len());
        for id in &done {
            let f = self.flows.remove(id).expect("flow vanished");
            out.push(Completion {
                flow: *id,
                tag: f.tag,
            });
        }
        if !done.is_empty() {
            self.recompute_rates();
            self.generation += 1;
        }
        out
    }

    /// Current transfer rate of `id` in bytes/sec, if in flight.
    pub fn flow_rate(&self, id: FlowId) -> Option<f64> {
        self.rates.get(&id).copied()
    }

    /// Drain fluid up to `now`. Rates are constant between membership
    /// changes, so this is exact, not an approximation — but it must never
    /// be called with a `now` earlier than the last advance.
    fn advance(&mut self, now: SimTime) {
        assert!(
            now >= self.last_advance,
            "link advanced backwards: {now} < {}",
            self.last_advance
        );
        let dt = (now - self.last_advance).as_secs_f64();
        self.last_advance = now;
        if dt == 0.0 || self.flows.is_empty() {
            return;
        }
        for (id, f) in self.flows.iter_mut() {
            let rate = self.rates[id];
            let moved = (rate * dt).min(f.remaining);
            f.remaining -= moved;
            self.bytes_delivered += moved;
        }
    }

    /// Max-min fair allocation with per-flow caps (water-filling).
    fn recompute_rates(&mut self) {
        self.rates.clear();
        if self.flows.is_empty() {
            return;
        }
        let mut unassigned: Vec<(FlowId, f64)> =
            self.flows.iter().map(|(&id, f)| (id, f.cap)).collect();
        let mut capacity_left = self.capacity;
        // Iteratively freeze flows whose cap is below the current fair share.
        loop {
            let n = unassigned.len();
            if n == 0 {
                break;
            }
            let fair = capacity_left / n as f64;
            let (bound, free): (Vec<_>, Vec<_>) = unassigned
                .iter()
                .copied()
                .partition(|&(_, cap)| cap <= fair);
            if bound.is_empty() {
                for (id, _) in &unassigned {
                    self.rates.insert(*id, fair);
                }
                break;
            }
            for (id, cap) in &bound {
                self.rates.insert(*id, *cap);
                capacity_left -= *cap;
            }
            unassigned = free;
        }
        debug_assert!(
            self.rates.values().sum::<f64>() <= self.capacity * (1.0 + 1e-9),
            "allocated more than capacity"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs_f64(s)
    }

    #[test]
    fn single_flow_runs_at_capacity() {
        let mut l = FairShareLink::with_capacity(100.0);
        let id = l.start_flow(t(0.0), 200, 7);
        assert_eq!(l.flow_rate(id), Some(100.0));
        assert_eq!(l.next_completion(), Some(t(2.0)));
        let done = l.poll_completed(t(2.0));
        assert_eq!(done, vec![Completion { flow: id, tag: 7 }]);
        assert_eq!(l.active_flows(), 0);
    }

    #[test]
    fn two_flows_split_capacity() {
        let mut l = FairShareLink::with_capacity(100.0);
        let a = l.start_flow(t(0.0), 100, 0);
        let b = l.start_flow(t(0.0), 100, 1);
        assert_eq!(l.flow_rate(a), Some(50.0));
        assert_eq!(l.flow_rate(b), Some(50.0));
        // Both finish together at t=2 (100 bytes at 50 B/s).
        assert_eq!(l.next_completion(), Some(t(2.0)));
        let done = l.poll_completed(t(2.0));
        assert_eq!(done.len(), 2);
    }

    #[test]
    fn departure_speeds_up_survivor() {
        let mut l = FairShareLink::with_capacity(100.0);
        let _a = l.start_flow(t(0.0), 50, 0); // finishes at t=1 under sharing
        let b = l.start_flow(t(0.0), 150, 1);
        assert_eq!(l.next_completion(), Some(t(1.0)));
        let done = l.poll_completed(t(1.0));
        assert_eq!(done.len(), 1);
        // b has 100 bytes left, now alone at 100 B/s => finishes at t=2.
        assert_eq!(l.flow_rate(b), Some(100.0));
        assert_eq!(l.next_completion(), Some(t(2.0)));
        assert_eq!(l.poll_completed(t(2.0)).len(), 1);
    }

    #[test]
    fn per_flow_cap_binds_and_leftover_redistributes() {
        // Capacity 100; one flow capped at 10, another uncapped.
        let mut l = FairShareLink::with_capacity(100.0);
        let slow = l.start_flow_capped(t(0.0), 1000, 10.0, 0);
        let fast = l.start_flow(t(0.0), 1000, 1);
        assert_eq!(l.flow_rate(slow), Some(10.0));
        assert_eq!(l.flow_rate(fast), Some(90.0));
    }

    #[test]
    fn default_cap_applies() {
        let mut l = FairShareLink::new(100.0, 30.0);
        let a = l.start_flow(t(0.0), 100, 0);
        // Alone but capped at 30.
        assert_eq!(l.flow_rate(a), Some(30.0));
        let _b = l.start_flow(t(0.0), 100, 1);
        let _c = l.start_flow(t(0.0), 100, 2);
        let _d = l.start_flow(t(0.0), 100, 3);
        // Four flows, fair share 25 < cap 30.
        assert_eq!(l.flow_rate(a), Some(25.0));
    }

    #[test]
    fn mid_flight_arrival_is_accounted_exactly() {
        let mut l = FairShareLink::with_capacity(100.0);
        let a = l.start_flow(t(0.0), 100, 0);
        // At t=0.5, a has 50 bytes left; b arrives.
        let _b = l.start_flow(t(0.5), 100, 1);
        // a now proceeds at 50 B/s: finishes at 0.5 + 1.0 = 1.5.
        assert_eq!(l.next_completion(), Some(t(1.5)));
        let done = l.poll_completed(t(1.5));
        assert_eq!(done, vec![Completion { flow: a, tag: 0 }]);
    }

    #[test]
    fn generation_bumps_on_every_mutation() {
        let mut l = FairShareLink::with_capacity(10.0);
        let g0 = l.generation();
        let id = l.start_flow(t(0.0), 10, 0);
        assert!(l.generation() > g0);
        let g1 = l.generation();
        l.cancel(t(0.1), id);
        assert!(l.generation() > g1);
    }

    #[test]
    fn cancel_removes_flow() {
        let mut l = FairShareLink::with_capacity(10.0);
        let id = l.start_flow(t(0.0), 100, 0);
        assert!(l.cancel(t(0.0), id));
        assert!(!l.cancel(t(0.0), id));
        assert_eq!(l.active_flows(), 0);
        assert_eq!(l.next_completion(), None);
    }

    #[test]
    fn bytes_conserved() {
        let mut l = FairShareLink::with_capacity(123.0);
        let mut total = 0u64;
        let mut now = t(0.0);
        for i in 0..10 {
            total += 100 * (i + 1);
            l.start_flow(now, 100 * (i + 1), i);
            now += SimDur::from_millis(100);
        }
        let mut delivered = 0usize;
        while let Some(tc) = l.next_completion() {
            delivered += l.poll_completed(tc).len();
        }
        assert_eq!(delivered, 10);
        let err = (l.bytes_delivered() - total as f64).abs();
        assert!(err < 1.0, "bytes not conserved: err={err}");
    }

    #[test]
    fn zero_byte_flow_completes_immediately() {
        let mut l = FairShareLink::with_capacity(10.0);
        let id = l.start_flow(t(1.0), 0, 9);
        assert_eq!(l.next_completion(), Some(t(1.0)));
        let done = l.poll_completed(t(1.0));
        assert_eq!(done, vec![Completion { flow: id, tag: 9 }]);
    }
}
