//! A deterministic event queue.
//!
//! Events are ordered by `(time, sequence)` where the sequence number is the
//! insertion order. The tiebreak makes simulations with simultaneous events
//! fully deterministic: two events scheduled for the same instant fire in the
//! order they were scheduled, independent of heap internals.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event is popped
        // first, breaking ties by insertion order.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A priority queue of timestamped events with deterministic tie-breaking.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedule `event` to fire at absolute time `at`.
    pub fn push(&mut self, at: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry {
            time: at,
            seq,
            event,
        });
    }

    /// Remove and return the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.time, e.event))
    }

    /// Timestamp of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    pub fn len(&self) -> usize {
        self.heap.len()
    }

    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever scheduled on this queue.
    pub fn scheduled_count(&self) -> u64 {
        self.next_seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDur;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(3), "c");
        q.push(SimTime::from_secs(1), "a");
        q.push(SimTime::from_secs(2), "b");
        assert_eq!(q.pop(), Some((SimTime::from_secs(1), "a")));
        assert_eq!(q.pop(), Some((SimTime::from_secs(2), "b")));
        assert_eq!(q.pop(), Some((SimTime::from_secs(3), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn simultaneous_events_fire_in_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(5);
        for i in 0..100 {
            q.push(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::from_secs(9), ());
        q.push(SimTime::from_secs(4), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(4)));
        q.pop();
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(9)));
    }

    #[test]
    fn counts() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(SimTime::ZERO + SimDur::from_secs(1), 1u32);
        q.push(SimTime::ZERO, 2u32);
        assert_eq!(q.len(), 2);
        assert_eq!(q.scheduled_count(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
        assert_eq!(q.scheduled_count(), 2);
    }
}
