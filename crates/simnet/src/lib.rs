//! # cb-simnet — simulated time, networks, and randomness
//!
//! The substrate shared by both execution modes of the CloudBurst framework:
//!
//! * **Virtual time** ([`SimTime`], [`SimDur`]) and a deterministic
//!   discrete-event [`Engine`] for the performance simulator that
//!   regenerates the paper's evaluation at full (120 GB / 64-core) scale.
//! * A **fair-share link model** ([`FairShareLink`]) — the fluid max-min
//!   bandwidth-sharing abstraction used to model S3 frontends, storage
//!   nodes, and the WAN between the local cluster and the cloud.
//! * A **wall-clock throttle** ([`Throttle`]) so the *real* in-process
//!   runtime can present genuinely slow "remote" stores to its worker
//!   threads.
//! * Seeded randomness ([`DetRng`]) and streaming statistics ([`Summary`]).
//!
//! Nothing in this crate knows about Map-Reduce, jobs, or clusters; it is a
//! general-purpose DES toolkit kept deliberately small and fully tested.

#![deny(unsafe_code)]

pub mod engine;
pub mod event;
pub mod link;
pub mod rng;
pub mod stats;
pub mod throttle;
pub mod time;

pub use engine::{Ctx, Engine, World};
pub use event::EventQueue;
pub use link::{Completion, FairShareLink, FlowId};
pub use rng::DetRng;
pub use stats::Summary;
pub use throttle::Throttle;
pub use time::{SimDur, SimTime};
