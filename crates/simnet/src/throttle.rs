//! Real-time bandwidth/latency throttling for the in-process runtime.
//!
//! Where the discrete-event simulator models transfers in virtual time, the
//! *real* multi-threaded runtime needs actual wall-clock backpressure so that
//! a "remote" store genuinely behaves like one. [`Throttle`] models a shared
//! serial bottleneck: each acquisition reserves a slot on a single virtual
//! wire (`next_free` advances by `bytes / bandwidth`) and the calling thread
//! sleeps until its reservation completes, plus a fixed per-request latency.
//!
//! The reservation scheme (rather than per-caller sleeping) means concurrent
//! callers correctly *queue* behind each other: ten threads pulling through a
//! 10 MB/s throttle observe ~1 MB/s each, exactly like a shared uplink.

use parking_lot::Mutex;
use std::time::{Duration, Instant};

/// Shared-bottleneck wall-clock throttle.
#[derive(Debug)]
pub struct Throttle {
    bytes_per_sec: f64,
    latency: Duration,
    state: Mutex<State>,
}

#[derive(Debug)]
struct State {
    /// Wall-clock instant at which the virtual wire becomes idle.
    next_free: Option<Instant>,
    /// Total bytes ever acquired (for tests / reporting).
    total_bytes: u64,
    /// Total requests.
    total_requests: u64,
}

impl Throttle {
    /// A throttle enforcing `bytes_per_sec` aggregate bandwidth and adding
    /// `latency` to the front of every request. `f64::INFINITY` disables the
    /// bandwidth limit; `Duration::ZERO` disables latency.
    pub fn new(bytes_per_sec: f64, latency: Duration) -> Self {
        assert!(bytes_per_sec > 0.0, "bandwidth must be positive");
        Throttle {
            bytes_per_sec,
            latency,
            state: Mutex::new(State {
                next_free: None,
                total_bytes: 0,
                total_requests: 0,
            }),
        }
    }

    /// An unthrottled instance (no bandwidth cap, no latency): useful for
    /// modelling an infinitely fast local medium in tests.
    pub fn unlimited() -> Self {
        Self::new(f64::INFINITY, Duration::ZERO)
    }

    /// Configured bandwidth in bytes/sec.
    pub fn bytes_per_sec(&self) -> f64 {
        self.bytes_per_sec
    }

    /// Configured per-request latency.
    pub fn latency(&self) -> Duration {
        self.latency
    }

    /// Block the calling thread for as long as transferring `bytes` through
    /// this bottleneck takes. Returns the time actually slept.
    pub fn acquire(&self, bytes: u64) -> Duration {
        let now = Instant::now();
        let xfer = if self.bytes_per_sec.is_finite() {
            Duration::from_secs_f64(bytes as f64 / self.bytes_per_sec)
        } else {
            Duration::ZERO
        };
        let wake = {
            let mut st = self.state.lock();
            st.total_bytes += bytes;
            st.total_requests += 1;
            // Reserve our slice of the wire *after* whoever is already queued.
            let start = match st.next_free {
                Some(nf) if nf > now => nf,
                _ => now,
            };
            let end = start + xfer;
            st.next_free = Some(end);
            end + self.latency
        };
        let sleep_for = wake.saturating_duration_since(now);
        if !sleep_for.is_zero() {
            std::thread::sleep(sleep_for);
        }
        sleep_for
    }

    /// Total bytes acquired through this throttle so far.
    pub fn total_bytes(&self) -> u64 {
        self.state.lock().total_bytes
    }

    /// Total number of acquisitions.
    pub fn total_requests(&self) -> u64 {
        self.state.lock().total_requests
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn unlimited_does_not_sleep() {
        let t = Throttle::unlimited();
        let start = Instant::now();
        t.acquire(10_000_000);
        assert!(start.elapsed() < Duration::from_millis(50));
        assert_eq!(t.total_bytes(), 10_000_000);
    }

    #[test]
    fn bandwidth_enforced_roughly() {
        // 1 MB/s, 100 KB transfer => ~100 ms.
        let t = Throttle::new(1_000_000.0, Duration::ZERO);
        let start = Instant::now();
        t.acquire(100_000);
        let el = start.elapsed();
        assert!(
            el >= Duration::from_millis(90),
            "too fast: {el:?} (throttle not enforcing)"
        );
        assert!(el < Duration::from_millis(400), "too slow: {el:?}");
    }

    #[test]
    fn latency_applied_per_request() {
        let t = Throttle::new(f64::INFINITY, Duration::from_millis(20));
        let start = Instant::now();
        t.acquire(1);
        assert!(start.elapsed() >= Duration::from_millis(18));
    }

    #[test]
    fn concurrent_callers_share_bandwidth() {
        // 4 threads, each moving 50 KB through a 1 MB/s pipe: serialized
        // total is 200 KB => >= ~200ms overall.
        let t = Arc::new(Throttle::new(1_000_000.0, Duration::ZERO));
        let start = Instant::now();
        let mut handles = vec![];
        for _ in 0..4 {
            let t = Arc::clone(&t);
            handles.push(std::thread::spawn(move || {
                t.acquire(50_000);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let el = start.elapsed();
        assert!(
            el >= Duration::from_millis(170),
            "shared queueing missing: {el:?}"
        );
        assert_eq!(t.total_bytes(), 200_000);
        assert_eq!(t.total_requests(), 4);
    }
}
