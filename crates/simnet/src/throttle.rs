//! Real-time bandwidth/latency throttling for the in-process runtime.
//!
//! Where the discrete-event simulator models transfers in virtual time, the
//! *real* multi-threaded runtime needs actual wall-clock backpressure so that
//! a "remote" store genuinely behaves like one. [`Throttle`] models a shared
//! serial bottleneck: each acquisition reserves a slot on a single virtual
//! wire (`next_free` advances by `bytes / bandwidth`) and the calling thread
//! sleeps until its reservation completes, plus a fixed per-request latency.
//!
//! The reservation scheme (rather than per-caller sleeping) means concurrent
//! callers correctly *queue* behind each other: ten threads pulling through a
//! 10 MB/s throttle observe ~1 MB/s each, exactly like a shared uplink.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// Granularity of the abort poll in [`Throttle::acquire_abortable`].
const ABORT_POLL: Duration = Duration::from_millis(5);

/// Shared-bottleneck wall-clock throttle.
#[derive(Debug)]
pub struct Throttle {
    bytes_per_sec: f64,
    latency: Duration,
    state: Mutex<State>,
}

#[derive(Debug)]
struct State {
    /// Wall-clock instant at which the virtual wire becomes idle.
    next_free: Option<Instant>,
    /// Total bytes ever acquired (for tests / reporting).
    total_bytes: u64,
    /// Total requests.
    total_requests: u64,
}

impl Throttle {
    /// A throttle enforcing `bytes_per_sec` aggregate bandwidth and adding
    /// `latency` to the front of every request. `f64::INFINITY` disables the
    /// bandwidth limit; `Duration::ZERO` disables latency.
    pub fn new(bytes_per_sec: f64, latency: Duration) -> Self {
        assert!(bytes_per_sec > 0.0, "bandwidth must be positive");
        Throttle {
            bytes_per_sec,
            latency,
            state: Mutex::new(State {
                next_free: None,
                total_bytes: 0,
                total_requests: 0,
            }),
        }
    }

    /// An unthrottled instance (no bandwidth cap, no latency): useful for
    /// modelling an infinitely fast local medium in tests.
    pub fn unlimited() -> Self {
        Self::new(f64::INFINITY, Duration::ZERO)
    }

    /// Configured bandwidth in bytes/sec.
    pub fn bytes_per_sec(&self) -> f64 {
        self.bytes_per_sec
    }

    /// Configured per-request latency.
    pub fn latency(&self) -> Duration {
        self.latency
    }

    /// Block the calling thread for as long as transferring `bytes` through
    /// this bottleneck takes. Returns the time actually slept.
    pub fn acquire(&self, bytes: u64) -> Duration {
        let now = Instant::now();
        let xfer = if self.bytes_per_sec.is_finite() {
            Duration::from_secs_f64(bytes as f64 / self.bytes_per_sec)
        } else {
            Duration::ZERO
        };
        let wake = {
            let mut st = self.state.lock();
            st.total_bytes += bytes;
            st.total_requests += 1;
            // Reserve our slice of the wire *after* whoever is already queued.
            let start = match st.next_free {
                Some(nf) if nf > now => nf,
                _ => now,
            };
            let end = start + xfer;
            st.next_free = Some(end);
            end + self.latency
        };
        let sleep_for = wake.saturating_duration_since(now);
        if !sleep_for.is_zero() {
            std::thread::sleep(sleep_for);
        }
        sleep_for
    }

    /// Like [`acquire`](Self::acquire), but wakes early (in ≤5 ms slices)
    /// when `abort` is raised — e.g. a sibling retrieval connection failed
    /// permanently and the transfer's result will be thrown away.
    ///
    /// On abort, the un-transferred remainder is *refunded*: the bytes that
    /// never moved are deducted from the byte counter, and — when this
    /// reservation is still the tail of the queue — `next_free` is pulled
    /// back so later callers don't queue behind wire time nobody is using.
    /// (A mid-queue abort cannot un-reserve its slice without rewriting
    /// reservations already promised to callers behind it; the refund is
    /// then accounting-only, which is the conservative direction.)
    ///
    /// Returns `Some(slept)` on completion, `None` if aborted early.
    pub fn acquire_abortable(&self, bytes: u64, abort: &AtomicBool) -> Option<Duration> {
        let now = Instant::now();
        let xfer = if self.bytes_per_sec.is_finite() {
            Duration::from_secs_f64(bytes as f64 / self.bytes_per_sec)
        } else {
            Duration::ZERO
        };
        let (start, end) = {
            let mut st = self.state.lock();
            st.total_bytes += bytes;
            st.total_requests += 1;
            let start = match st.next_free {
                Some(nf) if nf > now => nf,
                _ => now,
            };
            let end = start + xfer;
            st.next_free = Some(end);
            (start, end)
        };
        let wake = end + self.latency;
        loop {
            if abort.load(Ordering::Relaxed) {
                let now = Instant::now();
                let mut st = self.state.lock();
                // How much of our slice lies in the future — nothing of it
                // will be transferred now.
                let unused = end.saturating_duration_since(now.max(start));
                if !xfer.is_zero() {
                    let refund = (bytes as f64 * unused.as_secs_f64() / xfer.as_secs_f64()) as u64;
                    st.total_bytes -= refund.min(bytes);
                }
                if st.next_free == Some(end) {
                    st.next_free = Some(end - unused);
                }
                return None;
            }
            let left = wake.saturating_duration_since(Instant::now());
            if left.is_zero() {
                return Some(wake.saturating_duration_since(now));
            }
            std::thread::sleep(left.min(ABORT_POLL));
        }
    }

    /// Total bytes acquired through this throttle so far.
    pub fn total_bytes(&self) -> u64 {
        self.state.lock().total_bytes
    }

    /// Total number of acquisitions.
    pub fn total_requests(&self) -> u64 {
        self.state.lock().total_requests
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn unlimited_does_not_sleep() {
        let t = Throttle::unlimited();
        let start = Instant::now();
        t.acquire(10_000_000);
        assert!(start.elapsed() < Duration::from_millis(50));
        assert_eq!(t.total_bytes(), 10_000_000);
    }

    #[test]
    fn bandwidth_enforced_roughly() {
        // 1 MB/s, 100 KB transfer => ~100 ms.
        let t = Throttle::new(1_000_000.0, Duration::ZERO);
        let start = Instant::now();
        t.acquire(100_000);
        let el = start.elapsed();
        assert!(
            el >= Duration::from_millis(90),
            "too fast: {el:?} (throttle not enforcing)"
        );
        assert!(el < Duration::from_millis(400), "too slow: {el:?}");
    }

    #[test]
    fn latency_applied_per_request() {
        let t = Throttle::new(f64::INFINITY, Duration::from_millis(20));
        let start = Instant::now();
        t.acquire(1);
        assert!(start.elapsed() >= Duration::from_millis(18));
    }

    #[test]
    fn abortable_acquire_completes_when_not_aborted() {
        let t = Throttle::new(f64::INFINITY, Duration::from_millis(20));
        let abort = AtomicBool::new(false);
        let slept = t.acquire_abortable(1000, &abort).expect("not aborted");
        assert!(slept >= Duration::from_millis(18));
        assert_eq!(t.total_bytes(), 1000);
    }

    #[test]
    fn aborted_acquire_returns_early_and_refunds_the_wire() {
        // 100 KB/s, 100 KB transfer => a full second reserved. Abort ~50 ms
        // in: the caller must wake promptly, the unused reservation must be
        // released so the next caller isn't queued behind a ghost transfer,
        // and the bytes that never moved must not be counted as served.
        let t = Arc::new(Throttle::new(100_000.0, Duration::ZERO));
        let abort = Arc::new(AtomicBool::new(false));
        let start = Instant::now();
        let handle = {
            let (t, abort) = (Arc::clone(&t), Arc::clone(&abort));
            std::thread::spawn(move || t.acquire_abortable(100_000, &abort))
        };
        std::thread::sleep(Duration::from_millis(50));
        abort.store(true, Ordering::Relaxed);
        assert_eq!(handle.join().unwrap(), None, "must report the abort");
        assert!(
            start.elapsed() < Duration::from_millis(500),
            "abort must not wait out the full transfer: {:?}",
            start.elapsed()
        );
        assert!(
            t.total_bytes() < 50_000,
            "un-transferred bytes must be refunded, counted {}",
            t.total_bytes()
        );
        // The wire is free again: a tiny transfer completes immediately
        // instead of queueing behind the aborted second.
        let t1 = Instant::now();
        t.acquire(100);
        assert!(
            t1.elapsed() < Duration::from_millis(300),
            "reservation not released: next caller waited {:?}",
            t1.elapsed()
        );
    }

    #[test]
    fn mid_queue_abort_refunds_bytes_without_rewriting_later_reservations() {
        // A queued behind nothing, B queued behind A. A aborts after B has
        // reserved: A's slice cannot be un-promised (B's start is fixed) but
        // A's bytes still come off the counter.
        let t = Arc::new(Throttle::new(1_000_000.0, Duration::ZERO));
        let abort_a = Arc::new(AtomicBool::new(false));
        let a = {
            let (t, abort_a) = (Arc::clone(&t), Arc::clone(&abort_a));
            std::thread::spawn(move || t.acquire_abortable(300_000, &abort_a))
        };
        std::thread::sleep(Duration::from_millis(30));
        let b = {
            let t = Arc::clone(&t);
            std::thread::spawn(move || t.acquire(50_000))
        };
        std::thread::sleep(Duration::from_millis(30));
        abort_a.store(true, Ordering::Relaxed);
        assert_eq!(a.join().unwrap(), None);
        b.join().unwrap();
        assert!(
            t.total_bytes() < 200_000,
            "A's unused bytes refunded even mid-queue, counted {}",
            t.total_bytes()
        );
    }

    #[test]
    fn concurrent_callers_share_bandwidth() {
        // 4 threads, each moving 50 KB through a 1 MB/s pipe: serialized
        // total is 200 KB => >= ~200ms overall.
        let t = Arc::new(Throttle::new(1_000_000.0, Duration::ZERO));
        let start = Instant::now();
        let mut handles = vec![];
        for _ in 0..4 {
            let t = Arc::clone(&t);
            handles.push(std::thread::spawn(move || {
                t.acquire(50_000);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let el = start.elapsed();
        assert!(
            el >= Duration::from_millis(170),
            "shared queueing missing: {el:?}"
        );
        assert_eq!(t.total_bytes(), 200_000);
        assert_eq!(t.total_requests(), 4);
    }
}
