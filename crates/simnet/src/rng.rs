//! Deterministic randomness helpers.
//!
//! Everything stochastic in the simulator — EC2 performance jitter,
//! straggler injection, workload synthesis, fault schedules — draws from a
//! [`DetRng`] seeded explicitly, so a run is a pure function of
//! `(config, seed)`. The generator is a self-contained xoshiro256++
//! (public-domain algorithm by Blackman & Vigna) seeded through SplitMix64,
//! keeping the workspace free of external RNG dependencies.

/// A seeded RNG with the distribution helpers the simulator needs.
#[derive(Debug, Clone)]
pub struct DetRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl DetRng {
    pub fn new(seed: u64) -> Self {
        // Expand the seed into the 256-bit state; SplitMix64 guarantees the
        // state is never all-zero.
        let mut sm = seed;
        DetRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// The next raw 64-bit draw (xoshiro256++).
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Derive an independent child stream; `salt` distinguishes siblings.
    /// Used to give every simulated slave its own stream so adding a slave
    /// does not perturb the draws of the others.
    pub fn fork(&self, salt: u64) -> DetRng {
        // SplitMix64-style mixing of the parent's next draw with the salt.
        // Peeking via a clone leaves the parent's own stream untouched.
        let mut z = self
            .clone()
            .next_u64()
            .wrapping_add(salt.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        DetRng::new(z ^ (z >> 31))
    }

    /// Uniform in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        // 53 random mantissa bits, the standard float-from-bits recipe.
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform integer in `[0, n)`. Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index(0)");
        // Lemire multiply-shift; the modulo bias is far below anything the
        // simulator's statistics could resolve.
        ((self.next_u64() as u128 * n as u128) >> 64) as usize
    }

    /// Standard normal via Box-Muller.
    pub fn std_normal(&mut self) -> f64 {
        let u1: f64 = self.uniform().max(f64::MIN_POSITIVE);
        let u2: f64 = self.uniform();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// A multiplicative jitter factor with mean ~1 and coefficient of
    /// variation `cv`, drawn from a lognormal. `cv = 0` returns exactly 1.
    /// This is the standard model for virtualized-instance performance
    /// variability (EC2 "noisy neighbours").
    pub fn jitter(&mut self, cv: f64) -> f64 {
        if cv <= 0.0 {
            return 1.0;
        }
        let sigma2 = (1.0 + cv * cv).ln();
        let mu = -sigma2 / 2.0; // so that E[exp(N(mu, sigma^2))] = 1
        (mu + sigma2.sqrt() * self.std_normal()).exp()
    }

    /// Bernoulli draw.
    pub fn chance(&mut self, p: f64) -> bool {
        self.uniform() < p
    }

    /// The next raw 64-bit draw, for callers needing other distributions.
    pub fn raw_u64(&mut self) -> u64 {
        self.next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = DetRng::new(42);
        let mut b = DetRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.uniform().to_bits(), b.uniform().to_bits());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = DetRng::new(1);
        let mut b = DetRng::new(2);
        let same = (0..32).filter(|_| a.uniform() == b.uniform()).count();
        assert!(same < 4);
    }

    #[test]
    fn fork_streams_are_independent_and_stable() {
        let parent = DetRng::new(7);
        let mut c1 = parent.fork(1);
        let mut c1b = parent.fork(1);
        let mut c2 = parent.fork(2);
        assert_eq!(c1.uniform().to_bits(), c1b.uniform().to_bits());
        assert_ne!(c1.uniform().to_bits(), c2.uniform().to_bits());
    }

    #[test]
    fn jitter_mean_is_about_one() {
        let mut r = DetRng::new(3);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| r.jitter(0.2)).sum::<f64>() / n as f64;
        assert!((mean - 1.0).abs() < 0.02, "jitter mean {mean}");
        assert_eq!(r.jitter(0.0), 1.0);
    }

    #[test]
    fn jitter_is_positive() {
        let mut r = DetRng::new(11);
        for _ in 0..10_000 {
            assert!(r.jitter(0.5) > 0.0);
        }
    }

    #[test]
    fn index_in_bounds() {
        let mut r = DetRng::new(5);
        for _ in 0..1000 {
            assert!(r.index(7) < 7);
        }
    }

    #[test]
    fn uniform_is_well_spread() {
        let mut r = DetRng::new(9);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| r.uniform()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "uniform mean {mean}");
    }
}
