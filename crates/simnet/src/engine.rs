//! The discrete-event simulation engine.
//!
//! The engine is generic over a [`World`]: the user's simulation state plus
//! an event type. The engine owns the virtual clock and the event queue; the
//! world's `handle` callback receives a [`Ctx`] through which it can read the
//! clock and schedule follow-up events. This inversion keeps all mutable
//! simulation state in one place (the world) so handlers can freely mutate it
//! without fighting the borrow checker, while the engine guarantees the
//! fundamental DES invariants: the clock never moves backwards, and
//! simultaneous events fire in scheduling order.

use crate::event::EventQueue;
use crate::time::{SimDur, SimTime};

/// A simulation model: state plus an event alphabet.
pub trait World: Sized {
    /// The event alphabet of this model.
    type Event;

    /// React to `event` firing at `ctx.now()`. Follow-up events are scheduled
    /// through `ctx`.
    fn handle(&mut self, ctx: &mut Ctx<'_, Self::Event>, event: Self::Event);
}

/// Handler-side view of the engine: the current instant and the ability to
/// schedule more events.
pub struct Ctx<'a, E> {
    now: SimTime,
    queue: &'a mut EventQueue<E>,
}

impl<'a, E> Ctx<'a, E> {
    /// The current virtual instant.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule `event` to fire `after` from now.
    pub fn schedule_after(&mut self, after: SimDur, event: E) {
        self.queue.push(self.now + after, event);
    }

    /// Schedule `event` at the absolute instant `at`. Panics if `at` is in
    /// the past: an event in the past would silently corrupt causality.
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "cannot schedule into the past: at={at} now={}",
            self.now
        );
        self.queue.push(at, event);
    }

    /// Schedule `event` to fire immediately after the current handler
    /// returns (same timestamp, later sequence number).
    pub fn schedule_now(&mut self, event: E) {
        self.queue.push(self.now, event);
    }
}

/// The simulation driver.
///
/// ```
/// use cb_simnet::engine::{Ctx, Engine, World};
/// use cb_simnet::time::{SimDur, SimTime};
///
/// struct Pinger { pongs: u32 }
/// impl World for Pinger {
///     type Event = u32;
///     fn handle(&mut self, ctx: &mut Ctx<'_, u32>, n: u32) {
///         self.pongs += 1;
///         if n > 0 {
///             ctx.schedule_after(SimDur::from_secs(1), n - 1);
///         }
///     }
/// }
///
/// let mut eng = Engine::new(Pinger { pongs: 0 });
/// eng.schedule(SimTime::ZERO, 3);
/// eng.run();
/// assert_eq!(eng.world().pongs, 4);
/// assert_eq!(eng.now(), SimTime::from_secs(3));
/// ```
pub struct Engine<W: World> {
    world: W,
    queue: EventQueue<W::Event>,
    now: SimTime,
    steps: u64,
}

impl<W: World> Engine<W> {
    pub fn new(world: W) -> Self {
        Engine {
            world,
            queue: EventQueue::new(),
            now: SimTime::ZERO,
            steps: 0,
        }
    }

    /// Schedule an initial event before the run starts.
    pub fn schedule(&mut self, at: SimTime, event: W::Event) {
        assert!(at >= self.now, "cannot schedule into the past");
        self.queue.push(at, event);
    }

    /// The current virtual instant.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events processed so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Immutable access to the model.
    pub fn world(&self) -> &W {
        &self.world
    }

    /// Mutable access to the model (for setup between phases).
    pub fn world_mut(&mut self) -> &mut W {
        &mut self.world
    }

    /// Consume the engine, returning the final world state.
    pub fn into_world(self) -> W {
        self.world
    }

    /// Process a single event. Returns `false` when the queue is empty.
    pub fn step(&mut self) -> bool {
        let Some((t, ev)) = self.queue.pop() else {
            return false;
        };
        debug_assert!(t >= self.now, "event queue yielded a past event");
        self.now = t;
        self.steps += 1;
        let mut ctx = Ctx {
            now: self.now,
            queue: &mut self.queue,
        };
        self.world.handle(&mut ctx, ev);
        true
    }

    /// Run until the event queue drains. Returns the number of events
    /// processed by this call.
    pub fn run(&mut self) -> u64 {
        let before = self.steps;
        while self.step() {}
        self.steps - before
    }

    /// Run until the queue drains or the clock passes `deadline`, whichever
    /// comes first. Events scheduled exactly at `deadline` still fire.
    pub fn run_until(&mut self, deadline: SimTime) -> u64 {
        let before = self.steps;
        while let Some(t) = self.queue.peek_time() {
            if t > deadline {
                break;
            }
            self.step();
        }
        self.steps - before
    }

    /// Run with a hard event-count budget; returns `true` if the queue
    /// drained within the budget. Useful as a livelock guard in tests.
    pub fn run_bounded(&mut self, max_events: u64) -> bool {
        for _ in 0..max_events {
            if !self.step() {
                return true;
            }
        }
        self.queue.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A world that counts down: each `Tick(n)` schedules `Tick(n-1)` one
    /// second later until zero.
    struct Countdown {
        fired: Vec<(SimTime, u32)>,
    }

    enum Ev {
        Tick(u32),
    }

    impl World for Countdown {
        type Event = Ev;
        fn handle(&mut self, ctx: &mut Ctx<'_, Ev>, ev: Ev) {
            let Ev::Tick(n) = ev;
            self.fired.push((ctx.now(), n));
            if n > 0 {
                ctx.schedule_after(SimDur::from_secs(1), Ev::Tick(n - 1));
            }
        }
    }

    #[test]
    fn chain_of_events_advances_clock() {
        let mut eng = Engine::new(Countdown { fired: vec![] });
        eng.schedule(SimTime::ZERO, Ev::Tick(3));
        let n = eng.run();
        assert_eq!(n, 4);
        assert_eq!(eng.now(), SimTime::from_secs(3));
        let w = eng.into_world();
        assert_eq!(
            w.fired,
            vec![
                (SimTime::from_secs(0), 3),
                (SimTime::from_secs(1), 2),
                (SimTime::from_secs(2), 1),
                (SimTime::from_secs(3), 0),
            ]
        );
    }

    #[test]
    fn run_until_respects_deadline() {
        let mut eng = Engine::new(Countdown { fired: vec![] });
        eng.schedule(SimTime::ZERO, Ev::Tick(100));
        eng.run_until(SimTime::from_secs(5));
        // Events at t=0..=5 fired (six of them); clock parked at 5.
        assert_eq!(eng.world().fired.len(), 6);
        assert_eq!(eng.now(), SimTime::from_secs(5));
        // Resuming picks up where it stopped.
        eng.run();
        assert_eq!(eng.world().fired.len(), 101);
    }

    #[test]
    fn run_bounded_detects_drain() {
        let mut eng = Engine::new(Countdown { fired: vec![] });
        eng.schedule(SimTime::ZERO, Ev::Tick(10));
        assert!(!eng.run_bounded(5), "budget too small must report false");
        assert!(eng.run_bounded(1000));
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_past_event_panics() {
        struct Bad;
        enum E2 {
            Fire,
        }
        impl World for Bad {
            type Event = E2;
            fn handle(&mut self, ctx: &mut Ctx<'_, E2>, _ev: E2) {
                ctx.schedule_at(SimTime::ZERO, E2::Fire);
            }
        }
        let mut eng = Engine::new(Bad);
        eng.schedule(SimTime::from_secs(1), E2::Fire);
        eng.run();
    }

    #[test]
    fn schedule_now_runs_at_same_instant_after_current() {
        struct W2 {
            order: Vec<u8>,
        }
        enum E3 {
            A,
            B,
        }
        impl World for W2 {
            type Event = E3;
            fn handle(&mut self, ctx: &mut Ctx<'_, E3>, ev: E3) {
                match ev {
                    E3::A => {
                        self.order.push(b'a');
                        ctx.schedule_now(E3::B);
                    }
                    E3::B => self.order.push(b'b'),
                }
            }
        }
        let mut eng = Engine::new(W2 { order: vec![] });
        eng.schedule(SimTime::from_secs(2), E3::A);
        eng.run();
        assert_eq!(eng.now(), SimTime::from_secs(2));
        assert_eq!(eng.world().order, vec![b'a', b'b']);
    }
}
