//! Virtual time primitives for the discrete-event substrate.
//!
//! The simulator measures time in integer **nanoseconds** wrapped in the
//! [`SimTime`] (absolute instant) and [`SimDur`] (duration) newtypes. Using a
//! fixed-point integer representation keeps the event queue totally ordered
//! and the simulation bit-for-bit deterministic across platforms, which the
//! floating-point `f64` seconds used by many ad-hoc simulators cannot
//! guarantee.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute instant of virtual time, in nanoseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of virtual time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDur(pub u64);

pub const NANOS_PER_SEC: u64 = 1_000_000_000;
pub const NANOS_PER_MILLI: u64 = 1_000_000;
pub const NANOS_PER_MICRO: u64 = 1_000;

impl SimTime {
    /// The origin of virtual time.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as an "infinitely far" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * NANOS_PER_SEC)
    }

    /// Construct from fractional seconds (rounds to the nearest nanosecond).
    pub fn from_secs_f64(s: f64) -> Self {
        debug_assert!(s >= 0.0, "negative absolute time");
        SimTime((s * NANOS_PER_SEC as f64).round() as u64)
    }

    /// This instant expressed as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// Nanoseconds since the origin.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Duration elapsed since `earlier`, saturating at zero if `earlier` is
    /// in the future.
    pub fn saturating_since(self, earlier: SimTime) -> SimDur {
        SimDur(self.0.saturating_sub(earlier.0))
    }

    /// Checked difference: `None` if `earlier > self`.
    pub fn checked_since(self, earlier: SimTime) -> Option<SimDur> {
        self.0.checked_sub(earlier.0).map(SimDur)
    }
}

impl SimDur {
    pub const ZERO: SimDur = SimDur(0);
    pub const MAX: SimDur = SimDur(u64::MAX);

    pub const fn from_secs(s: u64) -> Self {
        SimDur(s * NANOS_PER_SEC)
    }

    pub const fn from_millis(ms: u64) -> Self {
        SimDur(ms * NANOS_PER_MILLI)
    }

    pub const fn from_micros(us: u64) -> Self {
        SimDur(us * NANOS_PER_MICRO)
    }

    pub const fn from_nanos(ns: u64) -> Self {
        SimDur(ns)
    }

    /// Construct from fractional seconds (rounds to the nearest nanosecond).
    /// Negative inputs clamp to zero, which is the only sane interpretation
    /// for a duration produced by a cost model.
    pub fn from_secs_f64(s: f64) -> Self {
        if s <= 0.0 || !s.is_finite() {
            return SimDur(0);
        }
        SimDur((s * NANOS_PER_SEC as f64).round() as u64)
    }

    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating addition.
    pub fn saturating_add(self, other: SimDur) -> SimDur {
        SimDur(self.0.saturating_add(other.0))
    }

    /// Duration needed to move `bytes` through a channel of `bytes_per_sec`
    /// capacity. Zero-capacity channels yield `SimDur::MAX` ("never").
    pub fn for_transfer(bytes: u64, bytes_per_sec: f64) -> SimDur {
        if bytes == 0 {
            return SimDur::ZERO;
        }
        if bytes_per_sec <= 0.0 {
            return SimDur::MAX;
        }
        SimDur::from_secs_f64(bytes as f64 / bytes_per_sec)
    }
}

impl Add<SimDur> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDur) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDur> for SimTime {
    fn add_assign(&mut self, rhs: SimDur) {
        *self = *self + rhs;
    }
}

impl Sub<SimDur> for SimTime {
    type Output = SimTime;
    /// Saturating: stepping back past the origin clamps to zero.
    fn sub(self, rhs: SimDur) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDur;
    fn sub(self, rhs: SimTime) -> SimDur {
        assert!(self >= rhs, "time went backwards: {self} - {rhs}");
        SimDur(self.0 - rhs.0)
    }
}

impl Add for SimDur {
    type Output = SimDur;
    fn add(self, rhs: SimDur) -> SimDur {
        SimDur(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDur {
    fn add_assign(&mut self, rhs: SimDur) {
        *self = *self + rhs;
    }
}

impl Sub for SimDur {
    type Output = SimDur;
    fn sub(self, rhs: SimDur) -> SimDur {
        SimDur(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDur {
    fn sub_assign(&mut self, rhs: SimDur) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDur {
    type Output = SimDur;
    fn mul(self, rhs: u64) -> SimDur {
        SimDur(self.0.saturating_mul(rhs))
    }
}

impl Mul<f64> for SimDur {
    type Output = SimDur;
    fn mul(self, rhs: f64) -> SimDur {
        SimDur::from_secs_f64(self.as_secs_f64() * rhs)
    }
}

impl Div<u64> for SimDur {
    type Output = SimDur;
    fn div(self, rhs: u64) -> SimDur {
        SimDur(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= NANOS_PER_SEC {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= NANOS_PER_MILLI {
            write!(f, "{:.3}ms", self.0 as f64 / NANOS_PER_MILLI as f64)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(SimTime::from_secs(3).as_nanos(), 3 * NANOS_PER_SEC);
        assert_eq!(SimDur::from_millis(1500), SimDur::from_secs_f64(1.5));
        assert_eq!(SimDur::from_micros(7).as_nanos(), 7_000);
        let t = SimTime::from_secs_f64(2.25);
        assert!((t.as_secs_f64() - 2.25).abs() < 1e-12);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(10);
        let d = SimDur::from_secs(4);
        assert_eq!(t + d, SimTime::from_secs(14));
        assert_eq!((t + d) - t, d);
        assert_eq!(d * 3, SimDur::from_secs(12));
        assert_eq!(d / 2, SimDur::from_secs(2));
        assert_eq!(d - SimDur::from_secs(10), SimDur::ZERO, "saturating sub");
    }

    #[test]
    fn time_minus_duration() {
        let t = SimTime::from_secs(5);
        assert_eq!(t - SimDur::from_secs(2), SimTime::from_secs(3));
        assert_eq!(t - SimDur::from_secs(9), SimTime::ZERO, "saturates");
    }

    #[test]
    fn saturating_since() {
        let a = SimTime::from_secs(5);
        let b = SimTime::from_secs(8);
        assert_eq!(b.saturating_since(a), SimDur::from_secs(3));
        assert_eq!(a.saturating_since(b), SimDur::ZERO);
        assert_eq!(a.checked_since(b), None);
        assert_eq!(b.checked_since(a), Some(SimDur::from_secs(3)));
    }

    #[test]
    #[should_panic(expected = "time went backwards")]
    fn sub_panics_backwards() {
        let _ = SimTime::from_secs(1) - SimTime::from_secs(2);
    }

    #[test]
    fn transfer_duration() {
        // 1000 bytes over 1000 B/s takes one second.
        assert_eq!(SimDur::for_transfer(1000, 1000.0), SimDur::from_secs(1));
        assert_eq!(SimDur::for_transfer(0, 1000.0), SimDur::ZERO);
        assert_eq!(SimDur::for_transfer(10, 0.0), SimDur::MAX);
    }

    #[test]
    fn negative_and_nan_durations_clamp() {
        assert_eq!(SimDur::from_secs_f64(-1.0), SimDur::ZERO);
        assert_eq!(SimDur::from_secs_f64(f64::NAN), SimDur::ZERO);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", SimDur::from_secs(2)), "2.000s");
        assert_eq!(format!("{}", SimDur::from_millis(2)), "2.000ms");
        assert_eq!(format!("{}", SimDur::from_nanos(42)), "42ns");
    }
}
