//! Distributed-runtime integration: TCP and loopback runs must reproduce
//! the in-process runtime's result *byte for byte*; silent workers must be
//! detected by heartbeat and their work recovered; bad handshakes must be
//! rejected with a reason.

use cb_apps::gen::WordsSpec;
use cb_apps::scenario::{build_hybrid, HybridEnv, HybridOpts};
use cb_apps::wordcount::WordCountApp;
use cb_net::wire::{Disposition, Message, WireClusterReport, PROTOCOL_VERSION};
use cb_net::{
    connect_with_backoff, fingerprint, handshake_one, loopback_pair, run_head, run_worker,
    run_worker_on_links, serve_head, split_tcp, NetConfig, RobjCodec, WorkerSpec,
};
use cloudburst_core::combine::KeyedSum;
use cloudburst_core::config::RuntimeConfig;
use cloudburst_core::runtime::run;
use proptest::prelude::*;
use std::net::TcpListener;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

const APP: &str = "wordcount";

fn env_for(spec: &WordsSpec, frac_local: f64, local_cores: usize, cloud_cores: usize) -> HybridEnv {
    build_hybrid(
        spec.layout(),
        spec.fill(),
        HybridOpts {
            frac_local,
            local_cores,
            cloud_cores,
            throttle: None,
        },
    )
    .expect("build env")
}

fn single_process_bytes(env: &HybridEnv, cfg: &RuntimeConfig) -> Vec<u8> {
    run(
        &WordCountApp,
        &(),
        &env.layout,
        &env.placement,
        &env.deployment,
        cfg,
    )
    .expect("single-process run")
    .result
    .encode_robj()
}

/// Three OS-thread "processes" over real localhost TCP produce the same
/// final reduction-object bytes as the in-process loopback runtime.
#[test]
fn tcp_three_node_matches_single_process() {
    let spec = WordsSpec {
        vocabulary: 300,
        n_files: 4,
        words_per_file: 4_000,
        words_per_chunk: 500,
        seed: 7,
    };
    let env = env_for(&spec, 0.5, 2, 2);
    let cfg = RuntimeConfig::default();
    let expected = single_process_bytes(&env, &cfg);

    let net = NetConfig::default();
    let fp = fingerprint(&env.layout, &env.placement, APP);
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();

    let out = std::thread::scope(|scope| {
        for (ci, cluster) in env.deployment.clusters.iter().enumerate() {
            let (net, cfg) = (&net, &cfg);
            let (layout, placement, fabric) = (&env.layout, &env.placement, &env.deployment.fabric);
            scope.spawn(move || {
                let wspec = WorkerSpec {
                    cluster: ci as u32,
                    name: cluster.name.clone(),
                    app_tag: APP.into(),
                    fingerprint: fp,
                };
                run_worker(
                    &WordCountApp,
                    &(),
                    layout,
                    placement,
                    fabric,
                    cluster,
                    &wspec,
                    cfg,
                    net,
                    addr,
                )
                .expect("worker run");
            });
        }
        serve_head::<KeyedSum>(
            &listener,
            2,
            &env.layout,
            &env.placement,
            &cfg,
            &net,
            fp,
            APP,
        )
        .expect("head run")
    });

    assert_eq!(out.result.encode_robj(), expected, "robj bytes must match");
    assert_eq!(out.report.net.peers_joined, 2);
    assert_eq!(out.report.net.peers_lost, 0);
    assert!(out.report.net.frames_recv > 0 && out.report.net.frames_sent > 0);
    assert_eq!(out.report.clusters.len(), 2);
    let jobs: u64 = out.report.clusters.iter().map(|c| c.jobs_processed).sum();
    assert_eq!(
        jobs as usize,
        env.layout.n_jobs(),
        "every job ran exactly once"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The in-process runtime is the loopback special case: running the
    /// full wire protocol over in-process channel links (same codec, no
    /// sockets) reproduces `runtime::run` byte for byte across random
    /// workload shapes, splits, and core counts.
    fn loopback_wire_matches_in_process_runtime(
        vocab in 50u64..300,
        n_files in 2usize..5,
        chunks_per_file in 2u64..5,
        frac_sel in 0u8..3,
        local_cores in 1usize..3,
        cloud_cores in 1usize..3,
        seed in any::<u64>(),
    ) {
        let words_per_chunk = 400usize;
        let spec = WordsSpec {
            vocabulary: vocab,
            n_files,
            words_per_file: words_per_chunk * chunks_per_file as usize,
            words_per_chunk,
            seed,
        };
        let frac_local = [0.0, 0.5, 1.0][frac_sel as usize];
        let env = env_for(&spec, frac_local, local_cores, cloud_cores);
        let cfg = RuntimeConfig::default();
        let expected = single_process_bytes(&env, &cfg);

        let net = NetConfig::default();
        let fp = fingerprint(&env.layout, &env.placement, APP);
        let out = std::thread::scope(|scope| {
            let mut peers = Vec::new();
            for (ci, cluster) in env.deployment.clusters.iter().enumerate() {
                let (head_end, worker_end) = loopback_pair();
                let (net, cfg) = (&net, &cfg);
                let (layout, placement, fabric) =
                    (&env.layout, &env.placement, &env.deployment.fabric);
                scope.spawn(move || {
                    let wspec = WorkerSpec {
                        cluster: ci as u32,
                        name: cluster.name.clone(),
                        app_tag: APP.into(),
                        fingerprint: fp,
                    };
                    run_worker_on_links(
                        &WordCountApp,
                        &(),
                        layout,
                        placement,
                        fabric,
                        cluster,
                        &wspec,
                        cfg,
                        net,
                        worker_end.tx,
                        worker_end.rx,
                    )
                    .expect("worker over loopback");
                });
                let peer = handshake_one(head_end.tx, head_end.rx, &peers, net, fp, APP)
                    .expect("loopback handshake");
                peers.push(peer);
            }
            run_head::<KeyedSum>(peers, &env.layout, &env.placement, &cfg, &net)
                .expect("head over loopback")
        });
        prop_assert_eq!(out.result.encode_robj(), expected);
    }
}

/// A worker that goes silent (socket open, no heartbeats, never ships) is
/// declared lost; the completions it reported are forfeited and re-run by
/// the surviving worker, and the final result is still exactly right.
#[test]
fn silent_worker_is_lost_and_its_work_recovered() {
    let spec = WordsSpec {
        vocabulary: 200,
        n_files: 4,
        words_per_file: 6_000,
        words_per_chunk: 1_000,
        seed: 13,
    };
    let env = env_for(&spec, 0.5, 2, 1);
    // Stretch real processing (~50 ms/job, 24 jobs on 2 cores) so the head
    // declares the ghost lost (grace = 40 ms × 2) while the survivor is
    // still busy and can absorb the forfeited jobs.
    let cfg = RuntimeConfig {
        synthetic_compute_ns_per_unit: 50_000,
        ..RuntimeConfig::default()
    };
    let expected = single_process_bytes(&env, &RuntimeConfig::default());

    let net = NetConfig {
        heartbeat: Duration::from_millis(40),
        heartbeat_misses: 2,
        ..NetConfig::default()
    };
    let fp = fingerprint(&env.layout, &env.placement, APP);
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let done = AtomicBool::new(false);

    let out = std::thread::scope(|scope| {
        // The survivor: a real worker on the local cluster.
        {
            let (net, cfg) = (&net, &cfg);
            let (layout, placement, fabric) = (&env.layout, &env.placement, &env.deployment.fabric);
            let cluster = &env.deployment.clusters[0];
            scope.spawn(move || {
                let wspec = WorkerSpec {
                    cluster: 0,
                    name: cluster.name.clone(),
                    app_tag: APP.into(),
                    fingerprint: fp,
                };
                run_worker(
                    &WordCountApp,
                    &(),
                    layout,
                    placement,
                    fabric,
                    cluster,
                    &wspec,
                    cfg,
                    net,
                    addr,
                )
                .expect("surviving worker");
            });
        }
        // The ghost: handshakes as cluster 1, grabs a batch, *claims* to
        // complete it, then goes silent with the socket held open — the
        // worst case, detectable only by heartbeat.
        {
            let net = &net;
            let done = &done;
            scope.spawn(move || {
                let stream = connect_with_backoff(addr, net, 99).unwrap();
                let (mut tx, mut rx) = split_tcp(stream, net).unwrap();
                tx.send(&Message::Hello {
                    version: PROTOCOL_VERSION,
                    cluster: 1,
                    location: 1,
                    cores: 1,
                    name: "ghost".into(),
                    app: APP.into(),
                    fingerprint: fp,
                })
                .unwrap();
                let (welcome, _) = rx.recv(Duration::from_secs(5)).unwrap().expect("welcome");
                assert!(matches!(welcome, Message::Welcome { .. }));
                tx.send(&Message::JobRequest { seq: 1 }).unwrap();
                let (grant, _) = rx.recv(Duration::from_secs(5)).unwrap().expect("grant");
                let Message::JobGrant { jobs, .. } = grant else {
                    panic!("expected JobGrant, got {grant:?}");
                };
                assert!(!jobs.is_empty(), "ghost should get a real batch");
                for chunk in &jobs {
                    tx.send(&Message::Resolve {
                        chunk: *chunk,
                        disposition: Disposition::Completed,
                    })
                    .unwrap();
                }
                // Silence. Hold the socket open until the run is over.
                while !done.load(Ordering::Relaxed) {
                    std::thread::sleep(Duration::from_millis(20));
                }
            });
        }
        let out = serve_head::<KeyedSum>(
            &listener,
            2,
            &env.layout,
            &env.placement,
            &cfg,
            &net,
            fp,
            APP,
        )
        .expect("head survives peer loss");
        done.store(true, Ordering::Relaxed);
        out
    });

    assert_eq!(
        out.result.encode_robj(),
        expected,
        "result exact despite losing a worker that had completed jobs"
    );
    assert_eq!(out.report.net.peers_joined, 2);
    assert_eq!(out.report.net.peers_lost, 1);
    assert!(
        out.report.recovery.jobs_reenqueued > 0,
        "the ghost's forfeited jobs were re-enqueued"
    );
    assert!(
        out.report.clusters[1].name.contains("lost"),
        "lost peer marked in the report"
    );
}

/// Forfeiture is final: a worker that stalls past the grace window, is
/// declared lost, and *then* wakes up and delivers late `Resolve`s and its
/// `RobjShip` must have those frames dropped — banking them would count
/// the forfeited (and re-run) work twice, and resolving leases that were
/// re-enqueued (or re-granted) would corrupt or panic the pool.
#[test]
fn lost_peer_late_frames_are_dropped() {
    let spec = WordsSpec {
        vocabulary: 200,
        n_files: 4,
        words_per_file: 6_000,
        words_per_chunk: 1_000,
        seed: 29,
    };
    let env = env_for(&spec, 0.5, 2, 1);
    // ~100 ms/job × 24 jobs on 2 cores keeps the head busy well past the
    // ghost's wake-up, so its late frames arrive mid-run.
    let cfg = RuntimeConfig {
        synthetic_compute_ns_per_unit: 100_000,
        ..RuntimeConfig::default()
    };
    let expected = single_process_bytes(&env, &RuntimeConfig::default());

    let net = NetConfig {
        heartbeat: Duration::from_millis(40),
        heartbeat_misses: 2,
        ..NetConfig::default()
    };
    let fp = fingerprint(&env.layout, &env.placement, APP);
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let done = AtomicBool::new(false);

    let out = std::thread::scope(|scope| {
        {
            let (net, cfg) = (&net, &cfg);
            let (layout, placement, fabric) = (&env.layout, &env.placement, &env.deployment.fabric);
            let cluster = &env.deployment.clusters[0];
            scope.spawn(move || {
                let wspec = WorkerSpec {
                    cluster: 0,
                    name: cluster.name.clone(),
                    app_tag: APP.into(),
                    fingerprint: fp,
                };
                run_worker(
                    &WordCountApp,
                    &(),
                    layout,
                    placement,
                    fabric,
                    cluster,
                    &wspec,
                    cfg,
                    net,
                    addr,
                )
                .expect("surviving worker");
            });
        }
        // The zombie: handshakes, takes a batch, claims completions, goes
        // silent past the grace window (40 ms × 2), then *wakes up* and
        // replays its resolutions and ships a bogus robj.
        {
            let net = &net;
            let done = &done;
            scope.spawn(move || {
                let stream = connect_with_backoff(addr, net, 31).unwrap();
                let (mut tx, mut rx) = split_tcp(stream, net).unwrap();
                tx.send(&Message::Hello {
                    version: PROTOCOL_VERSION,
                    cluster: 1,
                    location: 1,
                    cores: 1,
                    name: "zombie".into(),
                    app: APP.into(),
                    fingerprint: fp,
                })
                .unwrap();
                let (welcome, _) = rx.recv(Duration::from_secs(5)).unwrap().expect("welcome");
                assert!(matches!(welcome, Message::Welcome { .. }));
                tx.send(&Message::JobRequest { seq: 1 }).unwrap();
                let (grant, _) = rx.recv(Duration::from_secs(5)).unwrap().expect("grant");
                let Message::JobGrant { jobs, .. } = grant else {
                    panic!("expected JobGrant, got {grant:?}");
                };
                assert!(!jobs.is_empty(), "zombie should get a real batch");
                for chunk in &jobs {
                    tx.send(&Message::Resolve {
                        chunk: *chunk,
                        disposition: Disposition::Completed,
                    })
                    .unwrap();
                }
                // Silence well past the grace window: declared lost.
                std::thread::sleep(Duration::from_millis(500));
                // Wake up and replay everything — all of it must be dropped.
                for chunk in &jobs {
                    let _ = tx.send(&Message::Resolve {
                        chunk: *chunk,
                        disposition: Disposition::Completed,
                    });
                }
                let _ = tx.send(&Message::RobjShip {
                    robj: vec![0xDE, 0xAD, 0xBE, 0xEF],
                    report: WireClusterReport::default(),
                });
                while !done.load(Ordering::Relaxed) {
                    std::thread::sleep(Duration::from_millis(20));
                }
            });
        }
        let out = serve_head::<KeyedSum>(
            &listener,
            2,
            &env.layout,
            &env.placement,
            &cfg,
            &net,
            fp,
            APP,
        )
        .expect("head survives a lost peer's late frames");
        done.store(true, Ordering::Relaxed);
        out
    });

    assert_eq!(
        out.result.encode_robj(),
        expected,
        "late frames from the lost peer must not perturb the result"
    );
    assert_eq!(out.report.net.peers_lost, 1);
    assert!(
        out.report.clusters[1].name.contains("lost"),
        "the zombie's late robj must not be banked"
    );
}

/// A missed `JobGrant` poisons the link: the worker stops heartbeating and
/// refuses to ship, so the head declares it lost and forfeits its leases —
/// instead of the worker consuming a stale grant (desynchronizing the
/// pairing) or shipping + saying goodbye with leases still assigned, which
/// would strand them forever and fail the run.
#[test]
fn missed_grant_poisons_link_and_withholds_robj() {
    let spec = WordsSpec {
        vocabulary: 50,
        n_files: 2,
        words_per_file: 800,
        words_per_chunk: 400,
        seed: 11,
    };
    let env = env_for(&spec, 1.0, 1, 1);
    let cfg = RuntimeConfig::default();
    let net = NetConfig {
        io_timeout: Duration::from_millis(200),
        ..NetConfig::default()
    };
    let fp = fingerprint(&env.layout, &env.placement, APP);
    let (head_end, worker_end) = loopback_pair();

    std::thread::scope(|scope| {
        // A head that welcomes the worker and then never answers its job
        // requests — the worst kind of stall, invisible to the socket.
        let deaf_head = scope.spawn(move || {
            let (mut tx, mut rx) = (head_end.tx, head_end.rx);
            let (hello, _) = rx.recv(Duration::from_secs(5)).unwrap().expect("hello");
            assert!(matches!(hello, Message::Hello { .. }));
            tx.send(&Message::Welcome {
                version: PROTOCOL_VERSION,
                heartbeat_ms: 50,
                fingerprint: fp,
            })
            .unwrap();
            let mut saw_request = false;
            loop {
                match rx.recv(Duration::from_secs(5)) {
                    Ok(Some((Message::JobRequest { .. }, _))) => saw_request = true,
                    Ok(Some((Message::Heartbeat { .. }, _))) => {}
                    Ok(Some((Message::RobjShip { .. }, _))) => {
                        panic!("worker shipped over a poisoned link")
                    }
                    Ok(Some((Message::Goodbye, _))) => {
                        panic!("worker said goodbye over a poisoned link")
                    }
                    Ok(Some((other, _))) => panic!("unexpected frame {other:?}"),
                    Ok(None) => panic!("worker neither died nor spoke within 5 s"),
                    // The worker gave up and dropped the link — exactly
                    // what the head's loss path needs to reclaim leases.
                    Err(_) => break,
                }
            }
            assert!(saw_request, "worker should have requested jobs");
        });

        let wspec = WorkerSpec {
            cluster: 0,
            name: "starved".into(),
            app_tag: APP.into(),
            fingerprint: fp,
        };
        let err = run_worker_on_links(
            &WordCountApp,
            &(),
            &env.layout,
            &env.placement,
            &env.deployment.fabric,
            &env.deployment.clusters[0],
            &wspec,
            &cfg,
            &net,
            worker_end.tx,
            worker_end.rx,
        )
        .expect_err("a worker whose grant never arrives must fail, not ship");
        assert!(
            err.to_string().contains("poisoned"),
            "error should name the poisoned link: {err}"
        );
        deaf_head.join().unwrap();
    });
}

/// A dialer that connects but never sends `Hello` (a port-scanner, a hung
/// client) must not stall legitimate workers: Hellos are read on
/// short-lived threads, so the real worker joins immediately while the
/// silent socket times out in the background.
#[test]
fn silent_dialer_does_not_block_real_worker_join() {
    let spec = WordsSpec {
        vocabulary: 50,
        n_files: 2,
        words_per_file: 800,
        words_per_chunk: 400,
        seed: 5,
    };
    let env = env_for(&spec, 1.0, 1, 0);
    let cfg = RuntimeConfig::default();
    let net = NetConfig {
        io_timeout: Duration::from_secs(5),
        accept_timeout: Duration::from_secs(10),
        ..NetConfig::default()
    };
    let fp = fingerprint(&env.layout, &env.placement, APP);
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();

    // Connect (the backlog accepts it before the head does) and say nothing.
    let _silent = std::net::TcpStream::connect(addr).unwrap();

    std::thread::scope(|scope| {
        let net_ref = &net;
        scope.spawn(move || {
            let stream = connect_with_backoff(addr, net_ref, 3).unwrap();
            let (mut tx, mut rx) = split_tcp(stream, net_ref).unwrap();
            tx.send(&Message::Hello {
                version: PROTOCOL_VERSION,
                cluster: 0,
                location: 0,
                cores: 1,
                name: "prompt".into(),
                app: APP.into(),
                fingerprint: fp,
            })
            .unwrap();
            let (reply, _) = rx.recv(Duration::from_secs(5)).unwrap().expect("reply");
            assert!(matches!(reply, Message::Welcome { .. }), "got {reply:?}");
        });

        let t0 = std::time::Instant::now();
        let peers = cb_net::head::accept_workers(&listener, 1, &cfg, &net, fp, APP)
            .expect("real worker admitted");
        assert_eq!(peers.len(), 1);
        assert_eq!(peers[0].spec.name, "prompt");
        assert!(
            t0.elapsed() < Duration::from_secs(3),
            "silent dialer stalled the join for {:?} (io_timeout is 5 s)",
            t0.elapsed()
        );
    });
}

/// Handshake rejection: wrong protocol version and wrong dataset
/// fingerprint both get an explanatory `Reject`, and the head then accepts
/// a well-formed worker on the same slot.
#[test]
fn bad_handshakes_rejected_with_reason() {
    let spec = WordsSpec {
        vocabulary: 50,
        n_files: 2,
        words_per_file: 800,
        words_per_chunk: 400,
        seed: 3,
    };
    let env = env_for(&spec, 1.0, 1, 0);
    let cfg = RuntimeConfig::default();
    let net = NetConfig {
        accept_timeout: Duration::from_secs(10),
        ..NetConfig::default()
    };
    let fp = fingerprint(&env.layout, &env.placement, APP);
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();

    let dial = |hello: Message| -> Message {
        let stream = connect_with_backoff(addr, &net, 1).unwrap();
        let (mut tx, mut rx) = split_tcp(stream, &net).unwrap();
        tx.send(&hello).unwrap();
        rx.recv(Duration::from_secs(5)).unwrap().expect("reply").0
    };
    let hello = |version: u16, fingerprint: u64| Message::Hello {
        version,
        cluster: 0,
        location: 0,
        cores: 1,
        name: "w".into(),
        app: APP.into(),
        fingerprint,
    };

    std::thread::scope(|scope| {
        let (net, cfg) = (&net, &cfg);
        let peers = scope.spawn(move || {
            cb_net::head::accept_workers(&listener, 1, cfg, net, fp, APP).expect("accept")
        });

        match dial(hello(PROTOCOL_VERSION + 1, fp)) {
            Message::Reject { reason } => assert!(
                reason.contains("version"),
                "reason should name the version: {reason}"
            ),
            other => panic!("expected Reject, got {other:?}"),
        }
        match dial(hello(PROTOCOL_VERSION, fp ^ 1)) {
            Message::Reject { reason } => assert!(
                reason.contains("fingerprint"),
                "reason should name the fingerprint: {reason}"
            ),
            other => panic!("expected Reject, got {other:?}"),
        }
        match dial(hello(PROTOCOL_VERSION, fp)) {
            Message::Welcome { heartbeat_ms, .. } => {
                assert_eq!(heartbeat_ms, net.heartbeat.as_millis() as u64)
            }
            other => panic!("expected Welcome, got {other:?}"),
        }
        let peers = peers.join().unwrap();
        assert_eq!(peers.len(), 1);
        assert_eq!(peers[0].spec.name, "w");
    });
}
