//! Wire-codec coverage: round-trip property tests for every message type,
//! rejection of truncated and corrupted frames, and the version-mismatch
//! handshake path.

use cb_net::wire::{
    decode_framed, Disposition, Message, WireClusterReport, WireError, WireSlaveStats,
    MAX_FRAME_BYTES, PROTOCOL_VERSION,
};
use proptest::prelude::*;

fn arb_disposition(tag: u8) -> Disposition {
    match tag % 3 {
        0 => Disposition::Completed,
        1 => Disposition::Failed,
        _ => Disposition::Released,
    }
}

fn arb_report(
    slaves: Vec<(u64, u64, u64, u64)>,
    tail: (u64, u64, u64, u64, u64),
    error: Option<String>,
) -> WireClusterReport {
    WireClusterReport {
        slaves: slaves
            .into_iter()
            .map(|(a, b, c, d)| WireSlaveStats {
                processing_ns: a,
                retrieval_ns: b,
                fetch_stall_ns: c,
                jobs: d,
                stolen_jobs: a ^ b,
                units: b ^ c,
                bytes_local: c ^ d,
                bytes_remote: d ^ a,
            })
            .collect(),
        fetch_failures: tail.0,
        retries: tail.1,
        slaves_retired: tail.2,
        slaves_killed: tail.3,
        wall_ns: tail.4,
        error,
    }
}

/// Frame-level round trip shared by every case below.
fn round_trip(msg: Message) {
    let frame = msg.encode_frame().expect("within frame cap");
    let (back, used) = decode_framed(&frame)
        .expect("decodable")
        .expect("complete frame");
    assert_eq!(back, msg);
    assert_eq!(used, frame.len(), "frame fully consumed");
    // And the payload decoder rejects trailing garbage.
    let mut padded = msg.encode();
    padded.push(0);
    assert_eq!(Message::decode(&padded), Err(WireError::Trailing(1)));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    fn hello_round_trips(
        version in any::<u16>(),
        cluster in any::<u32>(),
        location in any::<u16>(),
        cores in any::<u32>(),
        name in "[a-z0-9-]{0,24}",
        app in "[a-z]{1,12}",
        fingerprint in any::<u64>(),
    ) {
        round_trip(Message::Hello { version, cluster, location, cores, name, app, fingerprint });
    }

    fn welcome_round_trips(
        version in any::<u16>(),
        heartbeat_ms in any::<u64>(),
        fingerprint in any::<u64>(),
    ) {
        round_trip(Message::Welcome { version, heartbeat_ms, fingerprint });
    }

    fn reject_round_trips(reason in "[ -~]{0,64}") {
        round_trip(Message::Reject { reason });
    }

    fn job_request_round_trips(seq in any::<u64>()) {
        round_trip(Message::JobRequest { seq });
    }

    fn job_grant_round_trips(
        seq in any::<u64>(),
        jobs in prop::collection::vec(any::<u32>(), 0..64),
        stolen in any::<bool>(),
        exhausted in any::<bool>(),
    ) {
        round_trip(Message::JobGrant { seq, jobs, stolen, exhausted });
    }

    fn resolve_round_trips(chunk in any::<u32>(), tag in any::<u8>()) {
        round_trip(Message::Resolve { chunk, disposition: arb_disposition(tag) });
    }

    fn heartbeat_round_trips(seq in any::<u64>()) {
        round_trip(Message::Heartbeat { seq });
    }

    fn robj_ship_round_trips(
        robj in prop::collection::vec(any::<u8>(), 0..512),
        slaves in prop::collection::vec((any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()), 0..6),
        tail in (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()),
        has_error in any::<bool>(),
        error_text in "[ -~]{0,48}",
    ) {
        let error = has_error.then_some(error_text);
        round_trip(Message::RobjShip { robj, report: arb_report(slaves, tail, error) });
    }

    fn bare_messages_round_trip(which in any::<bool>()) {
        round_trip(if which { Message::ShipAck } else { Message::Goodbye });
    }

    /// Every proper prefix of any frame decodes as "incomplete", never as a
    /// wrong message and never as a panic.
    fn truncation_never_misparses(
        jobs in prop::collection::vec(any::<u32>(), 0..16),
        seq in any::<u64>(),
    ) {
        for msg in [
            Message::JobGrant { seq, jobs: jobs.clone(), stolen: true, exhausted: false },
            Message::Heartbeat { seq },
        ] {
            let frame = msg.encode_frame().expect("within frame cap");
            for cut in 0..frame.len() {
                prop_assert_eq!(decode_framed(&frame[..cut]).unwrap(), None);
            }
            // Truncating the *payload* while keeping an honest length prefix
            // must error, not misparse.
            if frame.len() > 5 {
                let payload = &frame[4..frame.len() - 1];
                prop_assert_eq!(Message::decode(payload), Err(WireError::Truncated));
            }
        }
    }

    /// Flipping the tag byte to an unassigned value is rejected.
    fn unknown_tags_rejected(tag in 11u8..=255) {
        let mut payload = Message::Goodbye.encode();
        payload[0] = tag;
        prop_assert_eq!(Message::decode(&payload), Err(WireError::BadTag(tag)));
    }
}

/// Send-side mirror of the length cap: a reduction object too large for
/// one frame fails at encode with a precise error instead of being shipped
/// and killing the link at the receiver.
#[test]
fn oversized_robj_rejected_at_encode() {
    let msg = Message::RobjShip {
        robj: vec![0u8; MAX_FRAME_BYTES],
        report: WireClusterReport::default(),
    };
    assert!(matches!(
        msg.encode_frame(),
        Err(WireError::FrameTooLarge(n)) if n > MAX_FRAME_BYTES
    ));
}

#[test]
fn corrupted_length_prefix_is_rejected_not_allocated() {
    let mut frame = Message::Heartbeat { seq: 1 }.encode_frame().unwrap();
    frame[..4].copy_from_slice(&(u32::MAX).to_le_bytes());
    assert_eq!(
        decode_framed(&frame),
        Err(WireError::FrameTooLarge(u32::MAX as usize))
    );
    assert!(MAX_FRAME_BYTES < u32::MAX as usize);
}

#[test]
fn corrupted_string_length_inside_payload_is_truncated_error() {
    let msg = Message::Reject {
        reason: "nope".into(),
    };
    let mut payload = msg.encode();
    // The string length field sits right after the tag; inflate it far past
    // the payload end.
    payload[1..5].copy_from_slice(&1_000_000u32.to_le_bytes());
    assert_eq!(Message::decode(&payload), Err(WireError::Truncated));
}

#[test]
fn non_utf8_string_rejected() {
    let msg = Message::Reject {
        reason: "ab".into(),
    };
    let mut payload = msg.encode();
    payload[5] = 0xFF; // first string byte -> invalid UTF-8
    assert_eq!(Message::decode(&payload), Err(WireError::BadString));
}

#[test]
fn hello_with_wrong_magic_rejected() {
    let mut payload = Message::Hello {
        version: PROTOCOL_VERSION,
        cluster: 0,
        location: 0,
        cores: 1,
        name: "w0".into(),
        app: "wordcount".into(),
        fingerprint: 1,
    }
    .encode();
    payload[2] ^= 0xFF;
    assert_eq!(Message::decode(&payload), Err(WireError::BadMagic));
}

/// Two frames back-to-back in one buffer decode in order — the stream
/// decoder consumes exactly one frame per call.
#[test]
fn consecutive_frames_decode_in_order() {
    let a = Message::Heartbeat { seq: 1 };
    let b = Message::JobRequest { seq: 2 };
    let mut buf = a.encode_frame().unwrap();
    buf.extend_from_slice(&b.encode_frame().unwrap());
    let (first, used) = decode_framed(&buf).unwrap().unwrap();
    assert_eq!(first, a);
    let (second, used2) = decode_framed(&buf[used..]).unwrap().unwrap();
    assert_eq!(second, b);
    assert_eq!(used + used2, buf.len());
}
