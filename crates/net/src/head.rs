//! The head process: global job pool, peer tracking, global reduction.
//!
//! [`serve_head`] accepts the expected complement of workers (handshake:
//! version, app tag, fingerprint, distinct cluster/location) and then hands
//! the connected peers to [`run_head`], which is transport-agnostic — the
//! integration tests drive it with loopback endpoints, the CLI with TCP.
//!
//! # Failure semantics
//!
//! The head tracks each peer's `last_seen` instant (any frame refreshes
//! it; idle workers send heartbeats at the cadence the head announced in
//! `Welcome`). A peer that goes silent for `heartbeat × heartbeat_misses`,
//! or whose connection drops, is declared **lost** — unless it already
//! shipped its reduction object, in which case its work is banked and its
//! death is free. Losing an unshipped peer forfeits everything it held
//! via [`JobPool::forfeit`]: its outstanding leases *and* its completions
//! return to the pending queues (the completions were folded into a
//! reduction object that will now never arrive), so surviving workers
//! re-process them and the run still produces the exact result.
//!
//! Forfeiture is **final**: frames that arrive from a peer after it was
//! declared lost are dropped unprocessed. A stalled-but-alive worker that
//! wakes up and delivers its robj or late lease resolutions must not have
//! them banked — the forfeited work may already be re-granted to (or
//! re-done by) survivors, and counting it twice would break the byte-exact
//! result contract.

use crate::robj::RobjCodec;
use crate::transport::{split_tcp, LinkRx, LinkTx, NetConfig};
use crate::wire::{Disposition, Message, WireClusterReport, PROTOCOL_VERSION};
use cb_storage::layout::{ChunkId, DatasetLayout, LocationId, Placement};
use cloudburst_core::api::ReductionObject;
use cloudburst_core::config::RuntimeConfig;
use cloudburst_core::obs::EventKind;
use cloudburst_core::report::{ClusterBreakdown, NetStats, RecoveryStats, RunReport};
use cloudburst_core::sched::pool::JobPool;
use cloudburst_core::{RunOutcome, RuntimeError};
use crossbeam::channel::{unbounded, RecvTimeoutError};
use std::collections::BTreeMap;
use std::io;
use std::net::TcpListener;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// What a worker declared about itself at handshake.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PeerSpec {
    /// Report slot (cluster index); each peer must claim a distinct one.
    pub cluster: u32,
    /// The worker's site — the job pool's locality key. Distinct per peer:
    /// peer loss forfeits *by location*.
    pub location: LocationId,
    pub cores: u32,
    pub name: String,
}

/// A connected, handshaken worker as seen by [`run_head`].
pub struct HeadPeer {
    pub spec: PeerSpec,
    pub tx: LinkTx,
    pub rx: LinkRx,
}

/// Reader-thread → head-loop event.
enum FromPeer {
    Frame {
        peer: usize,
        msg: Message,
        bytes: usize,
    },
    /// The connection died (EOF or I/O error). Benign after a clean
    /// `Goodbye`; peer loss otherwise.
    Gone { peer: usize, error: String },
}

/// Head-side record of one peer's progress.
struct PeerState {
    spec: PeerSpec,
    last_seen: Instant,
    /// Banked result: encoded robj + final report + arrival instant.
    shipped: Option<(Vec<u8>, WireClusterReport, Instant)>,
    /// Sent `Goodbye` (its reader exiting is then expected, not a loss).
    said_goodbye: bool,
    lost: bool,
}

/// Accept and handshake exactly `expected` workers, then run the job-pool
/// protocol to completion and perform the global reduction.
///
/// The listener should already be bound; workers dial it with
/// [`crate::transport::connect_with_backoff`].
#[allow(clippy::too_many_arguments)]
pub fn serve_head<R: ReductionObject + RobjCodec>(
    listener: &TcpListener,
    expected: usize,
    layout: &DatasetLayout,
    placement: &Placement,
    cfg: &RuntimeConfig,
    net: &NetConfig,
    fingerprint: u64,
    app_tag: &str,
) -> Result<RunOutcome<R>, RuntimeError> {
    let peers = accept_workers(listener, expected, cfg, net, fingerprint, app_tag)
        .map_err(|e| RuntimeError::Io(format!("accepting workers: {e}")))?;
    run_head(peers, layout, placement, cfg, net)
}

/// Accept loop: polls a non-blocking listener until `expected` workers have
/// handshaken or [`NetConfig::accept_timeout`] expires. Rejected dialers
/// (version/fingerprint/app mismatch, duplicate cluster or location) get a
/// `Reject { reason }` frame and are dropped without counting.
///
/// Each accepted connection's `Hello` is read on a short-lived thread, so
/// a dialer that connects but never speaks (a port-scanner, a stalled
/// client) ties up only its own thread for `io_timeout` instead of
/// stalling every legitimate join behind it. Validation and the
/// `Welcome`/`Reject` reply stay on this thread, serialized against
/// `peers`, so duplicate-slot checks cannot race.
pub fn accept_workers(
    listener: &TcpListener,
    expected: usize,
    cfg: &RuntimeConfig,
    net: &NetConfig,
    fingerprint: u64,
    app_tag: &str,
) -> io::Result<Vec<HeadPeer>> {
    listener.set_nonblocking(true)?;
    let deadline = Instant::now() + net.accept_timeout;
    let mut peers: Vec<HeadPeer> = Vec::with_capacity(expected);
    type PendingHello = (LinkTx, LinkRx, Result<Message, String>);
    let (hello_tx, hello_rx) = unbounded::<PendingHello>();
    while peers.len() < expected {
        match listener.accept() {
            Ok((stream, _)) => {
                stream.set_nonblocking(false)?;
                let hello_tx = hello_tx.clone();
                let net = net.clone();
                std::thread::spawn(move || {
                    let (tx, mut rx) = match split_tcp(stream, &net) {
                        Ok(halves) => halves,
                        Err(_) => return,
                    };
                    let hello = match rx.recv(net.io_timeout) {
                        Ok(Some((msg, _bytes))) => Ok(msg),
                        Ok(None) => Err("no Hello before timeout".to_string()),
                        Err(e) => Err(format!("reading Hello: {e}")),
                    };
                    // The accept loop may be gone (deadline, or complement
                    // already full) — then the send fails and the dialer's
                    // socket just drops.
                    let _ = hello_tx.send((tx, rx, hello));
                });
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {}
            Err(e) => return Err(e),
        }
        // Admit every dialer whose Hello has landed.
        while let Ok((mut tx, rx, hello)) = hello_rx.try_recv() {
            let hello = match hello {
                Ok(hello) => hello,
                Err(reason) => {
                    eprintln!("head: dropped dialer: {reason}");
                    continue;
                }
            };
            if peers.len() == expected {
                let _ = tx.send(&Message::Reject {
                    reason: format!("all {expected} worker slot(s) filled"),
                });
                continue;
            }
            match admit_hello(tx, rx, hello, &peers, net, fingerprint, app_tag) {
                Ok(peer) => {
                    cfg.sink.emit(
                        Some(peer.spec.cluster),
                        None,
                        EventKind::PeerJoined {
                            cores: peer.spec.cores as u64,
                        },
                    );
                    peers.push(peer);
                }
                Err(reason) => {
                    // Rejection already sent (best-effort); keep waiting
                    // for a valid worker on this slot.
                    eprintln!("head: rejected worker: {reason}");
                }
            }
        }
        if peers.len() >= expected {
            break;
        }
        if Instant::now() >= deadline {
            return Err(io::Error::new(
                io::ErrorKind::TimedOut,
                format!("only {} of {expected} worker(s) joined", peers.len()),
            ));
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    Ok(peers)
}

/// Validate one dialer's `Hello`; answer `Welcome` or `Reject`. Public so
/// loopback harnesses can handshake channel-backed peers the same way the
/// accept loop handshakes sockets.
pub fn handshake_one(
    tx: LinkTx,
    mut rx: LinkRx,
    accepted: &[HeadPeer],
    net: &NetConfig,
    fingerprint: u64,
    app_tag: &str,
) -> Result<HeadPeer, String> {
    // Handshake traffic is deliberately not counted into net stats/events:
    // the report's net counters cover the post-handshake protocol, so the
    // recorded trace and the RunReport reconcile exactly.
    let hello = match rx.recv(net.io_timeout) {
        Ok(Some((msg, _bytes))) => msg,
        Ok(None) => return Err("no Hello before timeout".into()),
        Err(e) => return Err(format!("reading Hello: {e}")),
    };
    admit_hello(tx, rx, hello, accepted, net, fingerprint, app_tag)
}

/// Validate a received `Hello` against the already-accepted peers; answer
/// `Welcome` or `Reject`. Must be called serially with respect to
/// `accepted` (the duplicate-slot checks assume no concurrent admission).
fn admit_hello(
    mut tx: LinkTx,
    rx: LinkRx,
    hello: Message,
    accepted: &[HeadPeer],
    net: &NetConfig,
    fingerprint: u64,
    app_tag: &str,
) -> Result<HeadPeer, String> {
    let reject = |tx: &mut LinkTx, reason: String| -> Result<HeadPeer, String> {
        let _ = tx.send(&Message::Reject {
            reason: reason.clone(),
        });
        Err(reason)
    };
    let Message::Hello {
        version,
        cluster,
        location,
        cores,
        name,
        app,
        fingerprint: their_fp,
    } = hello
    else {
        return reject(&mut tx, "first frame was not Hello".into());
    };
    if version != PROTOCOL_VERSION {
        return reject(
            &mut tx,
            format!("protocol version {version} != {PROTOCOL_VERSION}"),
        );
    }
    if app != app_tag {
        return reject(&mut tx, format!("app {app:?} != head's {app_tag:?}"));
    }
    if their_fp != fingerprint {
        return reject(
            &mut tx,
            format!("dataset fingerprint {their_fp:#x} != head's {fingerprint:#x}"),
        );
    }
    if cores == 0 {
        return reject(&mut tx, "worker declared zero cores".into());
    }
    if accepted.iter().any(|p| p.spec.cluster == cluster) {
        return reject(&mut tx, format!("cluster slot {cluster} already taken"));
    }
    if accepted.iter().any(|p| p.spec.location.0 == location) {
        return reject(
            &mut tx,
            format!("location {location} already taken (peer loss is tracked per location)"),
        );
    }
    let welcome = Message::Welcome {
        version: PROTOCOL_VERSION,
        heartbeat_ms: net.heartbeat.as_millis() as u64,
        fingerprint,
    };
    if let Err(e) = tx.send(&welcome) {
        return Err(format!("sending Welcome: {e}"));
    }
    Ok(HeadPeer {
        spec: PeerSpec {
            cluster,
            location: LocationId(location),
            cores,
            name,
        },
        tx,
        rx,
    })
}

/// Drive handshaken peers through the job-pool protocol and perform the
/// global reduction. Transport-agnostic: peers may sit on TCP sockets or
/// loopback channels.
pub fn run_head<R: ReductionObject + RobjCodec>(
    peers: Vec<HeadPeer>,
    layout: &DatasetLayout,
    placement: &Placement,
    cfg: &RuntimeConfig,
    net: &NetConfig,
) -> Result<RunOutcome<R>, RuntimeError> {
    cfg.validate().map_err(RuntimeError::Validation)?;
    layout
        .validate()
        .map_err(|e| RuntimeError::Validation(e.to_string()))?;
    if peers.is_empty() {
        return Err(RuntimeError::Validation("no workers".into()));
    }
    {
        let mut slots: Vec<u32> = peers.iter().map(|p| p.spec.cluster).collect();
        slots.sort_unstable();
        if slots != (0..peers.len() as u32).collect::<Vec<_>>() {
            return Err(RuntimeError::Validation(format!(
                "peer cluster slots {slots:?} are not exactly 0..{}",
                peers.len()
            )));
        }
    }

    let cluster_of: BTreeMap<LocationId, u32> = peers
        .iter()
        .map(|p| (p.spec.location, p.spec.cluster))
        .collect();
    let mut pool =
        JobPool::new(layout, placement, cfg.pool.clone()).with_sink(cfg.sink.clone(), cluster_of);
    let mut net_stats = NetStats {
        peers_joined: peers.len() as u64,
        ..Default::default()
    };

    let t0 = Instant::now();
    let deadline_grace = net.heartbeat * net.heartbeat_misses.max(1);
    let (event_tx, event_rx) = unbounded::<FromPeer>();
    let done = AtomicBool::new(false);

    let mut txs: Vec<LinkTx> = Vec::with_capacity(peers.len());
    let mut states: Vec<PeerState> = Vec::with_capacity(peers.len());
    let mut rxs: Vec<(usize, LinkRx)> = Vec::with_capacity(peers.len());
    for (i, p) in peers.into_iter().enumerate() {
        txs.push(p.tx);
        states.push(PeerState {
            spec: p.spec,
            last_seen: Instant::now(),
            shipped: None,
            said_goodbye: false,
            lost: false,
        });
        rxs.push((i, p.rx));
    }

    let run_error: Option<String> = std::thread::scope(|scope| {
        // --- Per-peer readers: frames → central channel. ---
        for (peer, mut rx) in rxs {
            let event_tx = event_tx.clone();
            let done = &done;
            scope.spawn(move || loop {
                if done.load(Ordering::Relaxed) {
                    return;
                }
                match rx.recv(Duration::from_millis(100)) {
                    Ok(None) => {}
                    Ok(Some((msg, bytes))) => {
                        let goodbye = matches!(msg, Message::Goodbye);
                        let _ = event_tx.send(FromPeer::Frame { peer, msg, bytes });
                        if goodbye {
                            return;
                        }
                    }
                    Err(e) => {
                        let _ = event_tx.send(FromPeer::Gone {
                            peer,
                            error: e.to_string(),
                        });
                        return;
                    }
                }
            });
        }
        drop(event_tx);

        // --- Head loop: serve the pool until every peer shipped or lost. ---
        let mut first_error: Option<String> = None;
        let poll = (net.heartbeat / 2).clamp(Duration::from_millis(10), Duration::from_millis(250));
        loop {
            if states.iter().all(|s| s.shipped.is_some() || s.lost) {
                break;
            }
            match event_rx.recv_timeout(poll) {
                Ok(FromPeer::Frame { peer, msg, bytes }) => {
                    let cluster = states[peer].spec.cluster;
                    net_stats.frames_recv += 1;
                    net_stats.bytes_recv += bytes as u64;
                    cfg.sink.emit(
                        Some(cluster),
                        None,
                        EventKind::NetRecv {
                            bytes: bytes as u64,
                        },
                    );
                    // Forfeiture is final. A lost-but-alive peer's leases
                    // and completions were re-enqueued at loss and may
                    // already be re-granted or re-done by survivors:
                    // banking its late robj would count that work twice,
                    // and resolving its late leases would corrupt the
                    // pool. Count the bytes, drop the frame.
                    if states[peer].lost {
                        match msg {
                            Message::Goodbye | Message::Heartbeat { .. } => {}
                            dropped => eprintln!(
                                "head: dropping late {} from lost worker {}",
                                frame_name(&dropped),
                                states[peer].spec.name
                            ),
                        }
                        // Fall through to the heartbeat sweep so a frame
                        // flood from a lost peer cannot delay detecting
                        // *other* peers' losses.
                    } else {
                        states[peer].last_seen = Instant::now();
                        handle_frame(
                            peer,
                            msg,
                            &mut states,
                            &mut txs,
                            &mut pool,
                            cfg,
                            &mut net_stats,
                            &mut first_error,
                        );
                    }
                }
                Ok(FromPeer::Gone { peer, error }) => {
                    let s = &mut states[peer];
                    if s.shipped.is_none() && !s.lost {
                        first_error.get_or_insert(format!(
                            "worker {} disconnected before shipping: {error}",
                            s.spec.name
                        ));
                        declare_lost(peer, &mut states, &mut pool, cfg, &mut net_stats);
                    }
                }
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => break,
            }

            // Heartbeat sweep: silence beyond the grace window is loss.
            let now = Instant::now();
            for peer in 0..states.len() {
                let s = &states[peer];
                if s.shipped.is_none()
                    && !s.lost
                    && now.saturating_duration_since(s.last_seen) > deadline_grace
                {
                    first_error.get_or_insert(format!(
                        "worker {} missed {} heartbeat(s)",
                        s.spec.name, net.heartbeat_misses
                    ));
                    declare_lost(peer, &mut states, &mut pool, cfg, &mut net_stats);
                }
            }
        }
        done.store(true, Ordering::Relaxed);
        first_error
        // Scope joins the readers: ≤100 ms after the done flag.
    });

    // The run fails only if some chunk could not complete anywhere.
    if !pool.all_done() {
        return Err(RuntimeError::JobsFailed {
            dead: pool.dead_jobs(),
            unfinished: pool.pending() + pool.outstanding(),
            last_error: run_error,
        });
    }

    // --- Global reduction: decode and merge in cluster-index order (the
    // same canonical order the in-process runtime uses). ---
    let mut by_cluster: Vec<&PeerState> = states.iter().collect();
    by_cluster.sort_by_key(|s| s.spec.cluster);
    let mut final_robj: Option<R> = None;
    let mut last_ship: Option<Instant> = None;
    for s in &by_cluster {
        let Some((bytes, _, at)) = &s.shipped else {
            continue;
        };
        let robj = R::decode_robj(bytes)
            .map_err(|e| RuntimeError::Io(format!("decoding robj from {}: {e}", s.spec.name)))?;
        cfg.sink.emit(
            Some(s.spec.cluster),
            None,
            EventKind::RobjMerge {
                bytes: bytes.len() as u64,
                ns: 0,
            },
        );
        match final_robj.as_mut() {
            None => final_robj = Some(robj),
            Some(acc) => acc.merge(robj),
        }
        last_ship = Some(last_ship.map_or(*at, |l| l.max(*at)));
    }
    let final_robj = final_robj
        .ok_or_else(|| RuntimeError::Validation("no reduction objects produced".into()))?;
    let end = Instant::now();

    // --- Assemble the report from the shipped per-cluster accounts. ---
    let mut recovery = RecoveryStats {
        jobs_reenqueued: pool.reenqueued(),
        ..Default::default()
    };
    let mut clusters = Vec::with_capacity(by_cluster.len());
    for s in &by_cluster {
        let Some((_, rep, at)) = &s.shipped else {
            // A lost peer contributes an empty breakdown: its completed work
            // was re-processed elsewhere and is accounted there.
            clusters.push(ClusterBreakdown {
                name: format!("{} (lost)", s.spec.name),
                cores: s.spec.cores as usize,
                processing_s: 0.0,
                retrieval_s: 0.0,
                sync_s: 0.0,
                wall_s: 0.0,
                idle_end_s: 0.0,
                jobs_processed: 0,
                jobs_stolen: 0,
                bytes_local: 0,
                bytes_remote: 0,
                overlap_saved_s: 0.0,
                fetch_stall_s: 0.0,
            });
            continue;
        };
        recovery.fetch_failures += rep.fetch_failures;
        recovery.retries += rep.retries;
        recovery.slaves_retired += rep.slaves_retired;
        recovery.slaves_killed += rep.slaves_killed;
        let n = rep.slaves.len().max(1) as f64;
        let ns = |f: fn(&crate::wire::WireSlaveStats) -> u64| -> f64 {
            rep.slaves.iter().map(|sl| f(sl) as f64 / 1e9).sum::<f64>() / n
        };
        let proc_s = ns(|sl| sl.processing_ns);
        let retr_s = ns(|sl| sl.retrieval_ns);
        let stall_s = ns(|sl| sl.fetch_stall_ns);
        let overlap_s = rep
            .slaves
            .iter()
            .map(|sl| sl.retrieval_ns.saturating_sub(sl.fetch_stall_ns) as f64 / 1e9)
            .sum::<f64>()
            / n;
        let wall_s = rep.wall_ns as f64 / 1e9;
        clusters.push(ClusterBreakdown {
            name: s.spec.name.clone(),
            cores: s.spec.cores as usize,
            processing_s: proc_s,
            retrieval_s: retr_s,
            sync_s: (wall_s - proc_s - retr_s).max(0.0),
            wall_s,
            idle_end_s: last_ship
                .map(|l| l.saturating_duration_since(*at).as_secs_f64())
                .unwrap_or(0.0),
            jobs_processed: rep.slaves.iter().map(|sl| sl.jobs).sum(),
            jobs_stolen: rep.slaves.iter().map(|sl| sl.stolen_jobs).sum(),
            bytes_local: rep.slaves.iter().map(|sl| sl.bytes_local).sum(),
            bytes_remote: rep.slaves.iter().map(|sl| sl.bytes_remote).sum(),
            overlap_saved_s: overlap_s,
            fetch_stall_s: stall_s,
        });
    }

    let report = RunReport {
        total_s: end.saturating_duration_since(t0).as_secs_f64(),
        global_reduction_s: last_ship
            .map(|l| end.saturating_duration_since(l).as_secs_f64())
            .unwrap_or(0.0),
        robj_bytes: final_robj.size_bytes() as u64,
        clusters,
        recovery,
        cache_hits: 0,
        cache_misses: 0,
        net: net_stats,
    };
    Ok(RunOutcome {
        result: final_robj,
        report,
    })
}

/// One protocol frame from a live (non-lost) peer against the pool.
#[allow(clippy::too_many_arguments)]
fn handle_frame(
    peer: usize,
    msg: Message,
    states: &mut [PeerState],
    txs: &mut [LinkTx],
    pool: &mut JobPool,
    cfg: &RuntimeConfig,
    net_stats: &mut NetStats,
    first_error: &mut Option<String>,
) {
    let cluster = states[peer].spec.cluster;
    let loc = states[peer].spec.location;
    match msg {
        Message::JobRequest { seq } => {
            let grant = pool.request(loc);
            let exhausted = grant.is_empty() && pool.exhausted_for(loc);
            let reply = Message::JobGrant {
                seq,
                jobs: grant.jobs.iter().map(|c| c.0).collect(),
                stolen: grant.stolen,
                exhausted,
            };
            send_counted(&mut txs[peer], &reply, cluster, cfg, net_stats);
        }
        Message::Resolve { chunk, disposition } => {
            // Tolerant resolution: this input crosses a process boundary,
            // so a violated invariant is the *peer's* bug — record it,
            // don't panic the run.
            let chunk = ChunkId(chunk);
            let ok = match disposition {
                Disposition::Completed => pool.try_complete(loc, chunk),
                Disposition::Failed => pool.try_fail(loc, chunk),
                Disposition::Released => pool.try_release(loc, chunk),
            };
            if !ok {
                first_error.get_or_insert(format!(
                    "peer {} resolved {chunk} it does not hold",
                    states[peer].spec.name
                ));
            }
        }
        Message::Heartbeat { .. } => {}
        Message::RobjShip { robj, report } => {
            if let Some(e) = &report.error {
                first_error.get_or_insert_with(|| e.clone());
            }
            states[peer].shipped = Some((robj, report, Instant::now()));
            send_counted(&mut txs[peer], &Message::ShipAck, cluster, cfg, net_stats);
        }
        Message::Goodbye => {
            states[peer].said_goodbye = true;
        }
        other => {
            first_error.get_or_insert(format!(
                "peer {} sent unexpected {other:?}",
                states[peer].spec.name
            ));
        }
    }
}

/// Short display name of a message for drop logging (a `RobjShip`'s full
/// `Debug` form would dump the encoded reduction object).
fn frame_name(msg: &Message) -> &'static str {
    match msg {
        Message::Hello { .. } => "Hello",
        Message::Welcome { .. } => "Welcome",
        Message::Reject { .. } => "Reject",
        Message::JobRequest { .. } => "JobRequest",
        Message::JobGrant { .. } => "JobGrant",
        Message::Resolve { .. } => "Resolve",
        Message::Heartbeat { .. } => "Heartbeat",
        Message::RobjShip { .. } => "RobjShip",
        Message::ShipAck => "ShipAck",
        Message::Goodbye => "Goodbye",
    }
}

/// Send a frame to a peer, counting it into obs + report. A send failure
/// is not handled here: the peer's reader will surface `Gone` and the loss
/// path takes over.
fn send_counted(
    tx: &mut LinkTx,
    msg: &Message,
    cluster: u32,
    cfg: &RuntimeConfig,
    net_stats: &mut NetStats,
) {
    if let Ok(bytes) = tx.send(msg) {
        net_stats.frames_sent += 1;
        net_stats.bytes_sent += bytes as u64;
        cfg.sink.emit(
            Some(cluster),
            None,
            EventKind::NetSent {
                bytes: bytes as u64,
            },
        );
    }
}

/// Forfeit everything an unshipped peer held and mark it lost.
fn declare_lost(
    peer: usize,
    states: &mut [PeerState],
    pool: &mut JobPool,
    cfg: &RuntimeConfig,
    net_stats: &mut NetStats,
) {
    let s = &mut states[peer];
    s.lost = true;
    let forfeited = pool.forfeit(s.spec.location) as u64;
    net_stats.peers_lost += 1;
    cfg.sink.emit(
        Some(s.spec.cluster),
        None,
        EventKind::PeerLost { jobs: forfeited },
    );
}
