//! Framed links: one abstraction, two transports.
//!
//! A *link* is a unidirectional framed message stream — [`LinkTx`] sends
//! [`Message`]s, [`LinkRx`] receives them — with two implementations:
//!
//! * **Tcp** — a real socket (split into try-cloned halves, `TCP_NODELAY`,
//!   read/write deadlines). Frames are reassembled across arbitrary read
//!   boundaries, so short reads and coalesced writes are handled.
//! * **Chan** — an in-process channel carrying *encoded frame bytes*, so
//!   loopback traffic exercises the exact same codec path as TCP; only the
//!   copy differs. [`loopback_pair`] builds a duplex pair of endpoints.
//!
//! Both report the frame size they moved, so callers can emit
//! `NetSent`/`NetRecv` observability events with true byte counts.

use crate::wire::{decode_framed, Message, MAX_FRAME_BYTES};
use cb_storage::retrieve::backoff_schedule;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// Tuning knobs for the networked runtime. The defaults suit localhost
/// integration runs; real deployments raise the timeouts.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Read/write deadline on blocking socket operations, and how long a
    /// worker waits for a `JobGrant` or `ShipAck` before declaring the head
    /// unreachable.
    pub io_timeout: Duration,
    /// Connection attempts before a worker gives up on the head.
    pub connect_attempts: u32,
    /// Base sleep between connection attempts; grows per
    /// [`backoff_schedule`] (capped + jittered), same policy as storage
    /// retries.
    pub connect_backoff: Duration,
    /// Ceiling on the per-attempt reconnect sleep.
    pub connect_backoff_cap: Duration,
    /// Worker heartbeat cadence (announced by the head in `Welcome`).
    pub heartbeat: Duration,
    /// Consecutive missed heartbeats before the head declares a worker
    /// lost and forfeits its leases.
    pub heartbeat_misses: u32,
    /// How long the head's accept loop waits for the full complement of
    /// workers to join before giving up the run.
    pub accept_timeout: Duration,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            io_timeout: Duration::from_secs(10),
            connect_attempts: 20,
            connect_backoff: Duration::from_millis(50),
            connect_backoff_cap: Duration::from_secs(2),
            heartbeat: Duration::from_millis(500),
            heartbeat_misses: 3,
            accept_timeout: Duration::from_secs(30),
        }
    }
}

/// Sending half of a link.
pub enum LinkTx {
    Tcp(TcpStream),
    Chan(Sender<Vec<u8>>),
}

/// Receiving half of a link.
pub enum LinkRx {
    Tcp {
        stream: TcpStream,
        /// Bytes read but not yet consumed as a complete frame — carries
        /// partial frames across reads (and across timeouts).
        buf: Vec<u8>,
    },
    Chan {
        rx: Receiver<Vec<u8>>,
        buf: Vec<u8>,
    },
}

impl LinkTx {
    /// Send one message as a frame; returns the frame size in bytes.
    ///
    /// A message whose payload exceeds [`MAX_FRAME_BYTES`] fails here with
    /// `InvalidInput` — the receiver would kill the link over it, so the
    /// sender gets the clear error instead.
    pub fn send(&mut self, msg: &Message) -> io::Result<usize> {
        let frame = msg
            .encode_frame()
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e))?;
        let n = frame.len();
        match self {
            LinkTx::Tcp(stream) => stream.write_all(&frame)?,
            LinkTx::Chan(tx) => tx
                .send(frame)
                .map_err(|_| io::Error::new(io::ErrorKind::BrokenPipe, "peer hung up"))?,
        }
        Ok(n)
    }
}

impl LinkRx {
    /// Receive one message, waiting up to `timeout`.
    ///
    /// `Ok(None)` means the timeout elapsed with no *complete* frame (any
    /// partial bytes stay buffered for the next call). `Err(UnexpectedEof)`
    /// means the peer closed the connection; `Err(InvalidData)` wraps a
    /// codec failure — corrupt frames are fatal to the link, never skipped.
    pub fn recv(&mut self, timeout: Duration) -> io::Result<Option<(Message, usize)>> {
        let deadline = Instant::now() + timeout;
        loop {
            // A frame may already be complete in the buffer.
            let buf = match self {
                LinkRx::Tcp { buf, .. } => buf,
                LinkRx::Chan { buf, .. } => buf,
            };
            match decode_framed(buf) {
                Ok(Some((msg, used))) => {
                    buf.drain(..used);
                    return Ok(Some((msg, used)));
                }
                Ok(None) => {}
                Err(e) => return Err(io::Error::new(io::ErrorKind::InvalidData, e)),
            }

            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                return Ok(None);
            }
            match self {
                LinkRx::Tcp { stream, buf } => {
                    stream.set_read_timeout(Some(left.max(Duration::from_millis(1))))?;
                    let mut chunk = [0u8; 16 * 1024];
                    match stream.read(&mut chunk) {
                        Ok(0) => {
                            return Err(io::Error::new(
                                io::ErrorKind::UnexpectedEof,
                                "peer closed connection",
                            ))
                        }
                        Ok(n) => {
                            if buf.len() + n > MAX_FRAME_BYTES + 4 {
                                return Err(io::Error::new(
                                    io::ErrorKind::InvalidData,
                                    "frame reassembly buffer overflow",
                                ));
                            }
                            buf.extend_from_slice(&chunk[..n]);
                        }
                        Err(e)
                            if e.kind() == io::ErrorKind::WouldBlock
                                || e.kind() == io::ErrorKind::TimedOut =>
                        {
                            return Ok(None)
                        }
                        Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                        Err(e) => return Err(e),
                    }
                }
                LinkRx::Chan { rx, buf } => match rx.recv_timeout(left) {
                    Ok(frame) => buf.extend_from_slice(&frame),
                    Err(RecvTimeoutError::Timeout) => return Ok(None),
                    Err(RecvTimeoutError::Disconnected) => {
                        return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "peer hung up"))
                    }
                },
            }
        }
    }
}

/// One duplex endpoint of an in-process link.
pub struct Endpoint {
    pub tx: LinkTx,
    pub rx: LinkRx,
}

/// Build a connected pair of in-process duplex endpoints. Traffic crosses
/// the same encode/decode path as TCP.
pub fn loopback_pair() -> (Endpoint, Endpoint) {
    let (a_tx, b_rx) = unbounded::<Vec<u8>>();
    let (b_tx, a_rx) = unbounded::<Vec<u8>>();
    (
        Endpoint {
            tx: LinkTx::Chan(a_tx),
            rx: LinkRx::Chan {
                rx: a_rx,
                buf: Vec::new(),
            },
        },
        Endpoint {
            tx: LinkTx::Chan(b_tx),
            rx: LinkRx::Chan {
                rx: b_rx,
                buf: Vec::new(),
            },
        },
    )
}

/// Split a connected socket into framed halves (`TCP_NODELAY`, write
/// deadline applied; the read deadline is managed per-`recv`).
pub fn split_tcp(stream: TcpStream, cfg: &NetConfig) -> io::Result<(LinkTx, LinkRx)> {
    stream.set_nodelay(true)?;
    stream.set_write_timeout(Some(cfg.io_timeout))?;
    let read_half = stream.try_clone()?;
    Ok((
        LinkTx::Tcp(stream),
        LinkRx::Tcp {
            stream: read_half,
            buf: Vec::new(),
        },
    ))
}

/// Dial the head, retrying with the same capped + jittered exponential
/// backoff the storage layer uses for ranged-GET retries.
pub fn connect_with_backoff(addr: SocketAddr, cfg: &NetConfig, seed: u64) -> io::Result<TcpStream> {
    let mut last_err = None;
    for attempt in 1..=cfg.connect_attempts.max(1) {
        match TcpStream::connect_timeout(&addr, cfg.io_timeout) {
            Ok(s) => return Ok(s),
            Err(e) => last_err = Some(e),
        }
        if attempt < cfg.connect_attempts {
            std::thread::sleep(backoff_schedule(
                cfg.connect_backoff,
                cfg.connect_backoff_cap,
                seed,
                attempt,
            ));
        }
    }
    Err(last_err.unwrap_or_else(|| io::Error::new(io::ErrorKind::TimedOut, "no connect attempts")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::Disposition;

    #[test]
    fn loopback_round_trips_messages() {
        let (mut a, mut b) = loopback_pair();
        let msg = Message::Resolve {
            chunk: 17,
            disposition: Disposition::Completed,
        };
        let sent = a.tx.send(&msg).unwrap();
        let (got, recvd) = b.rx.recv(Duration::from_secs(1)).unwrap().unwrap();
        assert_eq!(got, msg);
        assert_eq!(sent, recvd);
    }

    #[test]
    fn oversized_frame_rejected_at_send_not_at_peer() {
        let (mut a, _b) = loopback_pair();
        let msg = Message::RobjShip {
            robj: vec![0u8; MAX_FRAME_BYTES],
            report: crate::wire::WireClusterReport::default(),
        };
        let err = a.tx.send(&msg).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        assert!(err.to_string().contains("exceeds cap"), "{err}");
    }

    #[test]
    fn loopback_timeout_returns_none() {
        let (_a, mut b) = loopback_pair();
        assert!(b.rx.recv(Duration::from_millis(10)).unwrap().is_none());
    }

    #[test]
    fn loopback_eof_on_peer_drop() {
        let (a, mut b) = loopback_pair();
        drop(a);
        let err = b.rx.recv(Duration::from_millis(50)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn tcp_reassembles_split_frames() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let cfg = NetConfig::default();
        let writer = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            let frame = Message::Heartbeat { seq: 99 }.encode_frame().unwrap();
            // Dribble the frame one byte at a time to force reassembly.
            for b in frame {
                s.write_all(&[b]).unwrap();
                s.flush().unwrap();
            }
        });
        let (conn, _) = listener.accept().unwrap();
        let (_tx, mut rx) = split_tcp(conn, &cfg).unwrap();
        let (msg, _) = rx.recv(Duration::from_secs(5)).unwrap().unwrap();
        assert_eq!(msg, Message::Heartbeat { seq: 99 });
        writer.join().unwrap();
    }

    #[test]
    fn connect_backoff_gives_up_with_last_error() {
        // A port nothing listens on: bind then drop to find a free one.
        let addr = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let cfg = NetConfig {
            connect_attempts: 2,
            connect_backoff: Duration::from_millis(1),
            connect_backoff_cap: Duration::from_millis(2),
            io_timeout: Duration::from_millis(200),
            ..NetConfig::default()
        };
        assert!(connect_with_backoff(addr, &cfg, 7).is_err());
    }
}
