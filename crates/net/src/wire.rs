//! The control-plane wire protocol.
//!
//! Every message travels as one *frame*: a little-endian `u32` length
//! prefix followed by that many payload bytes. The payload starts with a
//! one-byte message tag; the remaining fields are encoded with fixed-width
//! little-endian integers and `u32`-length-prefixed UTF-8 strings. The
//! format is hand-rolled rather than derived so the byte layout is an
//! explicit, documented contract (`docs/NETWORKING.md` tabulates it) and
//! decoding failures are precise ([`WireError`]).
//!
//! Versioning: the handshake's [`Message::Hello`] opens with a 4-byte
//! magic and carries [`PROTOCOL_VERSION`]; the head answers `Welcome` on a
//! match and `Reject { reason }` otherwise, so mixed-version deployments
//! fail loudly at connect time instead of corrupting a run.

/// First bytes of a `Hello` payload after the tag — weeds out strangers
/// (an HTTP client, an old build with a different layout) before any field
/// is interpreted.
pub const MAGIC: [u8; 4] = *b"CBW1";

/// Bumped on any incompatible change to the message set or field layout.
pub const PROTOCOL_VERSION: u16 = 1;

/// Upper bound on a frame's payload size. Larger announced lengths are
/// rejected before allocation: a corrupt or hostile length prefix must not
/// OOM the peer. Generous enough for any reduction object the paper's
/// workloads produce.
pub const MAX_FRAME_BYTES: usize = 64 << 20;

/// Decoding failures. Encoding is infallible.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The payload ended before a field was complete.
    Truncated,
    /// Bytes remained after the last field of the message.
    Trailing(usize),
    /// Unknown message tag.
    BadTag(u8),
    /// A `Hello` that does not open with [`MAGIC`].
    BadMagic,
    /// A frame length prefix exceeding [`MAX_FRAME_BYTES`].
    FrameTooLarge(usize),
    /// A string field holding invalid UTF-8.
    BadString,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "frame truncated mid-field"),
            WireError::Trailing(n) => write!(f, "{n} trailing byte(s) after message"),
            WireError::BadTag(t) => write!(f, "unknown message tag {t}"),
            WireError::BadMagic => write!(f, "bad protocol magic (not a cloudburst peer?)"),
            WireError::FrameTooLarge(n) => {
                write!(f, "frame of {n} bytes exceeds cap of {MAX_FRAME_BYTES}")
            }
            WireError::BadString => write!(f, "string field is not valid UTF-8"),
        }
    }
}

impl std::error::Error for WireError {}

/// How a worker resolves one lease (mirrors
/// `cloudburst_core::runtime::Resolution` on the wire).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Disposition {
    Completed,
    Failed,
    Released,
}

/// Per-slave timings and counters as shipped in the worker's final report.
/// Durations travel as integer nanoseconds so encoding is exact.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WireSlaveStats {
    pub processing_ns: u64,
    pub retrieval_ns: u64,
    pub fetch_stall_ns: u64,
    pub jobs: u64,
    pub stolen_jobs: u64,
    pub units: u64,
    pub bytes_local: u64,
    pub bytes_remote: u64,
}

/// A worker cluster's final accounting, shipped alongside its reduction
/// object. The head combines these into the run's `RunReport` exactly as
/// the in-process runtime combines `ClusterOutcome`s.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WireClusterReport {
    pub slaves: Vec<WireSlaveStats>,
    pub fetch_failures: u64,
    pub retries: u64,
    pub slaves_retired: u64,
    pub slaves_killed: u64,
    /// Worker-side wall time from its run start to local combination done.
    pub wall_ns: u64,
    pub error: Option<String>,
}

/// Every message of the head↔worker control plane.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Worker → head, first message on a fresh connection.
    Hello {
        version: u16,
        /// Cluster index this worker runs (its report slot).
        cluster: u32,
        /// The worker's site (`LocationId.0`): the pool's locality key.
        location: u16,
        cores: u32,
        name: String,
        /// Application tag; both sides must run the same app+params.
        app: String,
        /// Fingerprint over layout/placement/app so a worker pointed at a
        /// different dataset is rejected instead of corrupting the run.
        fingerprint: u64,
    },
    /// Head → worker: handshake accepted; heartbeat cadence to use.
    Welcome {
        version: u16,
        heartbeat_ms: u64,
        fingerprint: u64,
    },
    /// Head → worker: handshake refused; the connection closes after this.
    Reject { reason: String },
    /// Worker → head: the master wants a job batch. `seq` increments per
    /// request; the head echoes it in `JobGrant` so the worker can pair
    /// replies to requests and reject a stale grant from a request it has
    /// already given up on.
    JobRequest { seq: u64 },
    /// Head → worker: reply to `JobRequest`, echoing its `seq`.
    /// `exhausted` carries the head's verdict observed atomically with the
    /// grant.
    JobGrant {
        seq: u64,
        jobs: Vec<u32>,
        stolen: bool,
        exhausted: bool,
    },
    /// Worker → head: one lease resolved (fire-and-forget).
    Resolve {
        chunk: u32,
        disposition: Disposition,
    },
    /// Worker → head, periodic liveness beacon.
    Heartbeat { seq: u64 },
    /// Worker → head: the cluster finished; encoded reduction object plus
    /// final report. After the head acks, the worker's completions are
    /// durable and its death no longer costs anything.
    RobjShip {
        robj: Vec<u8>,
        report: WireClusterReport,
    },
    /// Head → worker: `RobjShip` received and banked.
    ShipAck,
    /// Worker → head: clean goodbye; the socket closes next.
    Goodbye,
}

// Message tags. Stable — append only.
const TAG_HELLO: u8 = 1;
const TAG_WELCOME: u8 = 2;
const TAG_REJECT: u8 = 3;
const TAG_JOB_REQUEST: u8 = 4;
const TAG_JOB_GRANT: u8 = 5;
const TAG_RESOLVE: u8 = 6;
const TAG_HEARTBEAT: u8 = 7;
const TAG_ROBJ_SHIP: u8 = 8;
const TAG_SHIP_ACK: u8 = 9;
const TAG_GOODBYE: u8 = 10;

/// Append-only payload writer.
#[derive(Debug, Default)]
pub struct WireWriter {
    buf: Vec<u8>,
}

impl WireWriter {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(v as u8);
    }

    pub fn put_bytes(&mut self, v: &[u8]) {
        // The `u32` length prefix would silently truncate past 4 GiB; any
        // such payload also blows MAX_FRAME_BYTES, which `encode_frame`
        // rejects — this assert just catches misuse closer to the source.
        debug_assert!(v.len() <= u32::MAX as usize, "field too large for wire");
        self.put_u32(v.len() as u32);
        self.buf.extend_from_slice(v);
    }

    pub fn put_str(&mut self, v: &str) {
        self.put_bytes(v.as_bytes());
    }

    pub fn into_payload(self) -> Vec<u8> {
        self.buf
    }
}

/// Bounds-checked payload reader.
#[derive(Debug)]
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        WireReader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.buf.len() - self.pos < n {
            return Err(WireError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    pub fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    pub fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }

    pub fn bool(&mut self) -> Result<bool, WireError> {
        Ok(self.u8()? != 0)
    }

    pub fn bytes(&mut self) -> Result<&'a [u8], WireError> {
        let n = self.u32()? as usize;
        // A length field can claim more than the frame holds; `take`
        // bounds-checks, so a lying length is Truncated, not a panic.
        self.take(n)
    }

    pub fn str(&mut self) -> Result<&'a str, WireError> {
        std::str::from_utf8(self.bytes()?).map_err(|_| WireError::BadString)
    }

    /// Assert the payload was consumed exactly.
    pub fn finish(self) -> Result<(), WireError> {
        let left = self.buf.len() - self.pos;
        if left == 0 {
            Ok(())
        } else {
            Err(WireError::Trailing(left))
        }
    }
}

fn put_report(w: &mut WireWriter, r: &WireClusterReport) {
    w.put_u32(r.slaves.len() as u32);
    for s in &r.slaves {
        w.put_u64(s.processing_ns);
        w.put_u64(s.retrieval_ns);
        w.put_u64(s.fetch_stall_ns);
        w.put_u64(s.jobs);
        w.put_u64(s.stolen_jobs);
        w.put_u64(s.units);
        w.put_u64(s.bytes_local);
        w.put_u64(s.bytes_remote);
    }
    w.put_u64(r.fetch_failures);
    w.put_u64(r.retries);
    w.put_u64(r.slaves_retired);
    w.put_u64(r.slaves_killed);
    w.put_u64(r.wall_ns);
    match &r.error {
        Some(e) => {
            w.put_bool(true);
            w.put_str(e);
        }
        None => w.put_bool(false),
    }
}

fn get_report(r: &mut WireReader<'_>) -> Result<WireClusterReport, WireError> {
    let n = r.u32()? as usize;
    // Cap preallocation by what the frame could possibly hold (8 u64s per
    // slave), so a lying count cannot OOM.
    let mut slaves = Vec::with_capacity(n.min(MAX_FRAME_BYTES / 64));
    for _ in 0..n {
        slaves.push(WireSlaveStats {
            processing_ns: r.u64()?,
            retrieval_ns: r.u64()?,
            fetch_stall_ns: r.u64()?,
            jobs: r.u64()?,
            stolen_jobs: r.u64()?,
            units: r.u64()?,
            bytes_local: r.u64()?,
            bytes_remote: r.u64()?,
        });
    }
    let fetch_failures = r.u64()?;
    let retries = r.u64()?;
    let slaves_retired = r.u64()?;
    let slaves_killed = r.u64()?;
    let wall_ns = r.u64()?;
    let error = if r.bool()? {
        Some(r.str()?.to_owned())
    } else {
        None
    };
    Ok(WireClusterReport {
        slaves,
        fetch_failures,
        retries,
        slaves_retired,
        slaves_killed,
        wall_ns,
        error,
    })
}

impl Message {
    /// Encode the payload (no length prefix).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        match self {
            Message::Hello {
                version,
                cluster,
                location,
                cores,
                name,
                app,
                fingerprint,
            } => {
                w.put_u8(TAG_HELLO);
                w.buf.extend_from_slice(&MAGIC);
                w.put_u16(*version);
                w.put_u32(*cluster);
                w.put_u16(*location);
                w.put_u32(*cores);
                w.put_str(name);
                w.put_str(app);
                w.put_u64(*fingerprint);
            }
            Message::Welcome {
                version,
                heartbeat_ms,
                fingerprint,
            } => {
                w.put_u8(TAG_WELCOME);
                w.put_u16(*version);
                w.put_u64(*heartbeat_ms);
                w.put_u64(*fingerprint);
            }
            Message::Reject { reason } => {
                w.put_u8(TAG_REJECT);
                w.put_str(reason);
            }
            Message::JobRequest { seq } => {
                w.put_u8(TAG_JOB_REQUEST);
                w.put_u64(*seq);
            }
            Message::JobGrant {
                seq,
                jobs,
                stolen,
                exhausted,
            } => {
                w.put_u8(TAG_JOB_GRANT);
                w.put_u64(*seq);
                w.put_u32(jobs.len() as u32);
                for j in jobs {
                    w.put_u32(*j);
                }
                w.put_bool(*stolen);
                w.put_bool(*exhausted);
            }
            Message::Resolve { chunk, disposition } => {
                w.put_u8(TAG_RESOLVE);
                w.put_u32(*chunk);
                w.put_u8(match disposition {
                    Disposition::Completed => 0,
                    Disposition::Failed => 1,
                    Disposition::Released => 2,
                });
            }
            Message::Heartbeat { seq } => {
                w.put_u8(TAG_HEARTBEAT);
                w.put_u64(*seq);
            }
            Message::RobjShip { robj, report } => {
                w.put_u8(TAG_ROBJ_SHIP);
                w.put_bytes(robj);
                put_report(&mut w, report);
            }
            Message::ShipAck => w.put_u8(TAG_SHIP_ACK),
            Message::Goodbye => w.put_u8(TAG_GOODBYE),
        }
        w.into_payload()
    }

    /// Decode a payload (no length prefix). Rejects trailing bytes.
    pub fn decode(payload: &[u8]) -> Result<Message, WireError> {
        let mut r = WireReader::new(payload);
        let tag = r.u8()?;
        let msg = match tag {
            TAG_HELLO => {
                let magic = r.take(4)?;
                if magic != MAGIC {
                    return Err(WireError::BadMagic);
                }
                Message::Hello {
                    version: r.u16()?,
                    cluster: r.u32()?,
                    location: r.u16()?,
                    cores: r.u32()?,
                    name: r.str()?.to_owned(),
                    app: r.str()?.to_owned(),
                    fingerprint: r.u64()?,
                }
            }
            TAG_WELCOME => Message::Welcome {
                version: r.u16()?,
                heartbeat_ms: r.u64()?,
                fingerprint: r.u64()?,
            },
            TAG_REJECT => Message::Reject {
                reason: r.str()?.to_owned(),
            },
            TAG_JOB_REQUEST => Message::JobRequest { seq: r.u64()? },
            TAG_JOB_GRANT => {
                let seq = r.u64()?;
                let n = r.u32()? as usize;
                let mut jobs = Vec::with_capacity(n.min(MAX_FRAME_BYTES / 4));
                for _ in 0..n {
                    jobs.push(r.u32()?);
                }
                Message::JobGrant {
                    seq,
                    jobs,
                    stolen: r.bool()?,
                    exhausted: r.bool()?,
                }
            }
            TAG_RESOLVE => Message::Resolve {
                chunk: r.u32()?,
                disposition: match r.u8()? {
                    0 => Disposition::Completed,
                    1 => Disposition::Failed,
                    2 => Disposition::Released,
                    t => return Err(WireError::BadTag(t)),
                },
            },
            TAG_HEARTBEAT => Message::Heartbeat { seq: r.u64()? },
            TAG_ROBJ_SHIP => Message::RobjShip {
                robj: r.bytes()?.to_vec(),
                report: get_report(&mut r)?,
            },
            TAG_SHIP_ACK => Message::ShipAck,
            TAG_GOODBYE => Message::Goodbye,
            t => return Err(WireError::BadTag(t)),
        };
        r.finish()?;
        Ok(msg)
    }

    /// Encode as a complete frame: `u32` LE length prefix + payload.
    ///
    /// Fails with [`WireError::FrameTooLarge`] when the payload exceeds
    /// [`MAX_FRAME_BYTES`]: the receiver would kill the link over such a
    /// frame anyway, so the sender must get a clear error (e.g. "robj too
    /// large to ship") instead of a confusing peer loss. The cap also
    /// guards the `u32` length prefix (`MAX_FRAME_BYTES` < `u32::MAX`).
    pub fn encode_frame(&self) -> Result<Vec<u8>, WireError> {
        let payload = self.encode();
        if payload.len() > MAX_FRAME_BYTES {
            return Err(WireError::FrameTooLarge(payload.len()));
        }
        let mut frame = Vec::with_capacity(4 + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&payload);
        Ok(frame)
    }
}

/// Try to pull one frame off the front of `buf`.
///
/// `Ok(None)` means "incomplete — read more bytes". On success returns the
/// message and the number of bytes consumed (prefix + payload); the caller
/// drains that many from its buffer.
pub fn decode_framed(buf: &[u8]) -> Result<Option<(Message, usize)>, WireError> {
    if buf.len() < 4 {
        return Ok(None);
    }
    let len = u32::from_le_bytes(buf[..4].try_into().unwrap()) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(WireError::FrameTooLarge(len));
    }
    if buf.len() < 4 + len {
        return Ok(None);
    }
    let msg = Message::decode(&buf[4..4 + len])?;
    Ok(Some((msg, 4 + len)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_round_trip() {
        let m = Message::Heartbeat { seq: 42 };
        let frame = m.encode_frame().unwrap();
        let (back, used) = decode_framed(&frame).unwrap().unwrap();
        assert_eq!(back, m);
        assert_eq!(used, frame.len());
    }

    #[test]
    fn incomplete_frames_ask_for_more() {
        let frame = Message::Goodbye.encode_frame().unwrap();
        for cut in 0..frame.len() {
            assert_eq!(decode_framed(&frame[..cut]).unwrap(), None, "cut {cut}");
        }
    }

    #[test]
    fn oversized_length_prefix_rejected() {
        let mut frame = ((MAX_FRAME_BYTES + 1) as u32).to_le_bytes().to_vec();
        frame.extend_from_slice(&[0; 16]);
        assert_eq!(
            decode_framed(&frame),
            Err(WireError::FrameTooLarge(MAX_FRAME_BYTES + 1))
        );
    }

    #[test]
    fn oversized_payload_rejected_at_encode() {
        let m = Message::RobjShip {
            robj: vec![0u8; MAX_FRAME_BYTES],
            report: WireClusterReport::default(),
        };
        match m.encode_frame() {
            Err(WireError::FrameTooLarge(n)) => assert!(n > MAX_FRAME_BYTES),
            other => panic!("expected FrameTooLarge, got {:?}", other.map(|f| f.len())),
        }
    }

    #[test]
    fn hello_requires_magic() {
        let m = Message::Hello {
            version: PROTOCOL_VERSION,
            cluster: 0,
            location: 0,
            cores: 1,
            name: "w".into(),
            app: "wordcount".into(),
            fingerprint: 7,
        };
        let mut payload = m.encode();
        payload[1] = b'X'; // corrupt first magic byte
        assert_eq!(Message::decode(&payload), Err(WireError::BadMagic));
    }
}
