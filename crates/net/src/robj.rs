//! Canonical byte encodings for shipped reduction objects.
//!
//! The distributed runtime's correctness contract is *byte identity*: a
//! 3-process TCP run and a single-process loopback run over the same seed
//! and deployment must produce identical final reduction-object bytes. That
//! only holds if the encoding is canonical — independent of the arrival
//! order that built the object. So [`Concat`] sorts before encoding and
//! [`TopK`] sorts its kept set; [`KeyedSum`] iterates its `BTreeMap`, which
//! is already canonical. Floats travel as IEEE-754 bit patterns
//! (`f64::to_bits`), never through text, so the round trip is exact.

use crate::wire::{WireError, WireReader, WireWriter};
use cloudburst_core::combine::{Concat, Counter, KeyedSum, TopK, VecSum};

/// A reduction object that can cross the wire.
///
/// `decode_robj(encode_robj(x))` must reproduce `x` exactly (same merge
/// behaviour, same canonical encoding), and `encode_robj` must be canonical:
/// two objects that compare equal encode to the same bytes regardless of
/// the order their contents arrived.
pub trait RobjCodec: Sized {
    fn encode_robj(&self) -> Vec<u8>;
    fn decode_robj(bytes: &[u8]) -> Result<Self, WireError>;
}

impl RobjCodec for Counter {
    fn encode_robj(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        w.put_u64(self.0);
        w.into_payload()
    }

    fn decode_robj(bytes: &[u8]) -> Result<Self, WireError> {
        let mut r = WireReader::new(bytes);
        let v = r.u64()?;
        r.finish()?;
        Ok(Counter(v))
    }
}

impl RobjCodec for VecSum {
    fn encode_robj(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        w.put_u32(self.values().len() as u32);
        for &v in self.values() {
            w.put_f64(v);
        }
        w.into_payload()
    }

    fn decode_robj(bytes: &[u8]) -> Result<Self, WireError> {
        let mut r = WireReader::new(bytes);
        let n = r.u32()? as usize;
        let mut values = Vec::with_capacity(n.min(bytes.len() / 8 + 1));
        for _ in 0..n {
            values.push(r.f64()?);
        }
        r.finish()?;
        Ok(VecSum::from_vec(values))
    }
}

impl RobjCodec for KeyedSum {
    fn encode_robj(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        w.put_u32(self.len() as u32);
        // BTreeMap iteration is key-sorted: canonical for free.
        for (key, (sum, count)) in self.iter() {
            w.put_u64(key);
            w.put_f64(sum);
            w.put_u64(count);
        }
        w.into_payload()
    }

    fn decode_robj(bytes: &[u8]) -> Result<Self, WireError> {
        let mut r = WireReader::new(bytes);
        let n = r.u32()? as usize;
        let mut out = KeyedSum::new();
        for _ in 0..n {
            let key = r.u64()?;
            let sum = r.f64()?;
            let count = r.u64()?;
            out.insert_entry(key, sum, count);
        }
        r.finish()?;
        Ok(out)
    }
}

impl RobjCodec for Concat<u64> {
    fn encode_robj(&self) -> Vec<u8> {
        // Arrival order is scheduling noise; sort a copy so equal sets
        // encode identically.
        let mut items = self.items().to_vec();
        items.sort_unstable();
        let mut w = WireWriter::new();
        w.put_u32(items.len() as u32);
        for v in items {
            w.put_u64(v);
        }
        w.into_payload()
    }

    fn decode_robj(bytes: &[u8]) -> Result<Self, WireError> {
        let mut r = WireReader::new(bytes);
        let n = r.u32()? as usize;
        let mut out = Concat::new();
        for _ in 0..n {
            out.push(r.u64()?);
        }
        r.finish()?;
        Ok(out)
    }
}

impl RobjCodec for TopK {
    fn encode_robj(&self) -> Vec<u8> {
        // Heap order depends on insertion history; sort by (score bits,
        // payload) for a canonical listing. Scores are non-NaN by TopK's
        // insert contract, and non-negative bit patterns sort the same as
        // their floats.
        let mut entries: Vec<(u64, u64)> = self.entries().map(|(s, p)| (s.to_bits(), p)).collect();
        entries.sort_unstable();
        let mut w = WireWriter::new();
        w.put_u32(self.k() as u32);
        w.put_u32(entries.len() as u32);
        for (score_bits, payload) in entries {
            w.put_u64(score_bits);
            w.put_u64(payload);
        }
        w.into_payload()
    }

    fn decode_robj(bytes: &[u8]) -> Result<Self, WireError> {
        let mut r = WireReader::new(bytes);
        let k = r.u32()? as usize;
        if k == 0 {
            return Err(WireError::Truncated);
        }
        let n = r.u32()? as usize;
        let mut out = TopK::new(k);
        for _ in 0..n {
            let score = f64::from_bits(r.u64()?);
            let payload = r.u64()?;
            out.offer(score, payload);
        }
        r.finish()?;
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_round_trips() {
        let c = Counter(u64::MAX - 3);
        assert_eq!(Counter::decode_robj(&c.encode_robj()).unwrap(), c);
    }

    #[test]
    fn keyedsum_round_trips_exactly() {
        let mut k = KeyedSum::new();
        k.add(7, 1.5);
        k.add(7, 2.25);
        k.add(99, -0.125);
        let back = KeyedSum::decode_robj(&k.encode_robj()).unwrap();
        assert_eq!(back, k);
        assert_eq!(back.encode_robj(), k.encode_robj());
    }

    #[test]
    fn concat_encoding_ignores_arrival_order() {
        let mut a = Concat::new();
        for v in [5u64, 1, 9] {
            a.push(v);
        }
        let mut b = Concat::new();
        for v in [9u64, 5, 1] {
            b.push(v);
        }
        assert_eq!(a.encode_robj(), b.encode_robj());
        let back = Concat::<u64>::decode_robj(&a.encode_robj()).unwrap();
        assert_eq!(back.into_sorted(), vec![1, 5, 9]);
    }

    #[test]
    fn topk_round_trip_preserves_merge_behaviour() {
        let mut t = TopK::new(3);
        for (i, s) in [4.0, 2.0, 8.0, 1.0].iter().enumerate() {
            t.offer(*s, i as u64);
        }
        let back = TopK::decode_robj(&t.encode_robj()).unwrap();
        assert_eq!(back.k(), 3);
        let mut merged = back;
        merged.offer(0.5, 42);
        assert_eq!(merged.into_sorted(), vec![(0.5, 42), (1.0, 3), (2.0, 1)]);
    }

    #[test]
    fn truncated_robj_rejected() {
        let mut k = KeyedSum::new();
        k.add(1, 1.0);
        let enc = k.encode_robj();
        assert_eq!(
            KeyedSum::decode_robj(&enc[..enc.len() - 1]),
            Err(WireError::Truncated)
        );
    }
}
