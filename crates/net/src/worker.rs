//! The worker process: one cluster (master + slaves) behind a TCP head.
//!
//! [`run_worker`] dials the head (capped + jittered reconnect), handshakes,
//! then runs `cloudburst_core::run_cluster` — the *same* master/slave
//! machinery the in-process runtime uses — against a `NetHeadPort` whose
//! `request_jobs`/`resolve` cross the socket instead of a mutex. A
//! background thread heartbeats at half the cadence the head announced; a
//! reader thread routes `JobGrant` and `ShipAck` frames to the callers
//! waiting on them. When the cluster drains, the worker encodes its
//! reduction object canonically ([`RobjCodec`]), ships it with its final
//! accounting, waits for the head's ack (after which its death is free),
//! and says goodbye.

use crate::robj::RobjCodec;
use crate::transport::{connect_with_backoff, split_tcp, LinkRx, LinkTx, NetConfig};
use crate::wire::{Disposition, Message, WireClusterReport, WireSlaveStats, PROTOCOL_VERSION};
use cb_storage::layout::{ChunkId, DatasetLayout, LocationId, Placement};
use cloudburst_core::api::GRApp;
use cloudburst_core::config::RuntimeConfig;
use cloudburst_core::deploy::{ClusterSpec, DataFabric};
use cloudburst_core::obs::EventKind;
use cloudburst_core::sched::pool::Grant;
use cloudburst_core::{run_cluster, ClusterOutcome, HeadPort, Resolution};
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError};
use parking_lot::Mutex;
use std::io;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why a worker run ended without shipping.
#[derive(Debug)]
pub enum NetError {
    /// Connection-level failure (dial, read, write, timeout).
    Io(io::Error),
    /// The head refused the handshake.
    Rejected(String),
    /// The peer violated the protocol (unexpected frame, missing ack).
    Protocol(String),
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "network I/O: {e}"),
            NetError::Rejected(r) => write!(f, "head rejected handshake: {r}"),
            NetError::Protocol(r) => write!(f, "protocol violation: {r}"),
        }
    }
}

impl std::error::Error for NetError {}

impl From<io::Error> for NetError {
    fn from(e: io::Error) -> Self {
        NetError::Io(e)
    }
}

/// What this worker announces at handshake.
#[derive(Debug, Clone)]
pub struct WorkerSpec {
    /// Report slot on the head (cluster index).
    pub cluster: u32,
    pub name: String,
    /// Application tag; must match the head's.
    pub app_tag: String,
    /// Dataset fingerprint ([`crate::fingerprint`]); must match the head's.
    pub fingerprint: u64,
}

/// A worker's summary of its finished run (the authoritative result lives
/// on the head).
#[derive(Debug)]
pub struct WorkerOutcome<R> {
    /// The cluster's locally combined reduction object (a copy of what was
    /// shipped — useful for tests and local inspection).
    pub outcome: ClusterOutcome<R>,
    /// Bytes of the encoded reduction object as shipped.
    pub robj_bytes: usize,
}

/// The TCP-backed [`HeadPort`]: `request_jobs` sends `JobRequest` and
/// blocks on the grant channel the reader thread feeds; `resolve` is
/// fire-and-forget. The transmit half is shared with the heartbeat thread
/// and the shipping code behind a mutex; the grant receiver sits behind its
/// own mutex because the channel shim's `Receiver` is single-consumer and
/// not `Sync` (the `HeadPort` trait requires `Sync`).
///
/// Requests and grants are paired by sequence number. If the grant for a
/// request does not arrive within `io_timeout`, the link is **poisoned**:
/// the head may by then hold leases this worker will never run, and the
/// only recovery that preserves the result contract is to die visibly —
/// stop heartbeating, never ship, never say goodbye — so the head declares
/// this worker lost and forfeits its leases back to the survivors.
struct NetHeadPort {
    tx: Arc<Mutex<LinkTx>>,
    grants: Mutex<Receiver<(u64, Grant, bool)>>,
    io_timeout: Duration,
    cluster: u32,
    sink: cloudburst_core::obs::SinkHandle,
    /// Sequence number of the most recent `JobRequest`; its `JobGrant`
    /// must echo it. Any lower number is a stale grant from a request this
    /// worker already gave up on.
    seq: AtomicU64,
    /// Set on a missed grant; shared with the heartbeat thread (which
    /// stops beating) and the shipping path (which refuses to ship).
    poisoned: Arc<AtomicBool>,
}

impl NetHeadPort {
    fn send(&self, msg: &Message) -> io::Result<()> {
        let bytes = self.tx.lock().send(msg)?;
        self.sink.emit(
            Some(self.cluster),
            None,
            EventKind::NetSent {
                bytes: bytes as u64,
            },
        );
        Ok(())
    }
}

impl HeadPort for NetHeadPort {
    fn request_jobs(&self, _loc: LocationId) -> io::Result<(Grant, bool)> {
        if self.poisoned.load(Ordering::Relaxed) {
            return Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "link poisoned after a missed JobGrant",
            ));
        }
        let seq = self.seq.fetch_add(1, Ordering::Relaxed) + 1;
        self.send(&Message::JobRequest { seq })?;
        let grants = self.grants.lock();
        let deadline = Instant::now() + self.io_timeout;
        loop {
            match grants.recv_timeout(deadline.saturating_duration_since(Instant::now())) {
                // A grant for an older request is stale: poisoning makes
                // this unreachable in practice (a request is never issued
                // after a miss), but the explicit pairing keeps the
                // protocol self-checking.
                Ok((got, grant, exhausted)) if got == seq => return Ok((grant, exhausted)),
                Ok(_) => continue,
                Err(RecvTimeoutError::Timeout) => {
                    self.poisoned.store(true, Ordering::Relaxed);
                    return Err(io::Error::new(
                        io::ErrorKind::TimedOut,
                        "no JobGrant within io_timeout; dropping the link so the head \
                         reclaims this worker's leases",
                    ));
                }
                Err(RecvTimeoutError::Disconnected) => {
                    self.poisoned.store(true, Ordering::Relaxed);
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "connection to head lost",
                    ));
                }
            }
        }
    }

    fn resolve(&self, _loc: LocationId, what: Resolution) -> io::Result<()> {
        let (chunk, disposition) = match what {
            Resolution::Completed(c) => (c, Disposition::Completed),
            Resolution::Failed(c) => (c, Disposition::Failed),
            Resolution::Released(c) => (c, Disposition::Released),
        };
        self.send(&Message::Resolve {
            chunk: chunk.0,
            disposition,
        })
    }
}

/// Dial `addr` (capped + jittered reconnect), then run on the socket.
#[allow(clippy::too_many_arguments)]
pub fn run_worker<A: GRApp>(
    app: &A,
    params: &A::Params,
    layout: &DatasetLayout,
    placement: &Placement,
    fabric: &DataFabric,
    cluster: &ClusterSpec,
    spec: &WorkerSpec,
    cfg: &RuntimeConfig,
    net: &NetConfig,
    addr: SocketAddr,
) -> Result<WorkerOutcome<A::RObj>, NetError>
where
    A::RObj: RobjCodec,
{
    let seed = (spec.cluster as u64) << 16 | cluster.location.0 as u64;
    let stream = connect_with_backoff(addr, net, seed)?;
    let (tx, rx) = split_tcp(stream, net)?;
    run_worker_on_links(
        app, params, layout, placement, fabric, cluster, spec, cfg, net, tx, rx,
    )
}

/// Handshake and run the cluster over an already-established link —
/// transport-agnostic, so loopback tests exercise the identical worker
/// machinery over in-process channels.
#[allow(clippy::too_many_arguments)]
pub fn run_worker_on_links<A: GRApp>(
    app: &A,
    params: &A::Params,
    layout: &DatasetLayout,
    placement: &Placement,
    fabric: &DataFabric,
    cluster: &ClusterSpec,
    spec: &WorkerSpec,
    cfg: &RuntimeConfig,
    net: &NetConfig,
    mut tx: LinkTx,
    mut rx: LinkRx,
) -> Result<WorkerOutcome<A::RObj>, NetError>
where
    A::RObj: RobjCodec,
{
    cfg.validate().map_err(NetError::Protocol)?;

    // --- Handshake. ---
    tx.send(&Message::Hello {
        version: PROTOCOL_VERSION,
        cluster: spec.cluster,
        location: cluster.location.0,
        cores: cluster.cores as u32,
        name: spec.name.clone(),
        app: spec.app_tag.clone(),
        fingerprint: spec.fingerprint,
    })?;
    let heartbeat = match rx.recv(net.accept_timeout)? {
        Some((Message::Welcome { heartbeat_ms, .. }, _)) => Duration::from_millis(heartbeat_ms),
        Some((Message::Reject { reason }, _)) => return Err(NetError::Rejected(reason)),
        Some((other, _)) => {
            return Err(NetError::Protocol(format!(
                "expected Welcome, got {other:?}"
            )))
        }
        None => {
            return Err(NetError::Io(io::Error::new(
                io::ErrorKind::TimedOut,
                "no Welcome from head",
            )))
        }
    };

    let tx = Arc::new(Mutex::new(tx));
    let done = AtomicBool::new(false);
    let poisoned = Arc::new(AtomicBool::new(false));
    let (grant_tx, grant_rx) = unbounded::<(u64, Grant, bool)>();
    let (ack_tx, ack_rx) = unbounded::<()>();
    let port = NetHeadPort {
        tx: Arc::clone(&tx),
        grants: Mutex::new(grant_rx),
        io_timeout: net.io_timeout,
        cluster: spec.cluster,
        sink: cfg.sink.clone(),
        seq: AtomicU64::new(0),
        poisoned: Arc::clone(&poisoned),
    };
    let t0 = Instant::now();
    let retry_counter = Arc::new(AtomicU64::new(0));

    let (outcome, shipped_bytes) = std::thread::scope(|scope| {
        // --- Reader: route frames to whoever waits on them. ---
        let done_ref = &done;
        let sink = cfg.sink.clone();
        let cluster_idx = spec.cluster;
        scope.spawn(move || {
            let mut rx = rx;
            loop {
                if done_ref.load(Ordering::Relaxed) {
                    return;
                }
                match rx.recv(Duration::from_millis(100)) {
                    Ok(None) => {}
                    Ok(Some((msg, bytes))) => {
                        sink.emit(
                            Some(cluster_idx),
                            None,
                            EventKind::NetRecv {
                                bytes: bytes as u64,
                            },
                        );
                        match msg {
                            Message::JobGrant {
                                seq,
                                jobs,
                                stolen,
                                exhausted,
                            } => {
                                let grant = Grant {
                                    jobs: jobs.into_iter().map(ChunkId).collect(),
                                    stolen,
                                };
                                if grant_tx.send((seq, grant, exhausted)).is_err() {
                                    return;
                                }
                            }
                            Message::ShipAck => {
                                let _ = ack_tx.send(());
                            }
                            // Anything else mid-run is noise; the head never
                            // initiates other traffic after Welcome.
                            _ => {}
                        }
                    }
                    Err(_) => return, // EOF or link error: pending recvs see Disconnected
                }
            }
        });

        // --- Heartbeats at half the announced cadence. A poisoned link
        // stops beating on purpose: the head must declare this worker
        // lost and forfeit its leases. ---
        let hb_tx = Arc::clone(&tx);
        let hb_done = &done;
        let hb_poisoned = Arc::clone(&poisoned);
        let hb_interval = (heartbeat / 2).max(Duration::from_millis(10));
        scope.spawn(move || {
            let mut seq = 0u64;
            while !hb_done.load(Ordering::Relaxed) {
                std::thread::sleep(hb_interval);
                if hb_done.load(Ordering::Relaxed) || hb_poisoned.load(Ordering::Relaxed) {
                    return;
                }
                seq += 1;
                if hb_tx.lock().send(&Message::Heartbeat { seq }).is_err() {
                    return;
                }
            }
        });

        // --- The cluster itself: unchanged core machinery. ---
        let outcome = run_cluster(
            app,
            params,
            layout,
            placement,
            fabric,
            cluster,
            spec.cluster as usize,
            cfg,
            &port,
            &retry_counter,
        );

        // --- Ship the result, then let the background threads go. ---
        let shipped = ship(&outcome, t0, &retry_counter, &port, &ack_rx, net);
        done.store(true, Ordering::Relaxed);
        (outcome, shipped)
    });

    let robj_bytes = shipped_bytes?;
    // Clean goodbye (best-effort: the result is already banked).
    let _ = tx.lock().send(&Message::Goodbye);
    Ok(WorkerOutcome {
        outcome,
        robj_bytes,
    })
}

/// Encode + ship the cluster outcome; wait for the head's ack.
fn ship<R: RobjCodec>(
    outcome: &ClusterOutcome<R>,
    t0: Instant,
    retry_counter: &AtomicU64,
    port: &NetHeadPort,
    ack_rx: &Receiver<()>,
    net: &NetConfig,
) -> Result<usize, NetError> {
    if port.poisoned.load(Ordering::Relaxed) {
        // A grant went missing mid-run: the head may hold leases this
        // worker never executed. Shipping (and the Goodbye that follows a
        // successful ship) would bank our robj and leave those leases
        // assigned forever — the run would end `JobsFailed`. Dying without
        // shipping instead makes the head forfeit everything we held and
        // completed, and survivors re-run it to the exact result.
        return Err(NetError::Protocol(
            "link poisoned after a missed JobGrant; withholding robj so the head \
             forfeits this worker's work"
                .into(),
        ));
    }
    let robj = outcome
        .robj
        .as_ref()
        .ok_or_else(|| NetError::Protocol("cluster produced no reduction object".into()))?;
    let encoded = robj.encode_robj();
    let robj_bytes = encoded.len();
    let report = WireClusterReport {
        slaves: outcome
            .stats
            .iter()
            .map(|s| WireSlaveStats {
                processing_ns: s.processing.as_nanos() as u64,
                retrieval_ns: s.retrieval.as_nanos() as u64,
                fetch_stall_ns: s.fetch_stall.as_nanos() as u64,
                jobs: s.jobs,
                stolen_jobs: s.stolen_jobs,
                units: s.units,
                bytes_local: s.bytes_local,
                bytes_remote: s.bytes_remote,
            })
            .collect(),
        fetch_failures: outcome.recovery.fetch_failures,
        retries: retry_counter.load(Ordering::Relaxed),
        slaves_retired: outcome.recovery.slaves_retired,
        slaves_killed: outcome.recovery.slaves_killed,
        wall_ns: outcome.local_done.saturating_duration_since(t0).as_nanos() as u64,
        error: outcome.error.clone(),
    };
    port.send(&Message::RobjShip {
        robj: encoded,
        report,
    })?;
    match ack_rx.recv_timeout(net.io_timeout) {
        Ok(()) => Ok(robj_bytes),
        Err(RecvTimeoutError::Timeout) => Err(NetError::Protocol(
            "no ShipAck within io_timeout — result may not be banked".into(),
        )),
        Err(RecvTimeoutError::Disconnected) => Err(NetError::Io(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "connection to head lost before ShipAck",
        ))),
    }
}
