//! `cb-net` — the real wire under the cloud-bursting runtime.
//!
//! The paper's head/master/slave architecture (§III-B) runs in
//! `cloudburst-core` as threads in one process. This crate puts the
//! head↔master control plane on an actual network so a run can span OS
//! processes and machines:
//!
//! * [`wire`] — the versioned, length-prefixed binary protocol (handshake,
//!   job batches, lease resolution, heartbeats, reduction-object shipping);
//! * [`robj`] — canonical byte encodings for shipped reduction objects
//!   ([`robj::RobjCodec`]), exact and arrival-order independent so a
//!   distributed run reproduces the single-process result *byte for byte*;
//! * [`transport`] — framed links over TCP or in-process channels
//!   (loopback), with deadlines and capped+jittered reconnect;
//! * [`head`] — the head process: accepts workers, owns the global
//!   `JobPool`, performs the global reduction over robjs received off the
//!   wire, detects peer loss by heartbeat and forfeits a dead worker's
//!   leases back into the pool;
//! * [`worker`] — the worker process: one cluster (master + slaves) driven
//!   by `cloudburst_core::run_cluster`, reaching the head through a
//!   TCP-backed [`cloudburst_core::HeadPort`].
//!
//! The in-process runtime is the loopback special case: `run_cluster`
//! cannot tell a `Mutex<JobPool>` from a socket — both are just a
//! [`cloudburst_core::HeadPort`].

pub mod head;
pub mod robj;
pub mod transport;
pub mod wire;
pub mod worker;

pub use head::{handshake_one, run_head, serve_head, HeadPeer, PeerSpec};
pub use robj::RobjCodec;
pub use transport::{
    connect_with_backoff, loopback_pair, split_tcp, Endpoint, LinkRx, LinkTx, NetConfig,
};
pub use wire::{Message, WireError, MAX_FRAME_BYTES, PROTOCOL_VERSION};
pub use worker::{run_worker, run_worker_on_links, NetError, WorkerSpec};

use cb_storage::layout::{DatasetLayout, Placement};

/// FNV-1a fingerprint over the dataset layout, placement, and application
/// tag. Head and workers must compute identical fingerprints from their own
/// index/arguments; a mismatch (different dataset, different chunking,
/// different app parameters) is rejected at handshake instead of silently
/// producing a wrong answer.
pub fn fingerprint(layout: &DatasetLayout, placement: &Placement, app_tag: &str) -> u64 {
    const OFFSET: u64 = 0xcbf29ce484222325;
    const PRIME: u64 = 0x100000001b3;
    let mut h = OFFSET;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(PRIME);
        }
    };
    eat(app_tag.as_bytes());
    for f in &layout.files {
        eat(f.name.as_bytes());
        eat(&f.size.to_le_bytes());
    }
    for c in &layout.chunks {
        eat(&c.file.0.to_le_bytes());
        eat(&c.offset.to_le_bytes());
        eat(&c.len.to_le_bytes());
        eat(&c.units.to_le_bytes());
    }
    for i in 0..placement.n_files() {
        eat(&placement
            .home(cb_storage::layout::FileId(i as u32))
            .0
            .to_le_bytes());
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use cb_storage::layout::{ChunkId, ChunkMeta, FileId, FileMeta, LocationId};

    fn layout() -> DatasetLayout {
        DatasetLayout {
            files: vec![FileMeta {
                id: FileId(0),
                name: "f0".into(),
                size: 8,
            }],
            chunks: vec![ChunkMeta {
                id: ChunkId(0),
                file: FileId(0),
                offset: 0,
                len: 8,
                units: 1,
            }],
        }
    }

    #[test]
    fn fingerprint_is_sensitive_to_inputs() {
        let l = layout();
        let p = Placement::all_at(1, LocationId(0));
        let base = fingerprint(&l, &p, "wordcount");
        assert_eq!(base, fingerprint(&l, &p, "wordcount"), "deterministic");
        assert_ne!(base, fingerprint(&l, &p, "knn"), "app tag matters");
        let p2 = Placement::all_at(1, LocationId(3));
        assert_ne!(base, fingerprint(&l, &p2, "wordcount"), "placement matters");
        let mut l2 = l.clone();
        l2.chunks[0].len = 4;
        assert_ne!(base, fingerprint(&l2, &p, "wordcount"), "layout matters");
    }
}
