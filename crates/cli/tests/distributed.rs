//! Multi-process end-to-end: launch the real `cloudburst` binary as one
//! head and two workers over localhost TCP and diff the shipped result
//! against a single-process `cloudburst run` — byte for byte. The second
//! test `kill -9`s a worker mid-run and the answer must still be exact.

use std::net::TcpListener;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_cloudburst"))
}

fn run_ok(args: &[&str]) -> String {
    let out = bin().args(args).output().expect("spawn cloudburst");
    assert!(
        out.status.success(),
        "cloudburst {args:?} failed:\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf8 output")
}

fn temp_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("cb-dist-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// A port the OS just handed out and released — free for our head to bind.
fn free_port() -> u16 {
    TcpListener::bind("127.0.0.1:0")
        .unwrap()
        .local_addr()
        .unwrap()
        .port()
}

/// Wait for a child with a hard deadline; kill and fail on overrun so a hung
/// head can never wedge the test suite.
fn wait_with_deadline(mut child: Child, what: &str, deadline: Duration) -> std::process::Output {
    let t0 = Instant::now();
    loop {
        match child.try_wait().expect("try_wait") {
            Some(_) => return child.wait_with_output().expect("collect output"),
            None if t0.elapsed() > deadline => {
                let _ = child.kill();
                panic!("{what} still running after {deadline:?}");
            }
            None => std::thread::sleep(Duration::from_millis(50)),
        }
    }
}

struct Corpus {
    dir: String,
    index: String,
}

fn make_corpus(tag: &str) -> Corpus {
    let dir = temp_dir(tag);
    let dir_s = dir.to_str().unwrap().to_owned();
    let index = format!("{dir_s}.grix");
    run_ok(&[
        "generate",
        "--kind",
        "words",
        "--out",
        &dir_s,
        "--files",
        "4",
        "--per-file",
        "6000",
        "--per-chunk",
        "1000",
        "--vocab",
        "400",
        "--seed",
        "11",
    ]);
    run_ok(&[
        "organize",
        "--store",
        &dir_s,
        "--unit-bytes",
        "8",
        "--chunk-bytes",
        "8000",
        "--out",
        &index,
    ]);
    Corpus { dir: dir_s, index }
}

fn spawn_head(c: &Corpus, addr: &str, robj: &str, extra: &[&str]) -> Child {
    bin()
        .args([
            "head",
            "--listen",
            addr,
            "--app",
            "wordcount",
            "--index",
            &c.index,
            "--workers",
            "2",
            "--frac-local",
            "0.5",
            "--robj-out",
            robj,
        ])
        .args(extra)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn head")
}

fn spawn_worker(c: &Corpus, addr: &str, cluster: &str, extra: &[&str]) -> Child {
    bin()
        .args([
            "worker",
            "--connect",
            addr,
            "--app",
            "wordcount",
            "--index",
            &c.index,
            "--data",
            &c.dir,
            "--data2",
            &c.dir,
            "--frac-local",
            "0.5",
            "--cluster",
            cluster,
            "--cores",
            "1",
        ])
        .args(extra)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn worker")
}

#[test]
fn three_process_run_matches_single_process() {
    let c = make_corpus("ok");
    let single = format!("{}-single.robj", c.dir);
    let dist = format!("{}-dist.robj", c.dir);
    run_ok(&[
        "run",
        "--app",
        "wordcount",
        "--index",
        &c.index,
        "--data",
        &c.dir,
        "--data2",
        &c.dir,
        "--frac-local",
        "0.5",
        "--robj-out",
        &single,
    ]);

    let addr = format!("127.0.0.1:{}", free_port());
    let head = spawn_head(&c, &addr, &dist, &[]);
    // Workers reconnect with backoff, so spawn order doesn't matter.
    let w0 = spawn_worker(&c, &addr, "0", &[]);
    let w1 = spawn_worker(&c, &addr, "1", &[]);

    let out = wait_with_deadline(head, "head", Duration::from_secs(120));
    assert!(
        out.status.success(),
        "head failed:\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    wait_with_deadline(w0, "worker 0", Duration::from_secs(30));
    wait_with_deadline(w1, "worker 1", Duration::from_secs(30));

    let a = std::fs::read(&single).expect("single-process robj");
    let b = std::fs::read(&dist).expect("distributed robj");
    assert_eq!(
        a, b,
        "distributed result must match single-process byte for byte"
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("wordcount: 400 distinct words"), "{stdout}");
}

#[test]
fn worker_killed_mid_run_still_yields_exact_result() {
    let c = make_corpus("kill");
    let single = format!("{}-single.robj", c.dir);
    let dist = format!("{}-dist.robj", c.dir);
    run_ok(&[
        "run",
        "--app",
        "wordcount",
        "--index",
        &c.index,
        "--data",
        &c.dir,
        "--data2",
        &c.dir,
        "--frac-local",
        "0.5",
        "--robj-out",
        &single,
    ]);

    let addr = format!("127.0.0.1:{}", free_port());
    // Stretch each job to ~200 ms of synthetic compute (24 jobs, 1 core per
    // worker) so the run is still a couple of seconds from done when the
    // victim dies, and the survivor is alive to absorb the forfeited jobs.
    let stretch: &[&str] = &["--compute-ns", "200000"];
    let head = spawn_head(&c, &addr, &dist, &["--heartbeat-ms", "100"]);
    let w0 = spawn_worker(&c, &addr, "0", stretch);
    let victim = spawn_worker(&c, &addr, "1", stretch);

    // Let the victim handshake, take a batch, and report some completions —
    // the hardest recovery case — then kill it dead, no goodbye.
    std::thread::sleep(Duration::from_millis(800));
    let pid = victim.id();
    let status = Command::new("kill")
        .args(["-9", &pid.to_string()])
        .status()
        .expect("run kill");
    assert!(status.success(), "kill -9 {pid} failed");
    wait_with_deadline(victim, "victim worker", Duration::from_secs(10));

    let out = wait_with_deadline(head, "head", Duration::from_secs(120));
    assert!(
        out.status.success(),
        "head failed after worker loss:\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    wait_with_deadline(w0, "surviving worker", Duration::from_secs(60));

    let a = std::fs::read(&single).expect("single-process robj");
    let b = std::fs::read(&dist).expect("distributed robj");
    assert_eq!(a, b, "result must be exact despite a worker dying mid-run");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("(lost)"),
        "report should mark the lost worker:\n{stdout}"
    );
}
