//! End-to-end CLI test: drive the installed binary through the full
//! generate → organize → inspect → run → simulate workflow on a temp
//! directory, exactly as a user would.

use std::path::PathBuf;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_cloudburst"))
}

fn run_ok(args: &[&str]) -> String {
    let out = bin().args(args).output().expect("spawn cloudburst");
    assert!(
        out.status.success(),
        "cloudburst {args:?} failed:\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf8 output")
}

fn run_err(args: &[&str]) -> String {
    let out = bin().args(args).output().expect("spawn cloudburst");
    assert!(
        !out.status.success(),
        "cloudburst {args:?} unexpectedly succeeded"
    );
    String::from_utf8_lossy(&out.stderr).into_owned()
}

fn temp_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("cb-cli-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

#[test]
fn full_workflow_generate_organize_inspect_run() {
    let dir = temp_dir("flow");
    let dir_s = dir.to_str().unwrap();
    let index = format!("{dir_s}.grix");

    // generate a words dataset on disk
    let out = run_ok(&[
        "generate",
        "--kind",
        "words",
        "--out",
        dir_s,
        "--files",
        "4",
        "--per-file",
        "5000",
        "--per-chunk",
        "1000",
        "--vocab",
        "500",
    ]);
    assert!(out.contains("generated"), "{out}");
    assert!(out.contains("4 files / 20 chunks"), "{out}");

    // organize re-derives the same index from the raw files
    let reout = run_ok(&[
        "organize",
        "--store",
        dir_s,
        "--unit-bytes",
        "8",
        "--chunk-bytes",
        "8000",
    ]);
    assert!(reout.contains("into 20 chunks"), "{reout}");

    // inspect validates it
    let ins = run_ok(&["inspect", &index]);
    assert!(ins.contains("VALID"), "{ins}");
    assert!(ins.contains("20 chunks"), "{ins}");

    // run wordcount over it
    let run_out = run_ok(&[
        "run",
        "--app",
        "wordcount",
        "--index",
        &index,
        "--data",
        dir_s,
        "--cores",
        "2",
    ]);
    assert!(run_out.contains("distinct words"), "{run_out}");
    assert!(run_out.contains("jobs"), "{run_out}");

    std::fs::remove_dir_all(&dir).unwrap();
    std::fs::remove_file(&index).unwrap();
}

#[test]
fn knn_run_over_generated_points() {
    let dir = temp_dir("knn");
    let dir_s = dir.to_str().unwrap();
    run_ok(&[
        "generate",
        "--kind",
        "points",
        "--out",
        dir_s,
        "--files",
        "3",
        "--per-file",
        "2000",
        "--per-chunk",
        "500",
        "--dim",
        "3",
    ]);
    let index = format!("{dir_s}.grix");
    let out = run_ok(&[
        "run", "--app", "knn", "--index", &index, "--data", dir_s, "--dim", "3", "--k", "5",
    ]);
    assert!(out.contains("5 nearest"), "{out}");
    assert_eq!(out.matches("distance²").count(), 5, "{out}");
    std::fs::remove_dir_all(&dir).unwrap();
    std::fs::remove_file(&index).unwrap();
}

#[test]
fn split_site_run_matches_single_site() {
    // Generate once, then split the files across two directories and run
    // hybrid: the answer must match the single-site run.
    let dir = temp_dir("split-a");
    let dir_s = dir.to_str().unwrap();
    run_ok(&[
        "generate",
        "--kind",
        "words",
        "--out",
        dir_s,
        "--files",
        "4",
        "--per-file",
        "3000",
        "--per-chunk",
        "750",
        "--vocab",
        "100",
        "--seed",
        "5",
    ]);
    let index = format!("{dir_s}.grix");

    let single = run_ok(&[
        "run",
        "--app",
        "wordcount",
        "--index",
        &index,
        "--data",
        dir_s,
    ]);

    // Move the second half of the files to a second "site".
    let dir2 = temp_dir("split-b");
    std::fs::create_dir_all(&dir2).unwrap();
    for f in ["part-00002", "part-00003"] {
        std::fs::rename(dir.join(f), dir2.join(f)).unwrap();
    }
    let hybrid = run_ok(&[
        "run",
        "--app",
        "wordcount",
        "--index",
        &index,
        "--data",
        dir_s,
        "--data2",
        dir2.to_str().unwrap(),
        "--frac-local",
        "0.5",
        "--cores",
        "2",
        "--cores2",
        "2",
    ]);

    // Compare the word tables (first lines up to the report).
    let table = |s: &str| -> Vec<String> {
        s.lines()
            .take_while(|l| !l.starts_with("cluster"))
            .map(str::to_owned)
            .collect()
    };
    assert_eq!(table(&single), table(&hybrid));
    assert!(
        hybrid.contains("remote"),
        "hybrid report lists the second cluster"
    );

    std::fs::remove_dir_all(&dir).unwrap();
    std::fs::remove_dir_all(&dir2).unwrap();
    std::fs::remove_file(&index).unwrap();
}

#[test]
fn simulate_subcommand_prints_report() {
    let out = run_ok(&["simulate", "--app", "knn", "--env", "17/83"]);
    assert!(out.contains("simulating knn on env-17/83"), "{out}");
    assert!(out.contains("global-reduction"), "{out}");

    let with_timeline = run_ok(&[
        "simulate",
        "--app",
        "kmeans",
        "--env",
        "50/50",
        "--timeline",
        "true",
    ]);
    assert!(with_timeline.contains("gantt over"), "{with_timeline}");
}

#[test]
fn bad_input_fails_cleanly() {
    let e = run_err(&["frobnicate"]);
    assert!(e.contains("unknown subcommand"), "{e}");

    let e = run_err(&["simulate", "--app", "nope"]);
    assert!(e.contains("unknown --app"), "{e}");

    let e = run_err(&[
        "run",
        "--app",
        "wordcount",
        "--index",
        "/no/such/file",
        "--data",
        "/tmp",
    ]);
    assert!(e.contains("error"), "{e}");

    let e = run_err(&[
        "organize",
        "--store",
        "/tmp",
        "--unit-bytes",
        "8",
        "--typo",
        "x",
    ]);
    assert!(e.contains("unknown flag"), "{e}");
}

#[test]
fn inspect_rejects_corrupt_index() {
    let dir = temp_dir("corrupt");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("bad.grix");
    std::fs::write(&path, b"GRIXgarbage-not-an-index").unwrap();
    let e = run_err(&["inspect", path.to_str().unwrap()]);
    assert!(e.contains("checksum") || e.contains("truncated"), "{e}");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn simulate_config_file() {
    let dir = temp_dir("config");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("scenario.json");
    std::fs::write(
        &path,
        r#"{ "app": "knn", "frac_local": 0.25, "local_cores": 8, "cloud_cores": 8,
             "wan_multiplier": 4.0, "allow_stealing": false }"#,
    )
    .unwrap();
    let out = run_ok(&["simulate", "--config", path.to_str().unwrap()]);
    assert!(out.contains("custom-25/75"), "{out}");
    assert!(out.contains("global-reduction"), "{out}");
    // Stealing disabled: the stolen column of both clusters must be zero.
    for line in out
        .lines()
        .filter(|l| l.starts_with("local") || l.starts_with("EC2"))
    {
        assert!(
            line.trim_end().ends_with('0'),
            "no stealing expected: {line}"
        );
    }

    // Unknown fields are rejected (typo protection).
    std::fs::write(&path, r#"{ "app": "knn", "frac_locaal": 0.25 }"#).unwrap();
    let e = run_err(&["simulate", "--config", path.to_str().unwrap()]);
    assert!(e.contains("unknown field"), "{e}");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn pagerank_run_over_generated_graph() {
    let dir = temp_dir("pr");
    let dir_s = dir.to_str().unwrap();
    run_ok(&[
        "generate",
        "--kind",
        "graph",
        "--out",
        dir_s,
        "--files",
        "3",
        "--per-file",
        "4000",
        "--per-chunk",
        "1000",
        "--pages",
        "300",
    ]);
    let index = format!("{dir_s}.grix");
    let out = run_ok(&[
        "run", "--app", "pagerank", "--index", &index, "--data", dir_s, "--passes", "6",
    ]);
    assert!(
        out.contains("pagerank: 300 pages") || out.contains("pagerank: 2"),
        "{out}"
    );
    assert!(out.contains("pass 1: delta"), "{out}");
    assert!(out.contains("rank"), "{out}");
    std::fs::remove_dir_all(&dir).unwrap();
    std::fs::remove_file(&index).unwrap();
}
