//! `cloudburst` — the command-line face of the framework.
//!
//! ```text
//! cloudburst generate --kind words --out /tmp/corpus
//! cloudburst organize --store /tmp/corpus --unit-bytes 8
//! cloudburst inspect /tmp/corpus.grix
//! cloudburst run --app wordcount --index /tmp/corpus.grix --data /tmp/corpus
//! cloudburst simulate --app pagerank --env 17/83 --timeline true
//! ```

#![deny(unsafe_code)]

mod args;
mod commands;

use args::Args;
use commands::{distributed, generate, inspect, organize, run, simulate};

fn usage() -> String {
    format!(
        "cloudburst — data-intensive computing with cloud bursting\n\n\
         subcommands:\n  {}\n  {}\n  {}\n  {}\n  {}\n  {}\n  {}\n",
        generate::USAGE,
        organize::USAGE,
        inspect::USAGE,
        run::USAGE,
        simulate::USAGE,
        distributed::HEAD_USAGE,
        distributed::WORKER_USAGE
    )
}

fn main() {
    let args = match Args::parse(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n\n{}", usage());
            std::process::exit(2);
        }
    };
    let Some(cmd) = args.positional().first().map(String::as_str) else {
        eprint!("{}", usage());
        std::process::exit(2);
    };
    let result = match cmd {
        "generate" => generate::run(&args),
        "organize" => organize::run(&args),
        "inspect" => inspect::run(&args),
        "run" => run::run(&args),
        "simulate" => simulate::run(&args),
        "head" => distributed::head(&args),
        "worker" => distributed::worker(&args),
        "help" | "--help" | "-h" => {
            print!("{}", usage());
            return;
        }
        other => {
            eprintln!("unknown subcommand {other:?}\n\n{}", usage());
            std::process::exit(2);
        }
    };
    match result {
        Ok(text) => print!("{text}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
