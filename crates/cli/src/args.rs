//! A small `--flag value` argument parser (the workspace deliberately has
//! no CLI-framework dependency).

use std::collections::BTreeMap;

/// Parsed flags plus positional arguments.
#[derive(Debug, Clone, Default)]
pub struct Args {
    flags: BTreeMap<String, String>,
    positional: Vec<String>,
}

/// Error produced while parsing or reading arguments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArgError(pub String);

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ArgError {}

impl Args {
    /// Parse `--key value` pairs and positionals. `--key=value` also works.
    pub fn parse<I: IntoIterator<Item = String>>(raw: I) -> Result<Args, ArgError> {
        let mut args = Args::default();
        let mut iter = raw.into_iter().peekable();
        while let Some(a) = iter.next() {
            if let Some(stripped) = a.strip_prefix("--") {
                if let Some((k, v)) = stripped.split_once('=') {
                    args.flags.insert(k.to_owned(), v.to_owned());
                } else {
                    let v = iter
                        .next()
                        .ok_or_else(|| ArgError(format!("--{stripped} needs a value")))?;
                    args.flags.insert(stripped.to_owned(), v);
                }
            } else {
                args.positional.push(a);
            }
        }
        Ok(args)
    }

    pub fn positional(&self) -> &[String] {
        &self.positional
    }

    /// A string flag, if present.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.flags.get(key).map(String::as_str)
    }

    /// A required string flag.
    pub fn require(&self, key: &str) -> Result<&str, ArgError> {
        self.get(key)
            .ok_or_else(|| ArgError(format!("missing required flag --{key}")))
    }

    /// An optional flag parsed to `T`, with a default.
    pub fn get_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, ArgError> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| ArgError(format!("--{key}: cannot parse {v:?}"))),
        }
    }

    /// A required flag parsed to `T`.
    pub fn require_parsed<T: std::str::FromStr>(&self, key: &str) -> Result<T, ArgError> {
        let v = self.require(key)?;
        v.parse()
            .map_err(|_| ArgError(format!("--{key}: cannot parse {v:?}")))
    }

    /// Reject unknown flags (catches typos early).
    pub fn check_known(&self, known: &[&str]) -> Result<(), ArgError> {
        for k in self.flags.keys() {
            if !known.contains(&k.as_str()) {
                return Err(ArgError(format!(
                    "unknown flag --{k}; expected one of: {}",
                    known.join(", ")
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &[&str]) -> Args {
        Args::parse(s.iter().map(|x| x.to_string())).unwrap()
    }

    #[test]
    fn flags_and_positionals() {
        let a = parse(&[
            "organize",
            "--store",
            "/tmp/x",
            "--chunk-bytes",
            "4096",
            "extra",
        ]);
        assert_eq!(a.positional(), &["organize", "extra"]);
        assert_eq!(a.get("store"), Some("/tmp/x"));
        assert_eq!(a.get_or("chunk-bytes", 0u64).unwrap(), 4096);
        assert_eq!(a.get_or("missing", 7u32).unwrap(), 7);
    }

    #[test]
    fn equals_syntax() {
        let a = parse(&["--k=v", "--n=3"]);
        assert_eq!(a.get("k"), Some("v"));
        assert_eq!(a.require_parsed::<u32>("n").unwrap(), 3);
    }

    #[test]
    fn missing_value_is_error() {
        let err = Args::parse(vec!["--dangling".to_string()]).unwrap_err();
        assert!(err.0.contains("needs a value"));
    }

    #[test]
    fn require_and_parse_errors() {
        let a = parse(&["--n", "abc"]);
        assert!(a.require("absent").is_err());
        assert!(a.require_parsed::<u32>("n").is_err());
    }

    #[test]
    fn unknown_flags_detected() {
        let a = parse(&["--good", "1", "--typo", "2"]);
        assert!(a.check_known(&["good"]).is_err());
        assert!(a.check_known(&["good", "typo"]).is_ok());
    }
}
