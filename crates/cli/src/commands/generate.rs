//! `cloudburst generate` — materialize a synthetic dataset (points, graph,
//! or words) onto disk, with its index.

use super::CmdError;
use crate::args::Args;
use cb_apps::gen::{GraphSpec, PointMode, PointsSpec, WordsSpec};
use cb_storage::builder::{materialize, StoreMap};
use cb_storage::layout::{DatasetLayout, LocationId, Placement};
use cb_storage::store::{DiskStore, ObjectStore};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Arc;

pub const USAGE: &str = "cloudburst generate --kind points|graph|words --out <dir> \
[--files <n>] [--per-file <records>] [--per-chunk <records>] [--dim <d>] \
[--pages <n>] [--vocab <n>] [--seed <n>]";

pub fn run(args: &Args) -> Result<String, CmdError> {
    args.check_known(&[
        "kind",
        "out",
        "files",
        "per-file",
        "per-chunk",
        "dim",
        "pages",
        "vocab",
        "seed",
    ])?;
    let kind = args.require("kind")?;
    let out = args.require("out")?.to_owned();
    let files: usize = args.get_or("files", 8)?;
    let per_file: usize = args.get_or("per-file", 10_000)?;
    let per_chunk: usize = args.get_or("per-chunk", 1_000)?;
    let seed: u64 = args.get_or("seed", 42)?;

    let store: Arc<dyn ObjectStore> = Arc::new(DiskStore::open("disk", &out)?);
    let mut stores: StoreMap = BTreeMap::new();
    stores.insert(LocationId(0), Arc::clone(&store));

    let (layout, what): (DatasetLayout, String) = match kind {
        "points" => {
            let dim: usize = args.get_or("dim", 4)?;
            let spec = PointsSpec {
                n_files: files,
                points_per_file: per_file,
                points_per_chunk: per_chunk,
                dim,
                seed,
                mode: PointMode::Uniform,
            };
            let layout = spec.layout();
            let placement = Placement::all_at(files, LocationId(0));
            materialize(&layout, &placement, &stores, spec.fill())?;
            (
                layout,
                format!("{}x{} uniform {dim}-d points", files, per_file),
            )
        }
        "graph" => {
            let pages: u32 = args.get_or("pages", 10_000)?;
            let spec = GraphSpec {
                n_pages: pages,
                n_files: files,
                edges_per_file: per_file,
                edges_per_chunk: per_chunk,
                seed,
            };
            let layout = spec.layout();
            let placement = Placement::all_at(files, LocationId(0));
            materialize(&layout, &placement, &stores, spec.fill())?;
            (
                layout,
                format!("{} edges over {pages} pages", spec.n_edges()),
            )
        }
        "words" => {
            let vocab: u64 = args.get_or("vocab", 10_000)?;
            let spec = WordsSpec {
                vocabulary: vocab,
                n_files: files,
                words_per_file: per_file,
                words_per_chunk: per_chunk,
                seed,
            };
            let layout = spec.layout();
            let placement = Placement::all_at(files, LocationId(0));
            materialize(&layout, &placement, &stores, spec.fill())?;
            (layout, format!("{} words, vocab {vocab}", files * per_file))
        }
        other => {
            return Err(CmdError::Other(format!(
                "unknown --kind {other:?}; expected points, graph, or words"
            )))
        }
    };

    let index_path = format!("{}.grix", out.trim_end_matches('/'));
    std::fs::write(&index_path, cb_storage::index::encode(&layout))?;

    let mut s = String::new();
    let _ = writeln!(s, "generated {what}");
    let _ = writeln!(
        s,
        "  {} files / {} chunks / {} bytes in {out}",
        layout.files.len(),
        layout.n_jobs(),
        layout.total_bytes()
    );
    let _ = writeln!(s, "  index: {index_path}");
    Ok(s)
}
