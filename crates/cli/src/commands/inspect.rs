//! `cloudburst inspect` — decode, validate, and summarize an index file.

use super::CmdError;
use crate::args::Args;
use cb_storage::index;
use std::fmt::Write as _;

pub const USAGE: &str = "cloudburst inspect <index-file> [--chunks true]";

pub fn run(args: &Args) -> Result<String, CmdError> {
    args.check_known(&["chunks"])?;
    let path = args
        .positional()
        .get(1)
        .ok_or_else(|| CmdError::Other(format!("usage: {USAGE}")))?;
    let show_chunks: bool = args.get_or("chunks", false)?;

    let bytes = std::fs::read(path)?;
    let layout = index::decode(&bytes).map_err(|e| CmdError::Other(e.to_string()))?;

    let mut s = String::new();
    let _ = writeln!(s, "index {path}: VALID");
    let _ = writeln!(
        s,
        "  {} files, {} chunks (jobs), {} bytes, {} data units",
        layout.files.len(),
        layout.n_jobs(),
        layout.total_bytes(),
        layout.total_units(),
    );
    let min = layout.chunks.iter().map(|c| c.len).min().unwrap_or(0);
    let max = layout.chunks.iter().map(|c| c.len).max().unwrap_or(0);
    let _ = writeln!(s, "  chunk sizes: min {min} / max {max} bytes");
    for f in &layout.files {
        let n = layout.chunks_of_file(f.id).count();
        let _ = writeln!(s, "  {}  {} bytes  {} chunks", f.name, f.size, n);
    }
    if show_chunks {
        for c in &layout.chunks {
            let _ = writeln!(
                s,
                "    {} file{} offset {} len {} units {}",
                c.id, c.file.0, c.offset, c.len, c.units
            );
        }
    }
    Ok(s)
}
