//! `cloudburst inspect` — decode, validate, and summarize an index file,
//! or (`inspect trace`) an event trace captured with `--trace-out`.

use super::CmdError;
use crate::args::Args;
use cb_storage::index;
use cloudburst_core::obs::{self, EventKind, MetricsRegistry, Timeline, TraceSummary};
use std::fmt::Write as _;

pub const USAGE: &str = "cloudburst inspect <index-file> [--chunks true] | \
cloudburst inspect trace <trace.jsonl> [--top <n>] [--width <cols>]";

/// `inspect trace <file>`: validate a JSONL event trace against the schema
/// and its pairing invariants, then print the derived views — per-cluster
/// aggregates, the Gantt timeline with utilization, the slowest fetches,
/// and the metrics registry. Everything shown is computed from the event
/// stream alone (see docs/OBSERVABILITY.md).
fn run_trace(args: &Args) -> Result<String, CmdError> {
    args.check_known(&["top", "width"])?;
    let path = args
        .positional()
        .get(2)
        .ok_or_else(|| CmdError::Other(format!("usage: {USAGE}")))?;
    let top: usize = args.get_or("top", 5)?;
    let width: usize = args.get_or("width", 100)?;
    if width == 0 {
        return Err(CmdError::Other("--width must be >= 1".into()));
    }

    let text = std::fs::read_to_string(path)?;
    let events = obs::decode_jsonl(&text).map_err(CmdError::Other)?;
    obs::check_invariants(&events)
        .map_err(|e| CmdError::Other(format!("{path}: invariant violation: {e}")))?;

    let mut s = String::new();
    let _ = writeln!(
        s,
        "trace {path}: VALID ({} schema v{}, {} events)",
        obs::SCHEMA_NAME,
        obs::SCHEMA_VERSION,
        events.len()
    );

    let summary = TraceSummary::from_events(&events);
    for (c, cs) in &summary.clusters {
        let _ = writeln!(
            s,
            "  cluster {c}: {} jobs ({} stolen), process {:.3}s, fetch {:.3}s, \
             stall {:.3}s, {} B local / {} B remote",
            cs.jobs,
            cs.stolen,
            cs.process_ns as f64 / 1e9,
            cs.fetch_ns as f64 / 1e9,
            cs.stall_ns as f64 / 1e9,
            cs.bytes_local,
            cs.bytes_remote,
        );
    }

    let tl = Timeline::from_events(&events);
    let _ = write!(s, "{}", tl.render_gantt(width));
    let clusters: Vec<u32> = summary.clusters.keys().copied().collect();
    for c in clusters {
        let _ = writeln!(
            s,
            "  cluster {c} utilization: {:.1}%",
            tl.cluster_utilization(c) * 100.0
        );
    }

    let slowest = obs::slowest_fetches(&events, top);
    if !slowest.is_empty() {
        let _ = writeln!(s, "slowest fetches (top {}):", slowest.len());
        for e in slowest {
            if let EventKind::FetchEnd {
                chunk,
                bytes,
                remote,
                ns,
            } = e.kind
            {
                let _ = writeln!(
                    s,
                    "  chunk {chunk:>6}  {:.3}s  {bytes} B  {}  c{}/s{}",
                    ns as f64 / 1e9,
                    if remote { "remote" } else { "local " },
                    e.cluster.map_or("?".into(), |c| c.to_string()),
                    e.slave.map_or("?".into(), |v| v.to_string()),
                );
            }
        }
    }

    let _ = write!(s, "{}", MetricsRegistry::from_events(&events).render());
    Ok(s)
}

pub fn run(args: &Args) -> Result<String, CmdError> {
    if args.positional().get(1).map(String::as_str) == Some("trace") {
        return run_trace(args);
    }
    args.check_known(&["chunks"])?;
    let path = args
        .positional()
        .get(1)
        .ok_or_else(|| CmdError::Other(format!("usage: {USAGE}")))?;
    let show_chunks: bool = args.get_or("chunks", false)?;

    let bytes = std::fs::read(path)?;
    let layout = index::decode(&bytes).map_err(|e| CmdError::Other(e.to_string()))?;

    let mut s = String::new();
    let _ = writeln!(s, "index {path}: VALID");
    let _ = writeln!(
        s,
        "  {} files, {} chunks (jobs), {} bytes, {} data units",
        layout.files.len(),
        layout.n_jobs(),
        layout.total_bytes(),
        layout.total_units(),
    );
    let min = layout.chunks.iter().map(|c| c.len).min().unwrap_or(0);
    let max = layout.chunks.iter().map(|c| c.len).max().unwrap_or(0);
    let _ = writeln!(s, "  chunk sizes: min {min} / max {max} bytes");
    for f in &layout.files {
        let n = layout.chunks_of_file(f.id).count();
        let _ = writeln!(s, "  {}  {} bytes  {} chunks", f.name, f.size, n);
    }
    if show_chunks {
        for c in &layout.chunks {
            let _ = writeln!(
                s,
                "    {} file{} offset {} len {} units {}",
                c.id, c.file.0, c.offset, c.len, c.units
            );
        }
    }
    Ok(s)
}
