//! `cloudburst head` / `cloudburst worker` — the multi-process deployment.
//!
//! One `head` process owns the global job pool and the final reduction; each
//! `worker` process runs one cluster (master + slaves) and reaches the head
//! over TCP. Head and workers independently load the same index and compute
//! the same dataset fingerprint; a worker built against different data,
//! chunking, split, or app parameters is rejected at handshake.
//!
//! The split placement convention matches `cloudburst run`: the head takes
//! `--frac-local` to declare how the file list divides between site 0 and
//! site 1, and each worker passes the same value (plus `--data2` for the
//! site-1 directory when it needs a path to it).

use super::CmdError;
use crate::args::Args;
use cb_apps::knn::{KnnApp, KnnQuery};
use cb_apps::selection::{BoxQuery, SelectionApp};
use cb_apps::wordcount::WordCountApp;
use cb_net::{fingerprint, run_worker, serve_head, NetConfig, RobjCodec, WorkerSpec};
use cb_storage::builder::StoreMap;
use cb_storage::layout::{DatasetLayout, LocationId, Placement};
use cb_storage::store::{DiskStore, ObjectStore};
use cloudburst_core::api::ReductionObject;
use cloudburst_core::config::RuntimeConfig;
use cloudburst_core::deploy::{ClusterSpec, DataFabric};
use cloudburst_core::obs::{self, RecordingSink, SinkHandle};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::net::{TcpListener, ToSocketAddrs};
use std::sync::Arc;
use std::time::Duration;

pub const HEAD_USAGE: &str = "cloudburst head --listen <addr:port> \
--app wordcount|knn|selection --index <file> --workers <n> \
[--frac-local <0..1>] [--dim <d>] [--k <n>] [--heartbeat-ms <ms>] \
[--timeout <secs>] [--compute-ns <ns>] [--robj-out <file>] \
[--trace-out <trace.jsonl>] [--timeline true]";

pub const WORKER_USAGE: &str = "cloudburst worker --connect <addr:port> \
--app wordcount|knn|selection --index <file> --data <dir> [--data2 <dir>] \
[--frac-local <0..1>] --cluster <n> [--location <site>] [--cores <n>] \
[--name <s>] [--dim <d>] [--k <n>] [--compute-ns <ns>] [--prefetch-depth <n>]";

/// Which app, with its parameters folded into the handshake tag so that a
/// worker launched with, say, a different `--k` than the head is rejected
/// instead of shipping an incompatible reduction object.
enum AppKind {
    WordCount,
    Knn { dim: usize, k: usize },
    Selection { dim: usize },
}

fn app_kind(args: &Args) -> Result<(AppKind, String), CmdError> {
    let name = args.require("app")?;
    match name {
        "wordcount" => Ok((AppKind::WordCount, "wordcount".into())),
        "knn" => {
            let dim: usize = args.get_or("dim", 4)?;
            let k: usize = args.get_or("k", 10)?;
            Ok((AppKind::Knn { dim, k }, format!("knn/dim={dim}/k={k}")))
        }
        "selection" => {
            let dim: usize = args.get_or("dim", 4)?;
            Ok((AppKind::Selection { dim }, format!("selection/dim={dim}")))
        }
        other => Err(CmdError::Other(format!(
            "unknown --app {other:?}; distributed runs support wordcount, knn, \
             or selection (pagerank iterates and is single-process only)"
        ))),
    }
}

fn load_layout(args: &Args) -> Result<DatasetLayout, CmdError> {
    let bytes = std::fs::read(args.require("index")?)?;
    cb_storage::index::decode(&bytes).map_err(|e| CmdError::Other(e.to_string()))
}

/// Site-0/site-1 placement from `--frac-local`; all-at-site-0 without it.
fn placement_for(args: &Args, layout: &DatasetLayout) -> Result<Placement, CmdError> {
    Ok(match args.get("frac-local") {
        Some(_) => {
            let frac: f64 = args.get_or("frac-local", 0.5)?;
            Placement::split_fraction(layout.files.len(), frac, LocationId(0), LocationId(1))
        }
        None => Placement::all_at(layout.files.len(), LocationId(0)),
    })
}

fn net_config(args: &Args) -> Result<NetConfig, CmdError> {
    let mut net = NetConfig::default();
    let hb: u64 = args.get_or("heartbeat-ms", net.heartbeat.as_millis() as u64)?;
    net.heartbeat = Duration::from_millis(hb.max(1));
    let timeout: u64 = args.get_or("timeout", net.accept_timeout.as_secs())?;
    net.accept_timeout = Duration::from_secs(timeout.max(1));
    Ok(net)
}

pub fn head(args: &Args) -> Result<String, CmdError> {
    args.check_known(&[
        "listen",
        "app",
        "index",
        "workers",
        "frac-local",
        "dim",
        "k",
        "heartbeat-ms",
        "timeout",
        "compute-ns",
        "robj-out",
        "trace-out",
        "timeline",
    ])?;
    let (kind, tag) = app_kind(args)?;
    let layout = load_layout(args)?;
    let placement = placement_for(args, &layout)?;
    let workers: usize = args.require_parsed("workers")?;
    if workers == 0 {
        return Err(CmdError::Other("--workers must be at least 1".into()));
    }
    let net = net_config(args)?;
    let fp = fingerprint(&layout, &placement, &tag);

    let trace_out = args.get("trace-out").map(str::to_owned);
    let timeline: bool = args.get_or("timeline", false)?;
    let recorder = (trace_out.is_some() || timeline).then(RecordingSink::new);
    let cfg = RuntimeConfig {
        sink: match &recorder {
            Some(rec) => SinkHandle::new(Arc::clone(rec) as _),
            None => SinkHandle::disabled(),
        },
        synthetic_compute_ns_per_unit: args.get_or("compute-ns", 0)?,
        ..RuntimeConfig::default()
    };

    let listener = TcpListener::bind(args.require("listen")?)?;
    // Announced on stderr (stdout carries the result) so launch scripts know
    // the head is accepting before they start workers.
    eprintln!(
        "head: listening on {} for {workers} worker(s), app {tag}",
        listener.local_addr()?
    );

    let mut s = String::new();
    let report = match kind {
        AppKind::WordCount => {
            let out = serve_head::<cloudburst_core::combine::KeyedSum>(
                &listener, workers, &layout, &placement, &cfg, &net, fp, &tag,
            )
            .map_err(|e| CmdError::Other(e.to_string()))?;
            let _ = writeln!(s, "wordcount: {} distinct words", out.result.len());
            write_robj(args, &out.result)?;
            out.report
        }
        AppKind::Knn { k, .. } => {
            let out = serve_head::<cloudburst_core::combine::TopK>(
                &listener, workers, &layout, &placement, &cfg, &net, fp, &tag,
            )
            .map_err(|e| CmdError::Other(e.to_string()))?;
            let _ = writeln!(
                s,
                "knn: {k} nearest ({} robj bytes)",
                out.result.size_bytes()
            );
            write_robj(args, &out.result)?;
            out.report
        }
        AppKind::Selection { dim } => {
            let out = serve_head::<cloudburst_core::combine::Concat<u64>>(
                &listener, workers, &layout, &placement, &cfg, &net, fp, &tag,
            )
            .map_err(|e| CmdError::Other(e.to_string()))?;
            let _ = writeln!(
                s,
                "selection: {} records inside [0, 0.25)^{dim}",
                out.result.items().len()
            );
            write_robj(args, &out.result)?;
            out.report
        }
    };
    let _ = write!(s, "{}", report.render());
    if let Some(rec) = recorder {
        let events = rec.take();
        if timeline {
            let _ = write!(
                s,
                "{}",
                obs::Timeline::from_events(&events).render_gantt(100)
            );
        }
        if let Some(path) = trace_out {
            std::fs::write(&path, obs::encode_jsonl(&events))?;
            let _ = writeln!(s, "trace: {} events -> {path}", events.len());
        }
    }
    Ok(s)
}

fn write_robj<R: RobjCodec>(args: &Args, robj: &R) -> Result<(), CmdError> {
    if let Some(path) = args.get("robj-out") {
        std::fs::write(path, robj.encode_robj())?;
    }
    Ok(())
}

pub fn worker(args: &Args) -> Result<String, CmdError> {
    args.check_known(&[
        "connect",
        "app",
        "index",
        "data",
        "data2",
        "frac-local",
        "cluster",
        "location",
        "cores",
        "name",
        "dim",
        "k",
        "compute-ns",
        "prefetch-depth",
        "timeout",
    ])?;
    let (kind, tag) = app_kind(args)?;
    let layout = load_layout(args)?;
    let placement = placement_for(args, &layout)?;
    let cluster_ix: u32 = args.require_parsed("cluster")?;
    let location: u16 = args.get_or("location", cluster_ix as u16)?;
    let cores: usize = args.get_or("cores", 2)?;
    let name = args
        .get("name")
        .map(str::to_owned)
        .unwrap_or_else(|| format!("worker-{cluster_ix}"));
    let addr = args
        .require("connect")?
        .to_socket_addrs()?
        .next()
        .ok_or_else(|| CmdError::Other("--connect did not resolve to an address".into()))?;

    let mut stores: StoreMap = BTreeMap::new();
    stores.insert(
        LocationId(0),
        Arc::new(DiskStore::open("site0", args.require("data")?)?) as Arc<dyn ObjectStore>,
    );
    if let Some(data2) = args.get("data2") {
        stores.insert(
            LocationId(1),
            Arc::new(DiskStore::open("site1", data2)?) as Arc<dyn ObjectStore>,
        );
    }
    let fabric = DataFabric::direct(&stores);
    let cluster = ClusterSpec::new(&name, LocationId(location), cores);

    let defaults = RuntimeConfig::default();
    let cfg = RuntimeConfig {
        prefetch_depth: args.get_or("prefetch-depth", defaults.prefetch_depth)?,
        synthetic_compute_ns_per_unit: args.get_or("compute-ns", 0)?,
        ..defaults
    };
    let net = net_config_worker(args)?;
    let fp = fingerprint(&layout, &placement, &tag);
    let spec = WorkerSpec {
        cluster: cluster_ix,
        name: name.clone(),
        app_tag: tag.clone(),
        fingerprint: fp,
    };

    let (jobs, robj_bytes) = match kind {
        AppKind::WordCount => {
            let out = run_worker(
                &WordCountApp,
                &(),
                &layout,
                &placement,
                &fabric,
                &cluster,
                &spec,
                &cfg,
                &net,
                addr,
            )
            .map_err(|e| CmdError::Other(e.to_string()))?;
            (jobs_of(&out.outcome.stats), out.robj_bytes)
        }
        AppKind::Knn { dim, k } => {
            let app = KnnApp::new(dim, k);
            let query = KnnQuery {
                query: vec![0.5; dim],
            };
            let out = run_worker(
                &app, &query, &layout, &placement, &fabric, &cluster, &spec, &cfg, &net, addr,
            )
            .map_err(|e| CmdError::Other(e.to_string()))?;
            (jobs_of(&out.outcome.stats), out.robj_bytes)
        }
        AppKind::Selection { dim } => {
            let app = SelectionApp::new(dim);
            let query = BoxQuery::new(vec![0.0; dim], vec![0.25; dim]);
            let out = run_worker(
                &app, &query, &layout, &placement, &fabric, &cluster, &spec, &cfg, &net, addr,
            )
            .map_err(|e| CmdError::Other(e.to_string()))?;
            (jobs_of(&out.outcome.stats), out.robj_bytes)
        }
    };
    Ok(format!(
        "worker {name} (cluster {cluster_ix}): {jobs} jobs, shipped {robj_bytes} robj bytes\n"
    ))
}

/// Worker side reuses the head's heartbeat default; the actual cadence is
/// dictated by the head in `Welcome`, so only the connect/accept patience
/// flags matter here.
fn net_config_worker(args: &Args) -> Result<NetConfig, CmdError> {
    let mut net = NetConfig::default();
    let timeout: u64 = args.get_or("timeout", net.accept_timeout.as_secs())?;
    net.accept_timeout = Duration::from_secs(timeout.max(1));
    Ok(net)
}

fn jobs_of(stats: &[cloudburst_core::runtime::SlaveStats]) -> u64 {
    stats.iter().map(|s| s.jobs).sum()
}
