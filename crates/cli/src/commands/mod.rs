//! Subcommand implementations. Each returns the text it would print, so
//! integration tests can drive commands without spawning processes.

pub mod distributed;
pub mod generate;
pub mod inspect;
pub mod organize;
pub mod run;
pub mod simulate;

use crate::args::ArgError;

/// Uniform error type for commands: argument problems or I/O.
#[derive(Debug)]
pub enum CmdError {
    Args(ArgError),
    Io(std::io::Error),
    Other(String),
}

impl std::fmt::Display for CmdError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CmdError::Args(e) => write!(f, "{e}"),
            CmdError::Io(e) => write!(f, "{e}"),
            CmdError::Other(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CmdError {}

impl From<ArgError> for CmdError {
    fn from(e: ArgError) -> Self {
        CmdError::Args(e)
    }
}

impl From<std::io::Error> for CmdError {
    fn from(e: std::io::Error) -> Self {
        CmdError::Io(e)
    }
}
