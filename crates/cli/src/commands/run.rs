//! `cloudburst run` — execute an analysis over one or two disk-backed
//! sites with the real head/master/slave runtime.
//!
//! With `--data2`, the dataset is treated as split: files listed in the
//! index are homed at site 0 (`--data`) for the first `--frac-local`
//! fraction and at site 1 (`--data2`) for the rest — mirroring the paper's
//! skewed placements. The corresponding data files must exist in the
//! respective directories (e.g. from two `generate` runs split by hand, or
//! one directory copied and pruned).

use super::CmdError;
use crate::args::Args;
use cb_apps::knn::{KnnApp, KnnQuery};
use cb_apps::pagerank::{next_ranks, rank_delta, PageRankApp, RankParams};
use cb_apps::selection::{BoxQuery, SelectionApp};
use cb_apps::wordcount::WordCountApp;
use cb_net::RobjCodec;
use cb_storage::builder::StoreMap;
use cb_storage::layout::{LocationId, Placement};
use cb_storage::store::{DiskStore, ObjectStore};
use cloudburst_core::api::{GRApp, ReductionObject};
use cloudburst_core::config::RuntimeConfig;
use cloudburst_core::deploy::{ClusterSpec, DataFabric, Deployment};
use cloudburst_core::obs::{self, EventKind, RecordingSink, SinkHandle};
use cloudburst_core::runtime::run as run_gr;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Arc;

pub const USAGE: &str = "cloudburst run --app wordcount|knn|selection|pagerank \
--index <file> --data <dir> [--data2 <dir>] [--frac-local <0..1>] [--cores <n>] \
[--cores2 <n>] [--dim <d>] [--k <n>] [--passes <n>] [--fault-rate <0..1>] \
[--kill-slave <cluster:slave:after_jobs>[,..]] [--prefetch-depth <n>] \
[--trace-out <trace.jsonl>] [--timeline true]";

/// Parse a `--kill-slave` list: `cluster:slave:after_jobs`, comma-separated.
pub(crate) fn parse_kill_schedule(
    spec: &str,
) -> Result<Vec<cloudburst_core::config::SlaveKill>, CmdError> {
    spec.split(',')
        .map(|item| {
            let parts: Vec<&str> = item.split(':').collect();
            let err = || {
                CmdError::Other(format!(
                    "--kill-slave: expected cluster:slave:after_jobs, got {item:?}"
                ))
            };
            if parts.len() != 3 {
                return Err(err());
            }
            Ok(cloudburst_core::config::SlaveKill {
                cluster: parts[0].parse().map_err(|_| err())?,
                slave: parts[1].parse().map_err(|_| err())?,
                after_jobs: parts[2].parse().map_err(|_| err())?,
            })
        })
        .collect()
}

pub fn run(args: &Args) -> Result<String, CmdError> {
    args.check_known(&[
        "app",
        "index",
        "data",
        "data2",
        "frac-local",
        "cores",
        "cores2",
        "dim",
        "k",
        "passes",
        "fault-rate",
        "kill-slave",
        "prefetch-depth",
        "trace-out",
        "timeline",
        "robj-out",
        "compute-ns",
    ])?;
    let app_name = args.require("app")?;
    let index_path = args.require("index")?;
    let data = args.require("data")?;
    let cores: usize = args.get_or("cores", 4)?;

    let bytes = std::fs::read(index_path)?;
    let layout = cb_storage::index::decode(&bytes).map_err(|e| CmdError::Other(e.to_string()))?;

    let site0 = LocationId(0);
    let mut stores: StoreMap = BTreeMap::new();
    stores.insert(
        site0,
        Arc::new(DiskStore::open("site0", data)?) as Arc<dyn ObjectStore>,
    );

    let mut clusters = vec![ClusterSpec::new("local", site0, cores)];
    let placement = if let Some(data2) = args.get("data2") {
        let site1 = LocationId(1);
        let frac: f64 = args.get_or("frac-local", 0.5)?;
        let cores2: usize = args.get_or("cores2", cores)?;
        stores.insert(
            site1,
            Arc::new(DiskStore::open("site1", data2)?) as Arc<dyn ObjectStore>,
        );
        clusters.push(ClusterSpec::new("remote", site1, cores2));
        Placement::split_fraction(layout.files.len(), frac, site0, site1)
    } else {
        Placement::all_at(layout.files.len(), site0)
    };
    let mut deployment = Deployment::new(clusters, DataFabric::direct(&stores));

    // Tracing: a recording sink captures the run's event stream, written as
    // JSONL (`--trace-out`) and/or rendered as a live Gantt (`--timeline`).
    // Built before fault wiring so injected faults are observed too.
    let trace_out = args.get("trace-out").map(str::to_owned);
    let timeline: bool = args.get_or("timeline", false)?;
    let recorder = if trace_out.is_some() || timeline {
        Some(RecordingSink::new())
    } else {
        None
    };
    let sink = match &recorder {
        Some(rec) => SinkHandle::new(Arc::clone(rec) as _),
        None => SinkHandle::disabled(),
    };

    // Fault injection: drop a fraction of GETs on every path, so the
    // retry/re-enqueue machinery is exercised against real disk stores.
    let fault_rate: f64 = args.get_or("fault-rate", 0.0)?;
    if !(0.0..1.0).contains(&fault_rate) {
        return Err(CmdError::Other("--fault-rate must be in [0, 1)".into()));
    }
    if fault_rate > 0.0 {
        use cb_storage::faults::{FaultMode, FlakyStore};
        for &site in stores.keys() {
            deployment.fabric.wrap_paths_to(site, |s| {
                let mut flaky = FlakyStore::new(
                    s,
                    FaultMode::Random {
                        probability: fault_rate,
                    },
                    2011,
                );
                if sink.is_enabled() {
                    let sink = sink.clone();
                    flaky = flaky.with_observer(Arc::new(move || {
                        sink.emit(None, None, EventKind::FaultInjected);
                    }));
                }
                Arc::new(flaky)
            });
        }
    }

    let mut cfg = RuntimeConfig::default();
    cfg.sink = sink;
    cfg.prefetch_depth = args.get_or("prefetch-depth", cfg.prefetch_depth)?;
    cfg.synthetic_compute_ns_per_unit = args.get_or("compute-ns", 0)?;
    // `--robj-out` dumps the canonical wire encoding of the final reduction
    // object, so a distributed run's `head --robj-out` can be diffed
    // byte-for-byte against the single-process answer.
    let robj_out = args.get("robj-out").map(str::to_owned);
    if let Some(spec) = args.get("kill-slave") {
        cfg.kill_schedule = parse_kill_schedule(spec)?;
    }

    let mut s = String::new();
    match app_name {
        "wordcount" => {
            let out = run_gr(&WordCountApp, &(), &layout, &placement, &deployment, &cfg)
                .map_err(|e| CmdError::Other(e.to_string()))?;
            let _ = writeln!(s, "wordcount: {} distinct words", out.result.len());
            if let Some(p) = &robj_out {
                std::fs::write(p, out.result.encode_robj())?;
            }
            let mut top: Vec<(u64, u64)> = out.result.iter().map(|(w, (_, n))| (w, n)).collect();
            top.sort_by_key(|&(_, n)| std::cmp::Reverse(n));
            for (w, n) in top.into_iter().take(10) {
                let _ = writeln!(s, "  word {w:>8}  count {n}");
            }
            let _ = write!(s, "{}", out.report.render());
        }
        "knn" => {
            let dim: usize = args.get_or("dim", 4)?;
            let k: usize = args.get_or("k", 10)?;
            let app = KnnApp::new(dim, k);
            let query = KnnQuery {
                query: vec![0.5; dim],
            };
            let out = run_gr(&app, &query, &layout, &placement, &deployment, &cfg)
                .map_err(|e| CmdError::Other(e.to_string()))?;
            let _ = writeln!(s, "knn: {k} nearest to the center point");
            if let Some(p) = &robj_out {
                std::fs::write(p, out.result.encode_robj())?;
            }
            for (d2, id) in out.result.into_sorted() {
                let _ = writeln!(s, "  id {id:>14}  distance² {d2:.6}");
            }
            let _ = write!(s, "{}", out.report.render());
        }
        "selection" => {
            let dim: usize = args.get_or("dim", 4)?;
            let app = SelectionApp::new(dim);
            let query = BoxQuery::new(vec![0.0; dim], vec![0.25; dim]);
            let out = run_gr(&app, &query, &layout, &placement, &deployment, &cfg)
                .map_err(|e| CmdError::Other(e.to_string()))?;
            let robj_bytes = out.result.size_bytes();
            if let Some(p) = &robj_out {
                std::fs::write(p, out.result.encode_robj())?;
            }
            let hits = out.result.into_sorted();
            let _ = writeln!(
                s,
                "selection: {} records inside [0, 0.25)^{dim} ({} robj bytes)",
                hits.len(),
                robj_bytes
            );
            let _ = write!(s, "{}", out.report.render());
        }
        "pagerank" => {
            if robj_out.is_some() {
                return Err(CmdError::Other(
                    "--robj-out is not supported for pagerank (iterative; no single \
                     final reduction object)"
                        .into(),
                ));
            }
            let passes: usize = args.get_or("passes", 10)?;
            // First scan: edge list -> page universe and out-degrees. Edges
            // are read through the same fabric the runtime will use.
            let mut max_page = 0u32;
            let mut edges_per_chunk: Vec<Vec<(u32, u32)>> = Vec::new();
            for chunk in &layout.chunks {
                let file = layout.file(chunk.file);
                let home = placement.home(chunk.file);
                let store = deployment
                    .fabric
                    .store_for(cb_storage::layout::LocationId(0), home)
                    .ok_or_else(|| CmdError::Other("no fabric path for degree scan".into()))?;
                let bytes = store.get_range(&file.name, chunk.offset, chunk.len)?;
                let app0 = PageRankApp::new(u32::MAX);
                let edges = app0.decode_chunk(chunk, &bytes);
                for &(src, dst) in &edges {
                    max_page = max_page.max(src).max(dst);
                }
                edges_per_chunk.push(edges);
            }
            let n_pages = max_page + 1;
            let mut deg = vec![0u32; n_pages as usize];
            for edges in &edges_per_chunk {
                for &(src, _) in edges {
                    deg[src as usize] += 1;
                }
            }
            drop(edges_per_chunk);

            let app = PageRankApp::new(n_pages);
            let mut params = RankParams::uniform(Arc::new(deg));
            let _ = writeln!(s, "pagerank: {n_pages} pages, up to {passes} passes");
            let mut last_report = None;
            for pass in 1..=passes {
                let out = run_gr(&app, &params, &layout, &placement, &deployment, &cfg)
                    .map_err(|e| CmdError::Other(e.to_string()))?;
                let ranks = next_ranks(&out.result, &params);
                let delta = rank_delta(&ranks, &params.ranks);
                let _ = writeln!(s, "  pass {pass}: delta {delta:.3e}");
                params = RankParams {
                    ranks: Arc::new(ranks),
                    out_degree: Arc::clone(&params.out_degree),
                };
                last_report = Some(out.report);
                if delta < 1e-8 {
                    let _ = writeln!(s, "  converged");
                    break;
                }
            }
            let mut top: Vec<(usize, f64)> = params.ranks.iter().copied().enumerate().collect();
            top.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
            for (page, rank) in top.into_iter().take(5) {
                let _ = writeln!(s, "  page {page:>8}  rank {rank:.6}");
            }
            if let Some(r) = last_report {
                let _ = write!(s, "{}", r.render());
            }
        }
        other => {
            return Err(CmdError::Other(format!(
                "unknown --app {other:?}; expected wordcount, knn, selection, or pagerank"
            )))
        }
    }
    if let Some(rec) = recorder {
        let events = rec.take();
        if timeline {
            let _ = write!(
                s,
                "{}",
                obs::Timeline::from_events(&events).render_gantt(100)
            );
        }
        if let Some(path) = trace_out {
            std::fs::write(&path, obs::encode_jsonl(&events))?;
            let _ = writeln!(s, "trace: {} events -> {path}", events.len());
        }
    }
    Ok(s)
}
