//! `cloudburst organize` — analyze a directory of data files and write the
//! index file the head node consumes (the paper's offline data organizer).

use super::CmdError;
use crate::args::Args;
use cb_storage::index;
use cb_storage::organizer::{analyze_store, OrganizerConfig};
use cb_storage::store::DiskStore;
use std::fmt::Write as _;

pub const USAGE: &str = "cloudburst organize --store <dir> --unit-bytes <n> \
[--chunk-bytes <n>] [--out <index-file>]";

pub fn run(args: &Args) -> Result<String, CmdError> {
    args.check_known(&["store", "unit-bytes", "chunk-bytes", "out"])?;
    let dir = args.require("store")?;
    let unit_bytes: u64 = args.require_parsed("unit-bytes")?;
    let chunk_bytes: u64 = args.get_or("chunk-bytes", 4 * 1024 * 1024)?;
    // Default the index *next to* the data directory, not inside it — an
    // index stored among the data files would itself be swept up by the
    // next `organize` run.
    let out = args
        .get("out")
        .map(str::to_owned)
        .unwrap_or_else(|| format!("{}.grix", dir.trim_end_matches('/')));

    let store = DiskStore::open("disk", dir)?;
    let layout = analyze_store(
        &store,
        &OrganizerConfig {
            chunk_bytes,
            unit_bytes,
        },
    )
    .map_err(|e| CmdError::Other(e.to_string()))?;
    let encoded = index::encode(&layout);
    std::fs::write(&out, &encoded)?;

    let mut s = String::new();
    let _ = writeln!(
        s,
        "organized {} files ({} bytes) into {} chunks of <= {} bytes",
        layout.files.len(),
        layout.total_bytes(),
        layout.n_jobs(),
        chunk_bytes,
    );
    let _ = writeln!(s, "index written to {out} ({} bytes)", encoded.len());
    Ok(s)
}
