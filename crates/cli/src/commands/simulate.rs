//! `cloudburst simulate` — run one paper-scale environment on the
//! calibrated discrete-event simulator and print its report (optionally
//! with a per-slave timeline).

use super::CmdError;
use crate::args::Args;
use cb_sim::calib::{self, App, NetConstants};
use cb_sim::model::{simulate, simulate_observed, simulate_traced};
use cb_sim::params::SimParams;
use cloudburst_core::obs;
use serde::Deserialize;
use std::fmt::Write as _;

pub const USAGE: &str = "cloudburst simulate --app knn|kmeans|pagerank \
[--env local|cloud|50/50|33/67|17/83] [--seed <n>] [--timeline true] \
[--wan-mult <x>] [--fault-rate <0..1>] \
[--kill-slave <cluster:slave:after_jobs>[,..]] [--prefetch-depth <n>] \
[--trace-out <trace.jsonl>] | --config <scenario.json>";

/// Run `params`, rendering the report plus (optionally) a Gantt timeline
/// and a JSONL event trace — the same knobs `run` has, on virtual time.
fn render_sim(
    params: SimParams,
    timeline: bool,
    trace_out: Option<&str>,
) -> Result<String, CmdError> {
    let mut s = String::new();
    if let Some(path) = trace_out {
        let (report, trace, events) = simulate_observed(params).map_err(CmdError::Other)?;
        let _ = write!(s, "{}", report.render());
        if timeline {
            let _ = write!(s, "{}", trace.render_gantt(100));
        }
        std::fs::write(path, obs::encode_jsonl(&events))?;
        let _ = writeln!(s, "trace: {} events -> {path}", events.len());
    } else if timeline {
        let (report, trace) = simulate_traced(params).map_err(CmdError::Other)?;
        let _ = write!(s, "{}", report.render());
        let _ = write!(s, "{}", trace.render_gantt(100));
    } else {
        let report = simulate(params).map_err(CmdError::Other)?;
        let _ = write!(s, "{}", report.render());
    }
    Ok(s)
}

/// A custom scenario file: every field optional except `app`.
///
/// ```json
/// {
///   "app": "pagerank",
///   "frac_local": 0.33,
///   "local_cores": 16,
///   "cloud_cores": 16,
///   "seed": 2011,
///   "wan_multiplier": 2.0,
///   "robj_mb": 300.0,
///   "cloud_jitter_cv": 0.08,
///   "allow_stealing": true
/// }
/// ```
#[derive(Debug, Deserialize)]
#[serde(deny_unknown_fields)]
struct Scenario {
    app: String,
    #[serde(default = "default_frac")]
    frac_local: f64,
    #[serde(default = "default_cores")]
    local_cores: usize,
    #[serde(default = "default_cores")]
    cloud_cores: usize,
    #[serde(default = "default_seed")]
    seed: u64,
    #[serde(default = "default_mult")]
    wan_multiplier: f64,
    /// Override the app profile's reduction-object size, in megabytes.
    robj_mb: Option<f64>,
    cloud_jitter_cv: Option<f64>,
    allow_stealing: Option<bool>,
    /// Slave prefetch lookahead; 0 (the default) is the paper's serial slave.
    #[serde(default)]
    prefetch_depth: usize,
    #[serde(default)]
    timeline: bool,
}

fn default_frac() -> f64 {
    0.5
}
fn default_cores() -> usize {
    16
}
fn default_seed() -> u64 {
    2011
}
fn default_mult() -> f64 {
    1.0
}

/// Run a scenario file.
fn run_config(path: &str, trace_out: Option<&str>) -> Result<String, CmdError> {
    let text = std::fs::read_to_string(path)?;
    let sc: Scenario =
        serde_json::from_str(&text).map_err(|e| CmdError::Other(format!("{path}: {e}")))?;
    let app = parse_app(&sc.app)?;

    let mut net = NetConstants::default();
    net.wan_bps *= sc.wan_multiplier;
    net.wan_conn_bps *= sc.wan_multiplier;
    net.robj_conn_bps *= sc.wan_multiplier;

    let env = calib::EnvSpec {
        name: format!(
            "custom-{:.0}/{:.0}",
            sc.frac_local * 100.0,
            (1.0 - sc.frac_local) * 100.0
        ),
        frac_local: sc.frac_local,
        local_cores: sc.local_cores,
        cloud_cores: sc.cloud_cores,
    };
    let mut params = calib::build_params(app, &env, &net, sc.seed);
    if let Some(mb) = sc.robj_mb {
        params.robj_bytes = (mb * 1e6) as u64;
    }
    if let Some(cv) = sc.cloud_jitter_cv {
        for c in &mut params.clusters {
            if c.name == "EC2" {
                c.jitter_cv = cv;
            }
        }
    }
    if let Some(st) = sc.allow_stealing {
        params.pool.allow_stealing = st;
    }
    params.prefetch_depth = sc.prefetch_depth;

    let mut s = String::new();
    let _ = writeln!(
        s,
        "simulating {} from {path}: {} ({} local + {} cloud cores, WAN x{})",
        app.name(),
        env.name,
        env.local_cores,
        env.cloud_cores,
        sc.wan_multiplier
    );
    let _ = write!(s, "{}", render_sim(params, sc.timeline, trace_out)?);
    Ok(s)
}

fn parse_app(name: &str) -> Result<App, CmdError> {
    App::ALL
        .into_iter()
        .find(|a| a.name() == name)
        .ok_or_else(|| {
            CmdError::Other(format!(
                "unknown --app {name:?}; expected knn, kmeans, or pagerank"
            ))
        })
}

pub fn run(args: &Args) -> Result<String, CmdError> {
    args.check_known(&[
        "app",
        "env",
        "seed",
        "timeline",
        "wan-mult",
        "config",
        "fault-rate",
        "kill-slave",
        "prefetch-depth",
        "trace-out",
    ])?;
    if let Some(path) = args.get("config") {
        return run_config(path, args.get("trace-out"));
    }
    let app = parse_app(args.require("app")?)?;
    let env_name = args.get("env").unwrap_or("50/50");
    let seed: u64 = args.get_or("seed", 2011)?;
    let timeline: bool = args.get_or("timeline", false)?;
    let wan_mult: f64 = args.get_or("wan-mult", 1.0)?;
    let fault_rate: f64 = args.get_or("fault-rate", 0.0)?;

    let envs = calib::fig3_envs(app);
    let env = envs
        .iter()
        .find(|e| e.name == format!("env-{env_name}"))
        .ok_or_else(|| {
            CmdError::Other(format!(
                "unknown --env {env_name:?}; expected one of: {}",
                envs.iter()
                    .map(|e| e.name.trim_start_matches("env-"))
                    .collect::<Vec<_>>()
                    .join(", ")
            ))
        })?;

    let mut net = NetConstants::default();
    net.wan_bps *= wan_mult;
    net.wan_conn_bps *= wan_mult;
    net.robj_conn_bps *= wan_mult;
    let mut params = calib::build_params(app, env, &net, seed);
    params.prefetch_depth = args.get_or("prefetch-depth", 0)?;
    params.faults.fetch_failure_prob = fault_rate;
    if let Some(spec) = args.get("kill-slave") {
        params.faults.kill_schedule = crate::commands::run::parse_kill_schedule(spec)?;
    }

    let mut s = String::new();
    let _ = writeln!(
        s,
        "simulating {} on {} ({} local + {} cloud cores, 120 GB, 960 jobs, WAN x{wan_mult})",
        app.name(),
        env.name,
        env.local_cores,
        env.cloud_cores
    );
    let _ = write!(
        s,
        "{}",
        render_sim(params, timeline, args.get("trace-out"))?
    );
    Ok(s)
}
