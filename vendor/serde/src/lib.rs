//! Offline stand-in for `serde`.
//!
//! Instead of serde's visitor-based data model, this shim converts through
//! a single JSON [`value::Value`] tree: `Serialize` renders into it,
//! `Deserialize` reads out of it, and `serde_json` is a thin parser/printer
//! over the same type. That covers this workspace's usage — derived structs
//! of primitives, `String`, `Option<T>`, `Vec<T>`, and nested derived
//! structs — while staying dependency-free.

pub mod value;

pub use serde_derive::{Deserialize, Serialize};
pub use value::{Error, Value};

/// Render `self` as a JSON value tree.
pub trait Serialize {
    fn to_json_value(&self) -> Value;
}

/// Rebuild `Self` from a JSON value tree.
pub trait Deserialize: Sized {
    fn from_json_value(v: &Value) -> Result<Self, Error>;

    /// Called by derived impls when a field is absent and has no
    /// `#[serde(default)]`. `Option<T>` overrides this to yield `None`,
    /// matching serde's treatment of missing optional fields.
    fn missing_field(field: &str) -> Result<Self, Error> {
        Err(Error::custom(format!("missing field `{field}`")))
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}

macro_rules! ser_de_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value {
                Value::Number(value::Number::U64(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn from_json_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_number()?;
                let wide = match *n {
                    value::Number::U64(u) => u,
                    value::Number::I64(i) => {
                        u64::try_from(i).map_err(|_| Error::custom(
                            format!("expected {}, got {i}", stringify!($t))))?
                    }
                    value::Number::F64(f) => {
                        return Err(Error::custom(
                            format!("expected {}, got float {f}", stringify!($t))));
                    }
                };
                <$t>::try_from(wide).map_err(|_| Error::custom(
                    format!("{wide} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

ser_de_unsigned!(u8, u16, u32, u64, usize);

macro_rules! ser_de_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value {
                Value::Number(value::Number::I64(*self as i64))
            }
        }
        impl Deserialize for $t {
            fn from_json_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_number()?;
                let wide = match *n {
                    value::Number::U64(u) => {
                        i64::try_from(u).map_err(|_| Error::custom(
                            format!("{u} out of range for {}", stringify!($t))))?
                    }
                    value::Number::I64(i) => i,
                    value::Number::F64(f) => {
                        return Err(Error::custom(
                            format!("expected {}, got float {f}", stringify!($t))));
                    }
                };
                <$t>::try_from(wide).map_err(|_| Error::custom(
                    format!("{wide} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

ser_de_signed!(i8, i16, i32, i64, isize);

macro_rules! ser_de_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value {
                Value::Number(value::Number::F64(*self as f64))
            }
        }
        impl Deserialize for $t {
            fn from_json_value(v: &Value) -> Result<Self, Error> {
                Ok(match *v.as_number()? {
                    value::Number::U64(u) => u as $t,
                    value::Number::I64(i) => i as $t,
                    value::Number::F64(f) => f as $t,
                })
            }
        }
    )*};
}

ser_de_float!(f32, f64);

impl Serialize for bool {
    fn to_json_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!(
                "expected bool, got {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for String {
    fn to_json_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for str {
    fn to_json_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for String {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::String(s) => Ok(s.clone()),
            other => Err(Error::custom(format!(
                "expected string, got {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json_value(&self) -> Value {
        match self {
            Some(v) => v.to_json_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_json_value(other)?)),
        }
    }

    fn missing_field(_field: &str) -> Result<Self, Error> {
        Ok(None)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items
                .iter()
                .enumerate()
                .map(|(i, item)| {
                    T::from_json_value(item).map_err(|e| e.in_field(&format!("[{i}]")))
                })
                .collect(),
            other => Err(Error::custom(format!(
                "expected array, got {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for Value {
    fn to_json_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}
