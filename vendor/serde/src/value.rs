//! The JSON value tree shared by the `serde` and `serde_json` shims.

use std::fmt;

/// A JSON number. Integers keep their exact representation so `u64`
/// counters round-trip without passing through `f64`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    U64(u64),
    I64(i64),
    F64(f64),
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Number::U64(u) => write!(f, "{u}"),
            Number::I64(i) => write!(f, "{i}"),
            // Rust's shortest-round-trip float formatting; non-finite
            // values have no JSON form, so clamp them to null like
            // serde_json's arbitrary-precision mode refuses to.
            Number::F64(x) if x.is_finite() => write!(f, "{x}"),
            Number::F64(_) => write!(f, "null"),
        }
    }
}

/// A JSON document. Objects preserve insertion order (like serde_json's
/// `preserve_order` feature) so printed reports keep declared field order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Number(Number),
    String(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

impl Value {
    /// A short name for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    pub fn as_number(&self) -> Result<&Number, Error> {
        match self {
            Value::Number(n) => Ok(n),
            other => Err(Error::custom(format!(
                "expected number, got {}",
                other.kind()
            ))),
        }
    }

    /// Object field lookup; `None` for non-objects too.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Compact single-line JSON.
    pub fn render_compact(&self) -> String {
        let mut out = String::new();
        self.render(&mut out, None, 0);
        out
    }

    /// Pretty JSON with two-space indentation.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.render(&mut out, Some(2), 0);
        out
    }

    fn render(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        let (nl, pad, pad_close, colon) = match indent {
            Some(w) => (
                "\n",
                " ".repeat(w * (depth + 1)),
                " ".repeat(w * depth),
                ": ",
            ),
            None => ("", String::new(), String::new(), ":"),
        };
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(n) => out.push_str(&n.to_string()),
            Value::String(s) => escape_into(s, out),
            Value::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad);
                    item.render(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad_close);
                out.push(']');
            }
            Value::Object(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad);
                    escape_into(k, out);
                    out.push_str(colon);
                    v.render(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad_close);
                out.push('}');
            }
        }
    }
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Serialization / deserialization error with a breadcrumb of field names.
#[derive(Debug, Clone, PartialEq)]
pub struct Error {
    message: String,
}

impl Error {
    pub fn custom(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }

    /// Prefix the error with the field it occurred in (used by derived
    /// impls to build `a.b.c: ...` breadcrumbs).
    pub fn in_field(self, field: &str) -> Self {
        Error {
            message: format!("{field}: {}", self.message),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}
