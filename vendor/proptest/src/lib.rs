//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace's property
//! tests use: the [`proptest!`] macro, `prop_assert!`/`prop_assert_eq!`,
//! [`ProptestConfig::with_cases`], `any::<T>()`, numeric range strategies,
//! `prop::collection::vec`, tuple strategies, and simple
//! `"[class]{m,n}"` string-pattern strategies.
//!
//! Differences from real proptest: no shrinking (the failing inputs are
//! printed verbatim instead), and generation is seeded deterministically
//! from the test name (override with `PROPTEST_SEED=<n>`), so failures are
//! reproducible run to run.

use std::ops::{Range, RangeInclusive};

/// Runner configuration: the number of random cases per test.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// The generation RNG: splitmix64, deterministic per test.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        // Multiply-shift; bias is negligible for test generation.
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }
}

/// Seed a [`TestRng`] for the named test (honours `PROPTEST_SEED`).
pub fn test_rng(test_name: &str) -> TestRng {
    let seed = match std::env::var("PROPTEST_SEED") {
        Ok(s) => s.parse().unwrap_or(0),
        Err(_) => 0,
    };
    let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ seed;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    TestRng { state: h }
}

/// A value generator. Strategies are sampled by reference so range
/// expressions can be written inline in `proptest!` argument lists.
pub trait Strategy {
    type Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform every sampled value with `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo + 1) as u64;
                // span == 0 means the full u64 domain; take any draw.
                if span == 0 {
                    rng.next_u64() as $t
                } else {
                    (lo + rng.below(span) as i128) as $t
                }
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (self.end - self.start) * rng.unit_f64() as $t
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

/// `any::<T>()` — the full domain of `T`.
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

pub fn any<T>() -> Any<T>
where
    Any<T>: Strategy,
{
    Any(std::marker::PhantomData)
}

macro_rules! any_int {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Any<bool> {
    type Value = bool;
    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Strategy for Any<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        // Finite, sign-symmetric, wide dynamic range.
        let m = rng.unit_f64() * 2.0 - 1.0;
        let e = (rng.below(61) as i32 - 30) as f64;
        m * e.exp2()
    }
}

impl Strategy for Any<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut TestRng) -> f32 {
        let any64: Any<f64> = Any(std::marker::PhantomData);
        any64.sample(rng) as f32
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident/$idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
    (A/0, B/1, C/2, D/3, E/4)
}

/// String-pattern strategy for `"[class]{m,n}"` regex literals: a character
/// class (literals and `a-z` ranges) repeated between `m` and `n` times.
impl Strategy for &str {
    type Value = String;

    fn sample(&self, rng: &mut TestRng) -> String {
        let (alphabet, lo, hi) = parse_class_pattern(self).unwrap_or_else(|| {
            panic!("unsupported string pattern {self:?}: expected \"[class]{{m,n}}\"")
        });
        let len = lo + rng.below((hi - lo + 1) as u64) as usize;
        (0..len)
            .map(|_| alphabet[rng.below(alphabet.len() as u64) as usize])
            .collect()
    }
}

/// Parse `[chars]{m,n}` into (alphabet, m, n).
fn parse_class_pattern(pat: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pat.strip_prefix('[')?;
    let (class, rest) = rest.split_once(']')?;
    let counts = rest.strip_prefix('{')?.strip_suffix('}')?;
    let (lo, hi) = match counts.split_once(',') {
        Some((a, b)) => (a.parse().ok()?, b.parse().ok()?),
        None => {
            let n = counts.parse().ok()?;
            (n, n)
        }
    };
    if hi < lo {
        return None;
    }
    let chars: Vec<char> = class.chars().collect();
    let mut alphabet = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        if i + 2 < chars.len() && chars[i + 1] == '-' {
            let (a, b) = (chars[i], chars[i + 2]);
            if a > b {
                return None;
            }
            alphabet.extend((a..=b).filter(|c| c.is_ascii()));
            i += 3;
        } else {
            alphabet.push(chars[i]);
            i += 1;
        }
    }
    if alphabet.is_empty() {
        return None;
    }
    Some((alphabet, lo, hi))
}

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec`s with length drawn from `len` and elements from
    /// `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.sample(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// The `proptest::prelude` the tests import.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
    };

    /// Mirror of proptest's `prelude::prop` module path.
    pub mod prop {
        pub use crate::collection;
    }
}

pub use prelude::prop;

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            panic!("prop_assert failed: {}", stringify!($cond));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            panic!("prop_assert failed: {}: {}", stringify!($cond), format!($($fmt)+));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            panic!("prop_assert_eq failed: {:?} != {:?}", a, b);
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            panic!("prop_assert_eq failed: {:?} != {:?}: {}", a, b, format!($($fmt)+));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if *a == *b {
            panic!("prop_assert_ne failed: both {:?}", a);
        }
    }};
}

/// The test-harness macro: runs each contained function over `cases`
/// sampled inputs, printing the inputs on failure.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest! { @cfg ($cfg) $($rest)* }
    };
    (@cfg ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            #[test]
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..cfg.cases {
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)*
                    let repr = {
                        let mut s = String::new();
                        $(s.push_str(&format!("  {} = {:?}\n", stringify!($arg), &$arg));)*
                        s
                    };
                    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| $body));
                    if let Err(e) = outcome {
                        eprintln!("proptest {} failed at case {case} with inputs:\n{repr}", stringify!($name));
                        std::panic::resume_unwind(e);
                    }
                }
            }
        )*
    };
    // No leading config attribute.
    ($($rest:tt)*) => {
        $crate::proptest! { @cfg ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::test_rng("ranges");
        for _ in 0..1000 {
            let x = Strategy::sample(&(3u64..17), &mut rng);
            assert!((3..17).contains(&x));
            let y = Strategy::sample(&(-5i32..6), &mut rng);
            assert!((-5..6).contains(&y));
            let z = Strategy::sample(&(1u8..=255), &mut rng);
            assert!(z >= 1);
            let f = Strategy::sample(&(-2.0f64..3.0), &mut rng);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn vec_and_tuple_strategies() {
        let mut rng = crate::test_rng("vec");
        let s = prop::collection::vec((0u64..50, -1.0f64..1.0), 2..9);
        for _ in 0..100 {
            let v = Strategy::sample(&s, &mut rng);
            assert!((2..9).contains(&v.len()));
            for (k, x) in v {
                assert!(k < 50);
                assert!((-1.0..1.0).contains(&x));
            }
        }
    }

    #[test]
    fn string_pattern() {
        let mut rng = crate::test_rng("pat");
        for _ in 0..200 {
            let s = Strategy::sample(&"[a-zA-Z0-9_.-]{1,24}", &mut rng);
            assert!((1..=24).contains(&s.len()));
            assert!(s
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || "_.-".contains(c)));
        }
    }

    #[test]
    fn deterministic_per_name() {
        let mut a = crate::test_rng("same");
        let mut b = crate::test_rng("same");
        assert_eq!(a.next_u64(), b.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro itself compiles and runs with config, docs, and attrs.
        #[test]
        fn macro_end_to_end(x in 1usize..10, v in prop::collection::vec(any::<bool>(), 0..5)) {
            prop_assert!(x >= 1);
            prop_assert!(v.len() < 5);
            prop_assert_eq!(x, x);
        }
    }
}
