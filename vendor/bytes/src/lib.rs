//! Offline stand-in for the `bytes` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the small slice of the `bytes` API it actually uses: [`Bytes`]
//! (an immutable, cheaply cloneable, sliceable byte buffer backed by a
//! shared allocation) and [`BytesMut`] (a growable buffer that freezes into
//! a `Bytes`). Semantics match the real crate for this subset; the zero-copy
//! promise (clone/slice are O(1) and share one allocation) is preserved.

use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// An immutable, reference-counted byte buffer; clones and slices share the
/// same backing allocation.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer (no allocation is shared, but none is needed).
    pub fn new() -> Self {
        Bytes::from(Vec::new())
    }

    /// Wrap a static slice. (The real crate is zero-copy here; copying once
    /// at construction keeps one representation and identical semantics.)
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes::from(bytes.to_vec())
    }

    /// Copy `data` into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    pub fn len(&self) -> usize {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// O(1) sub-slice sharing the same allocation.
    ///
    /// # Panics
    /// Panics if the range is out of bounds, like the real crate.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(
            lo <= hi && hi <= self.len(),
            "slice index out of range: {lo}..{hi} of {}",
            self.len()
        );
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let data: Arc<[u8]> = Arc::from(v);
        let end = data.len();
        Bytes {
            data,
            start: 0,
            end,
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes::from_static(s)
    }
}

impl<const N: usize> From<&'static [u8; N]> for Bytes {
    fn from(s: &'static [u8; N]) -> Self {
        Bytes::from_static(s)
    }
}

impl From<Bytes> for Vec<u8> {
    fn from(b: Bytes) -> Self {
        b.to_vec()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_ref()
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bytes(len={})", self.len())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_ref() == other.as_ref()
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_ref() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_ref() == *other
    }
}

impl<const N: usize> PartialEq<[u8; N]> for Bytes {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.as_ref() == other
    }
}

impl<const N: usize> PartialEq<&[u8; N]> for Bytes {
    fn eq(&self, other: &&[u8; N]) -> bool {
        self.as_ref() == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_ref() == other.as_slice()
    }
}

impl PartialEq<Bytes> for Vec<u8> {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_ref()
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_ref().hash(state);
    }
}

impl std::borrow::Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_ref()
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<T: IntoIterator<Item = u8>>(iter: T) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

/// A growable byte buffer that can be frozen into an immutable [`Bytes`].
#[derive(Clone, Default, Debug)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        BytesMut { buf: Vec::new() }
    }

    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            buf: Vec::with_capacity(cap),
        }
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    pub fn extend_from_slice(&mut self, extend: &[u8]) {
        self.buf.extend_from_slice(extend);
    }

    pub fn put_u8(&mut self, b: u8) {
        self.buf.push(b);
    }

    /// Convert into an immutable `Bytes` without copying.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_shares_allocation() {
        let b = Bytes::from((0u8..100).collect::<Vec<u8>>());
        let s = b.slice(10..20);
        assert_eq!(s.len(), 10);
        assert_eq!(s.as_ref(), &(10u8..20).collect::<Vec<u8>>()[..]);
        // Same backing allocation.
        assert!(Arc::ptr_eq(&b.data, &s.data));
        // Slice of a slice.
        let ss = s.slice(2..=4);
        assert_eq!(ss.as_ref(), &[12, 13, 14]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_slice_panics() {
        Bytes::from(vec![1, 2, 3]).slice(0..4);
    }

    #[test]
    fn freeze_round_trip() {
        let mut m = BytesMut::with_capacity(8);
        m.extend_from_slice(b"abc");
        m.extend_from_slice(b"def");
        let b = m.freeze();
        assert_eq!(b, b"abcdef");
        assert_eq!(b.to_vec(), b"abcdef".to_vec());
    }

    #[test]
    fn equality_across_types() {
        let b = Bytes::from_static(b"xyz");
        assert_eq!(b, b"xyz");
        assert_eq!(b, b"xyz"[..]);
        assert_eq!(b, vec![b'x', b'y', b'z']);
        assert_eq!(b.clone(), b);
    }
}
