//! Offline stand-in for `crossbeam`.
//!
//! Provides the `crossbeam::channel` subset this workspace uses —
//! `unbounded()` MPSC channels with blocking, timed, and non-blocking
//! receives — implemented over `std::sync::mpsc`. The one semantic
//! difference from real crossbeam (whose receivers are cloneable MPMC) is
//! that `Receiver` here is single-consumer, which every call site in this
//! repository already respects.

pub mod channel {
    use std::sync::mpsc;
    use std::time::Duration;

    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};

    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Send `msg`; errors only when every `Receiver` is gone.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            self.0.send(msg)
        }
    }

    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Block until a message arrives; errors when all senders are gone
        /// and the queue is drained.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv()
        }

        /// Block up to `timeout` for a message.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout)
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv()
        }

        pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
            self.0.iter()
        }
    }

    /// An unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(rx))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fifo_and_disconnect() {
            let (tx, rx) = unbounded();
            let tx2 = tx.clone();
            tx.send(1).unwrap();
            tx2.send(2).unwrap();
            drop(tx);
            drop(tx2);
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
            assert!(rx.recv().is_err(), "disconnected after all senders drop");
        }

        #[test]
        fn timeout_elapses() {
            let (_tx, rx) = unbounded::<u8>();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Timeout)
            );
        }

        #[test]
        fn cross_thread() {
            let (tx, rx) = unbounded();
            let h = std::thread::spawn(move || {
                for i in 0..100 {
                    tx.send(i).unwrap();
                }
            });
            let got: Vec<i32> = rx.iter().collect();
            h.join().unwrap();
            assert_eq!(got, (0..100).collect::<Vec<_>>());
        }
    }
}
